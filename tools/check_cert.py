#!/usr/bin/env python3
"""Validate CERT_* artifacts emitted by the exhaustive certification
engine (`ftt certify` / ftt_sim::certify).

Usage:
    check_cert.py CERT.json [CERT2.json ...] [--allow-incomplete]
                  [--expect-full-budget]

Checks (CI's certify-smoke job runs this on every emitted artifact):
  * schema_version matches the version this checker understands and
    kind is "certify";
  * the full field set is present with sane types, symmetry is the
    documented "translation" quotient;
  * counting is consistent: patterns_total == sum(patterns_by_size),
    certified <= patterns_total, patterns_covered >= patterns_total
    (orbits only unfold), complete == (certified == patterns_total),
    and a complete run carries no failures;
  * max_faults <= budget_k (the engine must refuse beyond-guarantee
    requests), host_nodes == host_m ** d inferred from the instance id;
  * cert_digest is a 16-digit hex word;
  * unless --allow-incomplete: the run must be COMPLETE — every
    canonical pattern certified (Theorem 3, combinatorially);
  * with --expect-full-budget: max_faults == budget_k, i.e. the run
    exhausted the theorem's entire quantifier, not a truncation.
"""

import json
import re
import sys

SCHEMA_VERSION = 1
FIELDS = [
    "schema_version",
    "kind",
    "name",
    "construction",
    "instance_id",
    "params",
    "budget_k",
    "max_faults",
    "symmetry",
    "host_m",
    "host_nodes",
    "patterns_by_size",
    "patterns_total",
    "patterns_covered",
    "certified",
    "complete",
    "failures",
    "cert_digest",
    "seconds",
    "threads",
]

errors = []


def check(cond, msg):
    if not cond:
        errors.append(msg)


def load_json(path):
    """Loads a top-level JSON object; any failure is a named one-line
    exit (a corrupt artifact must fail the check, not traceback)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as e:
        sys.exit(f"check_cert: {path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_cert: {path}: not valid JSON: {e}")
    if not isinstance(data, dict):
        sys.exit(
            f"check_cert: {path}: top level must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def validate_report(path, report, allow_incomplete, expect_full_budget):
    check(
        report.get("schema_version") == SCHEMA_VERSION,
        f"schema_version {report.get('schema_version')!r} != {SCHEMA_VERSION}",
    )
    check(report.get("kind") == "certify", f"kind {report.get('kind')!r} != 'certify'")
    for field in FIELDS:
        check(field in report, f"missing field {field}")
    check(
        isinstance(report.get("name"), str) and report["name"],
        "missing/empty name",
    )
    check(
        report.get("symmetry") == "translation",
        f"symmetry {report.get('symmetry')!r} != 'translation'",
    )
    for field in ("budget_k", "max_faults", "host_m", "host_nodes", "threads"):
        check(
            isinstance(report.get(field), int) and report[field] >= 0,
            f"{field} must be a non-negative integer",
        )
    sizes = report.get("patterns_by_size")
    check(
        isinstance(sizes, list)
        and sizes
        and all(isinstance(c, int) and c >= 0 for c in sizes),
        "patterns_by_size must be a non-empty list of counts",
    )
    sizes_ok = isinstance(sizes, list) and all(isinstance(c, int) for c in sizes)
    if sizes_ok and isinstance(report.get("max_faults"), int):
        check(
            len(sizes) == report["max_faults"] + 1,
            f"patterns_by_size has {len(sizes)} entries for max_faults "
            f"{report['max_faults']}",
        )
    total = report.get("patterns_total")
    check(isinstance(total, int) and total > 0, "patterns_total must be positive")
    if sizes_ok and isinstance(total, int):
        check(
            sum(sizes) == total,
            f"patterns_total {total} != sum(patterns_by_size) {sum(sizes)}",
        )
    covered = report.get("patterns_covered")
    if isinstance(covered, int) and isinstance(total, int):
        check(
            covered >= total,
            f"patterns_covered {covered} < patterns_total {total} "
            "(orbits can only unfold)",
        )
    certified = report.get("certified")
    if isinstance(certified, int) and isinstance(total, int):
        check(0 <= certified <= total, "certified out of range")
        check(
            report.get("complete") == (certified == total),
            "complete flag inconsistent with certified/patterns_total",
        )
    if isinstance(report.get("budget_k"), int) and isinstance(
        report.get("max_faults"), int
    ):
        check(
            report["max_faults"] <= report["budget_k"],
            f"max_faults {report['max_faults']} > budget_k {report['budget_k']} "
            "(the engine must refuse beyond-guarantee runs)",
        )
    failures = report.get("failures")
    check(isinstance(failures, list), "failures must be a list")
    if report.get("complete") is True and isinstance(failures, list):
        check(not failures, "complete run must carry no failures")
    check(
        isinstance(report.get("cert_digest"), str)
        and re.fullmatch(r"[0-9a-f]{16}", report.get("cert_digest") or "") is not None,
        f"cert_digest {report.get('cert_digest')!r} is not a 16-digit hex word",
    )
    # host_nodes == host_m ** d, with d parsed from the instance id.
    m = re.match(r"d(\d+)_n\d+b\d+$", report.get("instance_id") or "")
    check(m is not None, f"odd instance_id {report.get('instance_id')!r}")
    if m and isinstance(report.get("host_m"), int):
        check(
            report.get("host_nodes") == report["host_m"] ** int(m.group(1)),
            f"host_nodes {report.get('host_nodes')} != host_m^d "
            f"{report['host_m']}^{m.group(1)}",
        )
    if not allow_incomplete:
        check(
            report.get("complete") is True,
            f"{path}: certification INCOMPLETE "
            f"({report.get('certified')}/{report.get('patterns_total')})",
        )
    if expect_full_budget:
        check(
            report.get("max_faults") == report.get("budget_k"),
            f"max_faults {report.get('max_faults')} != budget_k "
            f"{report.get('budget_k')} (full-budget run expected)",
        )


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    flags = {a for a in argv if a.startswith("--")}
    unknown = flags - {"--allow-incomplete", "--expect-full-budget"}
    if unknown or not args:
        sys.exit(
            "usage: check_cert.py CERT.json [CERT2.json ...] "
            "[--allow-incomplete] [--expect-full-budget]"
        )
    for path in args:
        report = load_json(path)
        validate_report(
            path,
            report,
            "--allow-incomplete" in flags,
            "--expect-full-budget" in flags,
        )
        if errors:
            print(f"check_cert: {path} FAILED:", file=sys.stderr)
            for err in errors:
                print(f"  - {err}", file=sys.stderr)
            sys.exit(1)
        print(
            f"check_cert: {path} ok ({report['instance_id']}: "
            f"{report['certified']}/{report['patterns_total']} canonical patterns "
            f"covering {report['patterns_covered']} fault sets, "
            f"digest {report['cert_digest']})"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
