#!/usr/bin/env python3
"""Validate SWEEP_* artifacts emitted by the scenario-sweep engine.

Usage:
    check_sweep.py SWEEP.json [SWEEP.csv] [--monotone]

Checks (CI's sweep-smoke job runs this on every emitted artifact):
  * schema_version matches the version this checker understands;
  * every cell carries the full field set, success rates and CI bounds
    are probabilities with ci_low <= rate <= ci_high, tallies are
    consistent with the declared trial budget;
  * regime-specific fields are present (p/q for bernoulli, k for
    adversarial) and baseline columns, when present, are probabilities;
  * the optional CSV twin has the expected header and one row per cell,
    in the same order;
  * with --monotone: within each construction instance, the success
    rate is monotone non-increasing in p — the Theorem 2 curve shape
    (applies to cells that define p; adversarial cells are skipped).
"""

import csv
import json
import sys

SCHEMA_VERSION = 1
CELL_FIELDS = [
    "id",
    "construction",
    "params",
    "regime",
    "p",
    "q",
    "k",
    "pattern",
    "mult",
    "trials",
    "successes",
    "success_rate",
    "ci_low",
    "ci_high",
    "seconds",
    "trials_per_sec",
    "baseline_successes",
    "baseline_rate",
]
CSV_HEADER = (
    "id,construction,params,regime,p,q,k,pattern,mult,trials,successes,"
    "success_rate,ci_low,ci_high,seconds,trials_per_sec,baseline_rate"
)

errors = []


def check(cond, msg):
    if not cond:
        errors.append(msg)


def is_prob(x):
    return isinstance(x, (int, float)) and 0.0 <= x <= 1.0


def load_json(path):
    """Loads a top-level JSON object; any failure is a named one-line
    exit (a corrupt artifact must fail the check, not traceback)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as e:
        sys.exit(f"check_sweep: {path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_sweep: {path}: not valid JSON: {e}")
    if not isinstance(data, dict):
        sys.exit(
            f"check_sweep: {path}: top level must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def validate_report(report):
    check(
        report.get("schema_version") == SCHEMA_VERSION,
        f"schema_version {report.get('schema_version')!r} != {SCHEMA_VERSION}",
    )
    check(report.get("kind") == "sweep", f"kind {report.get('kind')!r} != 'sweep'")
    check(isinstance(report.get("name"), str) and report["name"], "missing name")
    for field in ("root_seed", "trials", "threads"):
        check(isinstance(report.get(field), int), f"missing/odd {field}")
    cells = report.get("cells")
    check(isinstance(cells, list) and cells, "cells must be a non-empty list")
    if not isinstance(cells, list):
        cells = []
    for cell in cells:
        if not isinstance(cell, dict):
            check(False, f"cell {cell!r} is not an object")
            continue
        cid = cell.get("id", "<no id>")
        for field in CELL_FIELDS:
            check(field in cell, f"{cid}: missing field {field}")
        check(is_prob(cell.get("success_rate")), f"{cid}: success_rate not in [0,1]")
        check(is_prob(cell.get("ci_low")), f"{cid}: ci_low not in [0,1]")
        check(is_prob(cell.get("ci_high")), f"{cid}: ci_high not in [0,1]")
        if all(is_prob(cell.get(f)) for f in ("ci_low", "ci_high", "success_rate")):
            check(
                cell["ci_low"] <= cell["success_rate"] <= cell["ci_high"],
                f"{cid}: CI [{cell['ci_low']}, {cell['ci_high']}] "
                f"does not bracket rate {cell['success_rate']}",
            )
        regime = cell.get("regime")
        if regime != "exhaustive":
            # exhaustive cells walk their canonical pattern list; their
            # trial count is the pattern count, not the sweep budget
            check(
                cell.get("trials") == report.get("trials"),
                f"{cid}: cell trials {cell.get('trials')} != sweep trials",
            )
        check(
            isinstance(cell.get("successes"), int)
            and 0 <= cell["successes"] <= cell.get("trials", 0),
            f"{cid}: successes out of range",
        )
        check(
            regime in ("bernoulli", "adversarial", "exhaustive"),
            f"{cid}: odd regime {regime!r}",
        )
        if regime == "bernoulli":
            check(is_prob(cell.get("p")), f"{cid}: bernoulli cell needs p in [0,1]")
            check(is_prob(cell.get("q")), f"{cid}: bernoulli cell needs q in [0,1]")
        if regime == "adversarial":
            check(
                isinstance(cell.get("k"), int) and cell["k"] >= 0,
                f"{cid}: adversarial cell needs k >= 0",
            )
            check(isinstance(cell.get("pattern"), str), f"{cid}: needs pattern")
        if regime == "exhaustive":
            check(
                isinstance(cell.get("k"), int) and cell["k"] >= 0,
                f"{cid}: exhaustive cell needs k >= 0",
            )
            check(
                cell.get("successes") == cell.get("trials"),
                f"{cid}: exhaustive cell must certify every pattern "
                f"({cell.get('successes')}/{cell.get('trials')})",
            )
        if cell.get("baseline_rate") is not None:
            check(is_prob(cell["baseline_rate"]), f"{cid}: baseline_rate not in [0,1]")
    return cells or []


def validate_csv(path, cells):
    try:
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
    except OSError as e:
        sys.exit(f"check_sweep: {path}: cannot read: {e}")
    check(bool(rows), f"{path}: empty CSV")
    if rows:
        check(
            ",".join(rows[0]) == CSV_HEADER,
            f"{path}: header mismatch:\n  got      {','.join(rows[0])}\n"
            f"  expected {CSV_HEADER}",
        )
        check(
            len(rows) == 1 + len(cells),
            f"{path}: {len(rows) - 1} data rows for {len(cells)} cells",
        )
        for row, cell in zip(rows[1:], cells):
            cid = cell.get("id") if isinstance(cell, dict) else None
            check(
                row and row[0] == cid,
                f"{path}: row id {row[0] if row else '<empty>'} != {cid}",
            )


def validate_monotone(cells):
    curves = {}
    for cell in cells:
        # Cells with missing/odd fields were already reported above;
        # the curve check only consumes well-formed ones.
        if (
            not isinstance(cell, dict)
            or not isinstance(cell.get("p"), (int, float))
            or not is_prob(cell.get("success_rate"))
        ):
            continue
        curves.setdefault((cell.get("construction"), cell.get("params")), []).append(cell)
    check(bool(curves), "--monotone: no cells define p")
    for (construction, params), curve in curves.items():
        curve.sort(key=lambda c: c["p"])
        for lo, hi in zip(curve, curve[1:]):
            check(
                hi["success_rate"] <= lo["success_rate"],
                f"{construction} ({params}): success rate rises "
                f"{lo['success_rate']} -> {hi['success_rate']} as p grows "
                f"{lo['p']} -> {hi['p']}",
            )


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    flags = {a for a in argv if a.startswith("--")}
    unknown = flags - {"--monotone"}
    if unknown or not 1 <= len(args) <= 2:
        sys.exit("usage: check_sweep.py SWEEP.json [SWEEP.csv] [--monotone]")
    report = load_json(args[0])
    cells = validate_report(report)
    if len(args) == 2:
        validate_csv(args[1], cells)
    if "--monotone" in flags:
        validate_monotone(cells)
    if errors:
        print(f"check_sweep: {args[0]} FAILED:", file=sys.stderr)
        for err in errors:
            print(f"  - {err}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_sweep: {args[0]} ok "
        f"({len(cells)} cells, schema_version {report['schema_version']}"
        + (", monotone in p" if "--monotone" in flags else "")
        + ")"
    )


if __name__ == "__main__":
    main(sys.argv[1:])
