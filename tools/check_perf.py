#!/usr/bin/env python3
"""Perf gates over the bench emitters' JSON artifacts.

Usage:
    check_perf.py COMMITTED_BASELINE.json FRESH.json [--floor 0.25]
    check_perf.py --online BENCH_online.json [--min-speedup 2.0]

Two-file mode compares the freshly measured trials/sec of every
scenario in BENCH_extraction.json against the committed baseline and
fails if any scenario drops below ``floor * baseline`` (default 25% —
deliberately generous: CI runners are slower and noisier than the
machines that produce committed baselines, so this gate catches
order-of-magnitude regressions like an accidentally quadratic hot path
or a lost scratch reuse, not few-percent drift; trend inspection uses
the uploaded artifacts).

``--online`` mode validates a BENCH_online.json artifact (incremental
repair vs from-scratch re-extraction on identical fault streams) and
gates the per-scenario *speedup* — a machine-relative ratio, so it is
noise-robust — at ``--min-speedup`` (default 2.0, the online
subsystem's acceptance floor).
"""

import json
import sys


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    scenarios = {}
    for s in data.get("scenarios", []):
        name, tps = s.get("name"), s.get("trials_per_sec")
        if not isinstance(name, str) or not isinstance(tps, (int, float)):
            sys.exit(f"check_perf: {path}: malformed scenario entry {s!r}")
        scenarios[name] = tps
    if not scenarios:
        sys.exit(f"check_perf: {path}: no scenarios")
    return scenarios


def check_online(argv):
    usage = "usage: check_perf.py --online BENCH_online.json [--min-speedup S]"
    min_speedup = 2.0
    if "--min-speedup" in argv:
        i = argv.index("--min-speedup")
        try:
            min_speedup = float(argv[i + 1])
        except (IndexError, ValueError):
            sys.exit(f"{usage}\ncheck_perf: --min-speedup needs a numeric value")
        del argv[i : i + 2]
    if len(argv) != 1:
        sys.exit(usage)
    path = argv[0]
    with open(path) as fh:
        data = json.load(fh)
    if data.get("bench") != "online":
        sys.exit(f"check_perf: {path}: bench kind {data.get('bench')!r} != 'online'")
    scenarios = data.get("scenarios", [])
    if not scenarios:
        sys.exit(f"check_perf: {path}: no scenarios")
    failures = []
    print(f"{'scenario':<24} {'arrivals':>9} {'incr/s':>12} {'rebuild/s':>12} {'speedup':>8}")
    for s in scenarios:
        name = s.get("name")
        speedup = s.get("speedup")
        if not isinstance(name, str) or not isinstance(speedup, (int, float)):
            sys.exit(f"check_perf: {path}: malformed scenario entry {s!r}")
        for field in (
            "arrivals",
            "incremental_arrivals_per_sec",
            "rebuild_arrivals_per_sec",
            "frac_fast",
            "frac_local",
            "frac_rebuild",
        ):
            if not isinstance(s.get(field), (int, float)):
                sys.exit(f"check_perf: {path}: {name}: missing/odd field {field}")
        marker = "" if speedup >= min_speedup else "  <-- BELOW FLOOR"
        print(
            f"{name:<24} {s['arrivals']:>9} {s['incremental_arrivals_per_sec']:>12.1f} "
            f"{s['rebuild_arrivals_per_sec']:>12.1f} {speedup:>8.2f}{marker}"
        )
        if speedup < min_speedup:
            failures.append(
                f"{name}: incremental repair only {speedup:.2f}x faster than "
                f"from-scratch re-extraction (floor {min_speedup:.1f}x)"
            )
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_perf: ok ({len(scenarios)} online scenarios, "
        f"speedup >= {min_speedup:.1f}x)"
    )


def main(argv):
    if "--online" in argv:
        argv.remove("--online")
        return check_online(argv)
    usage = "usage: check_perf.py BASELINE.json FRESH.json [--floor F]"
    floor = 0.25
    if "--floor" in argv:
        i = argv.index("--floor")
        try:
            floor = float(argv[i + 1])
        except (IndexError, ValueError):
            sys.exit(f"{usage}\ncheck_perf: --floor needs a numeric value")
        del argv[i : i + 2]
    if len(argv) != 2:
        sys.exit(usage)
    baseline, fresh = load(argv[0]), load(argv[1])
    failures = []
    print(f"{'scenario':<28} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name, base_tps in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        fresh_tps = fresh[name]
        ratio = fresh_tps / base_tps if base_tps > 0 else float("inf")
        marker = "" if ratio >= floor else "  <-- BELOW FLOOR"
        print(f"{name:<28} {base_tps:>12.1f} {fresh_tps:>12.1f} {ratio:>8.2f}{marker}")
        if ratio < floor:
            failures.append(
                f"{name}: {fresh_tps:.1f} trials/sec < {floor:.0%} of "
                f"baseline {base_tps:.1f}"
            )
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_perf: ok ({len(baseline)} scenarios >= {floor:.0%} of baseline)")


if __name__ == "__main__":
    main(sys.argv[1:])
