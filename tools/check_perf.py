#!/usr/bin/env python3
"""Perf gates over the bench emitters' JSON artifacts.

Usage:
    check_perf.py COMMITTED_BASELINE.json FRESH.json [--floor 0.25]
                  [--baseline-floor NAME=TPS ...]
    check_perf.py --online BENCH_online.json [--min-speedup S]
                  [--min-speedup-bdn S] [--max-frac-rebuild-bdn F]
                  [--min-speedup-adn S]
    check_perf.py --giant BENCH_extraction.json [--min-nodes N]
                  [--max-rss-mb M]
    check_perf.py --serve COMMITTED_BENCH_serve.json FRESH.json
                  [--floor 0.25] [--min-tenants N] [--min-events-per-sec E]

Two-file mode compares the freshly measured trials/sec of every
scenario in BENCH_extraction.json against the committed baseline and
fails if any scenario drops below ``floor * baseline`` (default 25% —
deliberately generous: CI runners are slower and noisier than the
machines that produce committed baselines, so this gate catches
order-of-magnitude regressions like an accidentally quadratic hot path
or a lost scratch reuse, not few-percent drift; trend inspection uses
the uploaded artifacts). ``--baseline-floor name=tps`` additionally
pins an *absolute* floor on the **committed** baseline itself — a
noise-free number measured once on a reference machine — so headline
throughput claims (e.g. the suspect-skip greedy putting ``A²_108``
extraction above 2 000 trials/sec) cannot silently rot out of the
committed artifact.

``--online`` mode validates a BENCH_online.json artifact (incremental
repair vs from-scratch re-extraction on identical fault streams) and
gates each scenario by its ``construction``:

* ``B^d_n`` — the tile-local repaint killed the Rebuild tier, so the
  bar is high: speedup >= ``--min-speedup-bdn`` (default 25) **and**
  ``frac_rebuild`` <= ``--max-frac-rebuild-bdn`` (default 0.20).
* ``A^2_n`` — goodness deltas + the nested inner engine: speedup >=
  ``--min-speedup-adn`` (default 2).
* anything else — speedup >= ``--min-speedup`` (default 2, the online
  subsystem's original acceptance floor).

Speedups are same-machine ratios (noise-robust); ``frac_rebuild`` is a
deterministic tier count, so both gate tightly even on CI runners.

``--serve`` mode gates the repair-daemon benchmark (``bench_serve``'s
``BENCH_serve.json``): the committed baseline must demonstrate the
headline scale (>= ``--min-tenants`` tenants, default 10^4, sustaining
>= ``--min-events-per-sec`` acknowledged events/sec, default 10^5 —
absolute floors on the noise-free reference measurement), and the
fresh CI run must reach ``floor * committed`` events/sec (default 25%,
same noisy-runner rationale as the two-file mode). Both artifacts are
schema-checked; repair-tier fractions must be probabilities.

``--giant`` mode validates the implicit-host demonstration recorded by
``bench_extraction --giant`` as a top-level ``"giant"`` object: a
``D³_{n,k}`` instance of at least ``--min-nodes`` host nodes (default
10⁸ for the committed artifact; CI's giant-smoke passes 10⁷ for its
fresh run) must have been extracted AND independently certified
through the algebraic adjacency oracle, with peak RSS at most
``--max-rss-mb`` (default 1024 MiB — the committed memory ceiling;
materialising the 510³ host's CSR alone would need ~7 GiB, so the
ceiling is what proves the O(#faults + guest-map) memory claim).
"""

import json
import sys


def pop_flag(argv, flag, default, parse=float, usage=""):
    if flag not in argv:
        return default
    i = argv.index(flag)
    try:
        value = parse(argv[i + 1])
    except (IndexError, ValueError):
        sys.exit(f"{usage}\ncheck_perf: {flag} needs a valid value")
    del argv[i : i + 2]
    return value


def pop_repeated(argv, flag, parse, usage=""):
    values = []
    while flag in argv:
        i = argv.index(flag)
        try:
            values.append(parse(argv[i + 1]))
        except (IndexError, ValueError):
            sys.exit(f"{usage}\ncheck_perf: {flag} needs a valid value")
        del argv[i : i + 2]
    return values


def load_json(path):
    """Loads a top-level JSON object; any failure is a named one-line
    exit (a corrupt artifact must fail the check, not traceback)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as e:
        sys.exit(f"check_perf: {path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_perf: {path}: not valid JSON: {e}")
    if not isinstance(data, dict):
        sys.exit(
            f"check_perf: {path}: top level must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def load(path):
    data = load_json(path)
    scenarios = {}
    raw = data.get("scenarios", [])
    if not isinstance(raw, list):
        sys.exit(f"check_perf: {path}: 'scenarios' must be a list")
    for s in raw:
        if not isinstance(s, dict):
            sys.exit(f"check_perf: {path}: malformed scenario entry {s!r}")
        name, tps = s.get("name"), s.get("trials_per_sec")
        if not isinstance(name, str) or not isinstance(tps, (int, float)):
            sys.exit(f"check_perf: {path}: malformed scenario entry {s!r}")
        scenarios[name] = tps
    if not scenarios:
        sys.exit(f"check_perf: {path}: no scenarios")
    return scenarios


def check_online(argv):
    usage = (
        "usage: check_perf.py --online BENCH_online.json [--min-speedup S]\n"
        "       [--min-speedup-bdn S] [--max-frac-rebuild-bdn F] [--min-speedup-adn S]"
    )
    min_speedup = pop_flag(argv, "--min-speedup", 2.0, usage=usage)
    min_speedup_bdn = pop_flag(argv, "--min-speedup-bdn", 25.0, usage=usage)
    max_frac_rebuild_bdn = pop_flag(argv, "--max-frac-rebuild-bdn", 0.20, usage=usage)
    min_speedup_adn = pop_flag(argv, "--min-speedup-adn", 2.0, usage=usage)
    if len(argv) != 1:
        sys.exit(usage)
    path = argv[0]
    data = load_json(path)
    if data.get("bench") != "online":
        sys.exit(f"check_perf: {path}: bench kind {data.get('bench')!r} != 'online'")
    scenarios = data.get("scenarios", [])
    if not isinstance(scenarios, list) or not scenarios:
        sys.exit(f"check_perf: {path}: no scenarios")
    if not all(isinstance(s, dict) for s in scenarios):
        sys.exit(f"check_perf: {path}: malformed scenario list")
    failures = []
    print(
        f"{'scenario':<24} {'constr':>8} {'arrivals':>9} {'incr/s':>12} "
        f"{'rebuild/s':>12} {'speedup':>8} {'f_rb':>6}"
    )
    for s in scenarios:
        name = s.get("name")
        speedup = s.get("speedup")
        construction = s.get("construction")
        if (
            not isinstance(name, str)
            or not isinstance(speedup, (int, float))
            or not isinstance(construction, str)
        ):
            sys.exit(f"check_perf: {path}: malformed scenario entry {s!r}")
        for field in (
            "arrivals",
            "incremental_arrivals_per_sec",
            "rebuild_arrivals_per_sec",
            "frac_fast",
            "frac_local",
            "frac_rebuild",
        ):
            if not isinstance(s.get(field), (int, float)):
                sys.exit(f"check_perf: {path}: {name}: missing/odd field {field}")
        if construction == "B^d_n":
            floor = min_speedup_bdn
        elif construction == "A^2_n":
            floor = min_speedup_adn
        else:
            floor = min_speedup
        bad = []
        if speedup < floor:
            bad.append(
                f"incremental repair only {speedup:.2f}x faster than "
                f"from-scratch re-extraction (floor {floor:.1f}x)"
            )
        if construction == "B^d_n" and s["frac_rebuild"] > max_frac_rebuild_bdn:
            bad.append(
                f"frac_rebuild {s['frac_rebuild']:.4f} > {max_frac_rebuild_bdn:.2f} "
                f"(the tile-local repaint should absorb almost every arrival)"
            )
        marker = "" if not bad else "  <-- BELOW FLOOR"
        print(
            f"{name:<24} {construction:>8} {s['arrivals']:>9} "
            f"{s['incremental_arrivals_per_sec']:>12.1f} "
            f"{s['rebuild_arrivals_per_sec']:>12.1f} {speedup:>8.2f} "
            f"{s['frac_rebuild']:>6.3f}{marker}"
        )
        failures.extend(f"{name}: {b}" for b in bad)
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_perf: ok ({len(scenarios)} online scenarios; "
        f"B^d >= {min_speedup_bdn:.0f}x & frac_rebuild <= {max_frac_rebuild_bdn:.2f}, "
        f"A^2 >= {min_speedup_adn:.0f}x, others >= {min_speedup:.0f}x)"
    )


def check_giant(argv):
    usage = "usage: check_perf.py --giant BENCH_extraction.json [--min-nodes N] [--max-rss-mb M]"
    min_nodes = pop_flag(argv, "--min-nodes", 100_000_000, parse=int, usage=usage)
    max_rss_mb = pop_flag(argv, "--max-rss-mb", 1024.0, usage=usage)
    if len(argv) != 1:
        sys.exit(usage)
    path = argv[0]
    data = load_json(path)
    giant = data.get("giant")
    if not isinstance(giant, dict):
        sys.exit(f"check_perf: {path}: no 'giant' object (run bench_extraction --giant)")
    for field, kind in (
        ("params", str),
        ("host_nodes", int),
        ("host_edges", int),
        ("guest_nodes", int),
        ("faults", int),
        ("extract_seconds", (int, float)),
        ("certify_seconds", (int, float)),
        ("certified", bool),
        ("peak_rss_mb", (int, float)),
    ):
        if not isinstance(giant.get(field), kind):
            sys.exit(f"check_perf: {path}: giant: missing/odd field {field}")
    failures = []
    if giant["host_nodes"] < min_nodes:
        failures.append(
            f"host_nodes {giant['host_nodes']} < required {min_nodes} "
            f"(not a giant instance)"
        )
    if not giant["certified"]:
        failures.append("giant embedding failed independent certification")
    if giant["peak_rss_mb"] <= 0:
        failures.append("peak_rss_mb not recorded (needs /proc/self/status)")
    elif giant["peak_rss_mb"] > max_rss_mb:
        failures.append(
            f"peak RSS {giant['peak_rss_mb']:.1f} MiB > ceiling {max_rss_mb:.0f} MiB "
            f"(implicit-host memory claim violated)"
        )
    print(
        f"giant: {giant['params']}  {giant['host_nodes']} host nodes, "
        f"{giant['guest_nodes']} guest nodes, {giant['faults']} faults; "
        f"extract {giant['extract_seconds']:.2f}s, certify {giant['certify_seconds']:.2f}s, "
        f"peak RSS {giant['peak_rss_mb']:.1f} MiB"
    )
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_perf: ok (giant >= {min_nodes} nodes certified, "
        f"RSS <= {max_rss_mb:.0f} MiB)"
    )


SERVE_SCHEMA_VERSION = 1
SERVE_NUM_FIELDS = (
    "tenants",
    "shards",
    "clients",
    "events_total",
    "seconds",
    "events_per_sec",
    "ack_p50_us",
    "ack_p99_us",
    "frac_fast",
    "frac_local",
    "frac_rebuild",
    "overloaded_retries",
)
# Accepted but not required (and never gated): tail-latency fields and
# the daemon's self-reported histogram quantiles, present only when
# bench_serve was built with the `obs` feature. Older committed
# baselines lack them; newer artifacts carrying them must still
# validate against this checker.
SERVE_OPTIONAL_NUM_FIELDS = (
    "ack_p999_us",
    "ack_max_us",
    "daemon_ack_p50_us",
    "daemon_ack_p99_us",
    "daemon_ack_p999_us",
    "daemon_ack_max_us",
)


def load_serve(path):
    data = load_json(path)
    if data.get("bench") != "serve":
        sys.exit(f"check_perf: {path}: bench kind {data.get('bench')!r} != 'serve'")
    if data.get("schema_version") != SERVE_SCHEMA_VERSION:
        sys.exit(
            f"check_perf: {path}: schema_version {data.get('schema_version')!r} "
            f"!= {SERVE_SCHEMA_VERSION}"
        )
    for field in SERVE_NUM_FIELDS:
        if not isinstance(data.get(field), (int, float)):
            sys.exit(f"check_perf: {path}: missing/odd field {field}")
    for field in SERVE_OPTIONAL_NUM_FIELDS:
        if field in data and not isinstance(data[field], (int, float)):
            sys.exit(f"check_perf: {path}: optional field {field} not numeric")
    for field in ("frac_fast", "frac_local", "frac_rebuild"):
        if not 0.0 <= data[field] <= 1.0:
            sys.exit(f"check_perf: {path}: {field} {data[field]} outside [0, 1]")
    if data["events_total"] <= 0 or data["seconds"] <= 0:
        sys.exit(f"check_perf: {path}: empty run (no events / no elapsed time)")
    return data


def check_serve(argv):
    usage = (
        "usage: check_perf.py --serve COMMITTED.json FRESH.json [--floor F]\n"
        "       [--min-tenants N] [--min-events-per-sec E]"
    )
    floor = pop_flag(argv, "--floor", 0.25, usage=usage)
    min_tenants = pop_flag(argv, "--min-tenants", 10_000, parse=int, usage=usage)
    min_eps = pop_flag(argv, "--min-events-per-sec", 100_000.0, usage=usage)
    if len(argv) != 2:
        sys.exit(usage)
    committed, fresh = load_serve(argv[0]), load_serve(argv[1])
    failures = []
    if committed["tenants"] < min_tenants:
        failures.append(
            f"committed baseline ran only {committed['tenants']} tenants "
            f"< required {min_tenants} (headline multi-tenant scale)"
        )
    if committed["events_per_sec"] < min_eps:
        failures.append(
            f"committed baseline sustained {committed['events_per_sec']:.0f} "
            f"events/sec < absolute floor {min_eps:.0f}"
        )
    ratio = fresh["events_per_sec"] / committed["events_per_sec"]
    print(f"{'':<10} {'committed':>12} {'fresh':>12}")
    for field in ("tenants", "events_total", "events_per_sec", "ack_p50_us", "ack_p99_us"):
        print(f"{field:<18} {committed[field]:>12.0f} {fresh[field]:>12.0f}")
    for field in SERVE_OPTIONAL_NUM_FIELDS:
        if field in committed or field in fresh:
            fmt = lambda d: f"{d[field]:>12.0f}" if field in d else f"{'-':>12}"
            print(f"{field:<18} {fmt(committed)} {fmt(fresh)}")
    print(
        f"throughput ratio {ratio:.2f} (floor {floor:.2f}); fresh tier mix "
        f"fast/local/rebuild {fresh['frac_fast']:.2f}/{fresh['frac_local']:.2f}"
        f"/{fresh['frac_rebuild']:.2f}; {fresh['overloaded_retries']:.0f} "
        f"overloaded retries"
    )
    if ratio < floor:
        failures.append(
            f"fresh run {fresh['events_per_sec']:.0f} events/sec < {floor:.0%} "
            f"of committed {committed['events_per_sec']:.0f}"
        )
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_perf: ok (serve: {committed['tenants']:.0f} tenants at "
        f"{committed['events_per_sec']:.0f} events/sec committed; fresh >= "
        f"{floor:.0%})"
    )


def parse_baseline_floor(arg):
    name, _, tps = arg.partition("=")
    if not name or not tps:
        raise ValueError(arg)
    return name, float(tps)


def main(argv):
    if "--online" in argv:
        argv.remove("--online")
        return check_online(argv)
    if "--giant" in argv:
        argv.remove("--giant")
        return check_giant(argv)
    if "--serve" in argv:
        argv.remove("--serve")
        return check_serve(argv)
    usage = (
        "usage: check_perf.py BASELINE.json FRESH.json [--floor F] "
        "[--baseline-floor NAME=TPS ...]"
    )
    floor = pop_flag(argv, "--floor", 0.25, usage=usage)
    baseline_floors = dict(
        pop_repeated(argv, "--baseline-floor", parse_baseline_floor, usage=usage)
    )
    if len(argv) != 2:
        sys.exit(usage)
    baseline, fresh = load(argv[0]), load(argv[1])
    failures = []
    for name, min_tps in sorted(baseline_floors.items()):
        if name not in baseline:
            failures.append(f"{name}: absolute floor set but scenario missing from baseline")
        elif baseline[name] < min_tps:
            failures.append(
                f"{name}: committed baseline {baseline[name]:.1f} trials/sec "
                f"< absolute floor {min_tps:.1f}"
            )
    print(f"{'scenario':<28} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name, base_tps in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        fresh_tps = fresh[name]
        ratio = fresh_tps / base_tps if base_tps > 0 else float("inf")
        marker = "" if ratio >= floor else "  <-- BELOW FLOOR"
        print(f"{name:<28} {base_tps:>12.1f} {fresh_tps:>12.1f} {ratio:>8.2f}{marker}")
        if ratio < floor:
            failures.append(
                f"{name}: {fresh_tps:.1f} trials/sec < {floor:.0%} of "
                f"baseline {base_tps:.1f}"
            )
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    floors = (
        f", {len(baseline_floors)} absolute baseline floor(s)" if baseline_floors else ""
    )
    print(f"check_perf: ok ({len(baseline)} scenarios >= {floor:.0%} of baseline{floors})")


if __name__ == "__main__":
    main(sys.argv[1:])
