#!/usr/bin/env python3
"""Perf-regression gate over BENCH_extraction.json.

Usage:
    check_perf.py COMMITTED_BASELINE.json FRESH.json [--floor 0.25]

Compares the freshly measured trials/sec of every scenario against the
committed baseline and fails if any scenario drops below
``floor * baseline`` (default 25% — deliberately generous: CI runners
are slower and noisier than the machines that produce committed
baselines, so this gate catches order-of-magnitude regressions like an
accidentally quadratic hot path or a lost scratch reuse, not few-percent
drift; trend inspection uses the uploaded artifacts).
"""

import json
import sys


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    scenarios = {}
    for s in data.get("scenarios", []):
        name, tps = s.get("name"), s.get("trials_per_sec")
        if not isinstance(name, str) or not isinstance(tps, (int, float)):
            sys.exit(f"check_perf: {path}: malformed scenario entry {s!r}")
        scenarios[name] = tps
    if not scenarios:
        sys.exit(f"check_perf: {path}: no scenarios")
    return scenarios


def main(argv):
    usage = "usage: check_perf.py BASELINE.json FRESH.json [--floor F]"
    floor = 0.25
    if "--floor" in argv:
        i = argv.index("--floor")
        try:
            floor = float(argv[i + 1])
        except (IndexError, ValueError):
            sys.exit(f"{usage}\ncheck_perf: --floor needs a numeric value")
        del argv[i : i + 2]
    if len(argv) != 2:
        sys.exit(usage)
    baseline, fresh = load(argv[0]), load(argv[1])
    failures = []
    print(f"{'scenario':<28} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name, base_tps in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        fresh_tps = fresh[name]
        ratio = fresh_tps / base_tps if base_tps > 0 else float("inf")
        marker = "" if ratio >= floor else "  <-- BELOW FLOOR"
        print(f"{name:<28} {base_tps:>12.1f} {fresh_tps:>12.1f} {ratio:>8.2f}{marker}")
        if ratio < floor:
            failures.append(
                f"{name}: {fresh_tps:.1f} trials/sec < {floor:.0%} of "
                f"baseline {base_tps:.1f}"
            )
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_perf: ok ({len(baseline)} scenarios >= {floor:.0%} of baseline)")


if __name__ == "__main__":
    main(sys.argv[1:])
