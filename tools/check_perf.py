#!/usr/bin/env python3
"""Perf gates over the bench emitters' JSON artifacts.

Usage:
    check_perf.py COMMITTED_BASELINE.json FRESH.json [--floor 0.25]
                  [--baseline-floor NAME=TPS ...]
    check_perf.py --online BENCH_online.json [--min-speedup S]
                  [--min-speedup-bdn S] [--max-frac-rebuild-bdn F]
                  [--min-speedup-adn S]
    check_perf.py --giant BENCH_extraction.json [--min-nodes N]
                  [--max-rss-mb M]

Two-file mode compares the freshly measured trials/sec of every
scenario in BENCH_extraction.json against the committed baseline and
fails if any scenario drops below ``floor * baseline`` (default 25% —
deliberately generous: CI runners are slower and noisier than the
machines that produce committed baselines, so this gate catches
order-of-magnitude regressions like an accidentally quadratic hot path
or a lost scratch reuse, not few-percent drift; trend inspection uses
the uploaded artifacts). ``--baseline-floor name=tps`` additionally
pins an *absolute* floor on the **committed** baseline itself — a
noise-free number measured once on a reference machine — so headline
throughput claims (e.g. the suspect-skip greedy putting ``A²_108``
extraction above 2 000 trials/sec) cannot silently rot out of the
committed artifact.

``--online`` mode validates a BENCH_online.json artifact (incremental
repair vs from-scratch re-extraction on identical fault streams) and
gates each scenario by its ``construction``:

* ``B^d_n`` — the tile-local repaint killed the Rebuild tier, so the
  bar is high: speedup >= ``--min-speedup-bdn`` (default 25) **and**
  ``frac_rebuild`` <= ``--max-frac-rebuild-bdn`` (default 0.20).
* ``A^2_n`` — goodness deltas + the nested inner engine: speedup >=
  ``--min-speedup-adn`` (default 2).
* anything else — speedup >= ``--min-speedup`` (default 2, the online
  subsystem's original acceptance floor).

Speedups are same-machine ratios (noise-robust); ``frac_rebuild`` is a
deterministic tier count, so both gate tightly even on CI runners.

``--giant`` mode validates the implicit-host demonstration recorded by
``bench_extraction --giant`` as a top-level ``"giant"`` object: a
``D³_{n,k}`` instance of at least ``--min-nodes`` host nodes (default
10⁸ for the committed artifact; CI's giant-smoke passes 10⁷ for its
fresh run) must have been extracted AND independently certified
through the algebraic adjacency oracle, with peak RSS at most
``--max-rss-mb`` (default 1024 MiB — the committed memory ceiling;
materialising the 510³ host's CSR alone would need ~7 GiB, so the
ceiling is what proves the O(#faults + guest-map) memory claim).
"""

import json
import sys


def pop_flag(argv, flag, default, parse=float, usage=""):
    if flag not in argv:
        return default
    i = argv.index(flag)
    try:
        value = parse(argv[i + 1])
    except (IndexError, ValueError):
        sys.exit(f"{usage}\ncheck_perf: {flag} needs a valid value")
    del argv[i : i + 2]
    return value


def pop_repeated(argv, flag, parse, usage=""):
    values = []
    while flag in argv:
        i = argv.index(flag)
        try:
            values.append(parse(argv[i + 1]))
        except (IndexError, ValueError):
            sys.exit(f"{usage}\ncheck_perf: {flag} needs a valid value")
        del argv[i : i + 2]
    return values


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    scenarios = {}
    for s in data.get("scenarios", []):
        name, tps = s.get("name"), s.get("trials_per_sec")
        if not isinstance(name, str) or not isinstance(tps, (int, float)):
            sys.exit(f"check_perf: {path}: malformed scenario entry {s!r}")
        scenarios[name] = tps
    if not scenarios:
        sys.exit(f"check_perf: {path}: no scenarios")
    return scenarios


def check_online(argv):
    usage = (
        "usage: check_perf.py --online BENCH_online.json [--min-speedup S]\n"
        "       [--min-speedup-bdn S] [--max-frac-rebuild-bdn F] [--min-speedup-adn S]"
    )
    min_speedup = pop_flag(argv, "--min-speedup", 2.0, usage=usage)
    min_speedup_bdn = pop_flag(argv, "--min-speedup-bdn", 25.0, usage=usage)
    max_frac_rebuild_bdn = pop_flag(argv, "--max-frac-rebuild-bdn", 0.20, usage=usage)
    min_speedup_adn = pop_flag(argv, "--min-speedup-adn", 2.0, usage=usage)
    if len(argv) != 1:
        sys.exit(usage)
    path = argv[0]
    with open(path) as fh:
        data = json.load(fh)
    if data.get("bench") != "online":
        sys.exit(f"check_perf: {path}: bench kind {data.get('bench')!r} != 'online'")
    scenarios = data.get("scenarios", [])
    if not scenarios:
        sys.exit(f"check_perf: {path}: no scenarios")
    failures = []
    print(
        f"{'scenario':<24} {'constr':>8} {'arrivals':>9} {'incr/s':>12} "
        f"{'rebuild/s':>12} {'speedup':>8} {'f_rb':>6}"
    )
    for s in scenarios:
        name = s.get("name")
        speedup = s.get("speedup")
        construction = s.get("construction")
        if (
            not isinstance(name, str)
            or not isinstance(speedup, (int, float))
            or not isinstance(construction, str)
        ):
            sys.exit(f"check_perf: {path}: malformed scenario entry {s!r}")
        for field in (
            "arrivals",
            "incremental_arrivals_per_sec",
            "rebuild_arrivals_per_sec",
            "frac_fast",
            "frac_local",
            "frac_rebuild",
        ):
            if not isinstance(s.get(field), (int, float)):
                sys.exit(f"check_perf: {path}: {name}: missing/odd field {field}")
        if construction == "B^d_n":
            floor = min_speedup_bdn
        elif construction == "A^2_n":
            floor = min_speedup_adn
        else:
            floor = min_speedup
        bad = []
        if speedup < floor:
            bad.append(
                f"incremental repair only {speedup:.2f}x faster than "
                f"from-scratch re-extraction (floor {floor:.1f}x)"
            )
        if construction == "B^d_n" and s["frac_rebuild"] > max_frac_rebuild_bdn:
            bad.append(
                f"frac_rebuild {s['frac_rebuild']:.4f} > {max_frac_rebuild_bdn:.2f} "
                f"(the tile-local repaint should absorb almost every arrival)"
            )
        marker = "" if not bad else "  <-- BELOW FLOOR"
        print(
            f"{name:<24} {construction:>8} {s['arrivals']:>9} "
            f"{s['incremental_arrivals_per_sec']:>12.1f} "
            f"{s['rebuild_arrivals_per_sec']:>12.1f} {speedup:>8.2f} "
            f"{s['frac_rebuild']:>6.3f}{marker}"
        )
        failures.extend(f"{name}: {b}" for b in bad)
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_perf: ok ({len(scenarios)} online scenarios; "
        f"B^d >= {min_speedup_bdn:.0f}x & frac_rebuild <= {max_frac_rebuild_bdn:.2f}, "
        f"A^2 >= {min_speedup_adn:.0f}x, others >= {min_speedup:.0f}x)"
    )


def check_giant(argv):
    usage = "usage: check_perf.py --giant BENCH_extraction.json [--min-nodes N] [--max-rss-mb M]"
    min_nodes = pop_flag(argv, "--min-nodes", 100_000_000, parse=int, usage=usage)
    max_rss_mb = pop_flag(argv, "--max-rss-mb", 1024.0, usage=usage)
    if len(argv) != 1:
        sys.exit(usage)
    path = argv[0]
    with open(path) as fh:
        data = json.load(fh)
    giant = data.get("giant")
    if not isinstance(giant, dict):
        sys.exit(f"check_perf: {path}: no 'giant' object (run bench_extraction --giant)")
    for field, kind in (
        ("params", str),
        ("host_nodes", int),
        ("host_edges", int),
        ("guest_nodes", int),
        ("faults", int),
        ("extract_seconds", (int, float)),
        ("certify_seconds", (int, float)),
        ("certified", bool),
        ("peak_rss_mb", (int, float)),
    ):
        if not isinstance(giant.get(field), kind):
            sys.exit(f"check_perf: {path}: giant: missing/odd field {field}")
    failures = []
    if giant["host_nodes"] < min_nodes:
        failures.append(
            f"host_nodes {giant['host_nodes']} < required {min_nodes} "
            f"(not a giant instance)"
        )
    if not giant["certified"]:
        failures.append("giant embedding failed independent certification")
    if giant["peak_rss_mb"] <= 0:
        failures.append("peak_rss_mb not recorded (needs /proc/self/status)")
    elif giant["peak_rss_mb"] > max_rss_mb:
        failures.append(
            f"peak RSS {giant['peak_rss_mb']:.1f} MiB > ceiling {max_rss_mb:.0f} MiB "
            f"(implicit-host memory claim violated)"
        )
    print(
        f"giant: {giant['params']}  {giant['host_nodes']} host nodes, "
        f"{giant['guest_nodes']} guest nodes, {giant['faults']} faults; "
        f"extract {giant['extract_seconds']:.2f}s, certify {giant['certify_seconds']:.2f}s, "
        f"peak RSS {giant['peak_rss_mb']:.1f} MiB"
    )
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_perf: ok (giant >= {min_nodes} nodes certified, "
        f"RSS <= {max_rss_mb:.0f} MiB)"
    )


def parse_baseline_floor(arg):
    name, _, tps = arg.partition("=")
    if not name or not tps:
        raise ValueError(arg)
    return name, float(tps)


def main(argv):
    if "--online" in argv:
        argv.remove("--online")
        return check_online(argv)
    if "--giant" in argv:
        argv.remove("--giant")
        return check_giant(argv)
    usage = (
        "usage: check_perf.py BASELINE.json FRESH.json [--floor F] "
        "[--baseline-floor NAME=TPS ...]"
    )
    floor = pop_flag(argv, "--floor", 0.25, usage=usage)
    baseline_floors = dict(
        pop_repeated(argv, "--baseline-floor", parse_baseline_floor, usage=usage)
    )
    if len(argv) != 2:
        sys.exit(usage)
    baseline, fresh = load(argv[0]), load(argv[1])
    failures = []
    for name, min_tps in sorted(baseline_floors.items()):
        if name not in baseline:
            failures.append(f"{name}: absolute floor set but scenario missing from baseline")
        elif baseline[name] < min_tps:
            failures.append(
                f"{name}: committed baseline {baseline[name]:.1f} trials/sec "
                f"< absolute floor {min_tps:.1f}"
            )
    print(f"{'scenario':<28} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for name, base_tps in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        fresh_tps = fresh[name]
        ratio = fresh_tps / base_tps if base_tps > 0 else float("inf")
        marker = "" if ratio >= floor else "  <-- BELOW FLOOR"
        print(f"{name:<28} {base_tps:>12.1f} {fresh_tps:>12.1f} {ratio:>8.2f}{marker}")
        if ratio < floor:
            failures.append(
                f"{name}: {fresh_tps:.1f} trials/sec < {floor:.0%} of "
                f"baseline {base_tps:.1f}"
            )
    if failures:
        print("check_perf: FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    floors = (
        f", {len(baseline_floors)} absolute baseline floor(s)" if baseline_floors else ""
    )
    print(f"check_perf: ok ({len(baseline)} scenarios >= {floor:.0%} of baseline{floors})")


if __name__ == "__main__":
    main(sys.argv[1:])
