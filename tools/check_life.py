#!/usr/bin/env python3
"""Validate LIFE_* artifacts emitted by the lifetime engine.

Usage:
    check_life.py LIFE.json [LIFE.csv]

Checks (CI's lifetime-smoke job runs this on every emitted artifact):
  * schema_version matches the version this checker understands;
  * every cell carries the full field set, death/survival tallies are
    consistent with the trial budget, and the lifetime distribution is
    sane (min <= median <= max, Wilson order-statistic CIs bracket
    their quantiles, p90 >= median);
  * repair-class fractions are probabilities summing to ~1 (when any
    repairs happened) and every independent certificate check passed
    (cert_failures == 0 — a nonzero count is an engine bug);
  * the renewal/availability ledger (schema v2) is consistent:
    availability in [0, 1], spell means non-negative, a cell with no
    repair events reports availability as a pure up-time fraction and
    zero resurrections, and renewal cells (stream slug renew_*) report
    repairs_applied > 0 when any kill arrived;
  * burst accounting is sane: max_coincident >= 2 whenever bursts were
    counted, and never exceeds arrivals_total;
  * Theorem 3, online form: every x1-budget targeted-adversary cell
    survived *exactly* its budget k — cap_arrivals == k, zero deaths,
    and lifetime_min == lifetime_max == k;
  * the optional CSV twin has the expected header and one row per cell,
    in the same order.
"""

import csv
import json
import sys

SCHEMA_VERSION = 2
CELL_FIELDS = [
    "id",
    "construction",
    "params",
    "stream",
    "cap_arrivals",
    "mult",
    "budget_k",
    "trials",
    "deaths",
    "survived_all",
    "arrivals_total",
    "repairs_fast",
    "repairs_local",
    "repairs_rebuild",
    "frac_fast",
    "frac_local",
    "frac_rebuild",
    "lifetime_mean",
    "lifetime_min",
    "lifetime_max",
    "lifetime_median",
    "median_ci_low",
    "median_ci_high",
    "lifetime_p90",
    "p90_ci_low",
    "p90_ci_high",
    "death_time_mean",
    "cert_checks",
    "cert_failures",
    "repairs_applied",
    "resurrections",
    "availability",
    "up_spell_mean",
    "down_spell_mean",
    "bursts_total",
    "max_coincident",
    "seconds",
    "faults_per_sec",
    "repairs_per_sec",
]
CSV_HEADER = (
    "id,construction,params,stream,cap_arrivals,mult,budget_k,trials,deaths,"
    "survived_all,arrivals_total,repairs_fast,repairs_local,repairs_rebuild,"
    "lifetime_mean,lifetime_min,lifetime_max,lifetime_median,median_ci_low,"
    "median_ci_high,lifetime_p90,death_time_mean,cert_checks,cert_failures,"
    "repairs_applied,resurrections,availability,up_spell_mean,down_spell_mean,"
    "bursts_total,max_coincident,seconds,faults_per_sec,repairs_per_sec"
)

errors = []


def check(cond, msg):
    if not cond:
        errors.append(msg)


def is_num(x):
    return isinstance(x, (int, float))


def load_json(path):
    """Loads a top-level JSON object; any failure is a named one-line
    exit (a corrupt artifact must fail the check, not traceback)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as e:
        sys.exit(f"check_life: {path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_life: {path}: not valid JSON: {e}")
    if not isinstance(data, dict):
        sys.exit(
            f"check_life: {path}: top level must be a JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def validate_cell(cell):
    cid = cell.get("id", "<no id>")
    for field in CELL_FIELDS:
        check(field in cell, f"{cid}: missing field {field}")
    trials = cell.get("trials")
    check(isinstance(trials, int) and trials > 0, f"{cid}: odd trial count")
    deaths, survived = cell.get("deaths"), cell.get("survived_all")
    if isinstance(trials, int) and isinstance(deaths, int) and isinstance(survived, int):
        check(
            deaths + survived == trials,
            f"{cid}: deaths {deaths} + survived {survived} != trials {trials}",
        )
    # Lifetime distribution sanity.
    lo, med, hi = (
        cell.get("lifetime_min"),
        cell.get("lifetime_median"),
        cell.get("lifetime_max"),
    )
    p90 = cell.get("lifetime_p90")
    if all(is_num(x) for x in (lo, med, hi, p90)):
        check(lo <= med <= hi, f"{cid}: min {lo} <= median {med} <= max {hi} violated")
        check(med <= p90 <= hi, f"{cid}: p90 {p90} outside [median, max]")
    for q, ci_lo_f, ci_hi_f in (
        ("lifetime_median", "median_ci_low", "median_ci_high"),
        ("lifetime_p90", "p90_ci_low", "p90_ci_high"),
    ):
        point, ci_lo, ci_hi = cell.get(q), cell.get(ci_lo_f), cell.get(ci_hi_f)
        if all(is_num(x) for x in (point, ci_lo, ci_hi)):
            check(
                ci_lo <= point <= ci_hi,
                f"{cid}: CI [{ci_lo}, {ci_hi}] does not bracket {q} {point}",
            )
            if is_num(lo) and is_num(hi):
                check(
                    lo <= ci_lo and ci_hi <= hi,
                    f"{cid}: {q} CI escapes the observed range",
                )
    # Lifetime in stream-time units: present iff any trial died.
    dtm = cell.get("death_time_mean")
    if isinstance(deaths, int):
        if deaths > 0:
            check(
                is_num(dtm) and dtm > 0,
                f"{cid}: {deaths} deaths but death_time_mean is {dtm!r}",
            )
        else:
            check(dtm is None, f"{cid}: no deaths but death_time_mean {dtm!r}")
    # Repair-class mix.
    fracs = [cell.get(f) for f in ("frac_fast", "frac_local", "frac_rebuild")]
    repairs = sum(
        cell.get(f, 0)
        for f in ("repairs_fast", "repairs_local", "repairs_rebuild")
        if isinstance(cell.get(f), int)
    )
    if all(is_num(f) for f in fracs):
        check(all(0.0 <= f <= 1.0 for f in fracs), f"{cid}: repair fraction out of [0,1]")
        if repairs > 0:
            check(
                abs(sum(fracs) - 1.0) < 1e-6,
                f"{cid}: repair fractions sum to {sum(fracs)}",
            )
    # Renewal/availability ledger (schema v2).
    avail = cell.get("availability")
    check(
        is_num(avail) and 0.0 <= avail <= 1.0,
        f"{cid}: availability {avail!r} outside [0, 1]",
    )
    for f in ("up_spell_mean", "down_spell_mean"):
        check(
            is_num(cell.get(f)) and cell.get(f) >= 0,
            f"{cid}: {f} {cell.get(f)!r} must be a non-negative number",
        )
    repairs_applied = cell.get("repairs_applied")
    resurrections = cell.get("resurrections")
    if repairs_applied == 0:
        check(
            resurrections == 0,
            f"{cid}: {resurrections} resurrections without any repair events",
        )
        check(
            cell.get("down_spell_mean") == 0,
            f"{cid}: down spells measured without repair events",
        )
    stream = cell.get("stream")
    if isinstance(stream, str) and stream.startswith("renew_"):
        arrivals = cell.get("arrivals_total")
        if isinstance(arrivals, int) and arrivals > 0:
            check(
                isinstance(repairs_applied, int) and repairs_applied > 0,
                f"{cid}: renewal cell saw {arrivals} kills but applied no repairs "
                "(steady state never reached)",
            )
    # Burst accounting.
    bursts, max_co = cell.get("bursts_total"), cell.get("max_coincident")
    if isinstance(bursts, int) and isinstance(max_co, int):
        if bursts > 0:
            check(
                max_co >= 2,
                f"{cid}: {bursts} bursts counted but max_coincident {max_co} < 2",
            )
        arrivals = cell.get("arrivals_total")
        if isinstance(arrivals, int):
            check(
                max_co <= arrivals,
                f"{cid}: max_coincident {max_co} exceeds arrivals_total {arrivals}",
            )
    # Every independent certificate check must have passed.
    check(
        cell.get("cert_failures") == 0,
        f"{cid}: {cell.get('cert_failures')} certificate checks FAILED "
        "(live embedding rejected by the independent checker)",
    )
    # Theorem 3, online form: x1-budget targeted cells survive exactly k.
    if cell.get("stream") == "targeted" and cell.get("mult") == 1:
        k = cell.get("budget_k")
        check(isinstance(k, int) and k > 0, f"{cid}: x1 targeted cell without budget_k")
        check(
            cell.get("cap_arrivals") == k,
            f"{cid}: x1 cap {cell.get('cap_arrivals')} != budget k {k}",
        )
        check(
            cell.get("deaths") == 0,
            f"{cid}: {cell.get('deaths')} deaths within the Theorem 3 budget",
        )
        check(
            cell.get("lifetime_min") == k and cell.get("lifetime_max") == k,
            f"{cid}: lifetimes [{cell.get('lifetime_min')}, {cell.get('lifetime_max')}] "
            f"!= exactly k = {k} (online Theorem 3)",
        )


def validate_report(report):
    check(
        report.get("schema_version") == SCHEMA_VERSION,
        f"schema_version {report.get('schema_version')!r} != {SCHEMA_VERSION}",
    )
    check(report.get("kind") == "lifetime", f"kind {report.get('kind')!r} != 'lifetime'")
    check(isinstance(report.get("name"), str) and report["name"], "missing name")
    for field in ("root_seed", "trials", "threads", "certify_every", "burst_window"):
        check(isinstance(report.get(field), int), f"missing/odd {field}")
    cells = report.get("cells")
    check(isinstance(cells, list) and cells, "cells must be a non-empty list")
    if not isinstance(cells, list):
        cells = []
    for cell in cells:
        if not isinstance(cell, dict):
            check(False, f"cell {cell!r} is not an object")
            continue
        validate_cell(cell)
    return cells


def validate_csv(path, cells):
    try:
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
    except OSError as e:
        sys.exit(f"check_life: {path}: cannot read: {e}")
    check(bool(rows), f"{path}: empty CSV")
    if rows:
        check(
            ",".join(rows[0]) == CSV_HEADER,
            f"{path}: header mismatch:\n  got      {','.join(rows[0])}\n"
            f"  expected {CSV_HEADER}",
        )
        check(
            len(rows) == 1 + len(cells),
            f"{path}: {len(rows) - 1} data rows for {len(cells)} cells",
        )
        for row, cell in zip(rows[1:], cells):
            cid = cell.get("id") if isinstance(cell, dict) else None
            check(
                row and row[0] == cid,
                f"{path}: row id {row[0] if row else '<empty>'} != {cid}",
            )


def main(argv):
    if not 1 <= len(argv) <= 2:
        sys.exit("usage: check_life.py LIFE.json [LIFE.csv]")
    report = load_json(argv[0])
    cells = validate_report(report)
    if len(argv) == 2:
        validate_csv(argv[1], cells)
    if errors:
        print(f"check_life: {argv[0]} FAILED:", file=sys.stderr)
        for err in errors:
            print(f"  - {err}", file=sys.stderr)
        sys.exit(1)
    x1 = sum(1 for c in cells if c.get("stream") == "targeted" and c.get("mult") == 1)
    print(
        f"check_life: {argv[0]} ok ({len(cells)} cells, schema_version "
        f"{report['schema_version']}"
        + (f", {x1} x1-budget cells at exactly k" if x1 else "")
        + ")"
    )


if __name__ == "__main__":
    main(sys.argv[1:])
