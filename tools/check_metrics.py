#!/usr/bin/env python3
"""Validator and driver for the ftt-obs observability surface.

Usage:
    check_metrics.py EXPOSITION.txt
    check_metrics.py --drive tcp:HOST:PORT --metrics URL [--shutdown]
    check_metrics.py --cross-check BENCH_serve.json [--factor 2.0]
    check_metrics.py --compare A.json B.json
    check_metrics.py --overhead OFF.json ON.json [--max-overhead 0.05]

File mode parses a Prometheus text-exposition (0.0.4) dump and checks
it is well-formed: every sample line parses, every series family has
exactly one ``# TYPE`` line, histogram ``_bucket`` series are
cumulative (non-decreasing counts over ascending ``le`` bounds, ending
at ``+Inf`` with the family ``_count``), and counters are non-negative.

``--drive`` exercises a LIVE ``ftt serve`` daemon end to end, speaking
the length-framed binary protocol directly from Python (no Rust code in
the loop — an independent reimplementation of the wire format is itself
a protocol check): it creates a tenant, applies event batches, scrapes
``URL`` twice (validating both bodies), and asserts the between-scrape
contracts — counters are monotone, the second scrape saw the extra
requests, per-shard queue-depth gauges returned to 0 once quiescent,
and the ``Stats`` opcode (6) returns the same exposition families as
the HTTP endpoint. ``--shutdown`` sends opcode 5 afterwards, ending the
daemon (the driver then owns its lifecycle).

``--cross-check`` takes a ``BENCH_serve.json`` produced by an obs-build
``bench_serve`` and asserts the daemon's self-reported ack-latency
quantiles (``daemon_ack_*``, from its log-bucketed histogram) agree
with the client-side measured ones within ``--factor`` (default 2 — the
histogram's bucket-resolution contract).

``--compare`` asserts two run artifacts (sweep/lifetime JSON) are
identical except for wall-clock fields (``seconds``,
``trials_per_sec``, ``faults_per_sec``, ``repairs_per_sec``) — the
determinism gate that instrumentation must not change results.

``--overhead`` takes two BENCH_extraction-style artifacts (scenarios
with ``trials_per_sec``) measured on the SAME machine, obs off vs on,
and fails if the geometric-mean throughput ratio on/off drops below
``1 - max_overhead`` (default 5%).

Every failure is a one-line typed error and exit code 1 — never a
traceback.
"""

import json
import math
import re
import socket
import struct
import sys
import time
import urllib.error
import urllib.request

# Label values may contain braces and commas (e.g. the construction
# name `D^d_{n,k}`), so the label block is matched greedily to the last
# `}` before the value.
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (-?(?:[0-9.]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN|\+Inf)$"
)
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
HIST_SUFFIXES = ("_bucket", "_sum", "_count")
TIMING_KEYS = frozenset(
    {"seconds", "trials_per_sec", "faults_per_sec", "repairs_per_sec"}
)


def fail(msg):
    sys.exit(f"check_metrics: {msg}")


def parse_exposition(text, where):
    """Returns (types: {family: kind}, samples: [(name, labels, value)]).
    Any structural problem is a one-line exit naming ``where``."""
    types, samples = {}, []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m:
                family, kind = m.groups()
                if family in types:
                    fail(f"{where}:{lineno}: duplicate # TYPE for {family}")
                types[family] = kind
            elif line.startswith("# TYPE"):
                fail(f"{where}:{lineno}: malformed TYPE line: {line}")
            continue  # HELP/free comments are fine
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{where}:{lineno}: unparseable sample line: {line}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        samples.append((name, labels, float(value.replace("Inf", "inf"))))
    return types, samples


def family_of(name, types):
    """Maps a sample name to its declared TYPE family (histogram
    samples carry _bucket/_sum/_count suffixes on the family name)."""
    if name in types:
        return name
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def label_value(labels, key):
    for k, v in LABEL_PAIR_RE.findall(labels):
        if k == key:
            return v
    return None


def strip_label(labels, key):
    parts = [f'{k}="{v}"' for k, v in LABEL_PAIR_RE.findall(labels) if k != key]
    return "{" + ",".join(parts) + "}" if parts else ""


def validate_exposition(text, where):
    types, samples = parse_exposition(text, where)
    if not samples:
        # An off-build dump is a single comment — structurally fine.
        return types, samples
    buckets = {}  # (family, labels-minus-le) -> [(le, count)]
    for name, labels, value in samples:
        family = family_of(name, types)
        if family is None:
            fail(f"{where}: sample {name} has no # TYPE declaration")
        kind = types[family]
        if kind == "counter" and value < 0:
            fail(f"{where}: counter {name}{labels} is negative ({value})")
        if kind == "histogram" and name.endswith("_bucket"):
            le = label_value(labels, "le")
            if le is None:
                fail(f"{where}: bucket sample {name}{labels} lacks le=")
            key = (family, strip_label(labels, "le"))
            buckets.setdefault(key, []).append((float(le.replace("Inf", "inf")), value))
    counts = {
        (family_of(n, types), l): v for n, l, v in samples if n.endswith("_count")
    }
    for (family, labels), series in buckets.items():
        les = [le for le, _ in series]
        if les != sorted(les):
            fail(f"{where}: {family}{labels}: bucket le bounds not ascending")
        vals = [v for _, v in series]
        if any(b < a for a, b in zip(vals, vals[1:])):
            fail(f"{where}: {family}{labels}: bucket counts not cumulative")
        if not math.isinf(les[-1]):
            fail(f"{where}: {family}{labels}: buckets do not end at +Inf")
        total = counts.get((family, labels))
        if total is not None and vals[-1] != total:
            fail(
                f"{where}: {family}{labels}: +Inf bucket {vals[-1]} != _count {total}"
            )
    return types, samples


# ---------------------------------------------------------------- drive

OP_CREATE, OP_EVENTS, OP_SHUTDOWN, OP_STATS = 0, 1, 5, 6
ST_OK, ST_OVERLOADED, ST_ERROR = 0, 1, 2


class Daemon:
    """A minimal protocol client: u32-LE length-framed requests of
    ``rid u64 | tenant u64 | opcode u8 | body``."""

    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=30)
        self.rid = 0

    def call(self, tenant, opcode, body=b""):
        rid = self.rid
        self.rid += 1
        payload = struct.pack("<QQB", rid, tenant, opcode) + body
        self.sock.sendall(struct.pack("<I", len(payload)) + payload)
        raw = self._read_frame()
        got_rid, status = struct.unpack("<QB", raw[:9])
        if got_rid != rid:
            fail(f"drive: reply id {got_rid} != request id {rid}")
        return status, raw[9:]

    def _read_frame(self):
        header = self._read_exact(4)
        (length,) = struct.unpack("<I", header)
        return self._read_exact(length)

    def _read_exact(self, n):
        buf = b""
        while len(buf) < n:
            chunk = self.sock.recv(n - len(buf))
            if not chunk:
                fail("drive: daemon closed the connection mid-frame")
            buf += chunk
        return buf


def event_record(t, kind, target, ident):
    # time u64 LE | event u8 (0 kill / 1 repair) | target u8 (0 node /
    # 1 edge) | id u64 LE — ftt_faults::journal_io record format.
    return struct.pack("<QBBQ", t, kind, target, ident)


def scrape(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            ctype = resp.headers.get("Content-Type", "")
            if "text/plain" not in ctype:
                fail(f"drive: {url}: unexpected Content-Type {ctype!r}")
            return resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as e:
        fail(f"drive: cannot scrape {url}: {e}")


def counter_totals(types, samples):
    totals = {}
    for name, labels, value in samples:
        family = family_of(name, types)
        if types.get(family) == "counter" or (
            types.get(family) == "histogram" and not name.endswith("_q")
            and not name.endswith("_max")
        ):
            totals[name + labels] = totals.get(name + labels, 0) + value
    return totals


def check_drive(argv):
    usage = "usage: check_metrics.py --drive tcp:HOST:PORT --metrics URL [--shutdown]"
    shutdown = "--shutdown" in argv
    if shutdown:
        argv.remove("--shutdown")
    if "--metrics" not in argv or len(argv) != 3:
        fail(usage)
    url = argv[argv.index("--metrics") + 1]
    argv.remove("--metrics")
    argv.remove(url)
    target = argv[0]
    if not target.startswith("tcp:"):
        fail(f"drive: target {target!r} must be tcp:HOST:PORT")
    host, _, port = target[4:].rpartition(":")
    daemon = Daemon(host, int(port))

    # Create one tiny D^1_{8,2} tenant (spec wire tag 2, three u64s).
    spec = struct.pack("<BQQQ", 2, 1, 8, 2)
    status, _ = daemon.call(7, OP_CREATE, spec)
    if status != ST_OK:
        fail(f"drive: CreateTenant answered status {status}")

    def apply_batch(t0):
        # kill + repair node 1: net-zero, always repairable.
        body = event_record(t0, 0, 0, 1) + event_record(t0 + 1, 1, 0, 1)
        status, _ = daemon.call(7, OP_EVENTS, body)
        if status != ST_OK:
            fail(f"drive: Events answered status {status}")

    apply_batch(0)
    first = scrape(url)
    types1, samples1 = validate_exposition(first, "scrape#1")
    if not samples1:
        fail("drive: first scrape is empty — daemon built without --features obs?")

    for i in range(1, 6):
        apply_batch(10 * i)
    time.sleep(0.2)  # let shard workers drain so gauges return to 0
    second = scrape(url)
    types2, samples2 = validate_exposition(second, "scrape#2")

    # Counters (and histogram count/sum/buckets) are monotone.
    t1, t2 = counter_totals(types1, samples1), counter_totals(types2, samples2)
    for series, v1 in sorted(t1.items()):
        v2 = t2.get(series)
        if v2 is None:
            fail(f"drive: series {series} vanished between scrapes")
        if v2 < v1:
            fail(f"drive: counter {series} went backwards ({v1} -> {v2})")
    events1 = t1.get('ftt_serve_requests_total{opcode="events"}', 0)
    events2 = t2.get('ftt_serve_requests_total{opcode="events"}', 0)
    if events2 < events1 + 5:
        fail(
            f"drive: events request counter rose {events1} -> {events2}, "
            f"expected at least +5"
        )
    # Quiescent daemon: every per-shard queue gauge is back at 0.
    depths = [
        (name + labels, value)
        for name, labels, value in samples2
        if name == "ftt_serve_queue_depth"
    ]
    if not depths:
        fail("drive: no ftt_serve_queue_depth gauges in second scrape")
    for series, value in depths:
        if value != 0:
            fail(f"drive: {series} = {value} after quiescence (expected 0)")
    # Ack latency histogram saw our batches.
    ack = t2.get("ftt_serve_ack_latency_us_count", 0)
    if ack < 6:
        fail(f"drive: ack latency histogram count {ack} < 6 applied batches")

    # The Stats opcode must expose the same families as HTTP.
    status, body = daemon.call(0, OP_STATS)
    if status != ST_OK or body[:1] != bytes([OP_STATS]):
        fail(f"drive: Stats opcode answered status {status}")
    types3, _ = validate_exposition(body[1:].decode("utf-8"), "stats-opcode")
    if set(types3) != set(types2):
        fail(
            f"drive: Stats opcode families {sorted(set(types3) ^ set(types2))} "
            f"differ from HTTP scrape"
        )

    if shutdown:
        status, _ = daemon.call(0, OP_SHUTDOWN)
        if status != ST_OK:
            fail(f"drive: Shutdown answered status {status}")
    print(
        f"check_metrics: ok (drive: {len(samples2)} samples, "
        f"{len(t2)} monotone series, {len(depths)} quiescent queue gauges, "
        f"stats opcode consistent{', daemon shut down' if shutdown else ''})"
    )


# ---------------------------------------------------------- cross-check


def load_json(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except OSError as e:
        fail(f"{path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")


def check_cross(argv):
    usage = "usage: check_metrics.py --cross-check BENCH_serve.json [--factor F]"
    factor = 2.0
    if "--factor" in argv:
        i = argv.index("--factor")
        try:
            factor = float(argv[i + 1])
        except (IndexError, ValueError):
            fail(usage)
        del argv[i : i + 2]
    if len(argv) != 1:
        fail(usage)
    data = load_json(argv[0])
    bad = []
    for q in ("p50", "p99", "p999", "max"):
        client = data.get(f"ack_{q}_us")
        daemon = data.get(f"daemon_ack_{q}_us")
        if not isinstance(client, (int, float)):
            fail(f"{argv[0]}: missing client-side ack_{q}_us")
        if not isinstance(daemon, (int, float)):
            fail(
                f"{argv[0]}: missing daemon_ack_{q}_us — bench_serve not built "
                f"with --features obs?"
            )
        lo, hi = min(client, daemon), max(client, daemon)
        ratio = hi / max(lo, 1.0)
        marker = "" if ratio <= factor else "  <-- DISAGREE"
        print(f"ack {q:>4}: client {client:>8.0f}µs daemon {daemon:>8.0f}µs ratio {ratio:.2f}{marker}")
        if ratio > factor:
            bad.append(
                f"ack_{q}_us: client {client:.0f}µs vs daemon {daemon:.0f}µs "
                f"disagree beyond {factor}x"
            )
    if bad:
        print("check_metrics: FAILED:", file=sys.stderr)
        for b in bad:
            print(f"  - {b}", file=sys.stderr)
        sys.exit(1)
    print(f"check_metrics: ok (daemon and client ack quantiles agree within {factor}x)")


# -------------------------------------------------------------- compare


def strip_timing(value):
    if isinstance(value, dict):
        return {
            k: strip_timing(v) for k, v in value.items() if k not in TIMING_KEYS
        }
    if isinstance(value, list):
        return [strip_timing(v) for v in value]
    return value


def first_difference(a, b, path="$"):
    if isinstance(a, dict) and isinstance(b, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a or k not in b:
                return f"{path}.{k}: present in only one artifact"
            d = first_difference(a[k], b[k], f"{path}.{k}")
            if d:
                return d
        return None
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path}: list lengths {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            d = first_difference(x, y, f"{path}[{i}]")
            if d:
                return d
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def check_compare(argv):
    if len(argv) != 2:
        fail("usage: check_metrics.py --compare A.json B.json")
    a, b = strip_timing(load_json(argv[0])), strip_timing(load_json(argv[1]))
    diff = first_difference(a, b)
    if diff:
        fail(
            f"artifacts differ outside wall-clock fields: {diff} "
            f"({argv[0]} vs {argv[1]})"
        )
    print(
        f"check_metrics: ok ({argv[0]} and {argv[1]} identical modulo "
        f"{'/'.join(sorted(TIMING_KEYS))})"
    )


# ------------------------------------------------------------- overhead


def scenario_tps(path, field):
    data = load_json(path)
    out = {}
    for s in data.get("scenarios", []):
        if (
            not isinstance(s, dict)
            or not isinstance(s.get("name"), str)
            or not isinstance(s.get(field), (int, float))
            or s[field] <= 0
        ):
            fail(f"{path}: malformed scenario entry (needs name + {field}): {s!r}")
        out[s["name"]] = s[field]
    if not out:
        fail(f"{path}: no scenarios")
    return out


def check_overhead(argv):
    usage = (
        "usage: check_metrics.py --overhead OFF.json ON.json "
        "[--max-overhead F] [--field NAME]"
    )
    max_overhead = 0.05
    field = "trials_per_sec"
    if "--max-overhead" in argv:
        i = argv.index("--max-overhead")
        try:
            max_overhead = float(argv[i + 1])
        except (IndexError, ValueError):
            fail(usage)
        del argv[i : i + 2]
    if "--field" in argv:
        i = argv.index("--field")
        try:
            field = argv[i + 1]
        except IndexError:
            fail(usage)
        del argv[i : i + 2]
    if len(argv) != 2:
        fail(usage)
    off, on = scenario_tps(argv[0], field), scenario_tps(argv[1], field)
    if set(off) != set(on):
        fail(f"scenario sets differ: {sorted(set(off) ^ set(on))}")
    print(f"{'scenario':<28} {'obs off':>12} {'obs on':>12} {'ratio':>8}")
    log_sum = 0.0
    for name in sorted(off):
        ratio = on[name] / off[name]
        log_sum += math.log(ratio)
        print(f"{name:<28} {off[name]:>12.1f} {on[name]:>12.1f} {ratio:>8.3f}")
    geomean = math.exp(log_sum / len(off))
    floor = 1.0 - max_overhead
    print(f"geomean on/off ratio {geomean:.3f} (floor {floor:.3f})")
    if geomean < floor:
        fail(
            f"obs-on geomean throughput {geomean:.3f} of obs-off — "
            f"instrumentation overhead exceeds {max_overhead:.0%}"
        )
    print(f"check_metrics: ok (obs overhead within {max_overhead:.0%})")


def main(argv):
    for flag, handler in (
        ("--drive", check_drive),
        ("--cross-check", check_cross),
        ("--compare", check_compare),
        ("--overhead", check_overhead),
    ):
        if flag in argv:
            argv.remove(flag)
            return handler(argv)
    if len(argv) != 1:
        fail(
            "usage: check_metrics.py EXPOSITION.txt | --drive … | "
            "--cross-check … | --compare … | --overhead …"
        )
    try:
        with open(argv[0]) as fh:
            text = fh.read()
    except OSError as e:
        fail(f"{argv[0]}: cannot read: {e}")
    types, samples = validate_exposition(text, argv[0])
    print(
        f"check_metrics: ok ({argv[0]}: {len(types)} families, "
        f"{len(samples)} samples, histograms cumulative)"
    )


if __name__ == "__main__":
    main(sys.argv[1:])
