//! Construction-generic scenarios: one Monte-Carlo runner
//! (`ftt::sim::run_extraction_trials`) driving all three constructions
//! through the `HostConstruction` trait.

use ftt::core::construct::HostConstruction;
use ftt::core::ddn::Ddn;
use ftt::faults::AdversaryPattern;
use ftt::sim::{bernoulli_sampler, node_list_sampler, run_extraction_trials};
use ftt_testutil::{tiny_adn, tiny_bdn, tiny_ddn, tiny_ddn_params};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The runner accepts any construction: success means an extracted and
/// verified fault-free torus, so in the fault-free regime every trial
/// must succeed — for B, A, and D alike.
#[test]
fn fault_free_trials_succeed_for_every_construction() {
    fn all_pass<C: HostConstruction + Sync>(host: &C) {
        let stats = run_extraction_trials(host, 5, 1, 0, bernoulli_sampler(0.0, 0.0));
        assert_eq!(stats.successes, 5, "{} fault-free trial failed", C::NAME);
    }
    all_pass(&tiny_bdn());
    all_pass(&tiny_adn(6, 0.0));
    all_pass(&tiny_ddn());
}

/// Theorem 2 through the generic runner: in the low-fault regime
/// (well below the asymptotic design point, which is optimistic for
/// finite instances with `b < log n`) most trials succeed; at
/// saturation, none do.
#[test]
fn bdn_bernoulli_success_curve_endpoints() {
    let host = tiny_bdn();
    let good = run_extraction_trials(&host, 20, 7, 0, bernoulli_sampler(1e-5, 0.0));
    assert!(
        good.rate() >= 0.9,
        "low-fault success rate {} too low",
        good.rate()
    );
    let bad = run_extraction_trials(&host, 5, 7, 0, bernoulli_sampler(1.0, 0.0));
    assert_eq!(bad.successes, 0);
}

/// Theorem 3 through the generic runner: the full adversarial battery
/// at budget `k` must never fail.
#[test]
fn ddn_adversarial_battery_through_runner() {
    let params = tiny_ddn_params();
    let host = tiny_ddn();
    let k = params.tolerated_faults();
    for pattern in AdversaryPattern::battery(host.shape(), params.band_width(0) + 1) {
        let stats = run_extraction_trials(
            &host,
            10,
            3,
            0,
            node_list_sampler(move |h: &Ddn, seed| {
                let mut rng = SmallRng::seed_from_u64(seed);
                pattern.generate(h.shape(), k, &mut rng)
            }),
        );
        assert_eq!(
            stats.successes, 10,
            "Theorem 3 violated through the runner: {pattern:?}"
        );
    }
}

/// The determinism contract survives the generic layer: identical
/// stats regardless of worker thread count.
#[test]
fn generic_runner_thread_count_invariance() {
    let host = tiny_bdn();
    let p = host.params().tolerated_fault_probability() * 20.0;
    let one = run_extraction_trials(&host, 16, 42, 1, bernoulli_sampler(p, 0.0));
    let four = run_extraction_trials(&host, 16, 42, 4, bernoulli_sampler(p, 0.0));
    let auto = run_extraction_trials(&host, 16, 42, 0, bernoulli_sampler(p, 0.0));
    assert_eq!(one, four);
    assert_eq!(one, auto);
}

/// Theorem 1 through the generic runner with node and edge faults.
#[test]
fn adn_node_and_edge_faults_through_runner() {
    let host = tiny_adn(10, 0.05);
    let stats = run_extraction_trials(&host, 5, 11, 0, bernoulli_sampler(0.01, 0.001));
    assert_eq!(
        stats.successes, 5,
        "A²_n should absorb 1% node + 0.1% edge faults"
    );
}
