//! Integration: Theorem 1 — constant fault probabilities `p` and `q`,
//! goodness classification, two-level extraction, independent
//! verification.

use ftt::core::adn::embed::extract_after_faults_adn;
use ftt::core::adn::goodness::classify;
use ftt::core::adn::{Adn, AdnParams};
use ftt::core::bdn::BdnParams;
use ftt::faults::{sample_bernoulli_faults, HalfEdgeFaults};
use ftt::graph::verify_torus_embedding;
use ftt_testutil::{tiny_adn, tiny_bdn_params};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build(h: usize, sqrt_q: f64) -> Adn {
    tiny_adn(h, sqrt_q)
}

fn run_trial(adn: &Adn, p: f64, sqrt_q: f64, seed: u64) -> bool {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nf = sample_bernoulli_faults(adn.graph(), p, 0.0, &mut rng);
    let faulty: Vec<bool> = (0..adn.num_nodes()).map(|v| nf.node_faulty(v)).collect();
    let halves = HalfEdgeFaults::sample(adn.graph(), sqrt_q, &mut rng);
    match extract_after_faults_adn(adn, &faulty, &halves) {
        Ok(emb) => {
            verify_torus_embedding(
                &emb.guest,
                &emb.map,
                adn.graph(),
                |v| !faulty[v],
                |e| !halves.edge_faulty(e),
            )
            .expect("claimed success must verify");
            true
        }
        Err(_) => false,
    }
}

#[test]
fn constant_node_fault_probability() {
    // p = 0.1, q = 0 with h = 10: supernodes have huge goodness margins,
    // so extraction should succeed consistently.
    let adn = build(10, 0.0);
    let mut ok = 0;
    for seed in 0..5 {
        if run_trial(&adn, 0.10, 0.0, seed) {
            ok += 1;
        }
    }
    assert!(ok >= 4, "only {ok}/5 trials succeeded at p = 0.1");
}

#[test]
fn node_and_edge_faults_together() {
    // Finite-size note: with h = 10 the goodness budget ⌊2√q·h⌋ is 0, so
    // √q must be small enough that most nodes see no faulty half at all
    // (the theorem takes h = Θ(log log n) → ∞ to absorb constant q; see
    // EXPERIMENTS.md). √q = 5·10⁻⁴ keeps the expected bad-supernode
    // count well below 1.
    let sqrt_q = 5e-4;
    let adn = build(10, sqrt_q);
    let mut ok = 0;
    for seed in 10..14 {
        if run_trial(&adn, 0.02, sqrt_q, seed) {
            ok += 1;
        }
    }
    assert!(ok >= 3, "only {ok}/4 trials succeeded with edge faults");
}

#[test]
fn goodness_monotone_in_p() {
    let adn = build(8, 0.0);
    let mut rng = SmallRng::seed_from_u64(77);
    let halves = HalfEdgeFaults::none(adn.graph().num_edges());
    let mut fractions = Vec::new();
    for p in [0.0, 0.2, 0.5] {
        let nf = sample_bernoulli_faults(adn.graph(), p, 0.0, &mut rng);
        let faulty: Vec<bool> = (0..adn.num_nodes()).map(|v| nf.node_faulty(v)).collect();
        let g = classify(&adn, &faulty, &halves);
        fractions.push(g.good_node_fraction());
    }
    assert!(fractions[0] > fractions[1] && fractions[1] > fractions[2]);
    assert_eq!(fractions[0], 1.0);
}

#[test]
fn degree_is_loglog_scale() {
    // Degree = 11h − 1 where h = Θ(k²) = Θ(log log n): for the claim we
    // check degree tracks h, not n — doubling the inner torus size at
    // fixed h leaves the degree unchanged.
    let inner_small = tiny_bdn_params();
    let inner_large = BdnParams::new(2, 108, 3, 1).unwrap();
    let a_small = Adn::build(AdnParams::new(inner_small, 2, 8, 0.0).unwrap());
    let a_large = Adn::build(AdnParams::new(inner_large, 2, 8, 0.0).unwrap());
    assert_eq!(
        a_small.graph().max_degree(),
        a_large.graph().max_degree(),
        "degree must depend on h only"
    );
    assert!(a_large.num_nodes() > 3 * a_small.num_nodes());
}

#[test]
fn too_aggressive_faults_fail_gracefully() {
    // p = 0.9 kills most supernodes: must error, not panic.
    let adn = build(8, 0.0);
    let mut rng = SmallRng::seed_from_u64(123);
    let nf = sample_bernoulli_faults(adn.graph(), 0.9, 0.0, &mut rng);
    let faulty: Vec<bool> = (0..adn.num_nodes()).map(|v| nf.node_faulty(v)).collect();
    let halves = HalfEdgeFaults::none(adn.graph().num_edges());
    let err = extract_after_faults_adn(&adn, &faulty, &halves).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("supernode") || msg.contains("frame") || msg.contains("segment"),
        "unexpected error: {msg}"
    );
}
