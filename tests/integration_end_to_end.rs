//! Integration: cross-construction comparisons — the degree/redundancy/
//! tolerance trade-off table of the whole paper, executed.

use ftt::core::adn::{Adn, AdnParams};
use ftt::core::bdn::Bdn;
use ftt::core::ddn::{Ddn, DdnParams};
use ftt::faults::sample_bernoulli_faults;
use ftt::sim::{run_trials, Table};
use ftt_testutil::tiny_bdn_params;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn the_paper_in_one_table() {
    // One row per construction: degree, node count, fault regime.
    let bp = tiny_bdn_params();
    let bdn = Bdn::build(bp);
    let ap = AdnParams::new(bp, 2, 8, 0.0).unwrap();
    let adn = Adn::build(ap);
    let dp = DdnParams::fit(2, 54, 2).unwrap();
    let _ddn = Ddn::new(dp);

    let mut t = Table::new("constructions", &["name", "degree", "nodes", "guest"]);
    t.row(vec![
        "B²_n (Thm 2)".into(),
        bdn.graph().max_degree().to_string(),
        bdn.num_nodes().to_string(),
        format!("{0}×{0}", bp.n),
    ]);
    t.row(vec![
        "A²_n (Thm 1)".into(),
        adn.graph().max_degree().to_string(),
        adn.num_nodes().to_string(),
        format!("{0}×{0}", ap.n()),
    ]);
    t.row(vec![
        "D²_{n,k} (Thm 3)".into(),
        dp.expected_degree().to_string(),
        dp.num_nodes().to_string(),
        format!("{0}×{0}", dp.n),
    ]);
    let rendered = t.render();
    assert!(rendered.contains("B²_n"));
    assert_eq!(t.len(), 3);

    // the degree ordering the paper advertises: 4d < 6d−2 < O(log log n)
    assert!(dp.expected_degree() < bdn.graph().max_degree());
    assert!(bdn.graph().max_degree() < adn.graph().max_degree());
}

#[test]
fn redundancy_is_linear_everywhere() {
    // All three constructions promise O(N) nodes for an N-node guest.
    let bp = tiny_bdn_params();
    assert!(bp.redundancy() < 2.0);
    let ap = AdnParams::new(bp, 2, 8, 0.0).unwrap();
    assert!(ap.redundancy() < 4.0);
    let dp = DdnParams::fit(2, 54, 2).unwrap();
    let dn = dp.num_nodes() as f64 / (dp.n as f64 * dp.n as f64);
    assert!(dn < 2.0, "D² redundancy {dn}");
}

#[test]
fn parallel_monte_carlo_agrees_with_serial() {
    // the sim engine must give identical results independent of thread
    // count when driving a real construction
    let bp = tiny_bdn_params();
    let bdn = Bdn::build(bp);
    let p = 2e-4;
    let trial = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = sample_bernoulli_faults(bdn.graph(), p, 0.0, &mut rng);
        let faulty: Vec<bool> = (0..bdn.num_nodes()).map(|v| f.node_faulty(v)).collect();
        ftt::core::bdn::extract::extract_after_faults(&bdn, &faulty).is_ok()
    };
    let serial = run_trials(8, 99, 1, trial);
    let parallel = run_trials(8, 99, 4, trial);
    assert_eq!(serial, parallel);
    assert!(serial.rate() > 0.5);
}

#[test]
fn guest_node_ids_are_consistent_across_constructions() {
    // Bdn and Ddn both emit TorusEmbedding over Shape::cube(n, d) with
    // row-major guest ids; spot-check the convention agrees.
    let bp = tiny_bdn_params();
    let bdn = Bdn::build(bp);
    let faulty = vec![false; bdn.num_nodes()];
    let be = ftt::core::bdn::extract::extract_after_faults(&bdn, &faulty).unwrap();
    assert_eq!(be.guest.dims(), &[54, 54]);

    let dp = DdnParams::fit(2, 54, 2).unwrap();
    let ddn = Ddn::new(dp);
    let de = ddn.try_extract(&[]).unwrap();
    assert_eq!(de.guest.ndim(), 2);
}
