//! Integration: Theorem 2 end-to-end across crates — random faults at
//! the theorem's probability, placement, extraction, and independent
//! verification against the host graph.

use ftt::core::bdn::extract::extract_after_faults;
use ftt::core::bdn::{check_health, Bdn, BdnParams};
use ftt::faults::sample_bernoulli_faults;
use ftt::graph::{verify_mesh_embedding, verify_torus_embedding};
use ftt_testutil::{bernoulli_node_bitmap, tiny_bdn, tiny_bdn_params};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn faulty_bitmap(bdn: &Bdn, p: f64, seed: u64) -> Vec<bool> {
    bernoulli_node_bitmap(bdn.graph(), p, seed)
}

#[test]
fn theorem2_structure_claims() {
    for (d, nmin, b) in [(2usize, 54usize, 3usize), (2, 192, 4), (3, 54, 3)] {
        let p = BdnParams::fit(d, nmin, b, 1).unwrap();
        let bdn = Bdn::build(p);
        // degree exactly 6d−2
        assert_eq!(bdn.graph().max_degree(), 6 * d - 2);
        assert_eq!(bdn.graph().min_degree(), 6 * d - 2);
        // node count (1+ε)·n^d with ε = ε_b/(b−ε_b) < 1 (paper: ε < 1/2
        // asymptotically; our smallest instances use ε ≤ 1/2)
        let eps = p.redundancy() - 1.0;
        assert!(eps <= 0.51, "ε = {eps}");
        assert_eq!(bdn.num_nodes(), p.num_nodes());
    }
}

#[test]
fn theorem2_random_faults_moderate_regime() {
    // Finite-size calibration: the theorem's p = b^{−3d} presumes
    // b = log n; our b = 4 < log 192 ≈ 7.6 instance has a 16×12 tile
    // grid with radius-1 frames only, so the *measured* tolerance curve
    // (experiment T2-SUCCESS) is charted against p rather than assumed.
    // Here we pin a regime with ~2 expected faults where success must
    // dominate.
    let params = BdnParams::new(2, 192, 4, 1).unwrap();
    let bdn = Bdn::build(params);
    let p = 4e-5;
    let mut extracted = 0;
    let trials = 10;
    for seed in 0..trials {
        let faulty = faulty_bitmap(&bdn, p, seed);
        if let Ok(emb) = extract_after_faults(&bdn, &faulty) {
            verify_torus_embedding(&emb.guest, &emb.map, bdn.graph(), |v| !faulty[v], |_| true)
                .expect("claimed success must verify");
            extracted += 1;
        }
    }
    assert!(
        extracted >= trials * 6 / 10,
        "only {extracted}/{trials} extracted"
    );
}

#[test]
fn healthy_implies_extractable() {
    let params = tiny_bdn_params();
    let bdn = tiny_bdn();
    // sweep probabilities above the design point; whenever the checker
    // says healthy, extraction must succeed (Lemma 5)
    let mut healthy_seen = 0;
    for seed in 0..30u64 {
        let faulty = faulty_bitmap(&bdn, 3e-4, seed);
        let health = check_health(&params, &faulty);
        if health.is_healthy() {
            healthy_seen += 1;
            extract_after_faults(&bdn, &faulty).unwrap_or_else(|e| {
                panic!("healthy instance failed extraction (seed {seed}): {e}")
            });
        }
    }
    assert!(
        healthy_seen >= 5,
        "sweep produced too few healthy instances"
    );
}

#[test]
fn mesh_claim_follows() {
    // "and hence a fault-free d-dimensional mesh of the same size"
    let bdn = tiny_bdn();
    let faulty = faulty_bitmap(&bdn, 2e-4, 1);
    if let Ok(emb) = extract_after_faults(&bdn, &faulty) {
        verify_mesh_embedding(&emb.guest, &emb.map, bdn.graph(), |v| !faulty[v], |_| true)
            .expect("mesh embedding");
    }
}

#[test]
fn edge_faults_via_endpoint_ascription() {
    // Section 3: an edge fault is handled by treating one endpoint as
    // faulty; the resulting torus avoids that endpoint and hence the edge.
    let bdn = tiny_bdn();
    let mut rng = SmallRng::seed_from_u64(5);
    let faults = sample_bernoulli_faults(bdn.graph(), 0.0, 1e-4, &mut rng);
    let ascribed = faults.ascribe_edges_to_nodes(|e| bdn.graph().edge_endpoints(e));
    let faulty: Vec<bool> = (0..bdn.num_nodes())
        .map(|v| ascribed.node_faulty(v))
        .collect();
    if let Ok(emb) = extract_after_faults(&bdn, &faulty) {
        // verify against the *edge* faults: no used edge may be faulty
        verify_torus_embedding(
            &emb.guest,
            &emb.map,
            bdn.graph(),
            |v| !faulty[v],
            |e| faults.edge_alive(e),
        )
        .expect("edge-fault-avoiding embedding");
    }
}

#[test]
fn zero_probability_always_succeeds() {
    let bdn = tiny_bdn();
    let faulty = vec![false; bdn.num_nodes()];
    let emb = extract_after_faults(&bdn, &faulty).unwrap();
    assert_eq!(emb.len(), 54 * 54);
}
