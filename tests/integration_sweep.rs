//! The sweep engine's determinism contract, end-to-end: per-cell
//! results are a pure function of `(spec contents, root seed)` —
//! invariant under the worker thread count, the order cells appear in
//! the spec, and which other cells share the sweep.

use ftt::sim::{
    run_sweep, BaselineSpec, ConstructionSpec, FaultRegime, SweepPattern, SweepReport, SweepSpec,
};
use ftt_testutil::mixed_determinism_spec as mixed_spec;

fn tallies(report: &SweepReport) -> Vec<(String, usize, usize)> {
    report
        .cells
        .iter()
        .map(|c| (c.id.clone(), c.stats.trials, c.stats.successes))
        .collect()
}

/// Same spec + root seed ⇒ identical per-cell tallies across 1, 2, and
/// 4 worker threads (and auto).
#[test]
fn sweep_results_invariant_under_thread_count() {
    let spec = mixed_spec();
    let one = run_sweep(&spec, 1).unwrap();
    assert_eq!(one.cells.len(), 4);
    for threads in [2, 4, 0] {
        let other = run_sweep(&spec, threads).unwrap();
        assert_eq!(
            tallies(&one),
            tallies(&other),
            "threads = {threads} changed sweep results"
        );
    }
}

/// Reversing the construction and regime axes permutes the cells but
/// must not change any cell's tally: seeds hang off canonical cell
/// ids, not grid positions.
#[test]
fn sweep_results_invariant_under_cell_order() {
    let spec = mixed_spec();
    let mut reversed = spec.clone();
    reversed.constructions.reverse();
    reversed.regimes.reverse();
    let a = run_sweep(&spec, 0).unwrap();
    let b = run_sweep(&reversed, 0).unwrap();
    assert_ne!(
        a.cells[0].id, b.cells[0].id,
        "sanity: the orders really differ"
    );
    let mut at = tallies(&a);
    let mut bt = tallies(&b);
    at.sort();
    bt.sort();
    assert_eq!(at, bt, "cell order changed per-cell results");
}

/// Dropping cells from the grid must not change the surviving cells:
/// a sweep can be extended (or split across machines) without
/// invalidating previous results.
#[test]
fn sweep_results_invariant_under_grid_extension() {
    let spec = mixed_spec();
    let mut subset = spec.clone();
    subset.regimes.truncate(1);
    subset.constructions.truncate(1);
    let full = run_sweep(&spec, 0).unwrap();
    let part = run_sweep(&subset, 0).unwrap();
    for cell in &part.cells {
        let twin = full
            .cells
            .iter()
            .find(|c| c.id == cell.id)
            .expect("subset cell present in full grid");
        assert_eq!(
            cell.stats, twin.stats,
            "{}: grid extension changed a cell",
            cell.id
        );
    }
}

/// The adversarial regime through the engine honours Theorem 3 and is
/// equally order/thread invariant.
#[test]
fn adversarial_sweep_deterministic_and_guaranteed() {
    let spec = SweepSpec {
        name: "t3det".into(),
        constructions: vec![ConstructionSpec::Ddn {
            d: 2,
            n_min: 30,
            b: 2,
        }],
        regimes: vec![
            FaultRegime::AdversarialBudget {
                pattern: SweepPattern::Random,
                mult: 1.0,
            },
            FaultRegime::AdversarialBudget {
                pattern: SweepPattern::ResidueSpreadAuto,
                mult: 1.0,
            },
            FaultRegime::AdversarialBudget {
                pattern: SweepPattern::Random,
                mult: 8.0,
            },
        ],
        trials: 6,
        root_seed: 5,
        baseline: None,
    };
    let a = run_sweep(&spec, 1).unwrap();
    let b = run_sweep(&spec, 4).unwrap();
    assert_eq!(tallies(&a), tallies(&b));
    for cell in a.cells.iter().filter(|c| c.mult == Some(1.0)) {
        assert_eq!(
            cell.stats.successes, 6,
            "{}: Theorem 3 guarantee through the sweep engine",
            cell.id
        );
    }
}

/// The baseline column is part of the determinism contract too.
#[test]
fn baseline_column_deterministic() {
    let mut spec = mixed_spec();
    spec.trials = 4;
    spec.baseline = Some(BaselineSpec { redundancy: 4.0 });
    let a = run_sweep(&spec, 1).unwrap();
    let b = run_sweep(&spec, 3).unwrap();
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.baseline, y.baseline, "{}", x.id);
    }
}
