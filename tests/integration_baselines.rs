//! Integration: the baseline constructions behave as the paper's
//! comparisons assume.

use ftt::baselines::alon_chung::{AlonChungMesh, AlonChungPath};
use ftt::baselines::fkp::FkpCluster;
use ftt::baselines::models;
use ftt::baselines::naive::{naive_survival_probability, naive_survives};
use ftt::expander::{margulis_expander, second_eigenvalue};
use ftt::geom::Shape;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn alon_chung_path_beats_naive_under_faults() {
    let n = 40usize;
    let ac = AlonChungPath::build(n, 8.0);
    let shape = Shape::new(vec![n]);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut ac_wins = 0;
    let trials = 10;
    for _ in 0..trials {
        let alive_ac: Vec<bool> = (0..ac.graph().num_nodes())
            .map(|_| !rng.gen_bool(0.15))
            .collect();
        let naive_faults: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.15)).collect();
        let ac_ok = ac.survives(&alive_ac);
        let naive_ok = naive_survives(&shape, &naive_faults);
        if ac_ok && !naive_ok {
            ac_wins += 1;
        }
        assert!(
            ac_ok,
            "expander path should survive 15% faults at 8× redundancy"
        );
    }
    assert!(ac_wins >= trials / 2, "redundancy must pay off");
}

#[test]
fn alon_chung_mesh_tolerates_supernode_faults() {
    let ac = AlonChungMesh::build(10, 2, 8.0);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut ok = 0;
    for _ in 0..5 {
        let mut faulty = vec![false; ac.num_nodes()];
        // kill 10 random nodes (up to 10 supernodes die)
        for _ in 0..10 {
            faulty[rng.gen_range(0..ac.num_nodes())] = true;
        }
        if let Some(map) = ac.embed_mesh(&faulty) {
            let mut seen = std::collections::HashSet::new();
            for &v in &map {
                assert!(!faulty[v]);
                assert!(seen.insert(v));
            }
            ok += 1;
        }
    }
    assert!(ok >= 4, "only {ok}/5 mesh embeddings succeeded");
}

#[test]
fn fkp_reliability_grows_with_cluster_size_but_so_does_degree() {
    let mut rng = SmallRng::seed_from_u64(6);
    let p = 0.25;
    let sizes = [2usize, 4, 6];
    let mut rates = Vec::new();
    let mut degrees = Vec::new();
    for c in sizes {
        let f = FkpCluster::build(6, 2, c);
        degrees.push(f.degree());
        let mut ok = 0;
        for _ in 0..15 {
            if f.survives_random(p, 0.0, &mut rng) {
                ok += 1;
            }
        }
        rates.push(ok);
    }
    assert!(
        rates[2] >= rates[0],
        "reliability should not decrease: {rates:?}"
    );
    assert!(
        degrees.windows(2).all(|w| w[0] < w[1]),
        "degree grows: {degrees:?}"
    );
    assert!(rates[2] >= 13, "cluster 6 at p=0.25 nearly always survives");
}

#[test]
fn margulis_is_a_genuine_expander() {
    let g = margulis_expander(20);
    let l = second_eigenvalue(&g, 150);
    assert!(l < 7.3, "Margulis bound λ ≤ 5√2 violated: {l}");
}

#[test]
fn naive_probability_matches_simulation() {
    let shape = Shape::cube(8, 2);
    let p = 0.01;
    let mut rng = SmallRng::seed_from_u64(7);
    let trials = 3000;
    let mut ok = 0;
    for _ in 0..trials {
        let faults: Vec<bool> = (0..shape.len()).map(|_| rng.gen_bool(p)).collect();
        if naive_survives(&shape, &faults) {
            ok += 1;
        }
    }
    let rate = ok as f64 / trials as f64;
    let expect = naive_survival_probability(shape.len(), p);
    assert!(
        (rate - expect).abs() < 0.05,
        "rate {rate} vs analytic {expect}"
    );
}

#[test]
fn crossover_table_shape() {
    // the paper's prose: BCH wins for small k, Theorem 13 for large k
    let n = 512usize;
    let small_k = 4usize;
    let large_k = 200usize;
    assert!(models::bch_nodes(n, small_k) < models::tamaki_d2_nodes(n, small_k));
    assert!(models::bch_nodes(n, large_k) > models::tamaki_d2_nodes(n, large_k));
    // and at linear redundancy: O(n^{2/3}) vs O(n^{3/4})
    assert!(models::tamaki_d2_max_k_linear(10_000, 2.0) > models::bch_max_k_linear(10_000, 2.0));
}
