//! Integration: Theorem 3 certified *combinatorially* — the exhaustive
//! engine enumerates every canonical fault pattern at the full budget
//! on small `D^1`/`D^2` instances and certifies each one through the
//! independent checker, end-to-end across crates (core emission,
//! verify checking, sim orchestration).

use ftt::sim::{run_certify, run_sweep, CertifySpec, SweepSpec};

/// `D^1_{23,3}` (m = 32, k = 3): all 173 canonical patterns — standing
/// for all 5489 fault sets of size ≤ 3 — certify at the full budget.
#[test]
fn d1_full_budget_certified_exhaustively() {
    let report = run_certify(&CertifySpec::new("it_d1", 1, 20, 3), 0).unwrap();
    assert_eq!(report.budget, 3);
    assert_eq!(report.max_faults, 3, "full budget, not a truncation");
    assert_eq!(report.patterns_by_size, vec![1, 1, 16, 155]);
    assert_eq!(report.patterns_covered, 5489, "Σ C(32, ≤3)");
    assert!(
        report.complete(),
        "Theorem 3 violated: {:?}",
        report.failures
    );
    assert!(report.to_json().contains("\"complete\": true"));
}

/// A tiny `D^2` (m = 10, k = 1): every canonical pattern at the full
/// budget certifies, covering all 101 fault sets of size ≤ 1.
#[test]
fn tiny_d2_full_budget_certified_exhaustively() {
    let report = run_certify(&CertifySpec::new("it_d2", 2, 8, 1), 0).unwrap();
    assert_eq!(report.budget, 1);
    assert_eq!(report.patterns_covered, 101);
    assert!(report.complete(), "{:?}", report.failures);
}

/// The same guarantee through the sweep engine's `exhaustive` preset:
/// both cells (D¹ and tiny D²) must sit at success rate exactly 1.
#[test]
fn exhaustive_preset_cells_all_certify() {
    let spec = SweepSpec::preset("exhaustive").unwrap();
    let report = run_sweep(&spec, 0).unwrap();
    assert_eq!(report.cells.len(), 2);
    for cell in &report.cells {
        assert_eq!(cell.regime, "exhaustive");
        assert_eq!(
            cell.stats.successes, cell.stats.trials,
            "{}: every canonical pattern must certify",
            cell.id
        );
        assert!(cell.stats.trials > 1, "{}: not a degenerate cell", cell.id);
    }
}

/// The certification digest is a pure function of the instance — two
/// runs, any thread counts, one digest.
#[test]
fn certification_is_reproducible() {
    let a = run_certify(&CertifySpec::new("it_rep", 1, 8, 2), 1).unwrap();
    let b = run_certify(&CertifySpec::new("it_rep", 1, 8, 2), 3).unwrap();
    assert_eq!(a.cert_digest, b.cert_digest);
    // the artifacts agree on everything but wall-clock provenance
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("\"seconds\"") && !l.contains("\"threads\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a.to_json()), strip(&b.to_json()));
}
