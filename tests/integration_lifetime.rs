//! Integration tests for the online lifetime engine: stream
//! determinism, journal replay, chunk-boundary invariance, and the
//! Theorem 3 online guarantee through the public `ftt` facade.
//!
//! Extends the determinism patterns of `integration_sweep.rs` to the
//! streaming subsystem: lifetime reports must be a pure function of
//! `(spec contents, root seed)` — never of the worker thread count or
//! the chunked trial claiming — and any individual trial must be
//! reproducible from its recorded `FaultJournal`, event for event.

use ftt::core::construct::HostConstruction;
use ftt::core::ddn::{Ddn, DdnParams};
use ftt::online::{
    run_lifetime, run_lifetime_trial, ArrivalCap, FaultJournal, LifetimeSpec, RepairState,
    StreamDef, StreamSpec,
};
use ftt::sim::lifetime::run_lifetime_trials;
use ftt::sim::runner::{trial_seed, CLAIM_CHUNK};
use ftt::sim::{cell_seed, ConstructionSpec};

fn d2_trickle_spec(trials: usize) -> LifetimeSpec {
    LifetimeSpec {
        name: "integration".into(),
        constructions: vec![ConstructionSpec::Ddn {
            d: 2,
            n_min: 30,
            b: 2,
        }],
        streams: vec![StreamDef {
            spec: StreamSpec::Trickle {
                node_rate: 5e-3,
                edge_rate: 5e-4,
            },
            cap: ArrivalCap::UntilDeath,
        }],
        trials,
        root_seed: 42,
        certify_every: 8,
        burst_window: 0,
    }
}

/// Reports are invariant under the worker thread count.
#[test]
fn lifetime_reports_thread_count_invariant() {
    let spec = d2_trickle_spec(10);
    let one = run_lifetime(&spec, 1).unwrap();
    let four = run_lifetime(&spec, 4).unwrap();
    let auto = run_lifetime(&spec, 0).unwrap();
    for other in [&four, &auto] {
        for (a, b) in one.cells.iter().zip(&other.cells) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.deaths, b.deaths, "{}", a.id);
            assert_eq!(a.survived_all, b.survived_all, "{}", a.id);
            assert_eq!(a.arrivals_total, b.arrivals_total, "{}", a.id);
            assert_eq!(a.lifetime_mean, b.lifetime_mean, "{}", a.id);
            assert_eq!(a.lifetime_median, b.lifetime_median, "{}", a.id);
            assert_eq!(
                (a.repairs_fast, a.repairs_local, a.repairs_rebuild),
                (b.repairs_fast, b.repairs_local, b.repairs_rebuild),
                "{}",
                a.id
            );
            assert_eq!(a.cert_checks, b.cert_checks, "{}", a.id);
            assert_eq!(a.cert_failures, 0, "{}", a.id);
        }
    }
}

/// Trial counts right at, below, and above the claim-chunk boundary
/// produce identical per-trial records for every thread count — the
/// chunked claiming is invisible in lifetime results.
#[test]
fn lifetime_chunk_boundaries_are_exact() {
    let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
    let stream = StreamSpec::Trickle {
        node_rate: 5e-3,
        edge_rate: 0.0,
    };
    let seed = cell_seed(7, "chunk_test");
    for trials in [CLAIM_CHUNK - 1, CLAIM_CHUNK, CLAIM_CHUNK + 3] {
        let sequential = run_lifetime_trials(&host, &stream, 10_000, trials, seed, 1, 0, 0);
        for threads in [3, 0] {
            let parallel = run_lifetime_trials(&host, &stream, 10_000, trials, seed, threads, 0, 0);
            assert_eq!(
                sequential, parallel,
                "trials={trials}, threads={threads}: records diverge"
            );
        }
    }
}

/// A journal recorded from a live trial replays to the identical
/// outcome: same lifetime, same repair classes, same death.
#[test]
fn journal_replay_reproduces_the_trial() {
    let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
    let num_nodes = HostConstruction::num_nodes(&host);
    let num_edges = host.graph().num_edges();
    let stream_spec = StreamSpec::Trickle {
        node_rate: 5e-3,
        edge_rate: 5e-4,
    };
    let mut state = RepairState::new(&host).unwrap();
    for trial in 0..12u64 {
        let mut journal = FaultJournal::new();
        let mut stream = stream_spec.stream(num_nodes, num_edges, trial_seed(99, trial));
        let live = run_lifetime_trial(
            &host,
            &mut state,
            &mut stream,
            10_000,
            4,
            0,
            Some(&mut journal),
        );
        assert_eq!(journal.len(), live.arrivals, "every arrival is journaled");

        let mut replayed_stream = journal.replay();
        let replayed =
            run_lifetime_trial(&host, &mut state, &mut replayed_stream, 10_000, 4, 0, None);
        assert_eq!(live, replayed, "trial {trial}: replay diverged");

        // The journal's batch view agrees with the online outcome: the
        // accumulated set extracts iff the trial survived.
        let all = journal.to_fault_set(num_nodes, num_edges);
        let batch_all = HostConstruction::try_extract(&host, &all);
        assert_eq!(batch_all.is_ok(), !live.died, "trial {trial}: batch parity");
    }
}

/// The targeted adversary is adaptive (it reads the live embedding),
/// yet trials remain pure functions of the trial seed.
#[test]
fn targeted_adversary_trials_are_deterministic() {
    let host = Ddn::new(DdnParams::fit(2, 40, 2).unwrap());
    let k = host.params().tolerated_faults();
    let seed = cell_seed(3, "targeted_det");
    let a = run_lifetime_trials(&host, &StreamSpec::Targeted, 2 * k, 8, seed, 1, 0, 0);
    let b = run_lifetime_trials(&host, &StreamSpec::Targeted, 2 * k, 8, seed, 4, 0, 0);
    assert_eq!(a, b, "adaptive streams must stay deterministic");
    // Every trial survives at least the budget (Theorem 3, online).
    for (i, rec) in a.iter().enumerate() {
        assert!(
            rec.survived >= k,
            "trial {i}: died after {} < k = {k} faults",
            rec.survived
        );
    }
}

/// The life-t3 preset's ×1 cells assert Theorem 3's online form:
/// exactly k targeted faults, all repaired, across every trial.
/// (Scaled-down trial budget to keep the integration suite quick.)
#[test]
fn life_t3_budget_cells_survive_exactly_k() {
    let mut spec = LifetimeSpec::preset("life-t3").unwrap();
    spec.trials = 6;
    let report = run_lifetime(&spec, 0).unwrap();
    let mut asserted = 0;
    for cell in &report.cells {
        assert_eq!(cell.cert_failures, 0, "{}", cell.id);
        if cell.mult == Some(1.0) {
            let k = cell.budget_k.expect("life-t3 runs on D²");
            assert_eq!(cell.cap_arrivals, k, "{}", cell.id);
            assert_eq!(cell.deaths, 0, "{}: Theorem 3 online form", cell.id);
            assert_eq!(cell.lifetime_min, k, "{}", cell.id);
            assert_eq!(cell.lifetime_max, k, "{}", cell.id);
            asserted += 1;
        }
    }
    assert_eq!(asserted, 2, "both D² instances carry a ×1 cell");
}
