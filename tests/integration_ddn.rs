//! Integration: Theorem 3 — the worst-case guarantee must hold for
//! every adversarial pattern at the full fault budget, across
//! dimensions, with mixed node/edge faults.

use ftt::core::ddn::{Ddn, DdnParams};
use ftt::faults::{mixed_adversarial_faults, AdversaryPattern};
use ftt_testutil::{ddn_d2_40, verify_ddn_embedding as verify};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn theorem3_battery_at_full_budget_d2() {
    let ddn = ddn_d2_40();
    let params = *ddn.params();
    let k = params.tolerated_faults();
    let mut rng = SmallRng::seed_from_u64(100);
    for pat in AdversaryPattern::battery(ddn.shape(), params.band_width(0) + 1) {
        for trial in 0..10 {
            let faults = pat.generate(ddn.shape(), k, &mut rng);
            let emb = ddn
                .try_extract(&faults)
                .unwrap_or_else(|e| panic!("{pat:?} trial {trial}: {e}"));
            verify(&ddn, &emb, &faults);
        }
    }
}

#[test]
fn theorem3_battery_d1() {
    let params = DdnParams::fit(1, 40, 5).unwrap(); // k = 5
    let ddn = Ddn::new(params);
    let k = params.tolerated_faults();
    let mut rng = SmallRng::seed_from_u64(200);
    for pat in [AdversaryPattern::Random, AdversaryPattern::ClusteredCube] {
        for _ in 0..10 {
            let faults = pat.generate(ddn.shape(), k, &mut rng);
            let emb = ddn.try_extract(&faults).expect("d = 1 guarantee");
            verify(&ddn, &emb, &faults);
        }
    }
}

#[test]
fn theorem3_larger_b_d2() {
    // b = 3: k = 27, m = n + 81.
    let params = DdnParams::fit(2, 60, 3).unwrap();
    let ddn = Ddn::new(params);
    let k = params.tolerated_faults();
    assert_eq!(k, 27);
    let mut rng = SmallRng::seed_from_u64(300);
    for _ in 0..5 {
        let faults = AdversaryPattern::Random.generate(ddn.shape(), k, &mut rng);
        let emb = ddn.try_extract(&faults).expect("k = 27 guarantee");
        verify(&ddn, &emb, &faults);
    }
}

#[test]
fn mixed_node_and_edge_faults() {
    // Theorem 3 covers nodes AND edges; edges are ascribed to an endpoint.
    let ddn = ddn_d2_40();
    let params = *ddn.params();
    let g = ddn.build_graph();
    let k = params.tolerated_faults();
    let mut rng = SmallRng::seed_from_u64(400);
    for _ in 0..5 {
        let fs =
            mixed_adversarial_faults(&g, ddn.shape(), AdversaryPattern::Random, k, 0.5, &mut rng);
        // ascribe edge faults to an endpoint, as the proof does
        let ascribed = fs.ascribe_edges_to_nodes(|e| g.edge_endpoints(e));
        let faults: Vec<usize> = ascribed.faulty_nodes().collect();
        assert!(faults.len() <= k);
        let emb = ddn.try_extract(&faults).expect("mixed-fault guarantee");
        // no used edge may be faulty: used edges touch only non-ascribed
        // nodes, and every faulty edge has an ascribed endpoint
        let fault_nodes: std::collections::HashSet<usize> = faults.iter().copied().collect();
        for e in fs.faulty_edges() {
            let (u, _) = g.edge_endpoints(e);
            assert!(fault_nodes.contains(&u));
        }
        verify(&ddn, &emb, &faults);
    }
}

#[test]
fn degree_and_size_claims() {
    // Theorem 3: at most (n + k^{2^d/(2^d−1)})^d nodes, degree 4d.
    for (d, b) in [(1usize, 4usize), (2, 2), (2, 3)] {
        let params = DdnParams::fit(d, 50, b).unwrap();
        let k = params.tolerated_faults() as f64;
        let bound = (params.n as f64 + k.powf((1 << d) as f64 / ((1 << d) as f64 - 1.0)))
            .powi(d as i32)
            .round() as usize;
        assert!(params.num_nodes() <= bound + 1, "size bound violated");
        if params.num_nodes() < 100_000 {
            let g = Ddn::new(params).build_graph();
            assert_eq!(g.max_degree(), 4 * d);
        }
    }
}

#[test]
fn beyond_budget_fails_gracefully() {
    let ddn = ddn_d2_40();
    let params = *ddn.params();
    let m = params.m();
    // a pathological pattern far beyond k: full diagonal
    let faults: Vec<usize> = (0..m).map(|i| i * m + i).collect();
    match ddn.try_extract(&faults) {
        Ok(emb) => verify(&ddn, &emb, &faults), // over-budget may still work...
        Err(e) => {
            // ...but if it fails it must be the budget error, not a panic
            let msg = e.to_string();
            assert!(msg.contains("faults"), "unexpected error: {msg}");
        }
    }
}
