//! Shared test fixtures for the workspace's integration and property
//! tests.
//!
//! The same handful of tiny paper-regime instances, the same
//! seed-derived fault sampling, and the same independent embedding
//! audits were re-declared in every `tests/integration_*.rs` and in the
//! sweep property tests. This dev-only crate is their single home, so
//! a fixture change (say, retuning the canonical tiny `B²`) is one
//! edit, and every consumer agrees on what "the tiny instance" means.
//!
//! Everything here is deterministic: fault bitmaps derive from explicit
//! seeds via the same `SmallRng` discipline the simulators use.

use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::extract::TorusEmbedding;
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_faults::sample_bernoulli_faults;
use ftt_graph::Graph;
use ftt_sim::{ConstructionSpec, FaultRegime, SweepSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The canonical tiny `B²` parameter set (`d = 2, n = 54, b = 3,
/// ε_b = 1`) — the smallest Theorem 2 instance the test suite builds.
pub fn tiny_bdn_params() -> BdnParams {
    BdnParams::new(2, 54, 3, 1).expect("canonical tiny B² is valid")
}

/// The canonical tiny `B²` host.
pub fn tiny_bdn() -> Bdn {
    Bdn::build(tiny_bdn_params())
}

/// A tiny `A²` over the canonical inner `B²` with cluster factor
/// `k = 2` and the given supernode size / design half-edge rate.
pub fn tiny_adn(h: usize, sqrt_q: f64) -> Adn {
    Adn::build(AdnParams::new(tiny_bdn_params(), 2, h, sqrt_q).expect("valid tiny A²"))
}

/// The canonical tiny `D²` parameter set (`fit(2, 30, 2)`: `k = 8`,
/// `m = 45, n = 29`).
pub fn tiny_ddn_params() -> DdnParams {
    DdnParams::fit(2, 30, 2).expect("canonical tiny D² is valid")
}

/// The canonical tiny `D²` host.
pub fn tiny_ddn() -> Ddn {
    Ddn::new(tiny_ddn_params())
}

/// The mid-size `D²` used by the adversarial batteries
/// (`fit(2, 40, 2)`).
pub fn ddn_d2_40() -> Ddn {
    Ddn::new(DdnParams::fit(2, 40, 2).expect("valid D²_40"))
}

/// Seed-derived Bernoulli node-fault bitmap: the one seed discipline
/// every integration test shares (`SmallRng::seed_from_u64`, node
/// probability `p`, no edge faults).
pub fn bernoulli_node_bitmap(g: &Graph, p: f64, seed: u64) -> Vec<bool> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let f = sample_bernoulli_faults(g, p, 0.0, &mut rng);
    (0..g.num_nodes()).map(|v| f.node_faulty(v)).collect()
}

/// Audits a claimed `D^d_{n,k}` embedding arithmetically, without the
/// graph: injectivity, fault avoidance, and every guest torus edge
/// carried by `Ddn::edge_exists`.
///
/// # Panics
/// Panics with a diagnostic on the first violation.
pub fn verify_ddn_embedding(ddn: &Ddn, emb: &TorusEmbedding, faults: &[usize]) {
    let fs: std::collections::HashSet<usize> = faults.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    for &h in &emb.map {
        assert!(seen.insert(h), "map not injective at host {h}");
        assert!(!fs.contains(&h), "embedding uses faulty node {h}");
    }
    for g in emb.guest.iter() {
        for axis in 0..emb.guest.ndim() {
            let g2 = emb.guest.torus_step(g, axis, 1);
            assert!(
                ddn.edge_exists(emb.map[g], emb.map[g2]),
                "guest edge {g}-{g2} not carried by the host"
            );
        }
    }
}

/// The tiny-size Theorem 2 curve: `B²_54` over the given multiples of
/// the design probability `b^{−3d}` — the grid shape the `t2` preset,
/// CI monotonicity checks, and the sweep property tests all share.
pub fn t2_tiny_spec(mults: &[f64], trials: usize, root_seed: u64) -> SweepSpec {
    SweepSpec {
        name: "t2tiny".into(),
        constructions: vec![ConstructionSpec::Bdn {
            d: 2,
            n_min: 54,
            b: 3,
            eps_b: 1,
        }],
        regimes: mults
            .iter()
            .map(|&mult| FaultRegime::DesignBernoulli { mult, q: 0.0 })
            .collect(),
        trials,
        root_seed,
        baseline: None,
    }
}

/// A small mixed-construction sweep grid (`B²_54` and `D²_30` under a
/// node-only and a node+edge Bernoulli regime, 4 cells) — the
/// determinism-contract fixture.
pub fn mixed_determinism_spec() -> SweepSpec {
    SweepSpec {
        name: "determinism".into(),
        constructions: vec![
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 54,
                b: 3,
                eps_b: 1,
            },
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 30,
                b: 2,
            },
        ],
        regimes: vec![
            FaultRegime::Bernoulli { p: 2e-3, q: 0.0 },
            FaultRegime::Bernoulli { p: 1e-3, q: 1e-4 },
        ],
        trials: 10,
        root_seed: 41,
        baseline: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(tiny_bdn().graph().max_degree(), 10);
        assert_eq!(tiny_adn(6, 0.0).graph().num_nodes() % 6, 0);
        assert_eq!(tiny_ddn_params().tolerated_faults(), 8);
        assert_eq!(ddn_d2_40().params().b, 2);
    }

    #[test]
    fn bitmap_is_seed_deterministic() {
        let bdn = tiny_bdn();
        let a = bernoulli_node_bitmap(bdn.graph(), 1e-3, 7);
        let b = bernoulli_node_bitmap(bdn.graph(), 1e-3, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), bdn.num_nodes());
    }

    #[test]
    fn ddn_audit_accepts_valid_embedding() {
        let ddn = tiny_ddn();
        let faults = vec![5, 500, 900];
        let emb = ddn.try_extract(&faults).unwrap();
        verify_ddn_embedding(&ddn, &emb, &faults);
    }

    #[test]
    fn sweep_fixtures_validate() {
        let spec = t2_tiny_spec(&[0.0, 1.0], 2, 1);
        assert_eq!(spec.regimes.len(), 2);
        let mixed = mixed_determinism_spec();
        assert_eq!(mixed.constructions.len() * mixed.regimes.len(), 4);
        // both must be runnable specs
        ftt_sim::run_sweep(&t2_tiny_spec(&[0.0], 1, 1), 1).unwrap();
    }
}
