//! Scratch profiler: where does an `A²_108` extraction trial spend
//! its time? Not part of any artifact — run by hand with
//! `cargo run --release -p ftt-bench --example profile_a2`.

use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::BdnParams;
use ftt_core::construct::HostConstruction;
use ftt_faults::{sample_bernoulli_faults_into, FaultSet};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let inner = BdnParams::new(2, 54, 3, 1).unwrap();
    let host = Adn::build(AdnParams::new(inner, 2, 6, 0.0).unwrap());
    let p = 2e-3; // the BENCH_extraction a2_n108_bernoulli regime
    let mut faults = FaultSet::none(host.num_nodes(), host.graph().num_edges());
    let mut scratch = host.new_scratch();
    let trials = 300;

    let mut rng = SmallRng::seed_from_u64(1);
    let t = Instant::now();
    for _ in 0..trials {
        sample_bernoulli_faults_into(host.graph(), p, 0.0, &mut rng, &mut faults);
        black_box(&faults);
    }
    println!("sampling:   {:?}/trial", t.elapsed() / trials);

    let mut rng = SmallRng::seed_from_u64(1);
    let t = Instant::now();
    let halves = ftt_faults::HalfEdgeFaults::none(host.graph().num_edges());
    let mut goodness = ftt_core::adn::Goodness {
        good_node: Vec::new(),
        good_supernode: Vec::new(),
        good_count: Vec::new(),
    };
    let mut node_faulty = vec![false; host.num_nodes()];
    for _ in 0..trials {
        sample_bernoulli_faults_into(host.graph(), p, 0.0, &mut rng, &mut faults);
        for v in faults.faulty_nodes() {
            node_faulty[v] = true;
        }
        ftt_core::adn::goodness::classify_into(
            &host,
            &node_faulty,
            faults.faulty_node_ids(),
            &halves,
            &mut goodness,
        );
        for v in faults.faulty_nodes() {
            node_faulty[v] = false;
        }
        black_box(&goodness);
    }
    println!("+classify:  {:?}/trial", t.elapsed() / trials);

    let su_faulty: Vec<bool> = goodness.good_supernode.iter().map(|&g| !g).collect();
    let t = Instant::now();
    for _ in 0..trials {
        let _ = black_box(ftt_core::bdn::extract::extract_after_faults(
            host.inner(),
            &su_faulty,
        ));
    }
    println!("inner:      {:?}/trial", t.elapsed() / trials);

    let mut rng = SmallRng::seed_from_u64(1);
    let t = Instant::now();
    for _ in 0..trials {
        sample_bernoulli_faults_into(host.graph(), p, 0.0, &mut rng, &mut faults);
        let _ = black_box(host.try_extract_with(&faults, &mut scratch));
    }
    println!("+extract:   {:?}/trial", t.elapsed() / trials);

    let mut rng = SmallRng::seed_from_u64(1);
    let t = Instant::now();
    for _ in 0..trials {
        sample_bernoulli_faults_into(host.graph(), p, 0.0, &mut rng, &mut faults);
        let _ = black_box(ftt_sim::extract_verified_with(&host, &faults, &mut scratch));
    }
    println!("+verify:    {:?}/trial", t.elapsed() / trials);

    let emb = host
        .try_extract_with(&faults, &mut scratch)
        .expect("extractable");
    let t = Instant::now();
    for _ in 0..trials {
        let _ = black_box(ftt_graph::verify_torus_embedding(
            &emb.guest,
            &emb.map,
            host.graph(),
            |_| true,
            |_| true,
        ));
    }
    println!("verify-raw: {:?}/trial", t.elapsed() / trials);
}
