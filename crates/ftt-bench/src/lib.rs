//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Each experiment in DESIGN.md §3 has a binary in `src/bin/` that
//! regenerates its table; the helpers here keep instance selection and
//! trial plumbing consistent across them.

use ftt_core::bdn::{Bdn, BdnParams};
use ftt_faults::sample_bernoulli_faults;
use ftt_sim::{extract_verified, ExtractionFailure};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Standard 2-D Theorem 2 instances used across experiments (n, b, ε_b).
pub fn bdn_sweep_2d() -> Vec<BdnParams> {
    [
        (54usize, 3usize, 1usize),
        (108, 3, 1),
        (192, 4, 1),
        (216, 3, 1),
        (384, 4, 1),
    ]
    .into_iter()
    .filter_map(|(n, b, e)| BdnParams::new(2, n, b, e).ok())
    .collect()
}

/// One Theorem 2 trial: sample Bernoulli node faults at probability `p`
/// and attempt placement + extraction. Returns `(healthy, placed, ok)`.
///
/// Extraction and verification go through `ftt_sim::extract_verified`
/// — the same success criterion as the Monte-Carlo scenario runner and
/// the CLI, so experiment tables can never diverge from them.
pub fn bdn_trial(bdn: &Bdn, p: f64, seed: u64) -> (bool, bool, bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = sample_bernoulli_faults(bdn.oracle(), p, 0.0, &mut rng);
    let faulty: Vec<bool> = (0..bdn.num_nodes())
        .map(|v| faults.node_faulty(v))
        .collect();
    let healthy = ftt_core::bdn::check_health(bdn.params(), &faulty).is_healthy();
    match extract_verified(bdn, &faults) {
        Ok(_) => (healthy, true, true),
        Err(ExtractionFailure::Verification(_)) => (healthy, true, false),
        Err(ExtractionFailure::Placement(_)) => (healthy, false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_nonempty_and_valid() {
        let sweep = bdn_sweep_2d();
        assert!(sweep.len() >= 4);
        for p in sweep {
            assert_eq!(p.d, 2);
        }
    }

    #[test]
    fn trial_runs() {
        let bdn = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let (_h, placed, ok) = bdn_trial(&bdn, 0.0, 1);
        assert!(placed && ok, "fault-free trial must succeed");
    }
}
