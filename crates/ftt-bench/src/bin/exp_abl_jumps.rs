//! Experiment ABL-JUMPS: why the jump lengths are exactly `b+1`
//! (vertical) and `b` (diagonal).
//!
//! The extraction's column cycles bridge masked gaps of exactly `b+1`,
//! and its jump paths cross bands with diagonal moves of exactly `±b`.
//! We re-verify a correctly extracted embedding against mutated hosts
//! whose jump lengths are off by one: every mutation must break edge
//! coverage (MissingEdge), demonstrating both jump kinds are
//! load-bearing.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_abl_jumps`

use ftt_core::bdn::extract::extract_after_faults;
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_graph::{verify_torus_embedding, GraphBuilder};
use ftt_sim::Table;

/// Builds a `B²_n`-like host with configurable jump lengths.
fn build_variant(params: &BdnParams, vjump: usize, djump: usize) -> ftt_graph::Graph {
    let m = params.m();
    let n = params.n;
    let mut b = GraphBuilder::new(m * n);
    let node = |i: usize, z: usize| i * n + z;
    for i in 0..m {
        for z in 0..n {
            let v = node(i, z);
            b.add_edge(v, node((i + 1) % m, z));
            b.add_edge(v, node((i + vjump) % m, z));
            let z2 = (z + 1) % n;
            b.add_edge(v, node(i, z2));
            b.add_edge(v, node((i + djump) % m, z2));
            b.add_edge(v, node((i + m - djump) % m, z2));
        }
    }
    b.build()
}

fn main() {
    let params = BdnParams::new(2, 54, 3, 1).unwrap();
    let bdn = Bdn::build(params);
    let bb = params.b;
    // faults that force at least one band detour
    let mut faulty = vec![false; bdn.num_nodes()];
    faulty[bdn.cols().node(20, 20)] = true;
    faulty[bdn.cols().node(60, 40)] = true;
    let emb = extract_after_faults(&bdn, &faulty).expect("extraction");

    let mut table = Table::new(
        "ABL-JUMPS: embedding verification on mutated hosts (b = 3)",
        &["vertical jump", "diagonal jump", "verifies?"],
    );
    let variants = [
        (bb + 1, bb, true),      // the paper's lengths
        (bb, bb, false),         // vertical jump too short
        (bb + 2, bb, false),     // vertical jump too long
        (bb + 1, bb + 1, false), // diagonal jump too long
        (bb + 1, bb - 1, false), // diagonal jump too short
    ];
    for (vj, dj, expect_ok) in variants {
        let host = build_variant(&params, vj, dj);
        let ok =
            verify_torus_embedding(&emb.guest, &emb.map, &host, |v| !faulty[v], |_| true).is_ok();
        table.row(vec![
            format!("±{vj}"),
            format!("±{dj}"),
            if ok { "✓" } else { "✗ (MissingEdge)" }.to_string(),
        ]);
        assert_eq!(ok, expect_ok, "variant (±{vj}, ±{dj})");
    }
    println!("{table}");
    println!("only the paper's lengths (vertical b+1, diagonal b) carry the extracted");
    println!("torus: the vertical jump must bridge a full band plus the row after it,");
    println!("the diagonal jump must shift by exactly the band width. ✓ (asserted)");
}
