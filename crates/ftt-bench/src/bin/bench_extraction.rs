//! Emits `BENCH_extraction.json`: Monte-Carlo extraction throughput
//! (trials/sec) per construction at paper-regime fault parameters.
//!
//! This is the perf trajectory anchor for the trial pipeline: each
//! scenario runs `--trials` full sampling + extraction + verification
//! trials through `ftt_sim::run_extraction_trials` and records wall
//! time. Single-threaded by default so numbers are comparable across
//! machines and PRs; `--threads 0` uses all cores.
//!
//! ```text
//! bench_extraction [--trials N] [--seed S] [--threads T] [--out PATH]
//! ```

use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_core::construct::HostConstruction;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_faults::AdversaryPattern;
use ftt_faults::FaultSet;
use ftt_sim::{bernoulli_sampler, node_list_sampler, run_extraction_trials, FaultSampler};
use std::time::Instant;

struct ScenarioResult {
    name: String,
    construction: &'static str,
    params: String,
    trials: usize,
    successes: usize,
    seconds: f64,
    trials_per_sec: f64,
}

fn time_scenario<C, S>(
    name: &str,
    params: String,
    host: &C,
    trials: usize,
    seed: u64,
    threads: usize,
    sampler: S,
) -> ScenarioResult
where
    C: HostConstruction + Sync,
    S: FaultSampler<C>,
{
    // One warm-up extraction so lazy host state (e.g. the cached
    // `D^d_{n,k}` graph) is materialised outside the timed region.
    let _ = ftt_sim::extract_verified(
        host,
        &FaultSet::none(host.num_nodes(), host.graph().num_edges()),
    );
    let start = Instant::now();
    let stats = run_extraction_trials(host, trials, seed, threads, sampler);
    let seconds = start.elapsed().as_secs_f64();
    // 0.0 (not ∞) when the clock rounds to zero: the JSON must stay
    // parseable even for degenerate trial budgets.
    let tps = if seconds > 0.0 {
        trials as f64 / seconds
    } else {
        0.0
    };
    eprintln!(
        "{name:<28} {trials} trials in {seconds:.3}s  →  {tps:.1} trials/sec \
         ({} successes)",
        stats.successes
    );
    ScenarioResult {
        name: name.to_string(),
        construction: C::NAME,
        params,
        trials,
        successes: stats.successes,
        seconds,
        trials_per_sec: tps,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(trials: usize, seed: u64, threads: usize, results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"extraction\",\n");
    out.push_str(&format!("  \"trials\": {trials},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&r.name)));
        out.push_str(&format!(
            "      \"construction\": \"{}\",\n",
            json_escape(r.construction)
        ));
        out.push_str(&format!(
            "      \"params\": \"{}\",\n",
            json_escape(&r.params)
        ));
        out.push_str(&format!("      \"trials\": {},\n", r.trials));
        out.push_str(&format!("      \"successes\": {},\n", r.successes));
        out.push_str(&format!("      \"seconds\": {:.6},\n", r.seconds));
        out.push_str(&format!(
            "      \"trials_per_sec\": {:.3}\n",
            r.trials_per_sec
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_args() -> Result<(usize, u64, usize, String), String> {
    let mut trials = 200usize;
    let mut seed = 1u64;
    let mut threads = 1usize;
    let mut out = "BENCH_extraction.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--trials" => trials = take(i)?.parse().map_err(|e| format!("--trials: {e}"))?,
            "--seed" => seed = take(i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--threads" => threads = take(i)?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--out" => out = take(i)?.clone(),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    Ok((trials, seed, threads, out))
}

fn main() {
    let (trials, seed, threads, out_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: bench_extraction [--trials N] [--seed S] [--threads T] [--out PATH]");
            std::process::exit(1);
        }
    };
    let mut results = Vec::new();

    // B²_54 at the design fault probability p = b^{-3d} (Theorem 2 regime).
    {
        let params = BdnParams::new(2, 54, 3, 1).unwrap();
        let p = params.tolerated_fault_probability();
        let host = Bdn::build(params);
        results.push(time_scenario(
            "b2_n54_bernoulli",
            format!("n=54 b=3 eps_b=1 p={p:.3e} q=0"),
            &host,
            trials,
            seed,
            threads,
            bernoulli_sampler(p, 0.0),
        ));
    }

    // B²_192: a larger host, same regime.
    {
        let params = BdnParams::new(2, 192, 4, 1).unwrap();
        let p = params.tolerated_fault_probability();
        let host = Bdn::build(params);
        results.push(time_scenario(
            "b2_n192_bernoulli",
            format!("n=192 b=4 eps_b=1 p={p:.3e} q=0"),
            &host,
            trials,
            seed,
            threads,
            bernoulli_sampler(p, 0.0),
        ));
    }

    // A²_108 with sparse node faults (Theorem 1 regime, q = 0).
    {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let params = AdnParams::new(inner, 2, 6, 0.0).unwrap();
        let host = Adn::build(params);
        results.push(time_scenario(
            "a2_n108_bernoulli",
            "n=108 k=2 h=6 p=2e-3 q=0".to_string(),
            &host,
            trials,
            seed,
            threads,
            bernoulli_sampler(2e-3, 0.0),
        ));
    }

    // D²_{n,k} with the full worst-case budget of k random node faults.
    {
        let params = DdnParams::fit(2, 60, 2).unwrap();
        let k = params.tolerated_faults();
        let host = Ddn::new(params);
        results.push(time_scenario(
            "d2_adversarial_random",
            format!("n={} b=2 k={k}", params.n),
            &host,
            trials,
            seed,
            threads,
            node_list_sampler(move |host: &Ddn, seed| {
                let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
                AdversaryPattern::Random.generate(host.shape(), k, &mut rng)
            }),
        ));
    }

    let json = emit_json(trials, seed, threads, &results);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
