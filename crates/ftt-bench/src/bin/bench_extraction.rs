//! Emits `BENCH_extraction.json`: Monte-Carlo extraction throughput
//! (trials/sec) per construction at paper-regime fault parameters.
//!
//! This is the perf trajectory anchor for the trial pipeline: each
//! scenario runs `--trials` full sampling + extraction + verification
//! trials through `ftt_sim::run_extraction_trials` and records wall
//! time. Single-threaded by default so numbers are comparable across
//! machines and PRs; `--threads 0` uses all cores.
//!
//! ```text
//! bench_extraction [--trials N] [--seed S] [--threads T] [--out PATH]
//!                  [--giant] [--giant-only] [--giant-nmin N] [--giant-b B]
//! ```
//!
//! `--giant` additionally runs ONE implicit-host demonstration: a
//! `D³_{n,k}` instance far too large to materialise (default
//! `n ≥ 254`, `b = 2`: 510³ ≈ 1.3·10⁸ host nodes, ≈ 8·10⁸ edges) is
//! extracted after a worst-case budget of random node faults and the
//! resulting certificate is re-validated by the independent checker —
//! entirely through the algebraic adjacency oracle, memory
//! `O(#faults + guest map)`. The outcome lands in a top-level
//! `"giant"` object (separate from `"scenarios"`, which stays a
//! homogeneous trials/sec table) with peak RSS recorded from
//! `/proc/self/status`. `--giant-only` skips the throughput scenarios
//! (CI's `giant-smoke` uses it with a ≥10⁷-node `b = 1` instance).

use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_core::construct::HostConstruction;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_faults::AdversaryPattern;
use ftt_faults::FaultSet;
use ftt_sim::{bernoulli_sampler, node_list_sampler, run_extraction_trials, FaultSampler};
use std::time::Instant;

struct ScenarioResult {
    name: String,
    construction: &'static str,
    params: String,
    trials: usize,
    successes: usize,
    seconds: f64,
    trials_per_sec: f64,
}

fn time_scenario<C, S>(
    name: &str,
    params: String,
    host: &C,
    trials: usize,
    seed: u64,
    threads: usize,
    sampler: S,
) -> ScenarioResult
where
    C: HostConstruction + Sync,
    S: FaultSampler<C>,
{
    // One warm-up extraction so lazy host state (e.g. the cached
    // `D^d_{n,k}` graph) is materialised outside the timed region.
    let _ = ftt_sim::extract_verified(host, &FaultSet::none(host.num_nodes(), host.num_edges()));
    let start = Instant::now();
    let stats = run_extraction_trials(host, trials, seed, threads, sampler);
    let seconds = start.elapsed().as_secs_f64();
    // 0.0 (not ∞) when the clock rounds to zero: the JSON must stay
    // parseable even for degenerate trial budgets.
    let tps = if seconds > 0.0 {
        trials as f64 / seconds
    } else {
        0.0
    };
    eprintln!(
        "{name:<28} {trials} trials in {seconds:.3}s  →  {tps:.1} trials/sec \
         ({} successes)",
        stats.successes
    );
    ScenarioResult {
        name: name.to_string(),
        construction: C::NAME,
        params,
        trials,
        successes: stats.successes,
        seconds,
        trials_per_sec: tps,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Outcome of the `--giant` implicit-host demonstration.
struct GiantResult {
    params: String,
    host_nodes: usize,
    host_edges: usize,
    guest_nodes: usize,
    faults: usize,
    extract_seconds: f64,
    certify_seconds: f64,
    certified: bool,
    peak_rss_mb: f64,
}

/// Peak resident set size in MiB (`VmHWM` from `/proc/self/status`);
/// 0.0 where the proc filesystem is unavailable.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse::<f64>().ok())
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Extracts and independently certifies one giant implicit `D³`
/// instance. Every adjacency question is answered arithmetically by
/// the algebraic oracle — nothing host-sized is ever allocated except
/// the guest map itself.
fn run_giant(n_min: usize, b: usize, seed: u64) -> GiantResult {
    let params = DdnParams::fit(3, n_min, b).expect("giant D^3 parameters");
    let host = Ddn::new(params);
    let k = params.tolerated_faults();
    let num_nodes = HostConstruction::num_nodes(&host);
    let num_edges = HostConstruction::num_edges(&host);
    eprintln!(
        "giant: D^3 n={} m={} — {num_nodes} host nodes, {num_edges} edges, \
         k={k} worst-case faults (implicit host, no CSR)",
        params.n,
        params.m()
    );
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let faulty = AdversaryPattern::Random.generate(host.shape(), k, &mut rng);
    let mut faults = FaultSet::none(num_nodes, num_edges);
    for &v in &faulty {
        faults.kill_node(v);
    }
    let start = Instant::now();
    let cert = host
        .try_certify(&faults)
        .expect("within the Theorem 3 budget");
    let extract_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let verdict = ftt_verify::check_certificate(&cert, HostConstruction::oracle(&host), &faults);
    let certify_seconds = start.elapsed().as_secs_f64();
    let certified = verdict.is_ok();
    if let Err(e) = &verdict {
        eprintln!("giant: certificate REJECTED: {e}");
    }
    debug_assert!(
        host.materialized_graph().is_none(),
        "giant path stayed implicit"
    );
    let rss = peak_rss_mb();
    eprintln!(
        "giant: {} guest nodes extracted in {extract_seconds:.2}s, \
         independently certified in {certify_seconds:.2}s (peak RSS {rss:.0} MiB)",
        cert.map.len()
    );
    GiantResult {
        params: format!("d=3 n={} m={} b={b} k={k}", params.n, params.m()),
        host_nodes: num_nodes,
        host_edges: num_edges,
        guest_nodes: cert.map.len(),
        faults: k,
        extract_seconds,
        certify_seconds,
        certified,
        peak_rss_mb: rss,
    }
}

fn emit_json(
    trials: usize,
    seed: u64,
    threads: usize,
    results: &[ScenarioResult],
    giant: Option<&GiantResult>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"extraction\",\n");
    out.push_str(&format!("  \"trials\": {trials},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&r.name)));
        out.push_str(&format!(
            "      \"construction\": \"{}\",\n",
            json_escape(r.construction)
        ));
        out.push_str(&format!(
            "      \"params\": \"{}\",\n",
            json_escape(&r.params)
        ));
        out.push_str(&format!("      \"trials\": {},\n", r.trials));
        out.push_str(&format!("      \"successes\": {},\n", r.successes));
        out.push_str(&format!("      \"seconds\": {:.6},\n", r.seconds));
        out.push_str(&format!(
            "      \"trials_per_sec\": {:.3}\n",
            r.trials_per_sec
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    if let Some(g) = giant {
        out.push_str("  ],\n");
        out.push_str("  \"giant\": {\n");
        out.push_str("    \"name\": \"giant\",\n");
        out.push_str("    \"construction\": \"D^d_{n,k}\",\n");
        out.push_str(&format!(
            "    \"params\": \"{}\",\n",
            json_escape(&g.params)
        ));
        out.push_str(&format!("    \"host_nodes\": {},\n", g.host_nodes));
        out.push_str(&format!("    \"host_edges\": {},\n", g.host_edges));
        out.push_str(&format!("    \"guest_nodes\": {},\n", g.guest_nodes));
        out.push_str(&format!("    \"faults\": {},\n", g.faults));
        out.push_str(&format!(
            "    \"extract_seconds\": {:.6},\n",
            g.extract_seconds
        ));
        out.push_str(&format!(
            "    \"certify_seconds\": {:.6},\n",
            g.certify_seconds
        ));
        out.push_str(&format!("    \"certified\": {},\n", g.certified));
        out.push_str(&format!("    \"peak_rss_mb\": {:.1}\n", g.peak_rss_mb));
        out.push_str("  }\n}\n");
    } else {
        out.push_str("  ]\n}\n");
    }
    out
}

struct Args {
    trials: usize,
    seed: u64,
    threads: usize,
    out: String,
    giant: bool,
    giant_only: bool,
    giant_nmin: usize,
    giant_b: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trials: 200,
        seed: 1,
        threads: 1,
        out: "BENCH_extraction.json".to_string(),
        giant: false,
        giant_only: false,
        // Defaults give 510³ = 132 651 000 host nodes — the ≥10⁸
        // implicit-host headline instance.
        giant_nmin: 254,
        giant_b: 2,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--trials" => {
                args.trials = take(i)?.parse().map_err(|e| format!("--trials: {e}"))?;
                i += 2;
            }
            "--seed" => {
                args.seed = take(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--threads" => {
                args.threads = take(i)?.parse().map_err(|e| format!("--threads: {e}"))?;
                i += 2;
            }
            "--out" => {
                args.out = take(i)?.clone();
                i += 2;
            }
            "--giant" => {
                args.giant = true;
                i += 1;
            }
            "--giant-only" => {
                args.giant = true;
                args.giant_only = true;
                i += 1;
            }
            "--giant-nmin" => {
                args.giant_nmin = take(i)?.parse().map_err(|e| format!("--giant-nmin: {e}"))?;
                i += 2;
            }
            "--giant-b" => {
                args.giant_b = take(i)?.parse().map_err(|e| format!("--giant-b: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench_extraction [--trials N] [--seed S] [--threads T] [--out PATH]\n\
                 \x20                    [--giant] [--giant-only] [--giant-nmin N] [--giant-b B]"
            );
            std::process::exit(1);
        }
    };
    let (trials, seed, threads, out_path) = (args.trials, args.seed, args.threads, &args.out);
    let mut results = Vec::new();

    // B²_54 at the design fault probability p = b^{-3d} (Theorem 2 regime).
    if !args.giant_only {
        let params = BdnParams::new(2, 54, 3, 1).unwrap();
        let p = params.tolerated_fault_probability();
        let host = Bdn::build(params);
        results.push(time_scenario(
            "b2_n54_bernoulli",
            format!("n=54 b=3 eps_b=1 p={p:.3e} q=0"),
            &host,
            trials,
            seed,
            threads,
            bernoulli_sampler(p, 0.0),
        ));
    }

    // B²_192: a larger host, same regime.
    if !args.giant_only {
        let params = BdnParams::new(2, 192, 4, 1).unwrap();
        let p = params.tolerated_fault_probability();
        let host = Bdn::build(params);
        results.push(time_scenario(
            "b2_n192_bernoulli",
            format!("n=192 b=4 eps_b=1 p={p:.3e} q=0"),
            &host,
            trials,
            seed,
            threads,
            bernoulli_sampler(p, 0.0),
        ));
    }

    // A²_108 with sparse node faults (Theorem 1 regime, q = 0).
    if !args.giant_only {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let params = AdnParams::new(inner, 2, 6, 0.0).unwrap();
        let host = Adn::build(params);
        results.push(time_scenario(
            "a2_n108_bernoulli",
            "n=108 k=2 h=6 p=2e-3 q=0".to_string(),
            &host,
            trials,
            seed,
            threads,
            bernoulli_sampler(2e-3, 0.0),
        ));
    }

    // D²_{n,k} with the full worst-case budget of k random node faults.
    if !args.giant_only {
        let params = DdnParams::fit(2, 60, 2).unwrap();
        let k = params.tolerated_faults();
        let host = Ddn::new(params);
        results.push(time_scenario(
            "d2_adversarial_random",
            format!("n={} b=2 k={k}", params.n),
            &host,
            trials,
            seed,
            threads,
            node_list_sampler(move |host: &Ddn, seed| {
                let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
                AdversaryPattern::Random.generate(host.shape(), k, &mut rng)
            }),
        ));
    }

    // The implicit-host giant: extraction + independent certification
    // through the algebraic oracle, no CSR ever materialised.
    let giant = args
        .giant
        .then(|| run_giant(args.giant_nmin, args.giant_b, seed));
    if let Some(g) = &giant {
        if !g.certified {
            eprintln!("error: giant instance failed independent certification");
            std::process::exit(1);
        }
    }

    let json = emit_json(trials, seed, threads, &results, giant.as_ref());
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
