//! Emits `BENCH_online.json`: per-arrival cost of **incremental repair**
//! versus **from-scratch re-extraction** on identical fault streams.
//!
//! For each scenario, fault streams are recorded once as replayable
//! journals (so both contenders see byte-identical arrival sequences),
//! then timed twice:
//!
//! * **incremental** — every arrival goes through
//!   `RepairState::apply`: O(1) absorption, local band shifts, or a
//!   full rebuild, with batch parity guaranteed (no per-arrival
//!   verification needed — validity is maintained by construction and
//!   spot-checkable via `ftt lifetime --certify-every`);
//! * **rebuild** — the naive online consumer: after every arrival,
//!   re-run the batch path on the accumulated fault set through
//!   `extract_verified_with` (extraction + embedding verification —
//!   the repo's batch per-trial success criterion).
//!
//! Both loops process the same arrivals and stop at the same killing
//! fault (batch parity makes the stopping points provably equal, and
//! this binary asserts it). The `speedup` column is the per-arrival
//! throughput ratio; CI gates it per construction via
//! `tools/check_perf.py --online` — `B^d` scenarios must clear ≥ 25×
//! with a rebuild fraction ≤ 0.20 (the tile-local repaint killed the
//! Rebuild tier), `A²` scenarios ≥ 2×.
//!
//! ```text
//! bench_online [--trials N] [--seed S] [--out PATH]
//! ```
//!
//! Single-threaded by construction: both contenders run the same
//! sequential per-arrival loop, so the comparison is hardware-neutral.

use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_core::construct::HostConstruction;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_core::online::RepairState;
use ftt_faults::{FaultEvent, FaultJournal, FaultSet, StreamSpec};
use ftt_sim::lifetime::run_lifetime_trial;
use ftt_sim::runner::trial_seed;
use ftt_sim::scenario::extract_verified_with;
use std::time::Instant;

struct ScenarioResult {
    name: String,
    construction: &'static str,
    params: String,
    trials: usize,
    arrivals: usize,
    frac_fast: f64,
    frac_local: f64,
    frac_rebuild: f64,
    incremental_seconds: f64,
    incremental_arrivals_per_sec: f64,
    rebuild_seconds: f64,
    rebuild_arrivals_per_sec: f64,
    speedup: f64,
}

fn bench_scenario<C: HostConstruction>(
    name: &str,
    params: String,
    host: &C,
    stream: &StreamSpec,
    cap: usize,
    trials: usize,
    seed: u64,
) -> ScenarioResult {
    let num_nodes = host.num_nodes();
    let num_edges = host.num_edges();
    let mut state = RepairState::new_idle(host);

    // Record the streams once; both contenders replay these journals.
    let journals: Vec<FaultJournal> = (0..trials as u64)
        .map(|i| {
            let mut journal = FaultJournal::new();
            let mut s = stream.stream(num_nodes, num_edges, trial_seed(seed, i));
            run_lifetime_trial(host, &mut state, &mut s, cap, 0, 0, Some(&mut journal));
            journal
        })
        .collect();

    // Each contender's loop is repeated REPS times over the identical
    // journals and the best wall time kept — the work is deterministic,
    // so the minimum is the least-noise measurement (this keeps the CI
    // speedup gate robust on shared runners whose one-shot millisecond
    // windows are at the mercy of scheduler stalls).
    const REPS: usize = 3;

    // Contender 1: incremental repair.
    let (mut fast, mut local, mut rebuild) = (0usize, 0usize, 0usize);
    let mut inc_arrivals = 0usize;
    let mut incremental_seconds = f64::INFINITY;
    for rep in 0..REPS {
        let mut arrivals = 0usize;
        let start = Instant::now();
        for journal in &journals {
            let mut replay = journal.replay();
            let rec = run_lifetime_trial(host, &mut state, &mut replay, usize::MAX, 0, 0, None);
            arrivals += rec.arrivals;
            if rep == 0 {
                fast += rec.fast;
                local += rec.local;
                rebuild += rec.rebuild;
            }
        }
        incremental_seconds = incremental_seconds.min(start.elapsed().as_secs_f64());
        if rep == 0 {
            inc_arrivals = arrivals;
        } else {
            assert_eq!(inc_arrivals, arrivals, "{name}: replays must be identical");
        }
    }

    // Contender 2: from-scratch re-extraction (+ verification, the
    // batch success criterion) after every arrival.
    let mut faults = FaultSet::none(num_nodes, num_edges);
    let mut scratch = host.new_scratch();
    let mut rebuild_seconds = f64::INFINITY;
    for _ in 0..REPS {
        let mut batch_arrivals = 0usize;
        let start = Instant::now();
        for journal in &journals {
            faults.clear();
            for event in journal.events() {
                match event.event {
                    FaultEvent::Kill(f) => {
                        faults.kill(f);
                    }
                    FaultEvent::Repair(f) => {
                        faults.revive(f);
                    }
                }
                batch_arrivals += 1;
                if extract_verified_with(host, &faults, &mut scratch).is_err() {
                    break;
                }
            }
        }
        rebuild_seconds = rebuild_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(
            inc_arrivals, batch_arrivals,
            "{name}: batch parity must stop both loops at the same arrival"
        );
    }

    let aps = |secs: f64| {
        if secs > 0.0 {
            inc_arrivals as f64 / secs
        } else {
            0.0
        }
    };
    let repairs = (fast + local + rebuild).max(1) as f64;
    let speedup = if incremental_seconds > 0.0 {
        rebuild_seconds / incremental_seconds
    } else {
        0.0
    };
    eprintln!(
        "{name:<24} {inc_arrivals} arrivals: incremental {:.3}s vs rebuild {:.3}s  →  {speedup:.1}×  \
         (fast/local/rebuild {:.2}/{:.2}/{:.2})",
        incremental_seconds,
        rebuild_seconds,
        fast as f64 / repairs,
        local as f64 / repairs,
        rebuild as f64 / repairs,
    );
    ScenarioResult {
        name: name.to_string(),
        construction: C::NAME,
        params,
        trials,
        arrivals: inc_arrivals,
        frac_fast: fast as f64 / repairs,
        frac_local: local as f64 / repairs,
        frac_rebuild: rebuild as f64 / repairs,
        incremental_seconds,
        incremental_arrivals_per_sec: aps(incremental_seconds),
        rebuild_seconds,
        rebuild_arrivals_per_sec: aps(rebuild_seconds),
        speedup,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(trials: usize, seed: u64, results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"online\",\n");
    out.push_str(&format!("  \"trials\": {trials},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&r.name)));
        out.push_str(&format!(
            "      \"construction\": \"{}\",\n",
            json_escape(r.construction)
        ));
        out.push_str(&format!(
            "      \"params\": \"{}\",\n",
            json_escape(&r.params)
        ));
        out.push_str(&format!("      \"trials\": {},\n", r.trials));
        out.push_str(&format!("      \"arrivals\": {},\n", r.arrivals));
        out.push_str(&format!("      \"frac_fast\": {:.4},\n", r.frac_fast));
        out.push_str(&format!("      \"frac_local\": {:.4},\n", r.frac_local));
        out.push_str(&format!("      \"frac_rebuild\": {:.4},\n", r.frac_rebuild));
        out.push_str(&format!(
            "      \"incremental_seconds\": {:.6},\n",
            r.incremental_seconds
        ));
        out.push_str(&format!(
            "      \"incremental_arrivals_per_sec\": {:.3},\n",
            r.incremental_arrivals_per_sec
        ));
        out.push_str(&format!(
            "      \"rebuild_seconds\": {:.6},\n",
            r.rebuild_seconds
        ));
        out.push_str(&format!(
            "      \"rebuild_arrivals_per_sec\": {:.3},\n",
            r.rebuild_arrivals_per_sec
        ));
        out.push_str(&format!("      \"speedup\": {:.3}\n", r.speedup));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_args() -> Result<(usize, u64, String), String> {
    let mut trials = 20usize;
    let mut seed = 1u64;
    let mut out = "BENCH_online.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--trials" => trials = take(i)?.parse().map_err(|e| format!("--trials: {e}"))?,
            "--seed" => seed = take(i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => out = take(i)?.clone(),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    Ok((trials, seed, out))
}

fn main() {
    let (trials, seed, out_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: bench_online [--trials N] [--seed S] [--out PATH]");
            std::process::exit(1);
        }
    };
    let mut results = Vec::new();

    // B²_54 under a node trickle (Theorem 2 host, lifetime regime).
    {
        let params = BdnParams::new(2, 54, 3, 1).unwrap();
        let host = Bdn::build(params);
        let stream = StreamSpec::Trickle {
            node_rate: 1e-3,
            edge_rate: 0.0,
        };
        let cap = 4 * HostConstruction::num_nodes(&host);
        results.push(bench_scenario(
            "b2_n54_trickle",
            "n=54 b=3 eps_b=1 node_rate=1e-3".into(),
            &host,
            &stream,
            cap,
            trials,
            seed,
        ));
    }

    // B²_192 under a node trickle — the ≥5× target scenario.
    {
        let params = BdnParams::new(2, 192, 4, 1).unwrap();
        let host = Bdn::build(params);
        let stream = StreamSpec::Trickle {
            node_rate: 1e-3,
            edge_rate: 0.0,
        };
        let cap = 4 * HostConstruction::num_nodes(&host);
        results.push(bench_scenario(
            "b2_n192_trickle",
            "n=192 b=4 eps_b=1 node_rate=1e-3".into(),
            &host,
            &stream,
            cap,
            trials,
            seed,
        ));
    }

    // D²_{n,k} under a node+edge trickle, run to death.
    {
        let params = DdnParams::fit(2, 60, 2).unwrap();
        let host = Ddn::new(params);
        let stream = StreamSpec::Trickle {
            node_rate: 1e-3,
            edge_rate: 1e-4,
        };
        let cap = 4 * HostConstruction::num_nodes(&host);
        results.push(bench_scenario(
            "d2_trickle",
            format!("n={} b=2 node_rate=1e-3 edge_rate=1e-4", params.n),
            &host,
            &stream,
            cap,
            trials,
            seed,
        ));
    }

    // D²_{n,k} against the adaptive targeted adversary, 2× budget.
    {
        let params = DdnParams::fit(2, 60, 2).unwrap();
        let k = params.tolerated_faults();
        let host = Ddn::new(params);
        results.push(bench_scenario(
            "d2_targeted",
            format!("n={} b=2 k={k} cap=2k", params.n),
            &host,
            &StreamSpec::Targeted,
            2 * k,
            trials,
            seed,
        ));
    }

    // A²_108 under a node trickle: scattered demotions — mostly cached
    // goodness deltas (Fast/Local) with the occasional re-greedy when a
    // used node is hit. The rebuild contender pays classification +
    // inner B² extraction + greedy + verification per arrival, so the
    // arrival cap is kept modest.
    {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let params = AdnParams::new(inner, 2, 6, 0.0).unwrap();
        let host = Adn::build(params);
        let stream = StreamSpec::Trickle {
            node_rate: 1e-3,
            edge_rate: 0.0,
        };
        results.push(bench_scenario(
            "a2_n108_trickle",
            "n=108 k=2 h=6 q=0 node_rate=1e-3".into(),
            &host,
            &stream,
            500,
            trials,
            seed,
        ));
    }

    // A²_108 against the targeted adversary: every arrival kills an
    // occupied host node, forcing the level-2 re-greedy — the worst
    // case for the incremental path, which must still beat re-running
    // the full pipeline.
    {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let params = AdnParams::new(inner, 2, 6, 0.0).unwrap();
        let host = Adn::build(params);
        results.push(bench_scenario(
            "a2_n108_targeted",
            "n=108 k=2 h=6 q=0 cap=300".into(),
            &host,
            &StreamSpec::Targeted,
            300,
            trials,
            seed,
        ));
    }

    let json = emit_json(trials, seed, &results);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
