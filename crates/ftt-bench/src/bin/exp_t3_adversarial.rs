//! Experiment T3-ADVERSARIAL: Theorem 3's worst-case guarantee — a
//! thin driver over the `t3` sweep preset
//! ([`ftt_sim::SweepSpec::preset`]).
//!
//! The preset crosses two `D²_{n,k}` instances with adversarial
//! patterns (random, clustered cube, residue spread) at budget
//! multiples `{1, 2, 4}`. The `×1` cells are the theorem's guarantee:
//! **any** `k = b^(2^d − 1)` faults must be tolerated, so this binary
//! asserts their success rate is exactly 1. Beyond the bound the
//! guarantee lapses and structured (residue-spread) adversaries break
//! earlier than random — that's the curve the over-budget cells chart.
//!
//! Emits `SWEEP_t3.json` + `SWEEP_t3.csv` (schema-versioned, the CI
//! artifact format).
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t3_adversarial`

use ftt_sim::{run_sweep, SweepSpec};

fn main() {
    let spec = SweepSpec::preset("t3").expect("t3 is a checked-in preset");
    let report = run_sweep(&spec, 0).expect("t3 preset must expand and run");
    println!("{}", report.table());
    for cell in &report.cells {
        if cell.mult == Some(1.0) {
            assert_eq!(
                cell.stats.successes, cell.stats.trials,
                "Theorem 3 violated: {} must tolerate any k = budget faults",
                cell.id
            );
        }
    }
    report
        .write_artifacts("SWEEP_t3.json", "SWEEP_t3.csv")
        .expect("write sweep artifacts");
    println!("wrote SWEEP_t3.json and SWEEP_t3.csv");
    println!("paper claim (Thm 3): ANY k = b^(2^d − 1) faults are tolerated — every ×1 cell");
    println!("above is asserted at success 1.0. Beyond the bound the guarantee lapses;");
    println!("structured (residue-spread) adversaries break earlier than random.");
}
