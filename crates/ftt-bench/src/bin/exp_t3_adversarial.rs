//! Experiment T3-ADVERSARIAL: Theorem 3's worst-case guarantee.
//!
//! For `d ∈ {1, 2}`, every adversarial pattern at the full budget `k`
//! must give 100% extraction success (asserted); pushing `k` beyond the
//! bound locates the empirical breaking point of the pigeonhole
//! placement.
//!
//! All trials dispatch through the [`HostConstruction`] trait via
//! [`run_extraction_trials`], so every success is an extracted **and
//! verified** fault-free torus.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t3_adversarial`

use ftt_core::construct::HostConstruction;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_faults::AdversaryPattern;
use ftt_sim::{node_list_sampler, run_extraction_trials, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Sampler placing `k` faults from `pattern` (seeded per trial).
fn adversary_sampler(pattern: AdversaryPattern, k: usize) -> impl ftt_sim::FaultSampler<Ddn> {
    node_list_sampler(move |host: &Ddn, seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        pattern.generate(host.shape(), k, &mut rng)
    })
}

fn main() {
    let trials = 40;
    let instances = [
        DdnParams::fit(1, 60, 5).unwrap(),
        DdnParams::fit(2, 40, 2).unwrap(),
        DdnParams::fit(2, 60, 3).unwrap(),
    ];

    let mut table = Table::new(
        "T3-ADVERSARIAL: guaranteed regime (k = budget)",
        &["d", "n", "k", "pattern", "success"],
    );
    for params in instances {
        let ddn = <Ddn as HostConstruction>::build(params);
        let k = params.tolerated_faults();
        for pat in AdversaryPattern::battery(ddn.shape(), params.band_width(0) + 1) {
            let stats = run_extraction_trials(&ddn, trials, 3, 0, adversary_sampler(pat, k));
            assert_eq!(
                stats.successes, trials,
                "Theorem 3 violated: {pat:?} on d={}, k={k}",
                params.d
            );
            table.row(vec![
                params.d.to_string(),
                params.n.to_string(),
                k.to_string(),
                format!("{pat:?}"),
                format!("{}/{}", stats.successes, stats.trials),
            ]);
        }
    }
    println!("{table}");

    let params = DdnParams::fit(2, 40, 2).unwrap();
    let ddn = <Ddn as HostConstruction>::build(params);
    let k = params.tolerated_faults();
    let mut over = Table::new(
        "T3-ADVERSARIAL: beyond the bound (d=2, random + residue-spread)",
        &["k/budget", "k", "P(random)", "P(residue-spread)"],
    );
    for mult in [1usize, 2, 4, 8, 16, 32] {
        let kk = (k * mult).min(ddn.shape().len() / 2);
        let rnd = run_extraction_trials(
            &ddn,
            trials,
            5,
            0,
            adversary_sampler(AdversaryPattern::Random, kk),
        );
        let spread = run_extraction_trials(
            &ddn,
            trials,
            7,
            0,
            adversary_sampler(
                AdversaryPattern::ResidueSpread {
                    axis: 0,
                    modulus: params.band_width(0) + 1,
                },
                kk,
            ),
        );
        over.row(vec![
            format!("{mult}×"),
            kk.to_string(),
            format!("{:.2}", rnd.rate()),
            format!("{:.2}", spread.rate()),
        ]);
    }
    println!("{over}");
    println!("paper claim (Thm 3): ANY k = b^(2^d −1) faults are tolerated — first table");
    println!("asserts 100% across the pattern battery. Beyond the bound the guarantee");
    println!("lapses; structured (residue-spread) adversaries break earlier than random.");
}
