//! Experiment T1-SUCCESS: Theorem 1 — `A²_n` under constant node
//! probability `p` and edge probability `q` (half-edge model).
//!
//! Sweeps `p` (and one nonzero `q`), reporting the good-node fraction,
//! mean bad-supernode count and end-to-end success probability. The
//! shape to check: success stays high while the expected bad-supernode
//! count is ≲ 1 and collapses once bad supernodes start colliding in
//! the inner `B²_N`'s small tile grid.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t1_success`

use ftt_core::adn::embed::extract_after_faults_adn;
use ftt_core::adn::goodness::classify;
use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::BdnParams;
use ftt_faults::{sample_bernoulli_faults, HalfEdgeFaults};
use ftt_sim::{run_trials, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let inner = BdnParams::new(2, 54, 3, 1).unwrap();
    let params = AdnParams::new(inner, 2, 10, 5e-4).unwrap();
    let adn = Adn::build(params);
    println!(
        "A²_{}: h = {}, degree {}, {} nodes, thresholds: ≤{} bad halves, ≥{} good nodes\n",
        params.n(),
        params.h,
        adn.graph().max_degree(),
        adn.num_nodes(),
        params.max_bad_halves(),
        params.min_good_nodes()
    );
    let trials = 30;
    let mut table = Table::new(
        "T1-SUCCESS: A²_108 under constant fault probabilities",
        &["p", "q", "good-node frac", "bad supernodes", "P(success)"],
    );
    for (p, sqrt_q) in [
        (0.00, 0.0),
        (0.02, 0.0),
        (0.05, 0.0),
        (0.10, 0.0),
        (0.15, 0.0),
        (0.02, 5e-4),
    ] {
        // goodness statistics from one representative trial
        let mut rng = SmallRng::seed_from_u64(1);
        let nf = sample_bernoulli_faults(adn.graph(), p, 0.0, &mut rng);
        let faulty: Vec<bool> = (0..adn.num_nodes()).map(|v| nf.node_faulty(v)).collect();
        let halves = HalfEdgeFaults::sample(adn.graph(), sqrt_q, &mut rng);
        let g = classify(&adn, &faulty, &halves);
        let stats = run_trials(trials, 31, 0, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let nf = sample_bernoulli_faults(adn.graph(), p, 0.0, &mut rng);
            let faulty: Vec<bool> = (0..adn.num_nodes()).map(|v| nf.node_faulty(v)).collect();
            let halves = HalfEdgeFaults::sample(adn.graph(), sqrt_q, &mut rng);
            extract_after_faults_adn(&adn, &faulty, &halves).is_ok()
        });
        table.row(vec![
            format!("{p:.2}"),
            format!("{:.1e}", sqrt_q * sqrt_q),
            format!("{:.3}", g.good_node_fraction()),
            g.bad_supernodes().to_string(),
            format!("{:.2}", stats.rate()),
        ]);
    }
    println!("{table}");
    println!("paper claim (Thm 1): any constant p (and small constant q) is tolerated whp");
    println!("as n → ∞ with h = Θ(log log n). Finite shape: success ≈ 1 while the");
    println!("bad-supernode count stays ≈ 0, degrading once the inner B² must mask");
    println!("several colliding supernode faults.");
}
