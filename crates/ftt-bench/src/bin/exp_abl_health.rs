//! Experiment ABL-HEALTH: which healthiness condition fails first?
//!
//! Lemma 4 proves all three conditions hold whp at the design fault
//! probability; Lemma 5 shows they suffice. This ablation sweeps `p`
//! upward and attributes failures: per condition violation frequency,
//! plus the key sanity check P(placement fails | healthy) = 0.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_abl_health`

use ftt_core::bdn::place::place_bands;
use ftt_core::bdn::{check_health, Bdn, BdnParams};
use ftt_faults::sample_bernoulli_faults;
use ftt_sim::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let params = BdnParams::new(2, 192, 4, 1).unwrap();
    let bdn = Bdn::build(params);
    let trials = 50;
    let mut table = Table::new(
        "ABL-HEALTH: healthiness condition violations vs p (B²_192, 50 trials)",
        &[
            "p",
            "E[faults]",
            "cond1 (rows)",
            "cond2 (brick quota)",
            "cond3 (frames)",
            "healthy",
            "placed",
            "placed|healthy",
        ],
    );
    for p in [1e-5f64, 4e-5, 1e-4, 2.4e-4, 5e-4, 1e-3] {
        let mut c1 = 0usize;
        let mut c2 = 0usize;
        let mut c3 = 0usize;
        let mut healthy = 0usize;
        let mut placed = 0usize;
        let mut placed_given_healthy = 0usize;
        for seed in 0..trials as u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let f = sample_bernoulli_faults(bdn.oracle(), p, 0.0, &mut rng);
            let faulty: Vec<bool> = (0..bdn.num_nodes()).map(|v| f.node_faulty(v)).collect();
            let h = check_health(&params, &faulty);
            c1 += (h.cond1_violations > 0) as usize;
            c2 += (h.cond2_violations > 0) as usize;
            c3 += (h.cond3_violations > 0) as usize;
            let ok = place_bands(&bdn, &faulty).is_ok();
            healthy += h.is_healthy() as usize;
            placed += ok as usize;
            if h.is_healthy() {
                assert!(ok, "Lemma 5 violated: healthy instance failed placement");
                placed_given_healthy += 1;
            }
        }
        let frac = |x: usize| format!("{:.2}", x as f64 / trials as f64);
        table.row(vec![
            format!("{p:.1e}"),
            format!("{:.1}", p * bdn.num_nodes() as f64),
            frac(c1),
            frac(c2),
            frac(c3),
            frac(healthy),
            frac(placed),
            if healthy > 0 {
                format!("{placed_given_healthy}/{healthy}")
            } else {
                "-".into()
            },
        ]);
    }
    println!("{table}");
    println!("shape to check: cond3 (clean frames) is the binding constraint at these");
    println!("sizes (radius-1 frames on a 16×12 tile grid), cond2 (brick quota, ε_b = 1)");
    println!("next, cond1 (clean row runs) last; and placed|healthy is always 1 —");
    println!("Lemma 5, asserted every trial. P(placed) ≥ P(healthy): the algorithm is");
    println!("strictly stronger than the sufficient condition.");
}
