//! Experiment T2-DEGREE: Theorem 2 structural claims — degree exactly
//! `6d − 2` and node count at most `(1+ε)n^d` — audited on built graphs
//! for `d = 2, 3`.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t2_degree`

use ftt_core::bdn::{Bdn, BdnParams};
use ftt_sim::Table;

fn main() {
    let mut table = Table::new(
        "T2-DEGREE: structure of B^d_n",
        &[
            "d",
            "n",
            "b",
            "ε_b",
            "nodes",
            "(1+ε)n^d",
            "deg(min)",
            "deg(max)",
            "6d−2",
        ],
    );
    let instances = [
        BdnParams::new(2, 54, 3, 1),
        BdnParams::new(2, 108, 3, 1),
        BdnParams::new(2, 192, 4, 1),
        BdnParams::new(2, 192, 4, 2),
        BdnParams::new(2, 384, 4, 1),
        BdnParams::fit(3, 50, 3, 1),
    ];
    for p in instances.into_iter().flatten() {
        let bdn = Bdn::build(p);
        let bound = (p.redundancy() * (p.n as f64).powi(p.d as i32)).round() as usize;
        table.row(vec![
            p.d.to_string(),
            p.n.to_string(),
            p.b.to_string(),
            p.eps_b.to_string(),
            bdn.num_nodes().to_string(),
            bound.to_string(),
            bdn.graph().min_degree().to_string(),
            bdn.graph().max_degree().to_string(),
            (6 * p.d - 2).to_string(),
        ]);
        assert_eq!(bdn.graph().max_degree(), 6 * p.d - 2);
        assert_eq!(bdn.graph().min_degree(), 6 * p.d - 2);
        assert!(bdn.num_nodes() <= bound);
    }
    println!("{table}");
    println!("paper claim: B^d_n is (6d−2)-regular with at most (1+ε)n^d nodes. ✓ (asserted)");
}
