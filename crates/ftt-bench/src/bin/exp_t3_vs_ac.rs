//! Experiment T3-VS-AC: Section 5's trade-off — `D^d_{n,k}` (simple,
//! no expander, tolerates `O(n^{1−2^{−d}})` worst-case faults) against
//! the Alon–Chung product construction (needs an expander, tolerates
//! `O(n)` worst-case faults).
//!
//! `D²` gives a *guarantee* up to its budget (asserted elsewhere); the
//! AC product's tolerance is probabilistic-in-practice for any concrete
//! extraction algorithm, so we measure its survival under increasing
//! fault counts with both random and clustered supernode-targeting
//! adversaries, at matched guest size.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t3_vs_ac`

use ftt_baselines::alon_chung::AlonChungMesh;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_faults::AdversaryPattern;
use ftt_sim::{run_trials, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let trials = 40;
    let dp = DdnParams::fit(2, 60, 2).unwrap();
    let ddn = Ddn::new(dp);
    let n = dp.n;
    let ac = AlonChungMesh::build(n, 2, 6.0);
    println!(
        "guest {n}×{n}; D²: {} nodes, degree 8, guaranteed k = {}; AC product: {} nodes, degree ≤ 12, expander-based",
        dp.num_nodes(),
        dp.tolerated_faults(),
        ac.num_nodes()
    );
    let mut table = Table::new(
        "T3-VS-AC: survival vs worst-case fault count (guest 74×74 / 74×74 mesh)",
        &[
            "k",
            "D² random",
            "D² clustered",
            "AC random",
            "AC clustered",
        ],
    );
    for k in [4usize, 8, 16, 32, 64, 128] {
        let ddn_ref = &ddn;
        let d2 = move |pat: AdversaryPattern| {
            run_trials(trials, 9, 0, move |seed| {
                let mut rng = SmallRng::seed_from_u64(seed);
                let faults = pat.generate(ddn_ref.shape(), k, &mut rng);
                ddn_ref.try_extract(&faults).is_ok()
            })
            .rate()
        };
        let ac_rate = |clustered: bool| {
            run_trials(trials, 13, 0, |seed| {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut faulty = vec![false; ac.num_nodes()];
                if clustered {
                    // contiguous block of host nodes (kills a run of
                    // supernodes — locally devastating)
                    let start = rng.gen_range(0..ac.num_nodes() - k);
                    for v in start..start + k {
                        faulty[v] = true;
                    }
                } else {
                    for _ in 0..k {
                        faulty[rng.gen_range(0..ac.num_nodes())] = true;
                    }
                }
                ac.embed_mesh(&faulty).is_some()
            })
            .rate()
        };
        table.row(vec![
            k.to_string(),
            format!("{:.2}", d2(AdversaryPattern::Random)),
            format!("{:.2}", d2(AdversaryPattern::ClusteredCube)),
            format!("{:.2}", ac_rate(false)),
            format!("{:.2}", ac_rate(true)),
        ]);
    }
    println!("{table}");
    println!("paper context (Section 5): the Alon–Chung product tolerates O(n) worst-");
    println!("case faults — far beyond D²'s O(n^(3/4)) — but requires an expander,");
    println!("'which may be considered disadvantageous in actual implementations',");
    println!("and only hosts the MESH (no wraparound). D² is exact up to its budget");
    println!(
        "(k = {} here) and degrades beyond; AC keeps surviving far past it.",
        dp.tolerated_faults()
    );
}
