//! Experiment T3-REDUNDANCY: node-count comparison against BCH93b.
//!
//! The paper (Sections 1 and 5): BCH's degree-13 mesh uses `n² + O(k³)`
//! nodes, `D²_{n,k}` uses `(n + k^{4/3})²`; BCH wins for small `k`, the
//! paper's construction for large `k`, and at linear redundancy the
//! tolerated budgets scale as `O(n^{2/3})` vs `O(n^{3/4})`.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t3_redundancy`

use ftt_baselines::models;
use ftt_core::ddn::DdnParams;
use ftt_sim::Table;

fn main() {
    let n = 1000usize;
    let mut table = Table::new(
        "T3-REDUNDANCY: extra nodes vs fault budget k (n = 1000)",
        &["k", "BCH n²+k³", "Tamaki (n+k^{4/3})²", "winner"],
    );
    let mut crossover = None;
    for k in [2usize, 5, 10, 20, 50, 100, 200, 400, 800] {
        let bch = models::bch_nodes(n, k);
        let tam = models::tamaki_d2_nodes(n, k);
        if tam < bch && crossover.is_none() {
            crossover = Some(k);
        }
        table.row(vec![
            k.to_string(),
            bch.to_string(),
            tam.to_string(),
            if bch <= tam { "BCH" } else { "Tamaki" }.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "crossover at k ≈ {:?} (paper: BCH superior for small k, ours for large k)\n",
        crossover
    );

    let mut linear = Table::new(
        "T3-REDUNDANCY: max k at linear budget 2n² (exponents 2/3 vs 3/4)",
        &["n", "BCH max k", "Tamaki max k", "ratio"],
    );
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let b = models::bch_max_k_linear(n, 2.0);
        let t = models::tamaki_d2_max_k_linear(n, 2.0);
        linear.row(vec![
            n.to_string(),
            b.to_string(),
            t.to_string(),
            format!("{:.2}", t as f64 / b as f64),
        ]);
    }
    println!("{linear}");

    let mut built = Table::new(
        "T3-REDUNDANCY: actually-built D²_{n,k} instances",
        &["n", "b", "k", "m", "nodes", "redundancy nodes/n²"],
    );
    for (nmin, b) in [(100usize, 2usize), (100, 3), (500, 4)] {
        let Ok(p) = DdnParams::fit(2, nmin, b) else {
            continue;
        };
        built.row(vec![
            p.n.to_string(),
            p.b.to_string(),
            p.tolerated_faults().to_string(),
            p.m().to_string(),
            p.num_nodes().to_string(),
            format!("{:.3}", p.num_nodes() as f64 / (p.n as f64 * p.n as f64)),
        ]);
    }
    println!("{built}");
    println!("shape to check: the crossover exists and is monotone; the linear-budget");
    println!("ratio grows like n^(1/12); built instances match (n + k^{{4/3}})² exactly.");
}
