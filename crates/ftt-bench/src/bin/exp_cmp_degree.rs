//! Experiment CMP-DEGREE: the introduction's degree comparison —
//! FKP93's `O(log N)`-degree clusters vs Theorem 1's `O(log log N)`
//! supernodes, at comparable reliability.
//!
//! Both constructions are run under the same node-fault probability;
//! the table reports degree, node redundancy and measured success.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_cmp_degree`

use ftt_baselines::fkp::FkpCluster;
use ftt_core::adn::embed::extract_after_faults_adn;
use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::BdnParams;
use ftt_faults::{sample_bernoulli_faults, HalfEdgeFaults};
use ftt_sim::{run_trials, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let p = 0.05f64;
    let trials = 30;
    let mut table = Table::new(
        &format!("CMP-DEGREE: reliability at p = {p} vs degree"),
        &["construction", "guest", "degree", "nodes", "P(success)"],
    );

    // FKP-style clusters on a 54×54 torus, cluster sizes 2–6
    for c in [2usize, 4, 6] {
        let f = FkpCluster::build(54, 2, c);
        let stats = run_trials(trials, 41, 0, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            f.survives_random(p, 0.0, &mut rng)
        });
        table.row(vec![
            format!("FKP cluster c={c}"),
            "54×54".into(),
            f.degree().to_string(),
            f.num_nodes().to_string(),
            format!("{:.2}", stats.rate()),
        ]);
    }

    // A²_108 (inner B²_54, k=2, h=10)
    let inner = BdnParams::new(2, 54, 3, 1).unwrap();
    let params = AdnParams::new(inner, 2, 10, 0.0).unwrap();
    let adn = Adn::build(params);
    let stats = run_trials(trials, 43, 0, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nf = sample_bernoulli_faults(adn.graph(), p, 0.0, &mut rng);
        let faulty: Vec<bool> = (0..adn.num_nodes()).map(|v| nf.node_faulty(v)).collect();
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        extract_after_faults_adn(&adn, &faulty, &halves).is_ok()
    });
    table.row(vec![
        "A²_n (Thm 1), h=10".into(),
        format!("{0}×{0}", params.n()),
        adn.graph().max_degree().to_string(),
        adn.num_nodes().to_string(),
        format!("{:.2}", stats.rate()),
    ]);

    println!("{table}");
    println!("paper context: FKP93 achieves constant-p tolerance with degree O(log N);");
    println!("Theorem 1 achieves it with degree O(log log N). The point of the table:");
    println!("at matched reliability, A²_n's degree is set by h = Θ(log log n) while");
    println!("FKP's cluster must scale like log n — asymptotically far larger.");
}
