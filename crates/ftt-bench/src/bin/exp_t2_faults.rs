//! Experiment T2-FAULTS: how many *random* faults does `B²_n` absorb,
//! versus the best prior constant-degree construction?
//!
//! The paper (Section 1) claims `B^d_n` tolerates `Θ(N·log^{−3d} N)`
//! random faults while BCH93b tolerates `Θ(N^{1/3})`. We sweep the
//! absolute fault count `k` on a fixed instance, estimate the success
//! probability, locate the 50%-knee, and print the analytic reference
//! points.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t2_faults`

use ftt_baselines::models;
use ftt_core::bdn::extract::extract_after_faults;
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_faults::AdversaryPattern;
use ftt_sim::{run_trials, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let params = BdnParams::new(2, 192, 4, 1).unwrap();
    let bdn = Bdn::build(params);
    let big_n = bdn.num_nodes();
    let trials = 60;
    let mut table = Table::new(
        "T2-FAULTS: random-fault capacity of B²_192 (N = 49 152)",
        &["k faults", "P(extracted)"],
    );
    let mut knee = 0usize;
    for k in [1usize, 2, 3, 5, 8, 12, 18, 27, 40] {
        let stats = run_trials(trials, 21, 0, |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let faults = AdversaryPattern::Random.generate(
                &ftt_geom::Shape::new(vec![params.m(), params.n]),
                k,
                &mut rng,
            );
            let mut faulty = vec![false; big_n];
            for &v in &faults {
                faulty[v] = true;
            }
            extract_after_faults(&bdn, &faulty).is_ok()
        });
        if stats.rate() >= 0.5 {
            knee = k;
        }
        table.row(vec![k.to_string(), format!("{:.2}", stats.rate())]);
    }
    println!("{table}");
    let n_f = big_n as f64;
    println!("measured 50% knee: ≈ {knee} faults at N = {big_n}");
    println!(
        "analytic references: Θ(N/log⁶N) = {:.1} (Thm 2, b = log N convention), Θ(N^(1/3)) = {:.1} (BCH93b)",
        models::bdn_random_faults(n_f, 2),
        models::bch_random_faults(n_f),
    );
    println!("shape to check: capacity grows with N and the knee sits between the");
    println!("two asymptotic curves at laptop sizes (their crossover is ≈ 2^60).");
}
