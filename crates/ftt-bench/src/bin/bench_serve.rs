//! Emits `BENCH_serve.json`: sustained multi-tenant throughput of the
//! `ftt serve` repair daemon (ftt-serve).
//!
//! An in-process [`ftt_serve::Server`] binds an ephemeral loopback TCP
//! port; `--clients` driver threads each own a disjoint slice of the
//! `--tenants` tenant ids (tiny `D¹_{8,2}` hosts — the daemon cost
//! under measurement is framing + sharding + journaling + the Fast
//! repair tier, not host construction). Each client pipelines a window
//! of `Events` requests (`--window` in flight, `--batch` kill/repair
//! pairs per request, `--rounds` passes over its tenants), retrying
//! any `Overloaded` rejection after a deterministic seeded exponential
//! backoff ([`ftt_serve::Backoff`]) — the benchmark thereby exercises
//! the backpressure contract instead of hiding it, and reports how
//! often it fired. At most one request per tenant is ever outstanding,
//! so retries cannot reorder a tenant's (non-decreasing) event times.
//!
//! Every ack is timed from its send; the report carries sustained
//! events/sec over the whole event phase, ack latency p50/p99/p999/max,
//! and the repair-tier mix, and is gated in CI by `tools/check_perf.py
//! --serve` against the committed baseline. When the build carries the
//! `obs` feature, the daemon's own ack-latency histogram (protocol
//! `Stats` opcode) is recorded next to the client-side numbers as
//! `daemon_ack_*` fields — the two views must agree within the
//! histogram's 2× bucket-resolution contract.
//!
//! ```text
//! bench_serve [--tenants N] [--shards S] [--clients C] [--window W]
//!             [--batch B] [--rounds R] [--out PATH]
//! ```

use ftt_faults::{Fault, TimedFault};
use ftt_serve::{Backoff, Client, Request, Response, Server, ServerConfig, TenantSpec};
use std::collections::HashMap;
use std::time::Instant;

/// The per-tenant host: the smallest certifiable D¹ instance. Every
/// event lands in the O(1) Fast tier or a cheap local shift, so the
/// measurement is daemon overhead, not repair mathematics.
const SPEC: TenantSpec = TenantSpec::Ddn {
    d: 1,
    n_min: 8,
    b: 2,
};

#[derive(Debug, Clone, Copy)]
struct Config {
    tenants: u64,
    shards: usize,
    clients: usize,
    window: usize,
    batch: usize,
    rounds: u64,
}

#[derive(Debug, Default)]
struct ClientStats {
    applied: u64,
    fast: u64,
    local: u64,
    rebuild: u64,
    overloaded_retries: u64,
    latencies_us: Vec<u64>,
}

/// The batch a tenant sends in round `r`: `batch` kill/repair pairs on
/// a rotating low node id, times strictly increasing across rounds so
/// the daemon's non-decreasing-time validation always passes and the
/// net fault set returns to empty (the placement stays alive).
fn round_batch(round: u64, batch: usize) -> Vec<TimedFault> {
    let base = round * (2 * batch as u64);
    (0..batch)
        .flat_map(|i| {
            let node = Fault::Node((round as usize + i) % 4);
            let t = base + 2 * i as u64;
            [TimedFault::kill(t, node), TimedFault::repair(t + 1, node)]
        })
        .collect()
}

/// Drains one reply, retrying the original request on `Overloaded`
/// (nothing was journaled or applied, so a resend is exact) after a
/// backoff delay — a rejected client yields instead of hammering the
/// full shard queue, and the seeded jitter keeps the run reproducible.
fn drain_one(
    client: &mut Client,
    pending: &mut HashMap<u64, (u64, Vec<TimedFault>, Instant)>,
    stats: &mut ClientStats,
    backoff: &mut Backoff,
) -> Result<(), String> {
    loop {
        let (rid, resp) = client.recv().map_err(|e| format!("recv: {e}"))?;
        let (tenant, events, sent) = pending
            .remove(&rid)
            .ok_or_else(|| format!("unmatched reply id {rid}"))?;
        match resp {
            Response::Applied {
                applied,
                fast,
                local,
                rebuild,
                alive,
            } => {
                if !alive {
                    return Err(format!("tenant {tenant} died under a net-zero batch"));
                }
                stats.applied += u64::from(applied);
                stats.fast += u64::from(fast);
                stats.local += u64::from(local);
                stats.rebuild += u64::from(rebuild);
                stats
                    .latencies_us
                    .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                backoff.reset();
                return Ok(());
            }
            Response::Overloaded => {
                stats.overloaded_retries += 1;
                std::thread::sleep(backoff.next_delay());
                let rid = client
                    .send(tenant, &Request::Events(events.clone()))
                    .map_err(|e| format!("resend: {e}"))?;
                pending.insert(rid, (tenant, events, Instant::now()));
                // In-flight count is unchanged; keep draining.
            }
            other => return Err(format!("tenant {tenant}: unexpected reply {other:?}")),
        }
    }
}

fn run_client(addr: &ftt_serve::Listen, cfg: Config, id: usize) -> Result<ClientStats, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let tenants: Vec<u64> = (0..cfg.tenants)
        .filter(|t| (*t as usize) % cfg.clients == id)
        .collect();

    // Create phase: pipelined, not timed into the event-phase numbers.
    let mut created = 0usize;
    let mut pending_creates = 0usize;
    let mut it = tenants.iter();
    loop {
        while pending_creates < cfg.window {
            let Some(&t) = it.next() else { break };
            client
                .send(t, &Request::CreateTenant(SPEC))
                .map_err(|e| format!("create send: {e}"))?;
            pending_creates += 1;
        }
        if pending_creates == 0 {
            break;
        }
        let (_, resp) = client.recv().map_err(|e| format!("create recv: {e}"))?;
        pending_creates -= 1;
        match resp {
            Response::Created { alive: true, .. } => created += 1,
            other => return Err(format!("create failed: {other:?}")),
        }
    }
    assert_eq!(created, tenants.len());

    // Event phase: windowed pipelining, one outstanding request per
    // tenant at most (window ≪ tenants per client).
    let mut stats = ClientStats::default();
    let mut backoff = Backoff::new(0xB0FF ^ id as u64);
    let mut pending: HashMap<u64, (u64, Vec<TimedFault>, Instant)> = HashMap::new();
    for round in 0..cfg.rounds {
        for &tenant in &tenants {
            while pending.len() >= cfg.window {
                drain_one(&mut client, &mut pending, &mut stats, &mut backoff)?;
            }
            let events = round_batch(round, cfg.batch);
            let rid = client
                .send(tenant, &Request::Events(events.clone()))
                .map_err(|e| format!("send: {e}"))?;
            pending.insert(rid, (tenant, events, Instant::now()));
        }
    }
    while !pending.is_empty() {
        drain_one(&mut client, &mut pending, &mut stats, &mut backoff)?;
    }

    // Sanity: a sampled tenant must be alive with every event applied.
    if let Some(&t) = tenants.first() {
        match client.liveness(t).map_err(|e| format!("liveness: {e}"))? {
            Response::Liveness {
                alive: true,
                events_applied,
                node_faults: 0,
                ..
            } if events_applied == cfg.rounds * 2 * cfg.batch as u64 => {}
            other => return Err(format!("tenant {t}: bad final liveness {other:?}")),
        }
    }
    Ok(stats)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The value of one exposition series (exact name incl. labels).
fn series_value(text: &str, series: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(series)?;
        rest.trim().parse::<f64>().ok().map(|v| v as u64)
    })
}

/// The daemon's own view of ack latency (p50, p99, p999, max in µs),
/// pulled over the protocol's `Stats` opcode. `None` when the daemon
/// carries no instrumentation (built without the `obs` feature) — the
/// report then simply omits the `daemon_ack_*` fields.
fn daemon_ack_quantiles(addr: &ftt_serve::Listen) -> Option<(u64, u64, u64, u64)> {
    let mut client = Client::connect(addr).ok()?;
    let Ok(Response::Stats { text }) = client.stats() else {
        return None;
    };
    Some((
        series_value(&text, "ftt_serve_ack_latency_us_q{q=\"0.5\"}")?,
        series_value(&text, "ftt_serve_ack_latency_us_q{q=\"0.99\"}")?,
        series_value(&text, "ftt_serve_ack_latency_us_q{q=\"0.999\"}")?,
        series_value(&text, "ftt_serve_ack_latency_us_max")?,
    ))
}

fn parse_args() -> Result<(Config, String), String> {
    let mut cfg = Config {
        tenants: 10_000,
        shards: 4,
        clients: 4,
        window: 64,
        batch: 16,
        rounds: 2,
    };
    let mut out = "BENCH_serve.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        let parse = |v: &String, f: &str| -> Result<u64, String> {
            v.parse().map_err(|e| format!("{f}: {e}"))
        };
        match argv[i].as_str() {
            "--tenants" => cfg.tenants = parse(take(i)?, "--tenants")?,
            "--shards" => cfg.shards = parse(take(i)?, "--shards")? as usize,
            "--clients" => cfg.clients = parse(take(i)?, "--clients")? as usize,
            "--window" => cfg.window = parse(take(i)?, "--window")? as usize,
            "--batch" => cfg.batch = parse(take(i)?, "--batch")? as usize,
            "--rounds" => cfg.rounds = parse(take(i)?, "--rounds")?,
            "--out" => out = take(i)?.clone(),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if cfg.tenants == 0 || cfg.clients == 0 || cfg.window == 0 || cfg.batch == 0 {
        return Err("--tenants/--clients/--window/--batch must be ≥ 1".into());
    }
    Ok((cfg, out))
}

fn main() {
    let (cfg, out_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench_serve [--tenants N] [--shards S] [--clients C] [--window W] \
                 [--batch B] [--rounds R] [--out PATH]"
            );
            std::process::exit(1);
        }
    };

    let data_dir = std::env::temp_dir().join(format!("ftt_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut server_cfg = ServerConfig::new(&data_dir);
    server_cfg.shards = cfg.shards;
    let server = Server::start(server_cfg).unwrap_or_else(|e| {
        eprintln!("error: server start: {e}");
        std::process::exit(1);
    });
    let addr = server.listen_addr().clone();
    eprintln!(
        "bench_serve: {} tenants × {} rounds × {} events/batch over {} shards / {} clients \
         (window {}) at {addr}",
        cfg.tenants,
        cfg.rounds,
        2 * cfg.batch,
        cfg.shards,
        cfg.clients,
        cfg.window
    );

    let start = Instant::now();
    let stats: Vec<ClientStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|id| {
                let addr = &addr;
                scope.spawn(move || run_client(addr, cfg, id))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("client thread panicked")
                    .unwrap_or_else(|e| {
                        eprintln!("error: client failed: {e}");
                        std::process::exit(1);
                    })
            })
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();
    let daemon = daemon_ack_quantiles(&addr);
    server.shutdown_now();
    server.wait();
    let _ = std::fs::remove_dir_all(&data_dir);

    let applied: u64 = stats.iter().map(|s| s.applied).sum();
    let fast: u64 = stats.iter().map(|s| s.fast).sum();
    let local: u64 = stats.iter().map(|s| s.local).sum();
    let rebuild: u64 = stats.iter().map(|s| s.rebuild).sum();
    let retries: u64 = stats.iter().map(|s| s.overloaded_retries).sum();
    let expected = cfg.tenants * cfg.rounds * 2 * cfg.batch as u64;
    assert_eq!(
        applied, expected,
        "every sent event must be acked exactly once"
    );
    let mut latencies: Vec<u64> = stats
        .iter()
        .flat_map(|s| s.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let repairs = (fast + local + rebuild).max(1) as f64;
    let events_per_sec = applied as f64 / seconds.max(1e-9);
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    let p999 = percentile(&latencies, 0.999);
    let max = latencies.last().copied().unwrap_or(0);
    eprintln!(
        "{applied} events in {seconds:.3}s → {events_per_sec:.0} events/sec; \
         ack p50 {p50}µs p99 {p99}µs p999 {p999}µs max {max}µs; {retries} overloaded retries"
    );
    if let Some((d50, d99, _, _)) = daemon {
        eprintln!("daemon-side ack p50 {d50}µs p99 {d99}µs (obs histogram)");
    }

    let daemon_json = match daemon {
        Some((d50, d99, d999, dmax)) => format!(
            ",\n  \"daemon_ack_p50_us\": {d50},\n  \"daemon_ack_p99_us\": {d99},\n  \
             \"daemon_ack_p999_us\": {d999},\n  \"daemon_ack_max_us\": {dmax}"
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"schema_version\": 1,\n  \"tenants\": {},\n  \
         \"shards\": {},\n  \"clients\": {},\n  \"window\": {},\n  \"batch\": {},\n  \
         \"rounds\": {},\n  \"events_total\": {applied},\n  \"seconds\": {seconds:.6},\n  \
         \"events_per_sec\": {events_per_sec:.3},\n  \"ack_p50_us\": {p50},\n  \
         \"ack_p99_us\": {p99},\n  \"ack_p999_us\": {p999},\n  \"ack_max_us\": {max},\n  \
         \"frac_fast\": {:.4},\n  \"frac_local\": {:.4},\n  \
         \"frac_rebuild\": {:.4},\n  \"overloaded_retries\": {retries}{daemon_json}\n}}\n",
        cfg.tenants,
        cfg.shards,
        cfg.clients,
        cfg.window,
        cfg.batch,
        cfg.rounds,
        fast as f64 / repairs,
        local as f64 / repairs,
        rebuild as f64 / repairs,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
