//! Experiment T2-3D: Theorem 2 in three dimensions.
//!
//! Theorem 2 is stated for every fixed `d ≥ 2`; this table repeats the
//! success-probability sweep on `B³_n` (degree 16) and audits the 3-D
//! structural claims, exercising the multi-dimensional band machinery
//! (bilinear interpolation over 2-D column tiles, 3-D frames/bricks).
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t2_3d`

use ftt_bench::bdn_trial;
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_sim::{run_multi_trials, Table};

fn main() {
    let params = BdnParams::fit(3, 50, 3, 1).expect("valid B³ instance");
    let bdn = Bdn::build(params);
    println!(
        "B³_{}: m = {}, {} nodes, degree {} (= 6·3−2 = 16)\n",
        params.n,
        params.m(),
        bdn.num_nodes(),
        bdn.graph().max_degree()
    );
    assert_eq!(bdn.graph().max_degree(), 16);
    assert_eq!(bdn.graph().min_degree(), 16);

    let trials = 24usize;
    let mut table = Table::new(
        "T2-3D: B³_54 under random node faults (236k nodes)",
        &["p", "E[faults]", "P(healthy)", "P(placed)", "P(verified)"],
    );
    for p in [1e-6f64, 4e-6, 1e-5, 4e-5, 1e-4] {
        let [healthy, placed, verified] = run_multi_trials(trials, 5, 0, |seed| {
            let (h, pl, v) = bdn_trial(&bdn, p, seed);
            [h, pl, v]
        });
        table.row(vec![
            format!("{p:.0e}"),
            format!("{:.1}", p * bdn.num_nodes() as f64),
            format!("{:.2}", healthy.rate()),
            format!("{:.2}", placed.rate()),
            format!("{:.2}", verified.rate()),
        ]);
    }
    println!("{table}");
    println!("paper claim: Theorem 2 holds for every fixed d ≥ 2 with degree 6d−2.");
    println!("shape to check: same knee behaviour as d = 2 (T2-SUCCESS), driven by");
    println!("E[faults] against the 3-D tile grid; P(verified) = P(placed) throughout.");
}
