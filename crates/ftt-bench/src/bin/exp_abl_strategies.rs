//! Experiment ABL-STRATEGIES: segment-placement strategy comparison.
//!
//! DESIGN.md §4 claims the default DP cover (with pigeonhole fallback)
//! succeeds on a strict superset of the instances covered by the
//! paper's slot-aligned pigeonhole proof. This table measures both
//! strategies on random fault-row sets of growing density and asserts
//! the domination on every sampled instance.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_abl_strategies`

use ftt_core::bdn::segments::{place_region_segments, place_region_segments_pigeonhole};
use ftt_sim::Table;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let (b, t, rows) = (4usize, 16usize, 3usize);
    let trials = 2000;
    let mut table = Table::new(
        "ABL-STRATEGIES: region segment placement, b = 4, 3 tile rows, ε_b = 2",
        &[
            "fault rows",
            "P(DP+fallback)",
            "P(pigeonhole)",
            "DP-only wins",
        ],
    );
    for nf in [1usize, 2, 3, 4, 6, 8] {
        let mut rng = SmallRng::seed_from_u64(nf as u64);
        let mut dp_ok = 0usize;
        let mut pg_ok = 0usize;
        let mut dp_only = 0usize;
        for _ in 0..trials {
            let faults: Vec<usize> = (0..nf).map(|_| rng.gen_range(0..rows * t)).collect();
            let dp = place_region_segments(&faults, rows, t, b, 2, 0).is_ok();
            let pg = place_region_segments_pigeonhole(&faults, rows, t, b, 2, 0).is_ok();
            assert!(
                dp || !pg,
                "domination violated: pigeonhole succeeded, DP failed on {faults:?}"
            );
            dp_ok += dp as usize;
            pg_ok += pg as usize;
            dp_only += (dp && !pg) as usize;
        }
        let frac = |x: usize| format!("{:.3}", x as f64 / trials as f64);
        table.row(vec![
            nf.to_string(),
            frac(dp_ok),
            frac(pg_ok),
            frac(dp_only),
        ]);
    }
    println!("{table}");
    println!("claim (DESIGN.md §4): the shipped strategy succeeds whenever the paper's");
    println!("pigeonhole argument does (asserted on every sampled instance) and");
    println!("strictly more often — the margin is the 'DP-only wins' column.");
}
