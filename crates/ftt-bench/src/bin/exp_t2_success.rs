//! Experiment T2-SUCCESS: Theorem 2 success probability vs instance
//! size and fault probability.
//!
//! For each `B²_n` instance and several multiples of the design
//! probability `b^{−3d}`, estimates P(healthy), P(bands placed) and
//! P(torus extracted & verified). The theorem predicts success
//! probability `1 − n^{−Ω(log log n)}` at the design point *with
//! `b = log n`*; the table charts how the finite-size instances
//! (`b < log n`, so the design point is optimistic) degrade as `p`
//! grows — who wins and where the knee sits is the reproducible shape.
//!
//! Extraction and verification dispatch through the
//! [`HostConstruction`] trait (`ftt_sim::extract_verified`); all three
//! columns are filled by a single sample→place→extract→verify pass per
//! seed.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t2_success`

use ftt_bench::{bdn_sweep_2d, bdn_trial};
use ftt_core::construct::HostConstruction;
use ftt_core::Bdn;
use ftt_sim::{run_multi_trials, Table};

fn main() {
    let trials = 60usize;
    let mut table = Table::new(
        "T2-SUCCESS: B²_n under random node faults",
        &[
            "n",
            "b",
            "p",
            "E[faults]",
            "P(healthy)",
            "P(placed)",
            "P(verified)",
        ],
    );
    for params in bdn_sweep_2d() {
        let bdn = <Bdn as HostConstruction>::build(params);
        let p_design = params.tolerated_fault_probability();
        for mult in [0.05, 0.2, 1.0, 4.0] {
            let p = p_design * mult;
            let [healthy, placed, verified] = run_multi_trials(trials, 11, 0, |seed| {
                let (h, pl, v) = bdn_trial(&bdn, p, seed);
                [h, pl, v]
            });
            table.row(vec![
                params.n.to_string(),
                params.b.to_string(),
                format!("{p:.2e}"),
                format!("{:.1}", p * bdn.num_nodes() as f64),
                format!("{:.2}", healthy.rate()),
                format!("{:.2}", placed.rate()),
                format!("{:.2}", verified.rate()),
            ]);
        }
    }
    println!("{table}");
    println!("paper claim: success prob 1 − n^(−Ω(log log n)) at p = b^(−3d) with b = log n;");
    println!("finite instances use b < log n, so the design column p = 1.0×b^(−6) is stressed.");
    println!("shape to check: P(verified) ≈ P(placed), both → 1 as E[faults] → 0, and");
    println!("healthiness is sufficient: P(placed) ≥ P(healthy) in every row.");
}
