//! Experiment T2-SUCCESS: Theorem 2 success probability vs instance
//! size and fault probability — a thin driver over the `t2` sweep
//! preset ([`ftt_sim::SweepSpec::preset`]).
//!
//! The preset crosses `B²_{54,108,192}` with multiples
//! `{0.05, 0.2, 1, 4}` of the design probability `b^{−3d}` and runs an
//! Alon–Chung expander-mesh baseline column at the same fault rates.
//! The theorem predicts success probability `1 − n^{−Ω(log log n)}` at
//! the design point *with `b = log n`*; finite instances use
//! `b < log n`, so the design column is stressed and the reproducible
//! shape is the knee: success monotone non-increasing in `p`, → 1 as
//! `E[faults] → 0`.
//!
//! Emits `SWEEP_t2.json` + `SWEEP_t2.csv` (schema-versioned; the same
//! artifacts CI's sweep-smoke job validates with
//! `tools/check_sweep.py`).
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t2_success`

use ftt_sim::{run_sweep, SweepSpec};

fn main() {
    let spec = SweepSpec::preset("t2").expect("t2 is a checked-in preset");
    let report = run_sweep(&spec, 0).expect("t2 preset must expand and run");
    println!("{}", report.table());
    report
        .write_artifacts("SWEEP_t2.json", "SWEEP_t2.csv")
        .expect("write sweep artifacts");
    println!("wrote SWEEP_t2.json and SWEEP_t2.csv");
    println!("paper claim: success prob 1 − n^(−Ω(log log n)) at p = b^(−3d) with b = log n;");
    println!("finite instances use b < log n, so the design column (mult = 1) is stressed.");
    println!("shape to check: per construction, success is monotone non-increasing in p,");
    println!("and the Alon–Chung baseline column shows the expander-mesh comparison point.");
}
