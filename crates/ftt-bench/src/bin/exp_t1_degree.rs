//! Experiment T1-DEGREE: Theorem 1 — degree `O(log log n)` and node
//! count `c·n²`.
//!
//! The degree of `A²_n` is `11h − 1` and depends only on the supernode
//! size `h = Θ(k²) = Θ(log log n)`; the table grows `n` at fixed and at
//! `log log`-scaled `h` and reports degree and redundancy `c`.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t1_degree`

use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::BdnParams;
use ftt_sim::Table;

fn main() {
    let mut table = Table::new(
        "T1-DEGREE: degree and redundancy of A²_n",
        &[
            "n",
            "h",
            "degree",
            "11h−1",
            "log₂log₂ n",
            "nodes",
            "c = nodes/n²",
        ],
    );
    let inners = [
        BdnParams::new(2, 54, 3, 1).unwrap(),
        BdnParams::new(2, 108, 3, 1).unwrap(),
        BdnParams::new(2, 216, 3, 1).unwrap(),
    ];
    for inner in inners {
        for h in [6usize, 8, 12] {
            let Ok(params) = AdnParams::new(inner, 2, h, 0.0) else {
                continue;
            };
            let adn = Adn::build(params);
            let n = params.n() as f64;
            table.row(vec![
                params.n().to_string(),
                h.to_string(),
                adn.graph().max_degree().to_string(),
                (11 * h - 1).to_string(),
                format!("{:.2}", n.log2().log2()),
                adn.num_nodes().to_string(),
                format!("{:.2}", params.redundancy()),
            ]);
            assert_eq!(adn.graph().max_degree(), 11 * h - 1);
        }
    }
    println!("{table}");
    println!("paper claim (Thm 1): degree O(log log n) — the degree column depends only");
    println!("on h (✓ asserted 11h−1), and h needs to grow only like log log n;");
    println!("node count is c·n² for constant c (the last column stays bounded).");
}
