//! Experiment T12-PATH: the Alon–Chung baseline (Theorem 12).
//!
//! Measures the surviving-path guarantee of the expander-based 1-D
//! construction: sweep the fault fraction `c`, report the survival rate
//! (path of `n` alive nodes found) and the mean extracted path length;
//! also prints the measured spectral expansion of the host.
//!
//! Run: `cargo run --release -p ftt-bench --bin exp_t12_path`

use ftt_baselines::alon_chung::AlonChungPath;
use ftt_expander::second_eigenvalue;
use ftt_sim::{run_trials, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 100usize;
    let trials = 40;
    for redundancy in [4.0f64, 8.0] {
        let ac = AlonChungPath::build(n, redundancy);
        let hosts = ac.graph().num_nodes();
        let lambda = second_eigenvalue(ac.graph(), 150);
        println!(
            "F_{n}: {hosts} host nodes (redundancy {:.1}), degree ≤ 8, measured λ₂ ≈ {lambda:.2}",
            hosts as f64 / n as f64
        );
        let mut table = Table::new(
            &format!("T12-PATH: surviving path of length {n} (redundancy {redundancy:.0}×)"),
            &[
                "fault fraction c",
                "P(path of n survives)",
                "mean path length",
            ],
        );
        for c in [0.1f64, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7] {
            let stats = run_trials(trials, 17, 0, |seed| {
                let mut rng = SmallRng::seed_from_u64(seed);
                let alive: Vec<bool> = (0..hosts).map(|_| !rng.gen_bool(c)).collect();
                ac.survives(&alive)
            });
            // mean length from a handful of serial trials
            let mut lens = Vec::new();
            let mut rng = SmallRng::seed_from_u64(18);
            for _ in 0..10 {
                let alive: Vec<bool> = (0..hosts).map(|_| !rng.gen_bool(c)).collect();
                lens.push(ac.extract_path(&alive).len() as f64);
            }
            table.row(vec![
                format!("{c:.1}"),
                format!("{:.2}", stats.rate()),
                format!("{:.0}", ftt_sim::mean(&lens)),
            ]);
        }
        println!("{table}");
    }
    println!("paper context (Thm 12, Alon–Chung): a constant-degree O(n)-node graph");
    println!("keeps a path of n nodes after any constant-fraction fault set.");
    println!("shape to check: survival stays ≈ 1 up to a redundancy-dependent fault");
    println!("fraction, and higher redundancy pushes the knee to larger c.");
}
