//! Criterion: construction cost of the three host graphs
//! (supports the T2-DEGREE / T1-DEGREE / T3-REDUNDANCY tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_core::ddn::{Ddn, DdnParams};
use std::hint::black_box;

fn bench_bdn_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdn_build");
    for (n, b) in [(54usize, 3usize), (108, 3), (192, 4)] {
        let params = BdnParams::new(2, n, b, 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |bench, p| {
            bench.iter(|| black_box(Bdn::build(*p)));
        });
    }
    group.finish();
}

fn bench_adn_build(c: &mut Criterion) {
    let inner = BdnParams::new(2, 54, 3, 1).unwrap();
    let mut group = c.benchmark_group("adn_build");
    group.sample_size(10);
    for h in [6usize, 10] {
        let params = AdnParams::new(inner, 2, h, 0.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(h), &params, |bench, p| {
            bench.iter(|| black_box(Adn::build(*p)));
        });
    }
    group.finish();
}

fn bench_ddn_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddn_build_graph");
    for (n, b) in [(40usize, 2usize), (60, 3)] {
        let params = DdnParams::fit(2, n, b).unwrap();
        let ddn = Ddn::new(params);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{}_b{b}", params.n)),
            &ddn,
            |bench, d| {
                bench.iter(|| black_box(d.build_graph()));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_bdn_build, bench_adn_build, bench_ddn_build
}
criterion_main!(benches);
