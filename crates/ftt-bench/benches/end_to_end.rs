//! Criterion: full Theorem-pipeline trials — fault sampling through
//! verified extraction — the unit of work behind every success-
//! probability table.

use criterion::{criterion_group, criterion_main, Criterion};
use ftt_bench::bdn_trial;
use ftt_core::adn::embed::extract_after_faults_adn;
use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_faults::{sample_bernoulli_faults, HalfEdgeFaults};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_t2_trial(c: &mut Criterion) {
    let bdn = Bdn::build(BdnParams::new(2, 192, 4, 1).unwrap());
    c.bench_function("t2_full_trial_192_p2e-5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(bdn_trial(&bdn, 2e-5, seed))
        });
    });
}

fn bench_t1_trial(c: &mut Criterion) {
    let inner = BdnParams::new(2, 54, 3, 1).unwrap();
    let adn = Adn::build(AdnParams::new(inner, 2, 8, 0.0).unwrap());
    let mut group = c.benchmark_group("t1_full_trial");
    group.sample_size(10);
    group.bench_function("adn_108_p0.05", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            let nf = sample_bernoulli_faults(adn.graph(), 0.05, 0.0, &mut rng);
            let faulty: Vec<bool> = (0..adn.num_nodes()).map(|v| nf.node_faulty(v)).collect();
            let halves = HalfEdgeFaults::none(adn.graph().num_edges());
            black_box(extract_after_faults_adn(&adn, &faulty, &halves).is_ok())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_t2_trial, bench_t1_trial
}
criterion_main!(benches);
