//! Criterion: band placement cost (painting + segments + interpolation)
//! as a function of fault density (supports T2-SUCCESS / ABL-HEALTH).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftt_core::bdn::place::place_bands;
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_faults::sample_bernoulli_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_place(c: &mut Criterion) {
    let params = BdnParams::new(2, 192, 4, 1).unwrap();
    let bdn = Bdn::build(params);
    let mut group = c.benchmark_group("place_bands_192");
    for faults in [0usize, 1, 4] {
        // deterministic well-separated faults (always placeable)
        let mut faulty = vec![false; bdn.num_nodes()];
        let positions = [(20usize, 20usize), (100, 100), (200, 60), (60, 170)];
        for &(i, z) in positions.iter().take(faults) {
            faulty[bdn.cols().node(i, z)] = true;
        }
        group.bench_with_input(BenchmarkId::from_parameter(faults), &faulty, |b, f| {
            b.iter(|| black_box(place_bands(&bdn, f).unwrap()));
        });
    }
    group.finish();
}

fn bench_place_random(c: &mut Criterion) {
    let params = BdnParams::new(2, 192, 4, 1).unwrap();
    let bdn = Bdn::build(params);
    let mut rng = SmallRng::seed_from_u64(1);
    let f = sample_bernoulli_faults(bdn.graph(), 2e-5, 0.0, &mut rng);
    let faulty: Vec<bool> = (0..bdn.num_nodes()).map(|v| f.node_faulty(v)).collect();
    c.bench_function("place_bands_192_random_p2e-5", |b| {
        b.iter(|| black_box(place_bands(&bdn, &faulty)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_place, bench_place_random
}
criterion_main!(benches);
