//! Criterion: band placement cost (painting + segments + interpolation)
//! as a function of fault density (supports T2-SUCCESS / ABL-HEALTH),
//! plus full re-placement vs tile-local repaint for one arrival (the
//! online Local tier's headroom).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftt_core::bdn::place::{
    place_bands, place_bands_cached, place_bands_for_ids, repaint_tile_local,
};
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_faults::sample_bernoulli_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_place(c: &mut Criterion) {
    let params = BdnParams::new(2, 192, 4, 1).unwrap();
    let bdn = Bdn::build(params);
    let mut group = c.benchmark_group("place_bands_192");
    for faults in [0usize, 1, 4] {
        // deterministic well-separated faults (always placeable)
        let mut faulty = vec![false; bdn.num_nodes()];
        let positions = [(20usize, 20usize), (100, 100), (200, 60), (60, 170)];
        for &(i, z) in positions.iter().take(faults) {
            faulty[bdn.cols().node(i, z)] = true;
        }
        group.bench_with_input(BenchmarkId::from_parameter(faults), &faulty, |b, f| {
            b.iter(|| black_box(place_bands(&bdn, f).unwrap()));
        });
    }
    group.finish();
}

fn bench_place_random(c: &mut Criterion) {
    let params = BdnParams::new(2, 192, 4, 1).unwrap();
    let bdn = Bdn::build(params);
    let mut rng = SmallRng::seed_from_u64(1);
    let f = sample_bernoulli_faults(bdn.oracle(), 2e-5, 0.0, &mut rng);
    let faulty: Vec<bool> = (0..bdn.num_nodes()).map(|v| f.node_faulty(v)).collect();
    c.bench_function("place_bands_192_random_p2e-5", |b| {
        b.iter(|| black_box(place_bands(&bdn, &faulty)));
    });
}

/// One isolated arrival on top of two existing faults: the full batch
/// re-placement the Rebuild tier used to pay, against the tile-local
/// repaint the Local tier pays now. Identical inputs, identical
/// resulting banding (debug builds assert it inside the repaint).
fn bench_repaint_vs_full(c: &mut Criterion) {
    let params = BdnParams::new(2, 192, 4, 1).unwrap();
    let bdn = Bdn::build(params);
    let existing = vec![bdn.cols().node(20, 20), bdn.cols().node(100, 100)];
    let arrival = bdn.cols().node(200, 60);
    let mut all = existing.clone();
    all.push(arrival);
    c.bench_function("b2_192_arrival_full_replace", |b| {
        b.iter(|| black_box(place_bands_for_ids(&bdn, &all).unwrap()));
    });
    // The online engine pays exactly this pair on every arrival it
    // absorbs locally: restore the pristine-region scratch, then
    // repaint the one dirtied tile.
    let pristine = place_bands_cached(&bdn, &existing).unwrap();
    let mut work = pristine.clone();
    c.bench_function("b2_192_arrival_repaint_tile_local", |b| {
        b.iter(|| {
            work.restore_from(&pristine);
            black_box(repaint_tile_local(&bdn, &mut work, arrival, &all).unwrap())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_place, bench_place_random, bench_repaint_vs_full
}
criterion_main!(benches);
