//! Criterion: fault-layer cost — geometric-skip Bernoulli sampling at
//! paper-regime probabilities (cost proportional to the faults, not the
//! host), in-place fault-set reuse, and half-edge sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_faults::{sample_bernoulli_faults_into, FaultSet, HalfEdgeFaults};
use ftt_graph::AdjacencyOracle;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bernoulli_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_bernoulli");
    for (n, b) in [(54usize, 3usize), (192, 4)] {
        let params = BdnParams::new(2, n, b, 1).unwrap();
        let p = params.tolerated_fault_probability();
        let bdn = Bdn::build(params);
        let g = bdn.oracle();
        let mut scratch = FaultSet::none(bdn.num_nodes(), g.num_edges());
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |bench, &p| {
            bench.iter(|| {
                seed = seed.wrapping_add(1);
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_bernoulli_faults_into(g, p, 0.0, &mut rng, &mut scratch);
                black_box(scratch.count_faults())
            });
        });
    }
    group.finish();
}

fn bench_faultset_reuse(c: &mut Criterion) {
    // clear + a paper-regime handful of kills + O(1) queries: the whole
    // per-trial fault footprint of the Monte-Carlo hot path.
    let mut scratch = FaultSet::none(100_000, 500_000);
    c.bench_function("faultset_clear_kill_query", |bench| {
        bench.iter(|| {
            scratch.clear();
            for v in [17usize, 999, 54_321, 99_999] {
                scratch.kill_node(v);
            }
            scratch.kill_edge(123_456);
            black_box(scratch.node_alive(54_321) as usize + scratch.count_faults())
        });
    });
}

fn bench_half_edge_sampling(c: &mut Criterion) {
    let params = BdnParams::new(2, 54, 3, 1).unwrap();
    let bdn = Bdn::build(params);
    let g = bdn.oracle();
    let mut seed = 0u64;
    c.bench_function("half_edge_sample_sqrt_q_1_16", |bench| {
        bench.iter(|| {
            seed = seed.wrapping_add(1);
            let mut rng = SmallRng::seed_from_u64(seed);
            black_box(
                HalfEdgeFaults::sample(g, 1.0 / 16.0, &mut rng)
                    .touched_edges()
                    .len(),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_bernoulli_sampling, bench_faultset_reuse, bench_half_edge_sampling
}
criterion_main!(benches);
