//! Criterion: expander substrate — Margulis construction, spectral-gap
//! estimation, DFS path extraction (supports T12-PATH).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftt_baselines::alon_chung::AlonChungPath;
use ftt_expander::{margulis_expander, second_eigenvalue};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_margulis(c: &mut Criterion) {
    let mut group = c.benchmark_group("margulis_build");
    for s in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| black_box(margulis_expander(s)));
        });
    }
    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let g = margulis_expander(32);
    c.bench_function("second_eigenvalue_1024n_100it", |b| {
        b.iter(|| black_box(second_eigenvalue(&g, 100)));
    });
}

fn bench_path_extraction(c: &mut Criterion) {
    let ac = AlonChungPath::build(100, 8.0);
    let mut rng = SmallRng::seed_from_u64(3);
    let alive: Vec<bool> = (0..ac.graph().num_nodes())
        .map(|_| !rng.gen_bool(0.3))
        .collect();
    c.bench_function("alon_chung_extract_path_c0.3", |b| {
        b.iter(|| black_box(ac.extract_path(&alive)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_margulis, bench_spectral, bench_path_extraction
}
criterion_main!(benches);
