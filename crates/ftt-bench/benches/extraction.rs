//! Criterion: torus extraction cost — column cycles, Lemma 7 alignment
//! check, embedding assembly (the full Lemma 6 pipeline given bands),
//! the `D^d_{n,k}` pigeonhole placement, and the complete Monte-Carlo
//! trial (sparse sampling + extraction + verification with reused
//! per-worker scratch) at paper-regime fault probabilities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftt_core::bdn::extract::extract_torus;
use ftt_core::bdn::place::place_bands;
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_core::construct::HostConstruction;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_faults::{sample_bernoulli_faults_into, AdversaryPattern, FaultSet};
use ftt_sim::extract_verified_with;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bdn_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdn_extract");
    for (n, b) in [(54usize, 3usize), (192, 4)] {
        let params = BdnParams::new(2, n, b, 1).unwrap();
        let bdn = Bdn::build(params);
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[bdn.cols().node(20, 20)] = true;
        let placement = place_bands(&bdn, &faulty).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &placement, |bench, p| {
            bench.iter(|| black_box(extract_torus(&bdn, &p.banding).unwrap()));
        });
    }
    group.finish();
}

fn bench_ddn_place_extract(c: &mut Criterion) {
    let params = DdnParams::fit(2, 60, 2).unwrap();
    let ddn = Ddn::new(params);
    let k = params.tolerated_faults();
    let mut rng = SmallRng::seed_from_u64(2);
    let faults = AdversaryPattern::Random.generate(ddn.shape(), k, &mut rng);
    c.bench_function("ddn_place_extract_d2_k8", |b| {
        b.iter(|| black_box(ddn.try_extract(&faults).unwrap()));
    });
}

fn bench_bdn_trial_pipeline(c: &mut Criterion) {
    // The acceptance scenario of the sparse fault machinery: one full
    // B²_n Bernoulli trial (sample → extract → verify) per iteration,
    // with the fault set and extraction scratch reused in place.
    let mut group = c.benchmark_group("bdn_trial_pipeline");
    for (n, b) in [(54usize, 3usize), (192, 4)] {
        let params = BdnParams::new(2, n, b, 1).unwrap();
        let p = params.tolerated_fault_probability();
        let bdn = Bdn::build(params);
        let mut faults = FaultSet::none(bdn.num_nodes(), HostConstruction::num_edges(&bdn));
        let mut scratch = HostConstruction::new_scratch(&bdn);
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |bench, &p| {
            bench.iter(|| {
                seed = seed.wrapping_add(1);
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_bernoulli_faults_into(bdn.oracle(), p, 0.0, &mut rng, &mut faults);
                black_box(extract_verified_with(&bdn, &faults, &mut scratch).is_ok())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_bdn_extract, bench_ddn_place_extract, bench_bdn_trial_pipeline
}
criterion_main!(benches);
