//! Criterion: torus extraction cost — column cycles, Lemma 7 alignment
//! check, embedding assembly (the full Lemma 6 pipeline given bands),
//! plus the `D^d_{n,k}` pigeonhole placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftt_core::bdn::extract::extract_torus;
use ftt_core::bdn::place::place_bands;
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_faults::AdversaryPattern;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bdn_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdn_extract");
    for (n, b) in [(54usize, 3usize), (192, 4)] {
        let params = BdnParams::new(2, n, b, 1).unwrap();
        let bdn = Bdn::build(params);
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[bdn.cols().node(20, 20)] = true;
        let placement = place_bands(&bdn, &faulty).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &placement, |bench, p| {
            bench.iter(|| black_box(extract_torus(&bdn, &p.banding).unwrap()));
        });
    }
    group.finish();
}

fn bench_ddn_place_extract(c: &mut Criterion) {
    let params = DdnParams::fit(2, 60, 2).unwrap();
    let ddn = Ddn::new(params);
    let k = params.tolerated_faults();
    let mut rng = SmallRng::seed_from_u64(2);
    let faults = AdversaryPattern::Random.generate(ddn.shape(), k, &mut rng);
    c.bench_function("ddn_place_extract_d2_k8", |b| {
        b.iter(|| black_box(ddn.try_extract(&faults).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_bdn_extract, bench_ddn_place_extract
}
criterion_main!(benches);
