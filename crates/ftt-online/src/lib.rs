//! # ftt-online — the online fault-stream subsystem, in one place
//!
//! Tamaki's constructions are motivated by machines whose components
//! fail *over time*, yet batch pipelines apply one static fault set and
//! extract from scratch. The online subsystem spans four layers; this
//! façade crate re-exports each layer's public surface so consumers can
//! depend on the subsystem as a unit:
//!
//! | Layer | Home | Exports |
//! |-------|------|---------|
//! | Fault streams | `ftt-faults::stream` | [`FaultStream`], [`StreamSpec`], [`BernoulliTrickle`], [`WeibullTrickle`], [`Burst`], [`TrackBurst`], [`Renewal`], [`TargetedAdversary`], [`FaultJournal`] |
//! | Incremental repair | `ftt-core::online` | [`RepairState`], [`RepairOutcome`], [`RepairClass`], [`live_certificate`] |
//! | Lifetime engine | `ftt-sim::lifetime` | [`LifetimeSpec`], [`run_lifetime`], [`run_lifetime_trials`], [`LifetimeReport`], [`LIFETIME_PRESETS`] |
//! | CLI / bench | `ftt-cli`, `ftt-bench` | `ftt lifetime --preset …`, `bench_online` → `BENCH_online.json` |
//!
//! ## The contract
//!
//! Streams deliver [`FaultEvent`]s — kills, and under the [`Renewal`]
//! model also repairs that revive a previously-killed element. Both
//! directions flow through the same incremental engine: repairs can
//! resurrect a dead placement (batch extractability is not monotone in
//! the fault set), and the lifetime engine turns the resulting up/down
//! spells into steady-state availability.
//!
//! Each arriving [`Fault`] is *repaired*, not re-extracted: O(1)
//! absorption when it lands under the current banding's already-dirty
//! granularity, a local repair (one `D^d` axis band shifted via cached
//! pigeonhole tallies; a `B^d` tile-local repaint of only the dirtied
//! region; an `A²` goodness delta over the touched supernodes), or a
//! full batch rebuild — with **batch parity** guaranteed throughout: the online outcome and embedding
//! always equal what `try_extract_with` would produce for the
//! accumulated fault set (differentially tested in
//! `ftt-sim/tests/prop_online.rs`), and every repaired embedding can be
//! re-validated by the independent `ftt-verify` checker.
//!
//! ## Quick start
//!
//! ```
//! use ftt_online::{run_lifetime, LifetimeSpec};
//!
//! let spec = LifetimeSpec::preset("life-smoke").unwrap();
//! let report = run_lifetime(&spec, 0).unwrap();
//! assert!(!report.cells.is_empty());
//! for cell in &report.cells {
//!     assert_eq!(cell.cert_failures, 0, "{}", cell.id);
//! }
//! ```

pub use ftt_core::online::{live_certificate, RepairClass, RepairOutcome, RepairState};
pub use ftt_faults::journal_io::{
    decode_journal, decode_journal_lenient, encode_journal, JournalDecode, JournalIoError,
};
pub use ftt_faults::stream::{
    BernoulliTrickle, BuiltStream, Burst, FaultEvent, FaultJournal, FaultStream, JournalStream,
    NoFeedback, Renewal, StreamFeedback, StreamSpec, StreamSpecError, TargetedAdversary,
    TimedFault, TrackBurst, WeibullTrickle,
};
pub use ftt_faults::Fault;
pub use ftt_sim::lifetime::{
    run_lifetime, run_lifetime_trial, run_lifetime_trials, ArrivalCap, LifetimeCellResult,
    LifetimePreset, LifetimeReport, LifetimeSpec, StreamDef, TrialRecord, LIFETIME_PRESETS,
    LIFETIME_PRESET_NAMES, LIFE_SCHEMA_VERSION,
};
