//! Torus geometry substrate for the fault-tolerant mesh/torus constructions
//! of Tamaki (SPAA'94 / JCSS'96).
//!
//! The paper manipulates the `d`-dimensional torus through a small set of
//! geometric notions: cyclic index arithmetic (`+_n`, `-_n`), rows and
//! columns (the first coordinate is special), cyclic intervals (the
//! footprint of a band in one column), tiles (`b² × … × b²` sub-boxes),
//! bricks (`b² × b³ × … × b³` boxes of tiles) and `s`-frames (boundary
//! shells of tiled sub-boxes). This crate implements those notions once,
//! with dense `usize` indexing, so that the construction crates never
//! hand-roll modular arithmetic.
//!
//! Index convention: everything is **0-based** (the paper is 1-based); a
//! node of the `n1 × … × nd` torus is a flat index into row-major order
//! with coordinate 0 ("vertical" / first dimension) varying slowest.

pub mod cyclic;
pub mod hash;
pub mod interval;
pub mod lines;
pub mod shape;
pub mod tiles;

pub use cyclic::{cyc_add, cyc_dist, cyc_sub, CyclicRing};
pub use hash::{fnv1a, seed_for_id, splitmix64, Fnv1a};
pub use interval::CyclicInterval;
pub use lines::ColumnSpace;
pub use shape::{Coord, Shape};
pub use tiles::{Frame, TileGrid};
