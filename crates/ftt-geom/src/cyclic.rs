//! Cyclic (modular) index arithmetic: the paper's `+_n` and `-_n`.
//!
//! All values live in `[0, n)`. The free functions are the workhorses used
//! in hot loops; [`CyclicRing`] packages the modulus for code that wants a
//! value-level witness of "arithmetic mod n".

/// Cyclic addition `a +_n b` for `a ∈ [0, n)`, `b` arbitrary (may exceed `n`).
///
/// # Panics
/// Panics in debug builds if `a >= n` or `n == 0`.
#[inline]
pub fn cyc_add(a: usize, b: usize, n: usize) -> usize {
    debug_assert!(n > 0, "modulus must be positive");
    debug_assert!(a < n, "lhs {a} out of range for modulus {n}");
    (a + b % n) % n
}

/// Cyclic subtraction `a -_n b` for `a ∈ [0, n)`, `b` arbitrary.
#[inline]
pub fn cyc_sub(a: usize, b: usize, n: usize) -> usize {
    debug_assert!(n > 0, "modulus must be positive");
    debug_assert!(a < n, "lhs {a} out of range for modulus {n}");
    let b = b % n;
    (a + n - b) % n
}

/// Cyclic distance: the length of the shorter arc between `a` and `b` on
/// the `n`-cycle. Symmetric; at most `n / 2`.
#[inline]
pub fn cyc_dist(a: usize, b: usize, n: usize) -> usize {
    debug_assert!(a < n && b < n, "operands out of range for modulus {n}");
    let d = a.abs_diff(b);
    d.min(n - d)
}

/// Signed cyclic offset from `a` to `b`: the unique `k ∈ (-n/2, n/2]` with
/// `a +_n k = b` (taking `k` mod `n`). Useful for deciding whether a band
/// moved "up" or "down" between adjacent columns.
#[inline]
pub fn cyc_offset(a: usize, b: usize, n: usize) -> isize {
    debug_assert!(a < n && b < n);
    let fwd = cyc_sub(b, a, n); // steps from a forward to b
    if fwd <= n / 2 {
        fwd as isize
    } else {
        fwd as isize - n as isize
    }
}

/// A value-level witness for arithmetic modulo `n` (the ring `Z_n`).
///
/// This mirrors the paper's `[n]` with operations `+_n`, `-_n`, and is the
/// index domain of the cycle graph `C_n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CyclicRing {
    n: usize,
}

impl CyclicRing {
    /// Creates the ring `Z_n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "CyclicRing modulus must be positive");
        Self { n }
    }

    /// The modulus `n`.
    #[inline]
    pub fn modulus(self) -> usize {
        self.n
    }

    /// `a +_n b`.
    #[inline]
    pub fn add(self, a: usize, b: usize) -> usize {
        cyc_add(a, b, self.n)
    }

    /// `a -_n b`.
    #[inline]
    pub fn sub(self, a: usize, b: usize) -> usize {
        cyc_sub(a, b, self.n)
    }

    /// Successor on the cycle (`a +_n 1`).
    #[inline]
    pub fn succ(self, a: usize) -> usize {
        cyc_add(a, 1, self.n)
    }

    /// Predecessor on the cycle (`a -_n 1`).
    #[inline]
    pub fn pred(self, a: usize) -> usize {
        cyc_sub(a, 1, self.n)
    }

    /// Shorter-arc distance between `a` and `b`.
    #[inline]
    pub fn dist(self, a: usize, b: usize) -> usize {
        cyc_dist(a, b, self.n)
    }

    /// Signed offset from `a` to `b` in `(-n/2, n/2]`.
    #[inline]
    pub fn offset(self, a: usize, b: usize) -> isize {
        cyc_offset(a, b, self.n)
    }

    /// Whether `x` lies on the forward arc of length `len` starting at
    /// `start` (i.e. `x ∈ {start, start +_n 1, …, start +_n (len−1)}`).
    #[inline]
    pub fn in_arc(self, x: usize, start: usize, len: usize) -> bool {
        debug_assert!(x < self.n && start < self.n);
        if len >= self.n {
            return true;
        }
        cyc_sub(x, start, self.n) < len
    }

    /// Iterates the forward arc of length `len` starting at `start`.
    #[inline]
    pub fn arc(self, start: usize, len: usize) -> impl Iterator<Item = usize> {
        let n = self.n;
        (0..len.min(n)).map(move |k| cyc_add(start, k, n))
    }

    /// Whether the two cycle nodes are adjacent in `C_n` (distance exactly 1).
    ///
    /// In `C_1` there are no neighbours; in `C_2` the two nodes are joined
    /// by a (double) edge, matching the paper's multigraph convention.
    #[inline]
    pub fn adjacent(self, a: usize, b: usize) -> bool {
        if self.n <= 1 {
            return false;
        }
        self.dist(a, b) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps() {
        assert_eq!(cyc_add(5, 3, 8), 0);
        assert_eq!(cyc_add(0, 0, 8), 0);
        assert_eq!(cyc_add(7, 1, 8), 0);
        assert_eq!(cyc_add(7, 17, 8), 0);
        assert_eq!(cyc_add(2, 100, 7), (2 + 100) % 7);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(cyc_sub(0, 1, 8), 7);
        assert_eq!(cyc_sub(5, 3, 8), 2);
        assert_eq!(cyc_sub(5, 13, 8), 0);
        assert_eq!(cyc_sub(5, 100, 7), (5 + 7 * 15 - 100) % 7);
    }

    #[test]
    fn dist_is_shorter_arc() {
        assert_eq!(cyc_dist(0, 7, 8), 1);
        assert_eq!(cyc_dist(0, 4, 8), 4);
        assert_eq!(cyc_dist(3, 3, 8), 0);
        assert_eq!(cyc_dist(1, 6, 8), 3);
    }

    #[test]
    fn offset_signed() {
        assert_eq!(cyc_offset(0, 1, 8), 1);
        assert_eq!(cyc_offset(1, 0, 8), -1);
        assert_eq!(cyc_offset(0, 4, 8), 4); // ties go forward
        assert_eq!(cyc_offset(7, 0, 8), 1);
        assert_eq!(cyc_offset(0, 7, 8), -1);
    }

    #[test]
    fn ring_arc_membership() {
        let r = CyclicRing::new(10);
        assert!(r.in_arc(9, 8, 3));
        assert!(r.in_arc(0, 8, 3));
        assert!(!r.in_arc(1, 8, 3));
        assert!(r.in_arc(8, 8, 1));
        assert!(!r.in_arc(7, 8, 3));
        // full-cycle arcs contain everything
        assert!(r.in_arc(5, 0, 10));
        assert!(r.in_arc(5, 7, 25));
    }

    #[test]
    fn ring_arc_iter() {
        let r = CyclicRing::new(5);
        let arc: Vec<_> = r.arc(3, 4).collect();
        assert_eq!(arc, vec![3, 4, 0, 1]);
        let full: Vec<_> = r.arc(2, 5).collect();
        assert_eq!(full, vec![2, 3, 4, 0, 1]);
        // over-long arcs are clamped to one full cycle
        let clamped: Vec<_> = r.arc(0, 100).collect();
        assert_eq!(clamped.len(), 5);
    }

    #[test]
    fn ring_adjacency() {
        let r = CyclicRing::new(8);
        assert!(r.adjacent(0, 7));
        assert!(r.adjacent(3, 4));
        assert!(!r.adjacent(0, 2));
        assert!(!r.adjacent(4, 4));
        assert!(!CyclicRing::new(1).adjacent(0, 0));
        assert!(CyclicRing::new(2).adjacent(0, 1));
    }

    #[test]
    fn succ_pred_roundtrip() {
        let r = CyclicRing::new(9);
        for a in 0..9 {
            assert_eq!(r.pred(r.succ(a)), a);
            assert_eq!(r.succ(r.pred(a)), a);
        }
    }
}
