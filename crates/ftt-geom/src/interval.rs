//! Cyclic intervals: contiguous arcs on the cycle `[0, n)`.
//!
//! A band of width `b` masks, in every column, the arc
//! `{β(z), β(z) +_m 1, …, β(z) +_m (b−1)}` — a [`CyclicInterval`]. The
//! untouching condition between bands is a statement about gaps between
//! such arcs, so interval overlap/gap tests are factored out here.

use crate::cyclic::{cyc_add, cyc_sub};

/// A contiguous arc `{start, start+1, …, start+len−1}` (mod `n`) on the
/// cycle of `n` nodes. `len == 0` denotes the empty interval; `len >= n`
/// is normalised to the full cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CyclicInterval {
    /// First element of the arc, in `[0, n)`.
    pub start: usize,
    /// Number of elements of the arc.
    pub len: usize,
    /// Cycle length.
    pub n: usize,
}

impl CyclicInterval {
    /// Creates the arc of `len` elements starting at `start` on the
    /// `n`-cycle. `len` is clamped to `n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `start >= n`.
    #[inline]
    pub fn new(start: usize, len: usize, n: usize) -> Self {
        assert!(n > 0, "cycle length must be positive");
        assert!(start < n, "start {start} out of range for cycle {n}");
        Self {
            start,
            len: len.min(n),
            n,
        }
    }

    /// The empty interval on the `n`-cycle.
    #[inline]
    pub fn empty(n: usize) -> Self {
        Self::new(0, 0, n)
    }

    /// Whether the interval contains `x`.
    #[inline]
    pub fn contains(&self, x: usize) -> bool {
        debug_assert!(x < self.n);
        if self.len == 0 {
            return false;
        }
        if self.len >= self.n {
            return true;
        }
        cyc_sub(x, self.start, self.n) < self.len
    }

    /// The element one past the end of the arc (`start +_n len`).
    #[inline]
    pub fn end(&self) -> usize {
        cyc_add(self.start, self.len, self.n)
    }

    /// Last element of the arc. Empty intervals have no last element.
    #[inline]
    pub fn last(&self) -> Option<usize> {
        if self.len == 0 {
            None
        } else {
            Some(cyc_add(self.start, self.len - 1, self.n))
        }
    }

    /// Whether two arcs on the same cycle share an element.
    #[inline]
    pub fn overlaps(&self, other: &CyclicInterval) -> bool {
        debug_assert_eq!(self.n, other.n, "intervals on different cycles");
        if self.len == 0 || other.len == 0 {
            return false;
        }
        if self.len >= self.n || other.len >= other.n {
            return true;
        }
        // other.start inside self, or self.start inside other.
        self.contains(other.start) || other.contains(self.start)
    }

    /// The forward gap from the end of `self` to the start of `other`:
    /// the number of cycle nodes strictly between `self`'s last element
    /// and `other`'s first element when walking forward.
    ///
    /// Two bands are *untouching* in a column exactly when the gap between
    /// their arcs is at least 1 in both directions (the paper's
    /// `|β1(z) − β2(z)| ≥ b+1` condition, phrased per column).
    #[inline]
    pub fn forward_gap_to(&self, other: &CyclicInterval) -> usize {
        debug_assert_eq!(self.n, other.n);
        debug_assert!(self.len > 0 && other.len > 0, "gap of empty interval");
        cyc_sub(other.start, self.end(), self.n)
    }

    /// Iterates the elements of the arc in forward order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let (start, n) = (self.start, self.n);
        (0..self.len).map(move |k| cyc_add(start, k, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_wrapping() {
        let iv = CyclicInterval::new(6, 4, 8); // {6,7,0,1}
        assert!(iv.contains(6));
        assert!(iv.contains(7));
        assert!(iv.contains(0));
        assert!(iv.contains(1));
        assert!(!iv.contains(2));
        assert!(!iv.contains(5));
    }

    #[test]
    fn empty_contains_nothing() {
        let iv = CyclicInterval::empty(5);
        for x in 0..5 {
            assert!(!iv.contains(x));
        }
    }

    #[test]
    fn full_cycle_contains_everything() {
        let iv = CyclicInterval::new(3, 99, 7);
        assert_eq!(iv.len, 7);
        for x in 0..7 {
            assert!(iv.contains(x));
        }
    }

    #[test]
    fn overlap_cases() {
        let a = CyclicInterval::new(0, 3, 10); // {0,1,2}
        let b = CyclicInterval::new(2, 2, 10); // {2,3}
        let c = CyclicInterval::new(3, 2, 10); // {3,4}
        let d = CyclicInterval::new(8, 3, 10); // {8,9,0}
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&d));
        assert!(d.overlaps(&a));
        assert!(!c.overlaps(&d));
        let e = CyclicInterval::empty(10);
        assert!(!a.overlaps(&e));
        assert!(!e.overlaps(&a));
    }

    #[test]
    fn forward_gap() {
        let a = CyclicInterval::new(0, 3, 10); // {0,1,2}
        let b = CyclicInterval::new(5, 2, 10); // {5,6}
        assert_eq!(a.forward_gap_to(&b), 2); // 3,4 in between
        assert_eq!(b.forward_gap_to(&a), 3); // 7,8,9 in between
        let c = CyclicInterval::new(3, 1, 10);
        assert_eq!(a.forward_gap_to(&c), 0); // adjacent, touching
    }

    #[test]
    fn iter_and_last() {
        let iv = CyclicInterval::new(6, 4, 8);
        assert_eq!(iv.iter().collect::<Vec<_>>(), vec![6, 7, 0, 1]);
        assert_eq!(iv.last(), Some(1));
        assert_eq!(iv.end(), 2);
        assert_eq!(CyclicInterval::empty(8).last(), None);
    }
}
