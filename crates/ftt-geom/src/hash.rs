//! The workspace's one deterministic hashing toolbox: incremental
//! 64-bit FNV-1a and the splitmix64 finisher.
//!
//! Three subsystems need platform-independent, process-independent
//! hashes — certificate content hashes (`ftt-core`), canonical-cell-id
//! seed derivation (`ftt-sim::sweep`, `ftt-sim::lifetime`), and the
//! order-independent digest folding of exhaustive certification
//! (`ftt-sim::certify`). They used to carry three hand-rolled copies of
//! the same constants; this module is the single definition they all
//! share. The functions are pure and stable: hashes are part of
//! artifact schemas (`CERT_*.json` digests) and of the determinism
//! contract (cell seeds), so the constants and byte order here must
//! never change observably.

/// Incremental 64-bit FNV-1a over a canonical byte stream.
///
/// Words are folded in little-endian byte order so hashes agree across
/// platforms.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds one `u64` as its little-endian bytes.
    pub fn word(&mut self, w: u64) -> &mut Self {
        self.bytes(&w.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(bytes);
    h.finish()
}

/// The splitmix64 finisher: a fast, well-mixed bijection on `u64`, used
/// to turn structured values (FNV hashes of ids, indices) into seeds
/// and digest contributions.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a seed from a root seed and a canonical string id (FNV-1a
/// over the id, mixed with the root, splitmix64-finished). Hashing the
/// *id* instead of any positional index is what makes results invariant
/// under reordering and grid extension — the contract `ftt-sim` sweep
/// and lifetime cells rely on.
pub fn seed_for_id(root_seed: u64, id: &str) -> u64 {
    let h = fnv1a(id.as_bytes());
    // Pre-mix the root multiplicatively, then finish; equivalent to the
    // historical sweep cell_seed derivation.
    let z = h ^ root_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix_finish(z)
}

/// The splitmix64 *mixing* steps without the additive increment —
/// retained verbatim from the historical sweep-seed derivation so
/// existing cell seeds are unchanged by the consolidation.
fn splitmix_finish(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.bytes(b"foo").bytes(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn word_is_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.word(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.bytes(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn splitmix_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
        assert_ne!(splitmix64(0), 0, "zero must not be a fixed point");
    }

    #[test]
    fn seed_for_id_is_id_and_root_sensitive() {
        let a = seed_for_id(1, "b2_n54b3e1/design_x1_q0");
        assert_ne!(a, seed_for_id(1, "b2_n54b3e1/design_x4_q0"));
        assert_ne!(a, seed_for_id(2, "b2_n54b3e1/design_x1_q0"));
        assert_eq!(a, seed_for_id(1, "b2_n54b3e1/design_x1_q0"));
    }
}
