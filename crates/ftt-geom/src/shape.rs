//! Multi-dimensional box/torus shapes and coordinate <-> flat-index maps.
//!
//! A [`Shape`] is the extent vector `(n1, …, nd)` of a `d`-dimensional box.
//! Nodes are addressed either by a [`Coord`] (vector of per-dimension
//! indices) or by a flat `usize` in row-major order (dimension 0 slowest).
//! Torus adjacency (cyclic in every dimension) and mesh adjacency
//! (non-cyclic) are both provided.

use crate::cyclic::{cyc_add, cyc_sub};

/// A point of a `d`-dimensional box: one index per dimension.
pub type Coord = Vec<usize>;

/// The extents of a `d`-dimensional box/torus, with row-major strides.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
    len: usize,
}

impl Shape {
    /// Creates a shape with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any extent is zero.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "shape needs at least one dimension");
        assert!(dims.iter().all(|&n| n > 0), "extents must be positive");
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len() - 1).rev() {
            strides[i] = strides[i + 1]
                .checked_mul(dims[i + 1])
                .expect("shape size overflows usize");
        }
        let len = strides[0]
            .checked_mul(dims[0])
            .expect("shape size overflows usize");
        Self { dims, strides, len }
    }

    /// The hypercube shape `n × n × … × n` (`d` factors).
    pub fn cube(n: usize, d: usize) -> Self {
        Self::new(vec![n; d])
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `axis`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// All extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of nodes `n1 · n2 · … · nd`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the shape has zero nodes (never true: extents are positive).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row-major stride of dimension `axis`.
    #[inline]
    pub fn stride(&self, axis: usize) -> usize {
        self.strides[axis]
    }

    /// Flattens a coordinate to its row-major index.
    ///
    /// # Panics
    /// Debug-panics if the coordinate is out of bounds.
    #[inline]
    pub fn flatten(&self, coord: &[usize]) -> usize {
        debug_assert_eq!(coord.len(), self.dims.len());
        let mut idx = 0;
        for (axis, &c) in coord.iter().enumerate() {
            debug_assert!(c < self.dims[axis], "coord out of bounds");
            idx += c * self.strides[axis];
        }
        idx
    }

    /// Expands a flat index into a coordinate vector.
    #[inline]
    pub fn unflatten(&self, mut idx: usize) -> Coord {
        debug_assert!(idx < self.len);
        let mut coord = vec![0usize; self.dims.len()];
        for axis in 0..self.dims.len() {
            coord[axis] = idx / self.strides[axis];
            idx %= self.strides[axis];
        }
        coord
    }

    /// Extracts coordinate `axis` of a flat index without a full unflatten.
    #[inline]
    pub fn coord_of(&self, idx: usize, axis: usize) -> usize {
        debug_assert!(idx < self.len);
        (idx / self.strides[axis]) % self.dims[axis]
    }

    /// The flat index obtained from `idx` by cyclically stepping `±step`
    /// along `axis` (torus move).
    #[inline]
    pub fn torus_step(&self, idx: usize, axis: usize, step: isize) -> usize {
        let n = self.dims[axis];
        let c = self.coord_of(idx, axis);
        let c2 = if step >= 0 {
            cyc_add(c, step as usize, n)
        } else {
            cyc_sub(c, (-step) as usize, n)
        };
        idx + (c2 * self.strides[axis]) - (c * self.strides[axis])
    }

    /// The flat index obtained by a *mesh* step (no wraparound); `None`
    /// if the step leaves the box.
    #[inline]
    pub fn mesh_step(&self, idx: usize, axis: usize, step: isize) -> Option<usize> {
        let n = self.dims[axis];
        let c = self.coord_of(idx, axis) as isize;
        let c2 = c + step;
        if c2 < 0 || c2 >= n as isize {
            return None;
        }
        Some((idx as isize + (c2 - c) * self.strides[axis] as isize) as usize)
    }

    /// Iterates all flat indices (0..len).
    #[inline]
    pub fn iter(&self) -> std::ops::Range<usize> {
        0..self.len
    }

    /// Iterates all coordinates in row-major order.
    pub fn coords(&self) -> CoordIter<'_> {
        CoordIter {
            shape: self,
            next: Some(vec![0; self.dims.len()]),
        }
    }

    /// Torus neighbours of `idx`: `±1` in every dimension, deduplicated the
    /// way the cycle graph `C_n` is (extent 1 → no neighbour in that
    /// dimension; extent 2 → a single neighbour). The returned list may
    /// therefore have fewer than `2d` entries.
    pub fn torus_neighbors(&self, idx: usize) -> Vec<usize> {
        self.torus_neighbors_iter(idx).collect()
    }

    /// Allocation-free form of
    /// [`torus_neighbors`](Self::torus_neighbors) for hot loops
    /// (alignment checks, region flood fills).
    pub fn torus_neighbors_iter(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.dims.len()).flat_map(move |axis| {
            let n = self.dims[axis];
            let up = (n > 1).then(|| self.torus_step(idx, axis, 1));
            let down = (n > 2).then(|| self.torus_step(idx, axis, -1));
            up.into_iter().chain(down)
        })
    }

    /// Whether two flat indices are torus-adjacent (differ by `±1`
    /// cyclically in exactly one dimension).
    pub fn torus_adjacent(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let mut seen_diff = false;
        for axis in 0..self.dims.len() {
            let (ca, cb) = (self.coord_of(a, axis), self.coord_of(b, axis));
            if ca == cb {
                continue;
            }
            if seen_diff {
                return false;
            }
            seen_diff = true;
            let n = self.dims[axis];
            let d = crate::cyclic::cyc_dist(ca, cb, n);
            if d != 1 {
                return false;
            }
        }
        seen_diff
    }
}

/// Row-major coordinate iterator produced by [`Shape::coords`].
pub struct CoordIter<'a> {
    shape: &'a Shape,
    next: Option<Coord>,
}

impl Iterator for CoordIter<'_> {
    type Item = Coord;

    fn next(&mut self) -> Option<Coord> {
        let cur = self.next.take()?;
        // compute successor
        let mut succ = cur.clone();
        for axis in (0..succ.len()).rev() {
            succ[axis] += 1;
            if succ[axis] < self.shape.dims[axis] {
                self.next = Some(succ);
                return Some(cur);
            }
            succ[axis] = 0;
        }
        // overflowed: cur was the last coordinate
        self.next = None;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_unflatten_roundtrip() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.len(), 60);
        for idx in s.iter() {
            let c = s.unflatten(idx);
            assert_eq!(s.flatten(&c), idx);
            for axis in 0..3 {
                assert_eq!(s.coord_of(idx, axis), c[axis]);
            }
        }
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.stride(0), 20);
        assert_eq!(s.stride(1), 5);
        assert_eq!(s.stride(2), 1);
        assert_eq!(s.flatten(&[1, 2, 3]), 20 + 10 + 3);
    }

    #[test]
    fn torus_step_wraps() {
        let s = Shape::new(vec![4, 4]);
        let idx = s.flatten(&[3, 0]);
        assert_eq!(s.torus_step(idx, 0, 1), s.flatten(&[0, 0]));
        assert_eq!(s.torus_step(idx, 1, -1), s.flatten(&[3, 3]));
        assert_eq!(s.torus_step(idx, 0, 5), s.flatten(&[0, 0]));
    }

    #[test]
    fn mesh_step_bounds() {
        let s = Shape::new(vec![4, 4]);
        let idx = s.flatten(&[3, 0]);
        assert_eq!(s.mesh_step(idx, 0, 1), None);
        assert_eq!(s.mesh_step(idx, 1, -1), None);
        assert_eq!(s.mesh_step(idx, 0, -1), Some(s.flatten(&[2, 0])));
        assert_eq!(s.mesh_step(idx, 1, 3), Some(s.flatten(&[3, 3])));
    }

    #[test]
    fn neighbors_count_and_dedup() {
        let s = Shape::new(vec![5, 5, 5]);
        assert_eq!(s.torus_neighbors(0).len(), 6);
        // extent 2: only one neighbour per that dimension
        let s2 = Shape::new(vec![2, 5]);
        assert_eq!(s2.torus_neighbors(0).len(), 3);
        // extent 1: no neighbour in that dimension
        let s1 = Shape::new(vec![1, 5]);
        assert_eq!(s1.torus_neighbors(0).len(), 2);
    }

    #[test]
    fn adjacency_is_symmetric_and_matches_neighbors() {
        let s = Shape::new(vec![3, 4]);
        for a in s.iter() {
            for b in s.iter() {
                let adj = s.torus_adjacent(a, b);
                assert_eq!(adj, s.torus_adjacent(b, a));
                assert_eq!(adj, s.torus_neighbors(a).contains(&b));
            }
        }
    }

    #[test]
    fn coords_iterator_row_major() {
        let s = Shape::new(vec![2, 3]);
        let cs: Vec<_> = s.coords().collect();
        assert_eq!(cs.len(), 6);
        assert_eq!(cs[0], vec![0, 0]);
        assert_eq!(cs[1], vec![0, 1]);
        assert_eq!(cs[3], vec![1, 0]);
        assert_eq!(cs[5], vec![1, 2]);
        for (i, c) in cs.iter().enumerate() {
            assert_eq!(s.flatten(c), i);
        }
    }

    #[test]
    fn one_dimensional_shape() {
        let s = Shape::new(vec![7]);
        assert_eq!(s.len(), 7);
        assert_eq!(s.torus_neighbors(0), vec![1, 6]);
        assert!(s.torus_adjacent(0, 6));
    }
}
