//! Rows and columns: the paper's view of a `d`-dimensional torus as
//! `C_m × T′` where `T′ = C_{n2} × … × C_{nd}` is the *column space*.
//!
//! A node is a pair `(i, z)`: `i ∈ [m]` is the first ("vertical")
//! coordinate, `z` is a node of the `(d−1)`-dimensional column torus.
//! Column `z` of the big torus is the copy of `C_m` at that `z`; the
//! `i`-th *row* is the copy of `T′` at height `i`. Bands are functions
//! from columns to `[m]`, so all band machinery in `ftt-core` addresses
//! nodes through this split.

use crate::cyclic::CyclicRing;
use crate::shape::Shape;

/// The factorisation `C_m × T′` of a torus: first dimension of extent `m`,
/// column torus `T′` with one extent per remaining dimension.
///
/// For `d = 1` the column space is a single trivial column (`T′` has one
/// node), which lets 1-dimensional constructions reuse the same API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpace {
    /// Extent of the first (vertical) dimension.
    m: usize,
    /// Shape of the column torus `T′` (empty product → singleton handled
    /// by a `[1]` shape).
    cols: Shape,
    ring_m: CyclicRing,
}

impl ColumnSpace {
    /// Creates the split `C_m × T′` where `T′` has extents `col_dims`.
    /// Passing an empty `col_dims` yields the 1-dimensional case (a single
    /// column).
    pub fn new(m: usize, col_dims: &[usize]) -> Self {
        assert!(m > 0, "vertical extent must be positive");
        let cols = if col_dims.is_empty() {
            Shape::new(vec![1])
        } else {
            Shape::new(col_dims.to_vec())
        };
        Self {
            m,
            cols,
            ring_m: CyclicRing::new(m),
        }
    }

    /// Builds the column space of the cube torus `C_m × (C_n)^{d−1}`.
    pub fn cube(m: usize, n: usize, d: usize) -> Self {
        assert!(d >= 1, "dimension must be at least 1");
        Self::new(m, &vec![n; d - 1])
    }

    /// Vertical extent `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The cyclic ring `Z_m` of vertical coordinates.
    #[inline]
    pub fn ring(&self) -> CyclicRing {
        self.ring_m
    }

    /// Number of columns `|T′|`.
    #[inline]
    pub fn num_columns(&self) -> usize {
        self.cols.len()
    }

    /// Shape of the column torus.
    #[inline]
    pub fn column_shape(&self) -> &Shape {
        &self.cols
    }

    /// Total number of nodes `m · |T′|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.m * self.cols.len()
    }

    /// Whether the space is empty (never: extents positive).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat node id of `(i, z)`. Nodes are numbered with `i` slowest so
    /// `node = i * num_columns + z`, consistent with [`Shape`] row-major
    /// order on `(m, n2, …, nd)`.
    #[inline]
    pub fn node(&self, i: usize, z: usize) -> usize {
        debug_assert!(i < self.m && z < self.cols.len());
        i * self.cols.len() + z
    }

    /// Splits a flat node id into `(i, z)`.
    #[inline]
    pub fn split(&self, node: usize) -> (usize, usize) {
        debug_assert!(node < self.len());
        (node / self.cols.len(), node % self.cols.len())
    }

    /// Columns adjacent to `z` in the column torus (torus adjacency of
    /// `T′`; for `d = 1` there are none).
    #[inline]
    pub fn adjacent_columns(&self, z: usize) -> Vec<usize> {
        if self.cols.len() == 1 {
            return Vec::new();
        }
        self.cols.torus_neighbors(z)
    }

    /// Allocation-free form of
    /// [`adjacent_columns`](Self::adjacent_columns) for hot loops (a
    /// `[1]` column shape yields no neighbours by construction).
    #[inline]
    pub fn adjacent_columns_iter(&self, z: usize) -> impl Iterator<Item = usize> + '_ {
        self.cols.torus_neighbors_iter(z)
    }

    /// Whether columns `z` and `z′` are adjacent in `T′`.
    #[inline]
    pub fn columns_adjacent(&self, z: usize, z2: usize) -> bool {
        self.cols.torus_adjacent(z, z2)
    }

    /// Iterates all `(i, z)` pairs as flat node ids.
    #[inline]
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.len()
    }

    /// The whole torus as a [`Shape`] `(m, n2, …, nd)`.
    pub fn torus_shape(&self) -> Shape {
        let mut dims = Vec::with_capacity(1 + self.cols.ndim());
        dims.push(self.m);
        if !(self.cols.ndim() == 1 && self.cols.dim(0) == 1) {
            dims.extend_from_slice(self.cols.dims());
        }
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_split_roundtrip() {
        let cs = ColumnSpace::cube(6, 4, 3); // C_6 × C_4 × C_4
        assert_eq!(cs.num_columns(), 16);
        assert_eq!(cs.len(), 96);
        for node in cs.nodes() {
            let (i, z) = cs.split(node);
            assert_eq!(cs.node(i, z), node);
        }
    }

    #[test]
    fn d1_has_single_column() {
        let cs = ColumnSpace::cube(9, 7, 1);
        assert_eq!(cs.num_columns(), 1);
        assert_eq!(cs.len(), 9);
        assert!(cs.adjacent_columns(0).is_empty());
    }

    #[test]
    fn d2_columns_form_cycle() {
        let cs = ColumnSpace::cube(8, 5, 2);
        assert_eq!(cs.num_columns(), 5);
        let adj = cs.adjacent_columns(0);
        assert_eq!(adj.len(), 2);
        assert!(adj.contains(&1) && adj.contains(&4));
        assert!(cs.columns_adjacent(4, 0));
        assert!(!cs.columns_adjacent(0, 2));
    }

    #[test]
    fn torus_shape_matches() {
        let cs = ColumnSpace::cube(8, 4, 3);
        let sh = cs.torus_shape();
        assert_eq!(sh.dims(), &[8, 4, 4]);
        // flat ids agree between ColumnSpace and Shape
        for node in cs.nodes() {
            let (i, z) = cs.split(node);
            let zc = cs.column_shape().unflatten(z);
            let mut full = vec![i];
            full.extend(zc);
            assert_eq!(sh.flatten(&full), node);
        }
    }

    #[test]
    fn d1_torus_shape() {
        let cs = ColumnSpace::cube(9, 1, 1);
        assert_eq!(cs.torus_shape().dims(), &[9]);
    }
}
