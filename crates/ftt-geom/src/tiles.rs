//! Tiles, bricks and `s`-frames.
//!
//! Section 3 of the paper slices the augmented torus `B^d_n` into *tiles*
//! of side `b²` in every dimension. Tiles themselves form a smaller torus
//! (the *tile grid*). An *`s`-frame* is the boundary shell of an
//! `s × … × s` block of tiles; the painting procedure encloses every fault
//! inside a fault-free frame. A *brick* is a block of tiles of extent
//! `1 × b × … × b` tiles (`b² × b³ × … × b³` nodes) used by the
//! healthiness conditions.

use crate::shape::Shape;

/// A partition of a torus [`Shape`] into equal axis-aligned tiles, which
/// themselves form a torus (the *tile grid*).
#[derive(Debug, Clone)]
pub struct TileGrid {
    node_shape: Shape,
    grid_shape: Shape,
    tile_sides: Vec<usize>,
}

impl TileGrid {
    /// Partitions `node_shape` into tiles with side `tile_sides[axis]`
    /// along each axis.
    ///
    /// # Panics
    /// Panics if a tile side does not divide the corresponding extent, or
    /// if the dimension counts disagree.
    pub fn new(node_shape: Shape, tile_sides: Vec<usize>) -> Self {
        assert_eq!(
            node_shape.ndim(),
            tile_sides.len(),
            "one tile side per dimension required"
        );
        for axis in 0..node_shape.ndim() {
            let (n, t) = (node_shape.dim(axis), tile_sides[axis]);
            assert!(t > 0, "tile side must be positive");
            assert!(
                n % t == 0,
                "tile side {t} does not divide extent {n} on axis {axis}"
            );
        }
        let grid_dims: Vec<usize> = (0..node_shape.ndim())
            .map(|a| node_shape.dim(a) / tile_sides[a])
            .collect();
        let grid_shape = Shape::new(grid_dims);
        Self {
            node_shape,
            grid_shape,
            tile_sides,
        }
    }

    /// Uniform tiling: side `t` in every dimension.
    pub fn uniform(node_shape: Shape, t: usize) -> Self {
        let d = node_shape.ndim();
        Self::new(node_shape, vec![t; d])
    }

    /// The underlying node shape.
    #[inline]
    pub fn node_shape(&self) -> &Shape {
        &self.node_shape
    }

    /// The shape of the tile grid (tiles form a torus of this shape).
    #[inline]
    pub fn grid_shape(&self) -> &Shape {
        &self.grid_shape
    }

    /// Tile side along `axis`.
    #[inline]
    pub fn tile_side(&self, axis: usize) -> usize {
        self.tile_sides[axis]
    }

    /// Number of tiles.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.grid_shape.len()
    }

    /// Number of nodes per tile.
    #[inline]
    pub fn nodes_per_tile(&self) -> usize {
        self.tile_sides.iter().product()
    }

    /// The tile (flat id in the grid shape) containing a node.
    #[inline]
    pub fn tile_of_node(&self, node: usize) -> usize {
        let mut tile = 0;
        for axis in 0..self.node_shape.ndim() {
            let c = self.node_shape.coord_of(node, axis);
            tile += (c / self.tile_sides[axis]) * self.grid_shape.stride(axis);
        }
        tile
    }

    /// Iterates the flat node ids belonging to `tile`.
    pub fn nodes_in_tile(&self, tile: usize) -> Vec<usize> {
        let tc = self.grid_shape.unflatten(tile);
        let d = self.node_shape.ndim();
        let base: Vec<usize> = (0..d).map(|a| tc[a] * self.tile_sides[a]).collect();
        let within = Shape::new(self.tile_sides.clone());
        let mut out = Vec::with_capacity(within.len());
        for w in within.coords() {
            let coord: Vec<usize> = (0..d).map(|a| base[a] + w[a]).collect();
            out.push(self.node_shape.flatten(&coord));
        }
        out
    }

    /// Cyclic Chebyshev (L∞) distance between two tiles on the tile-grid
    /// torus — the radius notion for frames.
    pub fn tile_chebyshev(&self, a: usize, b: usize) -> usize {
        let mut dmax = 0;
        for axis in 0..self.grid_shape.ndim() {
            let (ca, cb) = (
                self.grid_shape.coord_of(a, axis),
                self.grid_shape.coord_of(b, axis),
            );
            let d = crate::cyclic::cyc_dist(ca, cb, self.grid_shape.dim(axis));
            dmax = dmax.max(d);
        }
        dmax
    }

    /// Per-tile counts of marked nodes: given a predicate over nodes,
    /// returns `counts[tile]` = number of nodes in the tile satisfying it.
    /// This is the basic summary the healthiness checker and the painter
    /// work from (O(#nodes)).
    pub fn count_per_tile<F: Fn(usize) -> bool>(&self, pred: F) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_tiles()];
        for node in self.node_shape.iter() {
            if pred(node) {
                counts[self.tile_of_node(node)] += 1;
            }
        }
        counts
    }

    /// The frame of radius `radius` centred at `center` (an `s`-frame with
    /// `s = 2·radius + 1`). Returns `None` if the shell would wrap onto
    /// itself (i.e. `s` exceeds some tile-grid extent), in which case
    /// "interior" is ill-defined.
    pub fn frame(&self, center: usize, radius: usize) -> Option<Frame<'_>> {
        let s = 2 * radius + 1;
        for axis in 0..self.grid_shape.ndim() {
            if s > self.grid_shape.dim(axis) {
                return None;
            }
        }
        Some(Frame {
            grid: self,
            center,
            radius,
        })
    }
}

/// The boundary shell (an `s`-frame, `s = 2·radius+1`) of the block of
/// tiles within Chebyshev radius `radius` of a centre tile.
///
/// In the paper an `s`-frame is the set of boundary tiles of an
/// `s·b² × … × s·b²` tiled submesh; here the submesh is identified by its
/// central tile, which is enough for the painting procedure (it only ever
/// uses frames concentric with a faulty node's tile).
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    grid: &'a TileGrid,
    center: usize,
    radius: usize,
}

impl Frame<'_> {
    /// The frame's centre tile.
    #[inline]
    pub fn center(&self) -> usize {
        self.center
    }

    /// The frame's radius (in tiles); `s = 2·radius + 1`.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// The `s` in "`s`-frame".
    #[inline]
    pub fn s(&self) -> usize {
        2 * self.radius + 1
    }

    /// Tiles forming the shell: Chebyshev distance exactly `radius` from
    /// the centre.
    pub fn shell_tiles(&self) -> Vec<usize> {
        self.tiles_where(|d| d == self.radius)
    }

    /// Tiles strictly inside the shell (the region painted black).
    pub fn interior_tiles(&self) -> Vec<usize> {
        self.tiles_where(|d| d < self.radius)
    }

    /// Whether `tile` lies strictly inside the shell.
    pub fn encloses_tile(&self, tile: usize) -> bool {
        self.grid.tile_chebyshev(self.center, tile) < self.radius
    }

    /// Whether the shell contains no marked tiles according to per-tile
    /// counts (e.g. fault counts from [`TileGrid::count_per_tile`]).
    pub fn shell_clear(&self, counts: &[u32]) -> bool {
        self.shell_tiles().iter().all(|&t| counts[t] == 0)
    }

    fn tiles_where<F: Fn(usize) -> bool>(&self, keep: F) -> Vec<usize> {
        let g = self.grid.grid_shape();
        let d = g.ndim();
        let cc = g.unflatten(self.center);
        let r = self.radius as isize;
        let side = 2 * self.radius + 1;
        let offsets = Shape::new(vec![side; d]);
        let mut out = Vec::new();
        for off in offsets.coords() {
            let mut dist = 0usize;
            let mut coord = vec![0usize; d];
            for axis in 0..d {
                let o = off[axis] as isize - r;
                dist = dist.max(o.unsigned_abs());
                let n = g.dim(axis) as isize;
                let c = (cc[axis] as isize + o).rem_euclid(n) as usize;
                coord[axis] = c;
            }
            if keep(dist) {
                out.push(g.flatten(&coord));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_4x4_tiles_2() -> TileGrid {
        TileGrid::uniform(Shape::new(vec![8, 8]), 2)
    }

    #[test]
    fn tile_of_node_partitions() {
        let g = grid_4x4_tiles_2();
        assert_eq!(g.num_tiles(), 16);
        assert_eq!(g.nodes_per_tile(), 4);
        let mut counts = vec![0usize; g.num_tiles()];
        for node in g.node_shape().iter() {
            counts[g.tile_of_node(node)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn nodes_in_tile_inverse_of_tile_of_node() {
        let g = TileGrid::new(Shape::new(vec![6, 8]), vec![3, 2]);
        for tile in 0..g.num_tiles() {
            for node in g.nodes_in_tile(tile) {
                assert_eq!(g.tile_of_node(node), tile);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn non_dividing_tile_side_panics() {
        TileGrid::uniform(Shape::new(vec![9, 8]), 2);
    }

    #[test]
    fn chebyshev_cyclic() {
        let g = grid_4x4_tiles_2(); // tile grid 4×4
        let gs = g.grid_shape().clone();
        let a = gs.flatten(&[0, 0]);
        let b = gs.flatten(&[3, 3]);
        assert_eq!(g.tile_chebyshev(a, b), 1); // wraps both axes
        let c = gs.flatten(&[2, 0]);
        assert_eq!(g.tile_chebyshev(a, c), 2);
        assert_eq!(g.tile_chebyshev(a, a), 0);
    }

    #[test]
    fn frame_shell_and_interior() {
        // 8×8 nodes, 2×2 tiles → 4×4 tile grid; radius-1 frame = 8 shell
        // tiles around 1 interior tile.
        let g = grid_4x4_tiles_2();
        let center = g.grid_shape().flatten(&[1, 1]);
        let f = g.frame(center, 1).expect("radius 1 fits in 4×4 grid");
        assert_eq!(f.s(), 3);
        let shell = f.shell_tiles();
        assert_eq!(shell.len(), 8);
        let interior = f.interior_tiles();
        assert_eq!(interior, vec![center]);
        assert!(f.encloses_tile(center));
        for t in shell {
            assert!(!f.encloses_tile(t));
            assert_eq!(g.tile_chebyshev(center, t), 1);
        }
    }

    #[test]
    fn frame_too_large_is_none() {
        let g = grid_4x4_tiles_2(); // 4×4 tile grid
        let center = 0;
        assert!(g.frame(center, 1).is_some()); // s = 3 ≤ 4
        assert!(g.frame(center, 2).is_none()); // s = 5 > 4
    }

    #[test]
    fn frame_clear_uses_counts() {
        let g = grid_4x4_tiles_2();
        let center = g.grid_shape().flatten(&[1, 1]);
        let f = g.frame(center, 1).unwrap();
        let mut counts = vec![0u32; g.num_tiles()];
        assert!(f.shell_clear(&counts));
        counts[g.grid_shape().flatten(&[0, 0])] = 1; // a shell tile
        assert!(!f.shell_clear(&counts));
        let mut counts2 = vec![0u32; g.num_tiles()];
        counts2[center] = 5; // interior fault does not dirty the shell
        assert!(f.shell_clear(&counts2));
    }

    #[test]
    fn count_per_tile_sums() {
        let g = grid_4x4_tiles_2();
        let counts = g.count_per_tile(|n| n % 3 == 0);
        let total: u32 = counts.iter().sum();
        let expect = g.node_shape().iter().filter(|n| n % 3 == 0).count() as u32;
        assert_eq!(total, expect);
    }

    #[test]
    fn three_dimensional_tiles() {
        let g = TileGrid::uniform(Shape::new(vec![4, 4, 4]), 2);
        assert_eq!(g.num_tiles(), 8);
        assert_eq!(g.nodes_per_tile(), 8);
        let f = g.frame(0, 1);
        // tile grid is 2×2×2: s = 3 > 2, frame must not exist
        assert!(f.is_none());
    }
}
