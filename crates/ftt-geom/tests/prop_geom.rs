//! Property-based tests for the geometry substrate.

use ftt_geom::{cyc_add, cyc_dist, cyc_sub, CyclicInterval, CyclicRing, Shape, TileGrid};
use proptest::prelude::*;

proptest! {
    /// `a +_n b -_n b = a` for all inputs.
    #[test]
    fn add_sub_inverse(n in 1usize..500, a in 0usize..500, b in 0usize..10_000) {
        let a = a % n;
        prop_assert_eq!(cyc_sub(cyc_add(a, b, n), b, n), a);
        prop_assert_eq!(cyc_add(cyc_sub(a, b, n), b, n), a);
    }

    /// Cyclic distance is a metric on the cycle: symmetry, identity,
    /// triangle inequality.
    #[test]
    fn dist_is_metric(n in 1usize..200, a in 0usize..200, b in 0usize..200, c in 0usize..200) {
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assert_eq!(cyc_dist(a, b, n), cyc_dist(b, a, n));
        prop_assert_eq!(cyc_dist(a, a, n), 0);
        prop_assert!(cyc_dist(a, c, n) <= cyc_dist(a, b, n) + cyc_dist(b, c, n));
        prop_assert!(cyc_dist(a, b, n) <= n / 2);
    }

    /// Signed offset is consistent with addition.
    #[test]
    fn offset_consistent(n in 1usize..200, a in 0usize..200, b in 0usize..200) {
        let (a, b) = (a % n, b % n);
        let r = CyclicRing::new(n);
        let k = r.offset(a, b);
        let back = if k >= 0 { r.add(a, k as usize) } else { r.sub(a, (-k) as usize) };
        prop_assert_eq!(back, b);
        prop_assert!(k.unsigned_abs() <= n / 2);
    }

    /// Interval membership matches brute-force arc enumeration.
    #[test]
    fn interval_matches_enumeration(n in 1usize..100, start in 0usize..100, len in 0usize..150) {
        let start = start % n;
        let iv = CyclicInterval::new(start, len, n);
        let r = CyclicRing::new(n);
        let arc: std::collections::HashSet<usize> = r.arc(start, len).collect();
        for x in 0..n {
            prop_assert_eq!(iv.contains(x), arc.contains(&x));
        }
    }

    /// Interval overlap matches brute-force intersection.
    #[test]
    fn overlap_matches_enumeration(
        n in 1usize..60,
        s1 in 0usize..60, l1 in 0usize..70,
        s2 in 0usize..60, l2 in 0usize..70,
    ) {
        let (s1, s2) = (s1 % n, s2 % n);
        let a = CyclicInterval::new(s1, l1, n);
        let b = CyclicInterval::new(s2, l2, n);
        let brute = (0..n).any(|x| a.contains(x) && b.contains(x));
        prop_assert_eq!(a.overlaps(&b), brute);
    }

    /// Flatten/unflatten are mutually inverse on random shapes.
    #[test]
    fn shape_roundtrip(dims in prop::collection::vec(1usize..7, 1..4), pick in 0usize..10_000) {
        let s = Shape::new(dims);
        let idx = pick % s.len();
        let c = s.unflatten(idx);
        prop_assert_eq!(s.flatten(&c), idx);
    }

    /// Torus steps of +1 then −1 along any axis return to the start.
    #[test]
    fn torus_step_inverse(dims in prop::collection::vec(1usize..7, 1..4), pick in 0usize..10_000) {
        let s = Shape::new(dims);
        let idx = pick % s.len();
        for axis in 0..s.ndim() {
            let there = s.torus_step(idx, axis, 1);
            prop_assert_eq!(s.torus_step(there, axis, -1), idx);
        }
    }

    /// Every node belongs to exactly the tile reported by `tile_of_node`,
    /// and tiles partition the node set.
    #[test]
    fn tiles_partition(
        gdims in prop::collection::vec(1usize..4, 1..3),
        sides in prop::collection::vec(1usize..4, 1..3),
    ) {
        let d = gdims.len().min(sides.len());
        let dims: Vec<usize> = (0..d).map(|a| gdims[a] * sides[a]).collect();
        let grid = TileGrid::new(Shape::new(dims), sides[..d].to_vec());
        let mut seen = vec![false; grid.node_shape().len()];
        for tile in 0..grid.num_tiles() {
            for node in grid.nodes_in_tile(tile) {
                prop_assert!(!seen[node], "node in two tiles");
                seen[node] = true;
                prop_assert_eq!(grid.tile_of_node(node), tile);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
