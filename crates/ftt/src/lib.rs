//! # ftt — Fault-Tolerant Torus constructions
//!
//! A faithful, executable reproduction of
//! *"Construction of the Mesh and the Torus Tolerating a Large Number of
//! Faults"* (Hisao Tamaki, SPAA'94 / JCSS 53:371–379, 1996).
//!
//! The paper builds redundant host networks that still contain a
//! fault-free `d`-dimensional torus (and hence mesh) after faults:
//!
//! | Theorem | Construction | Degree | Tolerates |
//! |---------|--------------|--------|-----------|
//! | 2 | [`Bdn`](core::bdn::Bdn) | `6d−2` | random faults, probability `log^{−3d} n` |
//! | 1 | [`Adn`](core::adn::Adn) | `O(log log n)` | constant node **and** edge failure probability |
//! | 3 | [`Ddn`](core::ddn::Ddn) | `4d` | any `k ≤ n^{1−2^{−d}}` worst-case faults |
//!
//! ## Quick start
//!
//! ```
//! use ftt::core::bdn::{Bdn, BdnParams};
//! use ftt::core::bdn::extract::extract_after_faults;
//!
//! // Theorem 2 instance: d = 2, side ≥ 54 with b = 3.
//! let params = BdnParams::fit(2, 54, 3, 1).unwrap();
//! let host = Bdn::build(params);
//! assert_eq!(host.graph().max_degree(), 6 * 2 - 2);
//!
//! // Knock out a node, then extract a fault-free 54×54 torus.
//! let mut faulty = vec![false; host.num_nodes()];
//! faulty[host.cols().node(17, 23)] = true;
//! let embedding = extract_after_faults(&host, &faulty).unwrap();
//! assert_eq!(embedding.len(), params.n * params.n);
//! ```
//!
//! ## Crate map
//!
//! * [`geom`] — cyclic arithmetic, shapes, tiles, frames
//! * [`graph`] — the [`graph::AdjacencyOracle`] trait (allocation-free
//!   degree/neighbour/edge-id queries, the production interface to a
//!   host's edges), CSR multigraphs implementing it, generators,
//!   oracle-generic embedding verification
//! * [`faults`] — random/adversarial fault models (incl. half-edges);
//!   fault sets stay `O(#faults)` even over implicit billion-edge hosts
//! * [`core`] — the paper's three constructions and band machinery,
//!   unified behind [`core::construct::HostConstruction`]. `B^d_n` and
//!   `D^d_{n,k}` are *implicit* hosts: their oracles
//!   ([`core::bdn::BdnOracle`], [`core::ddn::DdnOracle`]) answer every
//!   adjacency question by modular arithmetic on `(params, node id)`
//!   with the canonical edge numbering, so instances with `10^8+` nodes
//!   extract and certify without ever materialising a graph
//!   (`materialized_graph()` is `None`); `A²_n`'s irregular supernode
//!   multigraph keeps its eager CSR as the oracle
//! * [`expander`] — Margulis expanders, spectral gap (Alon–Chung substrate)
//! * [`baselines`] — Alon–Chung, FKP-style clusters, BCH analytic models
//! * [`verify`] — the trusted-checker layer: independent certificate
//!   validation, dense reference oracles, exhaustive pattern
//!   enumeration up to cyclic symmetry
//! * [`sim`] — parallel Monte-Carlo trial running and tables, the
//!   construction-generic [`sim::run_extraction_trials`] scenario
//!   runner, declarative sweeps, the exhaustive certification engine
//!   ([`sim::run_certify`]), and the lifetime engine
//!   ([`sim::run_lifetime`])
//! * [`online`] — the online fault-stream subsystem as one façade:
//!   streaming fault models ([`online::StreamSpec`], the replayable
//!   [`online::FaultJournal`]), incremental embedding repair
//!   ([`online::RepairState`] — O(1)/local/rebuild tiers with batch
//!   parity), and lifetime scenarios ([`online::run_lifetime`],
//!   presets `life-smoke`/`life-t2`/`life-t3`)
//! * [`serve`] — repair as a service: a persistent multi-tenant daemon
//!   ([`serve::Server`], `ftt serve`) hosting many tenant
//!   [`online::RepairState`]s sharded across worker threads, a
//!   length-framed binary protocol over TCP/Unix sockets
//!   ([`serve::protocol`]), write-ahead journal durability with exact
//!   crash replay ([`faults::journal_io`]), bounded-queue
//!   backpressure, and a pipelined [`serve::Client`]

pub use ftt_baselines as baselines;
pub use ftt_core as core;
pub use ftt_expander as expander;
pub use ftt_faults as faults;
pub use ftt_geom as geom;
pub use ftt_graph as graph;
pub use ftt_online as online;
pub use ftt_serve as serve;
pub use ftt_sim as sim;
pub use ftt_verify as verify;
