//! The Margulis–Gabber–Galil expander.
//!
//! Nodes are `Z_s × Z_s`; each node `(x, y)` is joined to
//!
//! ```text
//! (x + y, y)   (x + y + 1, y)   (x, y + x)   (x, y + x + 1)
//! ```
//!
//! and the four inverse images, all mod `s` — an 8-regular multigraph
//! with second eigenvalue bounded away from 8 (λ ≤ 5√2 ≈ 7.07), i.e. a
//! constant spectral gap, for every `s`. This is the classical explicit
//! expander family, sufficient for the Alon–Chung construction.

use ftt_graph::{Graph, GraphBuilder};

/// Builds the 8-regular Margulis–Gabber–Galil expander on `s² ` nodes.
///
/// Parallel edges are kept (the graph is a multigraph for small `s`),
/// so every node has degree exactly 8.
pub fn margulis_expander(s: usize) -> Graph {
    assert!(s >= 2, "expander side must be at least 2");
    let n = s * s;
    let mut b = GraphBuilder::new(n);
    b.reserve_edges(4 * n);
    let id = |x: usize, y: usize| -> usize { x * s + y };
    for x in 0..s {
        for y in 0..s {
            let v = id(x, y);
            // four forward maps; inverses are covered by the source node
            // of the corresponding forward edge.
            let images = [
                id((x + y) % s, y),
                id((x + y + 1) % s, y),
                id(x, (y + x) % s),
                id(x, (y + x + 1) % s),
            ];
            for u in images {
                // The classical definition keeps self-loops at nodes
                // with x ≡ 0 or y ≡ 0; loops contribute nothing to
                // connectivity or vertex expansion, so we drop them —
                // those boundary nodes have degree 7 instead of 8.
                if u != v {
                    b.add_edge(v, u);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftt_graph::connected_components;

    #[test]
    fn eight_regular_up_to_dropped_loops() {
        for s in [3usize, 5, 8, 13] {
            let g = margulis_expander(s);
            assert_eq!(g.num_nodes(), s * s);
            // 4 forward maps per node minus the dropped self-loops:
            // maps 1–4 are loops iff y=0, y=s−1, x=0, x=s−1 → 4s loops.
            assert_eq!(g.num_edges(), 4 * s * s - 4 * s, "s={s}");
            assert_eq!(g.max_degree(), 8, "s={s}");
            assert!(g.min_degree() >= 4, "s={s}: min degree {}", g.min_degree());
        }
    }

    #[test]
    fn connected() {
        for s in [3usize, 7, 10] {
            let g = margulis_expander(s);
            let alive = vec![true; g.num_nodes()];
            let c = connected_components(&g, &alive);
            assert_eq!(c.count, 1, "s={s}");
        }
    }

    #[test]
    fn no_self_loops() {
        let g = margulis_expander(6);
        for (_, u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn small_diameter() {
        // expanders have O(log n) diameter; sanity-check s=10 (100 nodes)
        let g = margulis_expander(10);
        let alive = vec![true; g.num_nodes()];
        let d = ftt_graph::bfs_distances(&g, 0, &alive);
        let max = d.iter().copied().max().unwrap();
        assert!(max <= 8, "diameter {max} too large for an expander");
    }
}
