//! Random regular multigraphs via the configuration model.
//!
//! Each node gets `d` stubs; a uniformly random perfect matching of the
//! stubs yields the edges. Self-loop pairs are resampled (bounded
//! retries); parallel edges are kept — for `d ≥ 3` the result is an
//! expander with high probability, which the spectral tests verify.

use ftt_graph::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples a random `d`-regular multigraph on `n` nodes.
///
/// # Panics
/// Panics if `n·d` is odd, `d == 0`, or `n < 2`.
pub fn random_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    assert!(d >= 1, "degree must be positive");
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    let mut stubs: Vec<usize> = (0..n * d).map(|s| s / d).collect();
    // Retry whole shuffles until no self-loop pair remains (expected
    // O(1) retries for d ≪ n; bounded for safety).
    for _attempt in 0..200 {
        stubs.shuffle(rng);
        let ok = stubs.chunks_exact(2).all(|p| p[0] != p[1]);
        if ok {
            let mut b = GraphBuilder::new(n);
            b.reserve_edges(n * d / 2);
            for p in stubs.chunks_exact(2) {
                b.add_edge(p[0], p[1]);
            }
            return b.build();
        }
    }
    // Deterministic fallback: fix self-loops by swapping with the next
    // pair (always possible when d < n).
    loop {
        stubs.shuffle(rng);
        let mut fixed = true;
        for i in (0..stubs.len()).step_by(2) {
            if stubs[i] == stubs[i + 1] {
                let j = (i + 2) % stubs.len();
                stubs.swap(i + 1, j);
                fixed = false;
            }
        }
        if stubs.chunks_exact(2).all(|p| p[0] != p[1]) {
            let mut b = GraphBuilder::new(n);
            for p in stubs.chunks_exact(2) {
                b.add_edge(p[0], p[1]);
            }
            return b.build();
        }
        if fixed {
            unreachable!("self-loop fixing loop must terminate");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftt_graph::connected_components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn regular_degrees() {
        let mut rng = SmallRng::seed_from_u64(1);
        for (n, d) in [(10usize, 3usize), (50, 4), (100, 8)] {
            let g = random_regular(n, d, &mut rng);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(g.num_edges(), n * d / 2);
            assert_eq!(g.max_degree(), d);
            assert_eq!(g.min_degree(), d);
        }
    }

    #[test]
    fn no_self_loops() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = random_regular(30, 3, &mut rng);
        for (_, u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn usually_connected() {
        // d ≥ 3 random regular graphs are connected whp
        let mut rng = SmallRng::seed_from_u64(3);
        let mut connected = 0;
        for _ in 0..10 {
            let g = random_regular(60, 4, &mut rng);
            let alive = vec![true; g.num_nodes()];
            if connected_components(&g, &alive).count == 1 {
                connected += 1;
            }
        }
        assert!(connected >= 9, "only {connected}/10 connected");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_stub_count_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        random_regular(5, 3, &mut rng);
    }
}
