//! Expander-graph substrate for the Alon–Chung baseline (Theorem 12).
//!
//! Alon & Chung's linear-size tolerant networks are built from explicit
//! constant-degree expanders. This crate supplies:
//!
//! * the Margulis–Gabber–Galil 8-regular expander on `Z_s × Z_s`
//!   ([`margulis`]) — explicit, no randomness;
//! * random regular multigraphs via the configuration model
//!   ([`random_regular`]) — the "as good as random" comparison point;
//! * spectral-gap estimation by power iteration ([`spectral`]), so the
//!   experiments *measure* expansion instead of citing it.

pub mod margulis;
pub mod random_regular;
pub mod spectral;

pub use margulis::margulis_expander;
pub use random_regular::random_regular;
pub use spectral::second_eigenvalue;
