//! Spectral-gap estimation by power iteration.
//!
//! For a `d`-regular graph the top adjacency eigenvalue is `d` with the
//! all-ones eigenvector; the second eigenvalue `λ₂` controls expansion
//! (smaller `|λ₂|` ⇒ better expander). We estimate `max(|λ₂|, |λ_n|)`
//! by power iteration on the component orthogonal to the all-ones
//! vector — exactly the quantity the Alon–Chung analysis needs.

use ftt_graph::Graph;

/// Estimates `λ = max_i≥2 |λ_i|` of the adjacency matrix of a regular
/// (multi)graph by `iters` power iterations from a deterministic seed
/// vector.
pub fn second_eigenvalue(g: &Graph, iters: usize) -> f64 {
    let n = g.num_nodes();
    assert!(n >= 2, "need at least two nodes");
    // Deterministic pseudo-random start, orthogonalised against 1.
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let mut z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1);
            z ^= z >> 33;
            z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    let mut y = vec![0.0f64; n];
    let mut lambda = 0.0f64;
    for _ in 0..iters {
        project_out_ones(&mut x);
        normalize(&mut x);
        // y = A x (multigraph: parallel edges add twice)
        y.iter_mut().for_each(|v| *v = 0.0);
        for v in 0..n {
            let xv = x[v];
            for &t in g.neighbors(v) {
                y[t as usize] += xv;
            }
        }
        lambda = norm(&y);
        std::mem::swap(&mut x, &mut y);
    }
    lambda
}

/// Spectral gap `d − λ₂` of a `d`-regular graph.
pub fn spectral_gap(g: &Graph, iters: usize) -> f64 {
    let d = g.max_degree() as f64;
    d - second_eigenvalue(g, iters)
}

fn project_out_ones(x: &mut [f64]) {
    let m = x.iter().sum::<f64>() / x.len() as f64;
    x.iter_mut().for_each(|v| *v -= m);
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn normalize(x: &mut [f64]) {
    let nn = norm(x);
    if nn > 0.0 {
        x.iter_mut().for_each(|v| *v /= nn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::margulis::margulis_expander;
    use crate::random_regular::random_regular;
    use ftt_graph::gen::{complete, cycle};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_lambda_close_to_two() {
        // C_n: λ₂ = 2cos(2π/n) → 2 as n grows; poor expander.
        let g = cycle(100);
        let l = second_eigenvalue(&g, 300);
        assert!(
            (l - 2.0 * (2.0 * std::f64::consts::PI / 100.0).cos()).abs() < 0.05,
            "λ₂ = {l}"
        );
    }

    #[test]
    fn complete_graph_lambda_one() {
        // K_n: non-trivial eigenvalues are all −1.
        let g = complete(20);
        let l = second_eigenvalue(&g, 100);
        assert!((l - 1.0).abs() < 0.05, "λ = {l}");
    }

    #[test]
    fn margulis_has_constant_gap() {
        // theory: λ ≤ 5√2 ≈ 7.071 for every s.
        for s in [8usize, 16, 24] {
            let g = margulis_expander(s);
            let l = second_eigenvalue(&g, 150);
            assert!(l < 7.3, "s={s}: λ = {l} too large");
            assert!(l > 3.0, "s={s}: λ = {l} suspiciously small");
        }
    }

    #[test]
    fn random_regular_beats_cycle() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = random_regular(200, 4, &mut rng);
        let l = second_eigenvalue(&g, 200);
        // Friedman: λ ≈ 2√(d−1) ≈ 3.46 for d=4; allow slack.
        assert!(l < 3.9, "λ = {l}");
        let gap = spectral_gap(&g, 200);
        assert!(gap > 0.1);
    }
}
