//! The paper's constructions: fault-tolerant networks containing the
//! `d`-dimensional torus (and mesh) after faults.
//!
//! * [`bdn`] — Theorem 2: the constant-degree (`6d−2`) augmented torus
//!   `B^d_n` tolerating node-failure probability `log^{−3d} n`, with the
//!   full band machinery (healthiness, painting, band-segment placement,
//!   multilinear interpolation, jump-path extraction).
//! * [`adn`] — Theorem 1: the degree-`O(log log n)` supernode construction
//!   `A^2_n` tolerating constant node **and** edge failure probabilities.
//! * [`ddn`] — Theorem 3: the degree-`4d` construction `D^d_{n,k}`
//!   tolerating any `k` worst-case faults via straight bands and cyclic
//!   pigeonhole.
//! * [`band`] — bands (`β : columns → [m]`), the masking formalism shared
//!   by Theorems 2 and 3.
//! * [`construct`] — the [`HostConstruction`] trait unifying the three
//!   constructions behind one build/inspect/extract interface.
//! * [`certificate`] — extraction results frozen as independently
//!   re-checkable [`EmbeddingCertificate`]s (validated by `ftt-verify`,
//!   which shares no code with the band machinery).

pub mod adn;
pub mod band;
pub mod bdn;
pub mod certificate;
pub mod construct;
pub mod ddn;
pub mod error;
pub mod online;
pub mod render;

pub use adn::{Adn, AdnParams};
pub use band::Banding;
pub use bdn::{Bdn, BdnParams};
pub use certificate::{EmbeddingCertificate, CERT_SCHEMA_VERSION};
pub use construct::HostConstruction;
pub use ddn::{Ddn, DdnParams};
pub use error::PlacementError;
pub use online::{live_certificate, RepairClass, RepairOutcome, RepairState};
