//! Embedding certificates: extraction results as re-checkable claims.
//!
//! A successful extraction is a *claim* — "this map embeds a fault-free
//! guest torus into the host" — and the band machinery that produced it
//! is exactly the code whose bugs would falsify the claim. An
//! [`EmbeddingCertificate`] freezes the claim as pure data (guest torus
//! dims, the node map, and the band placement that produced it) so an
//! **independent** checker (`ftt-verify`) can re-validate it against
//! nothing but the host graph and the fault set: injectivity, every
//! mapped node and edge alive, torus adjacency preserved. The checker
//! shares zero code with the placement/extraction machinery, so a
//! certificate that passes is evidence about the construction, not
//! about the checker agreeing with itself.
//!
//! Certificates are hashed ([`EmbeddingCertificate::content_hash`],
//! FNV-1a over a canonical byte stream) so determinism claims — same
//! host, same faults ⇒ same embedding — become one-word assertions, and
//! so exhaustive certification runs can fold thousands of certificates
//! into a single order-independent digest (`CERT_*.json`).

/// Version stamp of the certificate content layout. Bump when the
/// hashed fields or their canonical order change.
pub const CERT_SCHEMA_VERSION: u32 = 1;

/// A self-contained, independently checkable extraction claim.
///
/// Everything the checker needs that is *not* ground truth (the ground
/// truth being the host graph and the fault set, which the verifier
/// supplies from its own sources) lives here as plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddingCertificate {
    /// Construction display name (e.g. `"D^d_{n,k}"`), provenance only.
    pub construction: String,
    /// Guest torus extents, dimension 0 slowest (row-major order, the
    /// layout `map` is indexed in).
    pub guest_dims: Vec<usize>,
    /// `map[guest_flat_index] = host node id`.
    pub map: Vec<usize>,
    /// Claimed host node count (checked against the real graph).
    pub host_nodes: usize,
    /// Claimed host edge count (checked against the real graph).
    pub host_edges: usize,
    /// Band placement that produced the embedding, as
    /// construction-defined coordinate lists (for `D^d_{n,k}`: per-axis
    /// band start coordinates; for `B^d_n`: per-band column-indexed
    /// start rows). Provenance for audits and hashing — the checker
    /// validates the *map*, never the placement.
    pub placement: Vec<Vec<usize>>,
}

impl EmbeddingCertificate {
    /// Number of guest nodes the certificate claims to embed.
    pub fn guest_len(&self) -> usize {
        self.guest_dims.iter().product()
    }

    /// FNV-1a content hash over the canonical byte stream (schema
    /// version, construction name, dims, map, host sizes, placement).
    /// A pure function of the certificate's contents — equal
    /// certificates hash equal across processes and platforms.
    pub fn content_hash(&self) -> u64 {
        let mut h = ftt_geom::Fnv1a::new();
        h.word(CERT_SCHEMA_VERSION as u64);
        h.bytes(self.construction.as_bytes());
        h.word(self.guest_dims.len() as u64);
        for &d in &self.guest_dims {
            h.word(d as u64);
        }
        h.word(self.map.len() as u64);
        for &v in &self.map {
            h.word(v as u64);
        }
        h.word(self.host_nodes as u64);
        h.word(self.host_edges as u64);
        h.word(self.placement.len() as u64);
        for axis in &self.placement {
            h.word(axis.len() as u64);
            for &s in axis {
                h.word(s as u64);
            }
        }
        h.finish()
    }

    /// The content hash as fixed-width hex (for artifacts and logs).
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cert() -> EmbeddingCertificate {
        EmbeddingCertificate {
            construction: "D^d_{n,k}".into(),
            guest_dims: vec![3, 3],
            map: vec![0, 1, 2, 5, 6, 7, 10, 11, 12],
            host_nodes: 25,
            host_edges: 50,
            placement: vec![vec![3], vec![8]],
        }
    }

    #[test]
    fn guest_len_is_dim_product() {
        assert_eq!(cert().guest_len(), 9);
    }

    #[test]
    fn hash_is_content_sensitive() {
        let a = cert();
        assert_eq!(a.content_hash(), cert().content_hash());
        let mut b = cert();
        b.map[4] = 8;
        assert_ne!(a.content_hash(), b.content_hash());
        let mut c = cert();
        c.placement[0][0] = 4;
        assert_ne!(a.content_hash(), c.content_hash());
        let mut d = cert();
        d.guest_dims = vec![9];
        assert_ne!(a.content_hash(), d.content_hash(), "dims are hashed");
    }

    #[test]
    fn hash_hex_is_sixteen_digits() {
        let hex = cert().hash_hex();
        assert_eq!(hex.len(), 16);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
