//! Online repair: faults arrive one at a time and the embedding is
//! *repaired* instead of re-extracted.
//!
//! The batch pipeline answers "given this fault set, extract a torus";
//! this module answers the lifetime question — "faults keep arriving;
//! how long does the embedding survive, and what does each repair
//! cost?" A [`RepairState`] carries the accumulated [`FaultSet`], the
//! live [`TorusEmbedding`], and a construction-specific cache of the
//! batch placement's internal tallies
//! ([`HostConstruction::RepairCache`]); each arrival is classified as
//!
//! * [`RepairClass::Fast`] — O(1): the arrival provably leaves the
//!   batch placement's output unchanged (a duplicate fault, an edge
//!   whose ascribed endpoint already failed, a `D^d` fault landing in
//!   an already-dirty band slot, a `B^d` fault sharing its `(tile,
//!   row)` with an earlier one). Nothing is recomputed.
//! * [`RepairClass::Local`] — a bounded local step: `D^d` shifts one
//!   axis-0 band onto the newly dirty slot via the cached pigeonhole
//!   tallies and refreshes only that axis; `B^d` repaints only the
//!   dirtied tile's region through the cached placement pipeline
//!   ([`crate::bdn::place::repaint_tile_local`]); `A²` re-classifies
//!   only the touched supernodes and lets the inner `B²` absorb a
//!   goodness flip tile-locally.
//! * [`RepairClass::Rebuild`] — the full batch re-placement (a `D^d`
//!   fault on the anchor class re-runs every pigeonhole round; a `B^d`
//!   fault lands within frame reach of existing faults so the painting
//!   may reshape; an `A²` arrival touches used host nodes or moves the
//!   inner banding, forcing a full level-2 re-greedy).
//!
//! # Repairs (renewal streams)
//!
//! Under a renewal fault model elements also come *back*:
//! [`RepairState::apply_repair`] removes a fault from the accumulated
//! set and relaxes the placement under the same tiers and the same
//! batch-parity invariant, each path mirroring its kill-path twin —
//! `D^d` decrements the cached pigeonhole tallies and shifts the freed
//! band back off a cleaned slot; `B^d` removes the `(tile, row)` pair
//! and repaints the emptied tile's region
//! ([`crate::bdn::place::repaint_tile_local_remove`]); `A²` re-promotes
//! the revived node and mirrors a supernode flipping *good* into the
//! inner `B²` as an inner repair. Because batch success is **not**
//! monotone in the fault set (removing a fault can move the `D^d`
//! anchor-class argmin, and in principle kill a live placement), a
//! repair can also end in [`RepairOutcome::Dead`] — parity decides, not
//! intuition. Symmetrically, a dead state is not sticky under renewal:
//! every event delivered while dead still lands in the accumulated set
//! and re-runs the batch pipeline, so a repair (or any event that turns
//! the accumulated set extractable again) **resurrects** the state.
//!
//! # The batch-parity invariant
//!
//! The one invariant everything rests on: **after every repair, the
//! cached banding is exactly what the batch pipeline would produce for
//! the accumulated fault set, and the repair outcome (alive/dead)
//! equals the batch outcome.** Fast/Local tiers are only taken when
//! the arrival's effect on the batch computation is provably
//! nil/local — e.g. a `D^d` fault off the anchor class can never move
//! the best residue class (it increments a count that was not the
//! minimum), and a fault in an already-dirty slot changes no band.
//! This is what makes the online subsystem *testable*: a differential
//! test can demand bit-for-bit outcome agreement with
//! `try_extract_with` on every stream prefix
//! (`ftt-sim/tests/prop_online.rs`), and what makes it *honest*: the
//! speedups benchmarked in `BENCH_online.json` buy identical results,
//! not approximations.
//!
//! # Eager placement, lazy map
//!
//! A repair always updates the *placement* eagerly — after every
//! arrival the banding is current and every fault is masked. The flat
//! guest→host **map** is a derived artifact: `D^d` refreshes it
//! in-place from cached per-axis coordinate lists (allocation-free,
//! `O(n^d)` index arithmetic), while `B^d` — whose map needs the full
//! jump-path alignment of Lemmas 6–7 — defers it and materialises on
//! demand ([`RepairState::live_embedding`]): adaptive adversaries, the
//! `certify_every` spot-checks, and end-of-trial reporting force
//! materialisation; a trickle of non-adaptive arrivals does not pay
//! `O(N)` per fault. Extraction from a validated banding is infallible
//! by Lemma 6/7; if it ever failed the failure would surface as death,
//! never be hidden.
//!
//! Repaired embeddings can be spot-checked end to end: the lifetime
//! engine's `certify_every` knob freezes the live embedding as an
//! [`EmbeddingCertificate`] (see [`live_certificate`]) and hands it to
//! the **independent** checker `ftt_verify::check_certificate`, which
//! shares no code with any of this.

use crate::adn::{Adn, Goodness};
use crate::bdn::extract::TorusEmbedding;
use crate::bdn::place::{PlacementCache, RepaintOutcome};
use crate::bdn::Bdn;
use crate::certificate::EmbeddingCertificate;
use crate::construct::HostConstruction;
use crate::ddn::place::DdnBanding;
use crate::ddn::Ddn;
use crate::error::PlacementError;
use ftt_faults::{Fault, FaultEvent, FaultSet, HalfEdgeFaults, SparseSet};
use ftt_geom::TileGrid;
use std::collections::HashSet;

/// Cost class of one successful repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairClass {
    /// O(1): the arrival provably left the batch placement unchanged.
    Fast,
    /// Bounded local step (one axis refreshed / banding re-derived and
    /// found unchanged).
    Local,
    /// Full batch re-placement.
    Rebuild,
}

/// Outcome of feeding one event to [`RepairState::apply`] /
/// [`RepairState::apply_repair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The event was absorbed; the placement is live and fault-free.
    Repaired(RepairClass),
    /// Unrepairable: the batch pipeline refuses the accumulated fault
    /// set. The state is dead ([`RepairState::death`] has the error)
    /// until a later event — typically a renewal repair — makes the
    /// accumulated set extractable again and resurrects it.
    Dead,
}

/// Pre-resolved repair-tier counters for one repair state, labeled by
/// construction: `ftt_online_repairs_total{construction,tier}` plus
/// `ftt_online_dead_total{construction}`. Handles are resolved once at
/// [`RepairState::new_idle`] so the hot apply path touches only
/// atomics — and nothing at all when the `obs` feature is off (the
/// name-formatting closures are never evaluated).
#[derive(Debug)]
pub(crate) struct TierCounters {
    fast: &'static ftt_obs::Counter,
    local: &'static ftt_obs::Counter,
    rebuild: &'static ftt_obs::Counter,
    dead: &'static ftt_obs::Counter,
}

impl TierCounters {
    fn new(construction: &'static str) -> Self {
        let reg = ftt_obs::registry();
        let tier = |t: &'static str| {
            reg.counter_with(|| {
                format!("ftt_online_repairs_total{{construction=\"{construction}\",tier=\"{t}\"}}")
            })
        };
        Self {
            fast: tier("fast"),
            local: tier("local"),
            rebuild: tier("rebuild"),
            dead: reg.counter_with(|| {
                format!("ftt_online_dead_total{{construction=\"{construction}\"}}")
            }),
        }
    }

    #[inline]
    fn record(&self, outcome: RepairOutcome) {
        if ftt_obs::enabled() {
            match outcome {
                RepairOutcome::Repaired(RepairClass::Fast) => self.fast.inc(),
                RepairOutcome::Repaired(RepairClass::Local) => self.local.inc(),
                RepairOutcome::Repaired(RepairClass::Rebuild) => self.rebuild.inc(),
                RepairOutcome::Dead => self.dead.inc(),
            }
        }
    }
}

/// Repaint-decision counters for the `B^d` tile-local paths (the call
/// sites are `B^d`-concrete, so fixed names suffice).
static REPAINT_UNCHANGED: ftt_obs::LazyCounter = ftt_obs::LazyCounter::new(
    "ftt_online_repaint_total{construction=\"B^d_n\",outcome=\"unchanged\"}",
);
static REPAINT_UPDATED: ftt_obs::LazyCounter = ftt_obs::LazyCounter::new(
    "ftt_online_repaint_total{construction=\"B^d_n\",outcome=\"updated\"}",
);
static REPAINT_FULL: ftt_obs::LazyCounter = ftt_obs::LazyCounter::new(
    "ftt_online_repaint_total{construction=\"B^d_n\",outcome=\"needs_full_placement\"}",
);
/// Level-2 re-greedy invocations (the `A²` Rebuild tier).
static REGREEDY: ftt_obs::LazyCounter =
    ftt_obs::LazyCounter::new("ftt_online_regreedy_total{construction=\"A^2_n\"}");

#[inline]
fn record_repaint(outcome: RepaintOutcome) {
    if ftt_obs::enabled() {
        match outcome {
            RepaintOutcome::Unchanged => REPAINT_UNCHANGED.inc(),
            RepaintOutcome::Updated => REPAINT_UPDATED.inc(),
            RepaintOutcome::NeedsFullPlacement => REPAINT_FULL.inc(),
        }
    }
}

/// The streaming counterpart of a batch extraction call: accumulated
/// faults, the live placement/embedding, and the construction's repair
/// cache.
///
/// Built once per lifetime trial ([`RepairState::new`]) or recycled
/// with [`RepairState::reset`]; driven by [`RepairState::apply`].
#[derive(Debug)]
pub struct RepairState<C: HostConstruction> {
    pub(crate) faults: FaultSet,
    /// Whether the placement is live (batch parity: equals "batch
    /// extraction would succeed on the accumulated set").
    pub(crate) alive: bool,
    /// The materialised embedding; `None` while dead **or** while a
    /// lazy-map construction has deferred materialisation (see
    /// [`RepairState::live_embedding`]).
    pub(crate) embedding: Option<TorusEmbedding>,
    pub(crate) cache: C::RepairCache,
    pub(crate) scratch: C::Scratch,
    pub(crate) death: Option<PlacementError>,
    pub(crate) obs: TierCounters,
}

impl<C: HostConstruction> RepairState<C> {
    /// A live state with zero faults (the initial fault-free extraction
    /// runs immediately; it cannot fail on a valid instance).
    pub fn new(host: &C) -> Result<Self, PlacementError> {
        let mut state = Self::new_idle(host);
        state.reset(host)?;
        Ok(state)
    }

    /// An *idle* state: buffers sized, no placement established yet
    /// (not alive). The cheap pool-factory constructor — lifetime
    /// workers [`reset`](Self::reset) before every trial anyway, so
    /// building idle avoids a discarded initial extraction per worker.
    pub fn new_idle(host: &C) -> Self {
        Self {
            faults: FaultSet::none(host.num_nodes(), host.num_edges()),
            alive: false,
            embedding: None,
            cache: host.new_repair_cache(),
            scratch: host.new_scratch(),
            death: None,
            obs: TierCounters::new(C::NAME),
        }
    }

    /// Clears every fault and re-establishes the fault-free placement
    /// and cache in place — the per-trial reuse entry point.
    pub fn reset(&mut self, host: &C) -> Result<(), PlacementError> {
        self.faults.clear();
        self.death = None;
        host.rebuild_repair(self)
    }

    /// Feeds one fault arrival; see [`HostConstruction::apply_fault_incremental`].
    pub fn apply(&mut self, host: &C, fault: Fault) -> RepairOutcome {
        let outcome = host.apply_fault_incremental(self, fault);
        self.obs.record(outcome);
        outcome
    }

    /// Feeds one repair (revival) event; see
    /// [`HostConstruction::apply_repair_incremental`].
    pub fn apply_repair(&mut self, host: &C, fault: Fault) -> RepairOutcome {
        let outcome = host.apply_repair_incremental(self, fault);
        self.obs.record(outcome);
        outcome
    }

    /// Feeds one timed stream event, dispatching on its kind — the
    /// lifetime engine's single entry point.
    pub fn apply_event(&mut self, host: &C, event: FaultEvent) -> RepairOutcome {
        match event {
            FaultEvent::Kill(f) => self.apply(host, f),
            FaultEvent::Repair(f) => self.apply_repair(host, f),
        }
    }

    /// Whether the placement is live.
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// The accumulated fault set (every fault ever applied).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The embedding, if currently materialised. Lazy-map
    /// constructions may be alive with no materialised map — use
    /// [`live_embedding`](Self::live_embedding) to force one.
    pub fn embedding(&self) -> Option<&TorusEmbedding> {
        self.embedding.as_ref()
    }

    /// The live embedding, materialising it first if the construction
    /// deferred the map ([`HostConstruction::materialize_embedding`]).
    /// `None` when dead.
    pub fn live_embedding(&mut self, host: &C) -> Option<&TorusEmbedding> {
        host.materialize_embedding(self);
        self.embedding.as_ref()
    }

    /// Why the state died, once dead.
    pub fn death(&self) -> Option<&PlacementError> {
        self.death.as_ref()
    }
}

/// Freezes the *live repaired* embedding as an independently checkable
/// [`EmbeddingCertificate`], materialising it first if deferred
/// (placement provenance is omitted — the checker validates the map,
/// and the online banding evolves by repairs, not by one batch
/// placement). `None` when the state is dead.
pub fn live_certificate<C: HostConstruction>(
    host: &C,
    state: &mut RepairState<C>,
) -> Option<EmbeddingCertificate> {
    state.live_embedding(host).map(|emb| EmbeddingCertificate {
        construction: C::NAME.to_string(),
        guest_dims: emb.guest.dims().to_vec(),
        map: emb.map.clone(),
        host_nodes: host.num_nodes(),
        host_edges: host.num_edges(),
        placement: Vec::new(),
    })
}

/// Marks `state` dead with `err` and reports [`RepairOutcome::Dead`].
fn die<C: HostConstruction>(state: &mut RepairState<C>, err: PlacementError) -> RepairOutcome {
    state.alive = false;
    state.embedding = None;
    state.death = Some(err);
    RepairOutcome::Dead
}

/// The construction-generic rebuild: batch-extract the accumulated
/// fault set through the reused scratch. Default body of
/// [`HostConstruction::rebuild_repair`] for cache-less hosts.
pub(crate) fn rebuild_generic<C: HostConstruction>(
    host: &C,
    state: &mut RepairState<C>,
) -> Result<(), PlacementError> {
    let RepairState {
        faults,
        alive,
        embedding,
        scratch,
        death,
        ..
    } = state;
    match host.try_extract_with(faults, scratch) {
        Ok(emb) => {
            *alive = true;
            *embedding = Some(emb);
            *death = None;
            Ok(())
        }
        Err(e) => {
            *alive = false;
            *embedding = None;
            *death = Some(e.clone());
            Err(e)
        }
    }
}

/// Applies one event to a **dead** state. The event still lands in the
/// accumulated set (parity is over the whole event history, not the
/// live prefix), and the batch pipeline re-runs on it: batch success is
/// not monotone in the fault set, so a repair — or even a kill that
/// moves the `D^d` anchor choice — can resurrect the placement. A
/// no-op event (duplicate kill, repair of a non-fault) leaves the set
/// and the verdict unchanged.
fn apply_event_while_dead<C: HostConstruction>(
    host: &C,
    state: &mut RepairState<C>,
    event: FaultEvent,
) -> RepairOutcome {
    debug_assert!(!state.alive);
    let changed = match event {
        FaultEvent::Kill(f) => state.faults.kill(f),
        FaultEvent::Repair(f) => state.faults.revive(f),
    };
    if !changed {
        return RepairOutcome::Dead;
    }
    match host.rebuild_repair(state) {
        Ok(()) => RepairOutcome::Repaired(RepairClass::Rebuild),
        Err(_) => RepairOutcome::Dead,
    }
}

/// The construction-generic arrival path: absorb exact duplicates in
/// O(1) (the accumulated set — the batch input — is unchanged),
/// otherwise run the full batch rebuild. Default body of
/// [`HostConstruction::apply_fault_incremental`].
pub(crate) fn apply_generic<C: HostConstruction>(
    host: &C,
    state: &mut RepairState<C>,
    fault: Fault,
) -> RepairOutcome {
    if !state.alive {
        return apply_event_while_dead(host, state, FaultEvent::Kill(fault));
    }
    if !state.faults.kill(fault) {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    match host.rebuild_repair(state) {
        Ok(()) => RepairOutcome::Repaired(RepairClass::Rebuild),
        Err(_) => RepairOutcome::Dead,
    }
}

/// The construction-generic repair path: absorb repairs of non-faults
/// in O(1), otherwise shrink the accumulated set and run the full batch
/// rebuild. Default body of
/// [`HostConstruction::apply_repair_incremental`].
pub(crate) fn apply_repair_generic<C: HostConstruction>(
    host: &C,
    state: &mut RepairState<C>,
    fault: Fault,
) -> RepairOutcome {
    if !state.alive {
        return apply_event_while_dead(host, state, FaultEvent::Repair(fault));
    }
    if !state.faults.revive(fault) {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    match host.rebuild_repair(state) {
        Ok(()) => RepairOutcome::Repaired(RepairClass::Rebuild),
        Err(_) => RepairOutcome::Dead,
    }
}

// ---------------------------------------------------------------------
// B^d_n: tile/row-granular absorption + tile-local repaint of the
// cached placement pipeline, lazy map materialisation.
// ---------------------------------------------------------------------

/// `B^d_n` repair cache. Batch placement consumes faults only through
/// the *set* of dirty `(tile, row)` pairs (tile fault counts act as
/// booleans in painting, and region segment rows are deduplicated), so
/// that set is cached verbatim: an arrival whose pair is already dirty
/// is a [`RepairClass::Fast`] repair by batch-parity. Any other arrival
/// is absorbed by [`crate::bdn::place::repaint_tile_local`] against the
/// cached [`PlacementCache`] — the full pipeline state (painting,
/// per-region segments, corner values, banding), repainted only where
/// the dirtied tile's region reaches — falling back to a from-scratch
/// placement only when the fresh tile sits within frame reach of
/// existing faults. The guest→host map is materialised lazily from the
/// cached banding (jump-path extraction is the `O(N)` part; the banding
/// itself already pins which rows every column contributes).
#[derive(Debug)]
pub struct BdnRepairCache {
    grid: TileGrid,
    /// The live placement pipeline state; `None` until the first
    /// rebuild establishes it.
    placement: Option<PlacementCache>,
    /// Memoised fault-free placement: per-trial resets restore buffers
    /// in place instead of re-running the batch pipeline.
    pristine: Option<Box<PlacementCache>>,
    /// Accumulated ascribed fault node ids (nodes + first endpoints of
    /// faulty edges) — the exact id list batch placement receives.
    ascribed: SparseSet,
    /// Dirty `(tile, row)` pairs of the ascribed set.
    pairs: HashSet<(u32, u32)>,
}

pub(crate) fn bdn_new_cache(host: &Bdn) -> BdnRepairCache {
    BdnRepairCache {
        grid: crate::bdn::place::tile_grid(host.params()),
        placement: None,
        pristine: None,
        ascribed: SparseSet::new(host.num_nodes()),
        pairs: HashSet::new(),
    }
}

/// Records one ascribed fault id into the `B^d` cache; returns `false`
/// when the batch placement input is provably unchanged (Fast).
fn bdn_note_ascribed(host: &Bdn, cache: &mut BdnRepairCache, u: usize) -> bool {
    if !cache.ascribed.insert(u) {
        return false;
    }
    let (i, _z) = host.cols().split(u);
    cache
        .pairs
        .insert((cache.grid.tile_of_node(u) as u32, i as u32))
}

pub(crate) fn bdn_materialize(host: &Bdn, state: &mut RepairState<Bdn>) {
    if !state.alive || state.embedding.is_some() {
        return;
    }
    let banding = state
        .cache
        .placement
        .as_ref()
        .expect("alive B^d state holds a placement")
        .banding();
    match crate::bdn::extract::extract_torus(host, banding) {
        Ok(emb) => state.embedding = Some(emb),
        // Unreachable for a validated banding (Lemmas 6–7); surfaced as
        // death rather than hidden if it ever happened.
        Err(e) => {
            let _ = die(state, e);
        }
    }
}

/// Installs the batch placement for the accumulated ascribed set into
/// the cache. The fault-free case — every per-trial reset — restores
/// the memoised pristine placement buffer-for-buffer instead of
/// re-running the pipeline.
fn bdn_install_placement(host: &Bdn, state: &mut RepairState<Bdn>) -> Result<(), PlacementError> {
    if state.cache.ascribed.is_empty() {
        if state.cache.pristine.is_none() {
            state.cache.pristine =
                Some(Box::new(crate::bdn::place::place_bands_cached(host, &[])?));
        }
        if let Some(placement) = state.cache.placement.as_mut() {
            placement.restore_from(state.cache.pristine.as_deref().expect("just installed"));
        } else {
            state.cache.placement = Some(crate::bdn::place::place_bands_cached(host, &[])?);
        }
    } else {
        state.cache.placement = Some(crate::bdn::place::place_bands_cached(
            host,
            state.cache.ascribed.ids(),
        )?);
    }
    Ok(())
}

pub(crate) fn bdn_rebuild(host: &Bdn, state: &mut RepairState<Bdn>) -> Result<(), PlacementError> {
    // Re-derive the ascription caches from the accumulated fault set,
    // then install the batch placement once.
    state.cache.ascribed.clear();
    state.cache.pairs.clear();
    let node_ids: Vec<usize> = state.faults.faulty_nodes().collect();
    for v in node_ids {
        bdn_note_ascribed(host, &mut state.cache, v);
    }
    let edge_ids: Vec<u32> = state.faults.faulty_edges().collect();
    for e in edge_ids {
        let (u, _) = host.edge_endpoints(e);
        bdn_note_ascribed(host, &mut state.cache, u);
    }
    state.embedding = None;
    match bdn_install_placement(host, state) {
        Ok(()) => {
            state.alive = true;
            state.death = None;
            Ok(())
        }
        Err(e) => {
            state.alive = false;
            state.death = Some(e.clone());
            Err(e)
        }
    }
}

pub(crate) fn bdn_apply(host: &Bdn, state: &mut RepairState<Bdn>, fault: Fault) -> RepairOutcome {
    if !state.alive {
        return apply_event_while_dead(host, state, FaultEvent::Kill(fault));
    }
    if !state.faults.kill(fault) {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    // Section 3 ascription, exactly as the batch path does it.
    let u = match fault {
        Fault::Node(v) => v,
        Fault::Edge(e) => host.edge_endpoints(e).0,
    };
    if !bdn_note_ascribed(host, &mut state.cache, u) {
        // Batch-parity: painting sees the same dirty tiles and the
        // region sees the same (deduplicated) fault rows, so the batch
        // banding — which already masks this (tile, row) across the
        // whole tile (region segments are straight) — is unchanged.
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let BdnRepairCache {
        placement,
        ascribed,
        ..
    } = &mut state.cache;
    let cache = placement
        .as_mut()
        .expect("alive B^d state holds a placement");
    let repaint = crate::bdn::place::repaint_tile_local(host, cache, u, ascribed.ids());
    if let Ok(o) = &repaint {
        record_repaint(*o);
    }
    match repaint {
        Ok(RepaintOutcome::Unchanged) => RepairOutcome::Repaired(RepairClass::Local),
        Ok(RepaintOutcome::Updated) => {
            state.embedding = None; // deferred; see materialize
            RepairOutcome::Repaired(RepairClass::Local)
        }
        Ok(RepaintOutcome::NeedsFullPlacement) => {
            match crate::bdn::place::place_bands_cached(host, state.cache.ascribed.ids()) {
                Ok(c) => {
                    state.cache.placement = Some(c);
                    state.embedding = None;
                    RepairOutcome::Repaired(RepairClass::Rebuild)
                }
                Err(e) => die(state, e),
            }
        }
        Err(e) => die(state, e),
    }
}

/// The `B^d` repair (revival) path — the kill path's mirror. Batch
/// placement consumes only the dirty `(tile, row)` pair set, so a
/// revival whose ascribed id or pair survives (the node is still an
/// edge-fault ascription target, or another ascribed id shares the
/// pair) is Fast; otherwise the pair is removed and the emptied tile
/// repainted tile-locally ([`repaint_tile_local_remove`]'s mirror of
/// the arrival repaint), falling back to a from-scratch placement when
/// the removal is not provably local.
pub(crate) fn bdn_apply_repair(
    host: &Bdn,
    state: &mut RepairState<Bdn>,
    fault: Fault,
) -> RepairOutcome {
    if !state.alive {
        return apply_event_while_dead(host, state, FaultEvent::Repair(fault));
    }
    if !state.faults.revive(fault) {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let u = match fault {
        Fault::Node(v) => v,
        Fault::Edge(e) => host.edge_endpoints(e).0,
    };
    // Section 3 ascription in reverse: `u` leaves the ascribed set only
    // when no remaining fault ascribes to it.
    let still_ascribed = !state.faults.node_alive(u)
        || state
            .faults
            .faulty_edges()
            .any(|e| host.edge_endpoints(e).0 == u);
    if still_ascribed {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let removed = state.cache.ascribed.remove(u);
    debug_assert!(removed, "alive B^d cache tracks every ascribed fault");
    let (i, _z) = host.cols().split(u);
    let pair = (state.cache.grid.tile_of_node(u) as u32, i as u32);
    let pair_shared = state.cache.ascribed.ids().iter().any(|&v| {
        let (iv, _z) = host.cols().split(v);
        (state.cache.grid.tile_of_node(v) as u32, iv as u32) == pair
    });
    if pair_shared {
        // The dirty pair set — the only thing batch placement observes
        // — is unchanged, so the cached banding is still batch-exact.
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    state.cache.pairs.remove(&pair);
    let BdnRepairCache {
        placement,
        ascribed,
        ..
    } = &mut state.cache;
    let cache = placement
        .as_mut()
        .expect("alive B^d state holds a placement");
    let repaint = crate::bdn::place::repaint_tile_local_remove(host, cache, u, ascribed.ids());
    if let Ok(o) = &repaint {
        record_repaint(*o);
    }
    match repaint {
        Ok(RepaintOutcome::Unchanged) => RepairOutcome::Repaired(RepairClass::Local),
        Ok(RepaintOutcome::Updated) => {
            state.embedding = None; // deferred; see materialize
            RepairOutcome::Repaired(RepairClass::Local)
        }
        Ok(RepaintOutcome::NeedsFullPlacement) => {
            match crate::bdn::place::place_bands_cached(host, state.cache.ascribed.ids()) {
                Ok(c) => {
                    state.cache.placement = Some(c);
                    state.embedding = None;
                    RepairOutcome::Repaired(RepairClass::Rebuild)
                }
                Err(e) => die(state, e),
            }
        }
        Err(e) => die(state, e),
    }
}

// ---------------------------------------------------------------------
// D^d_{n,k}: cached pigeonhole tallies + single-band slot shifts, with
// an in-place map refresh from cached per-axis coordinates.
// ---------------------------------------------------------------------

/// `D^d_{n,k}` repair cache: the current straight-band placement plus
/// the axis-0 pigeonhole tallies the batch algorithm would hold —
/// per-residue-class fault counts, the chosen anchor class, and the
/// per-slot dirty flags — and the per-axis unmasked coordinate lists
/// the map derives from. Arrivals off the anchor class can never move
/// the class choice (they increment a count that was not the minimum),
/// so they either land in an already-dirty slot (Fast) or dirty one new
/// slot, which shifts exactly one axis-0 band and refreshes only axis 0
/// plus the map (Local). Anchor-class arrivals change the deferred set
/// and re-run the full pigeonhole (Rebuild).
#[derive(Debug)]
pub struct DdnRepairCache {
    banding: Option<DdnBanding>,
    /// Accumulated ascribed fault node ids (Theorem 3 reduction).
    ascribed: SparseSet,
    /// Axis-0 residue period `b_0 + 1`.
    period: usize,
    /// Axis-0 band quota `k_0`.
    quota: usize,
    /// Fault count per axis-0 residue class, maintained incrementally
    /// (incremented per ascribed arrival, decremented per ascription
    /// removal) and recomputed on every full rebuild, where it picks
    /// the anchor class. Kill arrivals off the anchor class provably
    /// cannot move the (first) argmin; repair *removals* can — the
    /// repair path recomputes the argmin from these counts and
    /// rebuilds when it moved.
    class_counts: Vec<usize>,
    /// The batch algorithm's anchor class (first argmin of the counts).
    best_class: usize,
    /// Whether each axis-0 slot holds an off-anchor fault.
    slot_dirty: Vec<bool>,
    dirty_count: usize,
    /// Unmasked coordinates per axis for the current banding
    /// (ascending, length `n` each).
    axes: Vec<Vec<usize>>,
    /// Reusable length-`m` mask bitmap for axis refreshes.
    mask_scratch: Vec<bool>,
}

pub(crate) fn ddn_new_cache(host: &Ddn) -> DdnRepairCache {
    let p = host.params();
    let period = p.band_width(0) + 1;
    DdnRepairCache {
        banding: None,
        ascribed: SparseSet::new(host.shape().len()),
        period,
        quota: p.num_bands(0),
        class_counts: vec![0; period],
        best_class: 0,
        slot_dirty: vec![false; p.m() / period],
        dirty_count: 0,
        axes: vec![Vec::new(); p.d],
        mask_scratch: vec![false; p.m()],
    }
}

/// Axis-0 band starts for the cached dirty-slot set, exactly as the
/// batch algorithm chooses them: dirty slots first, then clean filler
/// slots in slot order up to the quota, sorted.
fn ddn_axis0_starts(cache: &DdnRepairCache, m: usize) -> Vec<usize> {
    let mut starts = Vec::with_capacity(cache.quota);
    for (slot, &d) in cache.slot_dirty.iter().enumerate() {
        if d {
            starts.push((cache.best_class + 1 + slot * cache.period) % m);
        }
    }
    for (slot, &d) in cache.slot_dirty.iter().enumerate() {
        if starts.len() == cache.quota {
            break;
        }
        if !d {
            starts.push((cache.best_class + 1 + slot * cache.period) % m);
        }
    }
    starts.sort_unstable();
    starts
}

/// Recomputes the axis-0 tallies from the ascribed set (mirroring the
/// batch algorithm's first pigeonhole round).
fn ddn_refresh_tallies(host: &Ddn, cache: &mut DdnRepairCache) {
    let m = host.params().m();
    cache.class_counts.iter_mut().for_each(|c| *c = 0);
    for &v in cache.ascribed.ids() {
        cache.class_counts[host.shape().coord_of(v, 0) % cache.period] += 1;
    }
    cache.best_class = (0..cache.period)
        .min_by_key(|&c| cache.class_counts[c])
        .expect("period ≥ 2");
    cache.slot_dirty.iter_mut().for_each(|s| *s = false);
    cache.dirty_count = 0;
    for &v in cache.ascribed.ids() {
        let x = host.shape().coord_of(v, 0);
        if x % cache.period != cache.best_class {
            let slot = ((x + m - cache.best_class) % m) / cache.period;
            if !cache.slot_dirty[slot] {
                cache.slot_dirty[slot] = true;
                cache.dirty_count += 1;
            }
        }
    }
}

/// Recomputes one axis's unmasked coordinate list from its band starts
/// (with the count and gap-structure audits of the batch extractor).
fn ddn_refresh_axis(
    host: &Ddn,
    axis: usize,
    starts: &[usize],
    out: &mut Vec<usize>,
    mask: &mut [bool],
) -> Result<(), PlacementError> {
    let p = host.params();
    let (m, w, n) = (p.m(), p.band_width(axis), p.n);
    mask.iter_mut().for_each(|x| *x = false);
    for &s in starts {
        for off in 0..w {
            mask[(s + off) % m] = true;
        }
    }
    out.clear();
    out.extend((0..m).filter(|&x| !mask[x]));
    if out.len() != n {
        return Err(PlacementError::InvalidBanding {
            reason: format!(
                "axis {axis}: {} unmasked coordinates, want n = {n}",
                out.len()
            ),
        });
    }
    for i in 0..n {
        let gap = (out[(i + 1) % n] + m - out[i]) % m;
        if gap != 1 && gap != w + 1 {
            return Err(PlacementError::InvalidBanding {
                reason: format!("axis {axis}: unmasked gap {gap}"),
            });
        }
    }
    Ok(())
}

/// Refills the guest→host map in place from the cached per-axis
/// coordinate lists: `O(n^d · d)` index arithmetic, no allocation.
fn ddn_fill_map(host: &Ddn, axes: &[Vec<usize>], map: &mut Vec<usize>) {
    let p = host.params();
    let (d, n, m) = (p.d, p.n, p.m());
    let len = n.pow(d as u32);
    map.clear();
    map.resize(len, 0);
    let mut coord = [0usize; 4]; // d ≤ 4 by parameter validation
    for slot in map.iter_mut() {
        let mut acc = 0usize;
        for a in 0..d {
            acc = acc * m + axes[a][coord[a]];
        }
        *slot = acc;
        for a in (0..d).rev() {
            coord[a] += 1;
            if coord[a] < n {
                break;
            }
            coord[a] = 0;
        }
    }
}

/// Refreshes the per-axis coordinate lists from the cached banding and
/// refills the map into the reused embedding buffer.
fn ddn_sync_embedding(host: &Ddn, state: &mut RepairState<Ddn>) -> Result<(), PlacementError> {
    let cache = &mut state.cache;
    let banding = cache.banding.as_ref().expect("placement present");
    for axis in 0..host.params().d {
        ddn_refresh_axis(
            host,
            axis,
            &banding.starts[axis],
            &mut cache.axes[axis],
            &mut cache.mask_scratch,
        )?;
    }
    debug_assert!(
        cache.ascribed.ids().iter().all(|&v| {
            (0..host.params().d).any(|a| !cache.axes[a].contains(&host.shape().coord_of(v, a)))
        }),
        "every ascribed fault must be masked in at least one axis"
    );
    let mut emb = state.embedding.take().unwrap_or_else(|| TorusEmbedding {
        guest: host.params().guest_shape(),
        map: Vec::new(),
    });
    ddn_fill_map(host, &cache.axes, &mut emb.map);
    state.embedding = Some(emb);
    state.alive = true;
    Ok(())
}

pub(crate) fn ddn_rebuild(host: &Ddn, state: &mut RepairState<Ddn>) -> Result<(), PlacementError> {
    // Theorem 3 ascription from the accumulated fault set.
    let cache = &mut state.cache;
    cache.ascribed.clear();
    for v in state.faults.faulty_nodes() {
        cache.ascribed.insert(v);
    }
    for e in state.faults.faulty_edges() {
        cache.ascribed.insert(Ddn::edge_endpoints(host, e).0);
    }
    match ddn_place_and_sync(host, state) {
        Ok(()) => {
            state.death = None;
            Ok(())
        }
        Err(e) => {
            state.alive = false;
            state.embedding = None;
            state.death = Some(e.clone());
            Err(e)
        }
    }
}

/// Full batch placement, then the in-place embedding sync.
fn ddn_place_and_sync(host: &Ddn, state: &mut RepairState<Ddn>) -> Result<(), PlacementError> {
    let banding = crate::ddn::place::place_straight_bands(host, state.cache.ascribed.ids())?;
    state.cache.banding = Some(banding);
    ddn_refresh_tallies(host, &mut state.cache);
    ddn_sync_embedding(host, state)
}

pub(crate) fn ddn_apply(host: &Ddn, state: &mut RepairState<Ddn>, fault: Fault) -> RepairOutcome {
    if !state.alive {
        return apply_event_while_dead(host, state, FaultEvent::Kill(fault));
    }
    if !state.faults.kill(fault) {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let u = match fault {
        Fault::Node(v) => v,
        Fault::Edge(e) => Ddn::edge_endpoints(host, e).0,
    };
    if !state.cache.ascribed.insert(u) {
        // Ascribed set unchanged ⇒ batch input unchanged ⇒ the cached
        // banding (batch-equal) already masks u.
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let m = host.params().m();
    let x = host.shape().coord_of(u, 0);
    let class = x % state.cache.period;
    state.cache.class_counts[class] += 1;
    if class == state.cache.best_class {
        // An anchor-class fault is deferred to the deeper axes and may
        // even move the anchor choice: full batch re-placement.
        return match ddn_rebuild_after_arrival(host, state) {
            Ok(()) => RepairOutcome::Repaired(RepairClass::Rebuild),
            Err(_) => RepairOutcome::Dead,
        };
    }
    // Off the anchor class: incrementing a non-minimum class count
    // cannot move the (first) argmin, so the batch's class choice and
    // deferred set are untouched — only the axis-0 slot picture can
    // change.
    let slot = ((x + m - state.cache.best_class) % m) / state.cache.period;
    if state.cache.slot_dirty[slot] {
        // Slot already dirty ⇒ already banded ⇒ banding unchanged.
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    state.cache.slot_dirty[slot] = true;
    state.cache.dirty_count += 1;
    if state.cache.dirty_count > state.cache.quota {
        // The batch pigeonhole fails on this prefix; report its error.
        return match ddn_rebuild_after_arrival(host, state) {
            Ok(()) => unreachable!("axis-0 dirty slots exceed the quota; batch must refuse"),
            Err(_) => RepairOutcome::Dead,
        };
    }
    // Shift one axis-0 band onto the newly dirty slot (batch-identical
    // start list), keep every deeper axis, refresh axis 0 and the map.
    let mut banding = state
        .cache
        .banding
        .take()
        .expect("alive state holds a banding");
    banding.starts[0] = ddn_axis0_starts(&state.cache, m);
    debug_assert_eq!(
        banding,
        crate::ddn::place::place_straight_bands(host, state.cache.ascribed.ids())
            .expect("quota honoured ⇒ batch placement succeeds"),
        "local slot shift must reproduce the batch placement"
    );
    state.cache.banding = Some(banding);
    match ddn_sync_embedding(host, state) {
        Ok(()) => RepairOutcome::Repaired(RepairClass::Local),
        Err(e) => die(state, e),
    }
}

/// Batch re-placement for an arrival already recorded in the fault set
/// and the ascribed cache (keeps the ascription instead of re-deriving
/// it).
fn ddn_rebuild_after_arrival(
    host: &Ddn,
    state: &mut RepairState<Ddn>,
) -> Result<(), PlacementError> {
    match ddn_place_and_sync(host, state) {
        Ok(()) => Ok(()),
        Err(e) => {
            state.alive = false;
            state.embedding = None;
            state.death = Some(e.clone());
            Err(e)
        }
    }
}

/// Incremental `D^d_n` repair under the batch-parity invariant — the
/// inverse of [`ddn_apply`]'s tiers. Removing a fault can do what an
/// arrival provably cannot: decrementing a class tally may move the
/// (first) argmin, so the anchor choice is re-derived from the
/// incrementally maintained counts and a moved anchor rebuilds.
pub(crate) fn ddn_apply_repair(
    host: &Ddn,
    state: &mut RepairState<Ddn>,
    fault: Fault,
) -> RepairOutcome {
    if !state.alive {
        return apply_event_while_dead(host, state, FaultEvent::Repair(fault));
    }
    if !state.faults.revive(fault) {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let u = match fault {
        Fault::Node(v) => v,
        Fault::Edge(e) => Ddn::edge_endpoints(host, e).0,
    };
    let still_ascribed = !state.faults.node_alive(u)
        || state
            .faults
            .faulty_edges()
            .any(|e| Ddn::edge_endpoints(host, e).0 == u);
    if still_ascribed {
        // Ascribed set unchanged ⇒ batch input unchanged.
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let removed = state.cache.ascribed.remove(u);
    debug_assert!(removed, "alive D^d cache tracks every ascribed fault");
    let m = host.params().m();
    let x = host.shape().coord_of(u, 0);
    let class = x % state.cache.period;
    state.cache.class_counts[class] -= 1;
    if class == state.cache.best_class {
        // Anchor-class faults are deferred to the deeper axes; removing
        // one changes the deferred set those axes were placed for. (The
        // anchor itself cannot move: decrementing the minimum keeps it
        // the first argmin.)
        return match ddn_rebuild_after_arrival(host, state) {
            Ok(()) => RepairOutcome::Repaired(RepairClass::Rebuild),
            Err(_) => RepairOutcome::Dead,
        };
    }
    let new_best = (0..state.cache.period)
        .min_by_key(|&c| state.cache.class_counts[c])
        .expect("period ≥ 2");
    if new_best != state.cache.best_class {
        // The batch's pigeonhole now anchors elsewhere: every axis-0
        // slot boundary shifts with it.
        return match ddn_rebuild_after_arrival(host, state) {
            Ok(()) => RepairOutcome::Repaired(RepairClass::Rebuild),
            Err(_) => RepairOutcome::Dead,
        };
    }
    let slot = ((x + m - state.cache.best_class) % m) / state.cache.period;
    debug_assert!(
        state.cache.slot_dirty[slot],
        "every off-anchor ascribed fault sits in a dirty slot"
    );
    let shape = host.shape();
    let period = state.cache.period;
    let best = state.cache.best_class;
    let slot_still_dirty = state.cache.ascribed.ids().iter().any(|&v| {
        let xv = shape.coord_of(v, 0);
        xv % period != best && ((xv + m - best) % m) / period == slot
    });
    if slot_still_dirty {
        // Another ascribed fault keeps the slot banded ⇒ banding
        // unchanged.
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    state.cache.slot_dirty[slot] = false;
    state.cache.dirty_count -= 1;
    // Shift the freed band back onto the first clean filler slot
    // (batch-identical start list), keep every deeper axis, refresh
    // axis 0 and the map.
    let mut banding = state
        .cache
        .banding
        .take()
        .expect("alive state holds a banding");
    banding.starts[0] = ddn_axis0_starts(&state.cache, m);
    debug_assert_eq!(
        banding,
        crate::ddn::place::place_straight_bands(host, state.cache.ascribed.ids())
            .expect("a subset of a placeable fault set stays placeable"),
        "local slot clear must reproduce the batch placement"
    );
    state.cache.banding = Some(banding);
    match ddn_sync_embedding(host, state) {
        Ok(()) => RepairOutcome::Repaired(RepairClass::Local),
        Err(e) => die(state, e),
    }
}

// ---------------------------------------------------------------------
// A^2_n: incremental goodness repair over a cached classification, with
// the level-1 supernode torus maintained by the inner B²'s own online
// engine and the level-2 greedy re-run only when its inputs moved.
// ---------------------------------------------------------------------

/// `A^2_n` repair cache. Batch extraction is classify → inner `B²`
/// extraction over the bad supernodes → deterministic level-2 greedy;
/// all three stages are cached here and repaired in place:
///
/// * **Classification** ([`Goodness`]) is maintained by exact deltas —
///   goodness is monotone non-increasing under fault arrivals, and an
///   arrival can only demote the arriving node or, for an edge fault,
///   its two endpoints (each rechecked toward one supernode in
///   `O(degree)`), so re-classifying the whole host is never needed.
/// * **Level 1** is a nested [`RepairState`]`<Bdn>`: a supernode that
///   flips bad becomes a node-fault arrival of the inner `B²`, which
///   absorbs it through its own Fast/repaint tiers. Its batch-parity
///   invariant makes the cached inner map equal the batch
///   `extract_after_faults` on the bad-supernode set.
/// * **Level 2**: the greedy is a pure function of (goodness, halves,
///   inner map, usage order). The cached `used` bitmap witnesses which
///   hosts the live map touches; an arrival that demotes only unused
///   nodes, kills only edges with unused endpoints, and leaves the
///   inner map unchanged provably cannot change any greedy choice
///   (the old run replays verbatim), so the live map is kept. Anything
///   else re-runs the full greedy — [`RepairClass::Rebuild`].
#[derive(Debug)]
pub struct AdnRepairCache {
    /// Dense node-fault bitmap (the classifier's input form).
    node_faulty: Vec<bool>,
    /// Ids set in `node_faulty`, for `O(#faults)` reset.
    marked: Vec<usize>,
    /// Half-edge view of the accumulated whole-edge faults.
    halves: HalfEdgeFaults,
    /// Cached classification; `None` until the first rebuild.
    goodness: Option<Goodness>,
    /// The inner `B²` online engine, fed bad supernodes as node faults.
    inner: RepairState<Bdn>,
    /// Host nodes used by the live map (maintained by the greedy).
    used: Vec<bool>,
    /// Supernodes flipped bad by the current arrival (scratch).
    flipped_sus: Vec<usize>,
    /// Suspect-endpoint scratch for the greedy.
    suspect: Vec<bool>,
}

pub(crate) fn adn_new_cache(host: &Adn) -> AdnRepairCache {
    AdnRepairCache {
        node_faulty: vec![false; host.num_nodes()],
        marked: Vec::new(),
        halves: HalfEdgeFaults::none(host.graph().num_edges()),
        goodness: None,
        inner: RepairState::new_idle(host.inner()),
        used: vec![false; host.num_nodes()],
        flipped_sus: Vec::new(),
        suspect: Vec::new(),
    }
}

/// Rebuilds classification, inner state, and map from the accumulated
/// fault set — the batch pipeline over the cache's reused buffers.
fn adn_install(host: &Adn, state: &mut RepairState<Adn>) -> Result<(), PlacementError> {
    let RepairState {
        faults,
        embedding,
        cache,
        ..
    } = state;
    // Reset the conversion buffers through the fault lists: O(#faults).
    for &v in &cache.marked {
        cache.node_faulty[v] = false;
    }
    cache.marked.clear();
    cache.halves.clear();
    for v in faults.faulty_nodes() {
        cache.node_faulty[v] = true;
        cache.marked.push(v);
    }
    for e in faults.faulty_edges() {
        cache.halves.kill_half(e, 0);
        cache.halves.kill_half(e, 1);
    }
    // Full classification into the reused buffers.
    let mut goodness = cache.goodness.take().unwrap_or_else(|| Goodness {
        good_node: Vec::new(),
        good_supernode: Vec::new(),
        good_count: Vec::new(),
    });
    crate::adn::goodness::classify_into(
        host,
        &cache.node_faulty,
        &cache.marked,
        &cache.halves,
        &mut goodness,
    );
    // Level 1: bad supernodes are the inner B²'s fault set. The
    // fault-free case (per-trial resets) hits the pristine-restore path.
    cache.inner.faults.clear();
    for (su, &good) in goodness.good_supernode.iter().enumerate() {
        if !good {
            cache.inner.faults.kill_node(su);
        }
    }
    cache.goodness = Some(goodness);
    bdn_rebuild(host.inner(), &mut cache.inner)
        .map_err(|e| PlacementError::SupernodeLevelFailed { inner: Box::new(e) })?;
    bdn_materialize(host.inner(), &mut cache.inner);
    let inner_map = match cache.inner.embedding.as_ref() {
        Some(emb) => &emb.map,
        None => {
            return Err(PlacementError::SupernodeLevelFailed {
                inner: Box::new(cache.inner.death.clone().expect("dead inner records death")),
            })
        }
    };
    // Level 2: the full greedy, reusing the live map's buffer.
    let n = host.params().n();
    let mut emb = embedding.take().unwrap_or_else(|| TorusEmbedding {
        guest: ftt_geom::Shape::new(vec![n, n]),
        map: Vec::new(),
    });
    crate::adn::embed::greedy_level2_into(
        host,
        cache.goodness.as_ref().expect("just installed"),
        &cache.halves,
        inner_map,
        &mut emb.map,
        &mut cache.used,
        &mut cache.suspect,
    )?;
    *embedding = Some(emb);
    Ok(())
}

pub(crate) fn adn_rebuild(host: &Adn, state: &mut RepairState<Adn>) -> Result<(), PlacementError> {
    match adn_install(host, state) {
        Ok(()) => {
            state.alive = true;
            state.death = None;
            Ok(())
        }
        Err(e) => {
            state.alive = false;
            state.embedding = None;
            state.death = Some(e.clone());
            Err(e)
        }
    }
}

/// Demotes node `x` in the cached classification (if currently good),
/// recording a supernode flip and whether the live map used `x`.
fn adn_demote(
    goodness: &mut Goodness,
    used: &[bool],
    h: usize,
    min_good: u32,
    x: usize,
    flipped_sus: &mut Vec<usize>,
    demoted_used: &mut bool,
) -> bool {
    if !goodness.good_node[x] {
        return false;
    }
    goodness.good_node[x] = false;
    if used[x] {
        *demoted_used = true;
    }
    let su = x / h;
    goodness.good_count[su] -= 1;
    if goodness.good_supernode[su] && goodness.good_count[su] < min_good {
        goodness.good_supernode[su] = false;
        flipped_sus.push(su);
    }
    true
}

/// Exact re-check of one node's goodness against the cached fault
/// state, mirroring the batch classifier: a node is good iff it is
/// alive and, toward every adjacent supernode, its count of faulty
/// half-edges (on its own side) stays within the budget. `O(degree)`.
fn adn_node_good(host: &Adn, node_faulty: &[bool], halves: &HalfEdgeFaults, x: usize) -> bool {
    if node_faulty[x] {
        return false;
    }
    let h = host.params().h;
    let max_bad = host.params().max_bad_halves();
    // Group x's faulty-half arcs by adjacent supernode; degree is tiny
    // (2d·h at most), so a linear-scan Vec beats a map.
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for (t, e) in host.graph().arcs(x) {
        if halves.half_faulty_at(host.graph(), e, x) {
            let su = t / h;
            match counts.iter_mut().find(|(s, _)| *s == su) {
                Some((_, c)) => *c += 1,
                None => counts.push((su, 1)),
            }
        }
    }
    counts.iter().all(|&(_, c)| c <= max_bad)
}

/// Promotes node `x` in the cached classification (if currently bad),
/// recording a supernode flip back to good.
fn adn_promote(
    goodness: &mut Goodness,
    h: usize,
    min_good: u32,
    x: usize,
    flipped_sus: &mut Vec<usize>,
) -> bool {
    if goodness.good_node[x] {
        return false;
    }
    goodness.good_node[x] = true;
    let su = x / h;
    goodness.good_count[su] += 1;
    if !goodness.good_supernode[su] && goodness.good_count[su] >= min_good {
        goodness.good_supernode[su] = true;
        flipped_sus.push(su);
    }
    true
}

/// Re-runs the level-2 greedy over the cached classification and the
/// (re-materialised) inner map — the shared Rebuild tier for fault
/// arrivals and repairs alike.
fn adn_regreedy(host: &Adn, state: &mut RepairState<Adn>) -> RepairOutcome {
    REGREEDY.inc();
    let RepairState {
        embedding, cache, ..
    } = state;
    bdn_materialize(host.inner(), &mut cache.inner);
    let inner_map = match cache.inner.embedding.as_ref() {
        Some(emb) => &emb.map,
        None => {
            let e = PlacementError::SupernodeLevelFailed {
                inner: Box::new(cache.inner.death.clone().expect("dead inner records death")),
            };
            return die(state, e);
        }
    };
    let n = host.params().n();
    let mut emb = embedding.take().unwrap_or_else(|| TorusEmbedding {
        guest: ftt_geom::Shape::new(vec![n, n]),
        map: Vec::new(),
    });
    match crate::adn::embed::greedy_level2_into(
        host,
        cache.goodness.as_ref().expect("alive A² state"),
        &cache.halves,
        inner_map,
        &mut emb.map,
        &mut cache.used,
        &mut cache.suspect,
    ) {
        Ok(()) => {
            *embedding = Some(emb);
            RepairOutcome::Repaired(RepairClass::Rebuild)
        }
        Err(e) => die(state, e),
    }
}

pub(crate) fn adn_apply(host: &Adn, state: &mut RepairState<Adn>, fault: Fault) -> RepairOutcome {
    if !state.alive {
        return apply_event_while_dead(host, state, FaultEvent::Kill(fault));
    }
    if !state.faults.kill(fault) {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let params = host.params();
    let h = params.h;
    let max_bad = params.max_bad_halves();
    let min_good = params.min_good_nodes() as u32;

    enum Verdict {
        Keep(RepairClass),
        Regreedy,
        Die(PlacementError),
    }
    let verdict = {
        let RepairState { cache, .. } = state;
        let AdnRepairCache {
            node_faulty,
            marked,
            halves,
            goodness,
            inner,
            used,
            flipped_sus,
            ..
        } = cache;
        let goodness = goodness
            .as_mut()
            .expect("alive A² state holds a classification");
        flipped_sus.clear();
        let mut demoted_used = false;
        let mut endpoint_used = false;
        let mut any_demotion = false;
        match fault {
            Fault::Node(v) => {
                debug_assert!(!node_faulty[v], "FaultSet::kill admitted a duplicate");
                node_faulty[v] = true;
                marked.push(v);
                // A used node is good, so a used arrival demotes below.
                any_demotion |= adn_demote(
                    goodness,
                    used,
                    h,
                    min_good,
                    v,
                    flipped_sus,
                    &mut demoted_used,
                );
                // If `v` was already bad, the batch classification loses
                // `v`'s bad-pair entries — which only ever demoted `v`
                // itself, already bad: no observable change.
            }
            Fault::Edge(e) => {
                // Whole-edge fault = both halves fail (batch conversion).
                halves.kill_half(e, 0);
                halves.kill_half(e, 1);
                let (a, b) = host.graph().edge_endpoints(e);
                // The greedy only ever queries edges whose image-side
                // endpoint is used; killing an edge with two unused
                // endpoints replays the old run verbatim.
                endpoint_used = used[a] || used[b];
                for (x, y) in [(a, b), (b, a)] {
                    if !goodness.good_node[x] {
                        continue;
                    }
                    // Only x's budget toward su(y) gained a faulty half;
                    // every other (node, supernode) count is unchanged.
                    let su_y = y / h;
                    let bad = host
                        .graph()
                        .arcs(x)
                        .filter(|&(t, e2)| {
                            t / h == su_y && halves.half_faulty_at(host.graph(), e2, x)
                        })
                        .count();
                    if bad > max_bad {
                        any_demotion |= adn_demote(
                            goodness,
                            used,
                            h,
                            min_good,
                            x,
                            flipped_sus,
                            &mut demoted_used,
                        );
                    }
                }
            }
        }
        // Level 1: feed flipped supernodes to the inner B² engine.
        // Goodness is monotone, so every flip is a fresh inner arrival.
        let mut verdict = None;
        for &su in flipped_sus.iter() {
            match bdn_apply(host.inner(), inner, Fault::Node(su)) {
                RepairOutcome::Repaired(_) => {}
                RepairOutcome::Dead => {
                    verdict = Some(Verdict::Die(PlacementError::SupernodeLevelFailed {
                        inner: Box::new(inner.death.clone().expect("dead inner records death")),
                    }));
                    break;
                }
            }
        }
        verdict.unwrap_or_else(|| {
            // The inner map is kept materialised between arrivals, so a
            // `None` here means the inner banding moved (repaint Updated
            // or full re-placement) — the level-2 block→supernode
            // assignment may differ and the greedy must re-run.
            let inner_changed = inner.embedding.is_none();
            if demoted_used || endpoint_used || inner_changed {
                Verdict::Regreedy
            } else if any_demotion {
                // Demotions confined to unused nodes (and flips the
                // inner banding absorbed verbatim — a flipped supernode
                // with an unchanged banding was already masked, so it
                // hosted no block): the old greedy run replays
                // unchanged.
                Verdict::Keep(RepairClass::Local)
            } else {
                Verdict::Keep(RepairClass::Fast)
            }
        })
    };

    let outcome = match verdict {
        Verdict::Die(e) => die(state, e),
        Verdict::Regreedy => adn_regreedy(host, state),
        Verdict::Keep(class) => RepairOutcome::Repaired(class),
    };
    #[cfg(debug_assertions)]
    adn_debug_assert_parity(host, state);
    outcome
}

/// Incremental `A²_n` repair — the inverse of [`adn_apply`]'s tiers.
/// Goodness is monotone non-decreasing under repairs: a revival can
/// only promote the revived node or, for an edge, its two endpoints
/// (each rechecked exactly in `O(degree)`). A promotion is *visible* to
/// the cached greedy run when its `h`-block contains a used node — a
/// newly good node earlier in block order can steal the greedy's
/// choice — so visibility forces the re-run even though nothing used
/// was harmed.
pub(crate) fn adn_apply_repair(
    host: &Adn,
    state: &mut RepairState<Adn>,
    fault: Fault,
) -> RepairOutcome {
    if !state.alive {
        return apply_event_while_dead(host, state, FaultEvent::Repair(fault));
    }
    if !state.faults.revive(fault) {
        return RepairOutcome::Repaired(RepairClass::Fast);
    }
    let params = host.params();
    let h = params.h;
    let min_good = params.min_good_nodes() as u32;

    enum Verdict {
        Keep(RepairClass),
        Regreedy,
        Die(PlacementError),
    }
    let verdict = {
        let RepairState { cache, .. } = state;
        let AdnRepairCache {
            node_faulty,
            marked,
            halves,
            goodness,
            inner,
            used,
            flipped_sus,
            ..
        } = cache;
        let goodness = goodness
            .as_mut()
            .expect("alive A² state holds a classification");
        flipped_sus.clear();
        let mut promoted: Vec<usize> = Vec::new();
        let mut endpoint_used = false;
        match fault {
            Fault::Node(v) => {
                debug_assert!(node_faulty[v], "FaultSet::revive admitted a live node");
                node_faulty[v] = false;
                let pos = marked
                    .iter()
                    .position(|&x| x == v)
                    .expect("marked mirrors node_faulty");
                marked.swap_remove(pos);
                // Other nodes' budgets never consult v's liveness, so
                // only v itself can change class.
                if adn_node_good(host, node_faulty, halves, v)
                    && adn_promote(goodness, h, min_good, v, flipped_sus)
                {
                    promoted.push(v);
                }
            }
            Fault::Edge(e) => {
                let revived = halves.revive_edge(e);
                debug_assert!(revived, "FaultSet::revive admitted a live edge");
                let (a, b) = host.graph().edge_endpoints(e);
                // The greedy queries edges whose image-side endpoint is
                // used; reviving such an edge can clear a suspect and
                // change its choices.
                endpoint_used = used[a] || used[b];
                for x in [a, b] {
                    if !goodness.good_node[x]
                        && adn_node_good(host, node_faulty, halves, x)
                        && adn_promote(goodness, h, min_good, x, flipped_sus)
                    {
                        promoted.push(x);
                    }
                }
            }
        }
        // Level 1: a supernode flipping back good is a repair of the
        // inner B²'s node fault. Goodness is monotone under repairs, so
        // every flip is a genuine inner revival.
        let mut verdict = None;
        for &su in flipped_sus.iter() {
            match bdn_apply_repair(host.inner(), inner, Fault::Node(su)) {
                RepairOutcome::Repaired(_) => {}
                RepairOutcome::Dead => {
                    verdict = Some(Verdict::Die(PlacementError::SupernodeLevelFailed {
                        inner: Box::new(inner.death.clone().expect("dead inner records death")),
                    }));
                    break;
                }
            }
        }
        verdict.unwrap_or_else(|| {
            let inner_changed = inner.embedding.is_none();
            let promoted_visible = promoted.iter().any(|&x| {
                let su = x / h;
                (su * h..(su + 1) * h).any(|y| used[y])
            });
            if promoted_visible || endpoint_used || inner_changed {
                Verdict::Regreedy
            } else if !promoted.is_empty() {
                // Promotions confined to blocks the live map never
                // touches (and flips the inner banding absorbed
                // verbatim — a revived supernode with an unchanged
                // banding stays masked, so it still hosts no block):
                // the old greedy run replays unchanged.
                Verdict::Keep(RepairClass::Local)
            } else {
                Verdict::Keep(RepairClass::Fast)
            }
        })
    };

    let outcome = match verdict {
        Verdict::Die(e) => die(state, e),
        Verdict::Regreedy => adn_regreedy(host, state),
        Verdict::Keep(class) => RepairOutcome::Repaired(class),
    };
    #[cfg(debug_assertions)]
    adn_debug_assert_parity(host, state);
    outcome
}

/// Debug cross-check: the incremental outcome and live map must equal
/// the batch pipeline on the accumulated fault set.
#[cfg(debug_assertions)]
fn adn_debug_assert_parity(host: &Adn, state: &mut RepairState<Adn>) {
    let RepairState {
        faults, scratch, ..
    } = state;
    match host.try_extract_with(faults, scratch) {
        Ok(batch) => {
            assert!(state.alive, "A² incremental died where batch succeeds");
            assert_eq!(
                state.embedding.as_ref().expect("alive A² map is eager").map,
                batch.map,
                "A² incremental map diverged from batch"
            );
        }
        Err(_) => assert!(!state.alive, "A² incremental alive where batch refuses"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adn::{Adn, AdnParams};
    use crate::bdn::BdnParams;
    use crate::ddn::DdnParams;
    use ftt_graph::verify_torus_embedding;

    fn verify_state<C: HostConstruction>(host: &C, state: &mut RepairState<C>) {
        let faults = state.faults().clone();
        let emb = state.live_embedding(host).expect("alive");
        verify_torus_embedding(
            &emb.guest,
            &emb.map,
            host.oracle(),
            |v| faults.node_alive(v),
            |e| faults.edge_alive(e),
        )
        .unwrap_or_else(|e| panic!("{}: repaired embedding invalid: {e}", C::NAME));
    }

    /// Feeds `faults` one at a time, checking batch parity and embedding
    /// validity after every arrival; returns the repair outcomes.
    fn drive<C: HostConstruction>(host: &C, faults: &[Fault]) -> Vec<RepairOutcome> {
        let mut state = RepairState::new(host).expect("fault-free extraction");
        verify_state(host, &mut state);
        let mut out = Vec::new();
        let mut scratch = host.new_scratch();
        for &f in faults {
            let outcome = state.apply(host, f);
            let batch = host.try_extract_with(state.faults(), &mut scratch);
            assert_eq!(
                state.alive(),
                batch.is_ok(),
                "{}: outcome parity broken after {f:?}",
                C::NAME
            );
            if state.alive() {
                verify_state(host, &mut state);
            } else {
                assert_eq!(outcome, RepairOutcome::Dead);
                assert!(state.death().is_some());
            }
            out.push(outcome);
        }
        out
    }

    #[test]
    fn ddn_fast_local_rebuild_tiers() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        // Anchor class is 0 initially; an off-anchor fault dirties a slot.
        let v1 = host.shape().flatten(&[1, 5]);
        assert_eq!(
            state.apply(&host, Fault::Node(v1)),
            RepairOutcome::Repaired(RepairClass::Local)
        );
        // Same slot, same class: provably banding-neutral.
        let v2 = host.shape().flatten(&[2, 9]);
        assert_eq!(
            state.apply(&host, Fault::Node(v2)),
            RepairOutcome::Repaired(RepairClass::Fast)
        );
        // Duplicate fault: Fast.
        assert_eq!(
            state.apply(&host, Fault::Node(v1)),
            RepairOutcome::Repaired(RepairClass::Fast)
        );
        // Anchor-class fault: full re-placement.
        let v3 = host.shape().flatten(&[0, 7]);
        assert_eq!(
            state.apply(&host, Fault::Node(v3)),
            RepairOutcome::Repaired(RepairClass::Rebuild)
        );
        verify_state(&host, &mut state);
    }

    #[test]
    fn ddn_survives_full_budget_streamed() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let k = host.params().tolerated_faults();
        // k faults spread over distinct residues and rows — streamed
        // one by one, every one must be repaired (Theorem 3, online).
        let faults: Vec<Fault> = (0..k)
            .map(|j| {
                Fault::Node(
                    host.shape()
                        .flatten(&[(5 * j + 1) % host.params().m(), 3 * j]),
                )
            })
            .collect();
        let outcomes = drive(&host, &faults);
        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, RepairOutcome::Repaired(_))),
            "within budget every arrival is repairable: {outcomes:?}"
        );
    }

    #[test]
    fn ddn_edge_faults_ascribe_and_absorb() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let (u, _) = host.edge_endpoints(7);
        let outcomes = drive(&host, &[Fault::Edge(7), Fault::Node(u)]);
        // The edge ascribes to u; the later node fault at u is absorbed.
        assert_eq!(outcomes[1], RepairOutcome::Repaired(RepairClass::Fast));
    }

    #[test]
    fn bdn_pair_duplicates_are_fast() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let a = host.cols().node(17, 40);
        let b = host.cols().node(17, 41); // same tile, same row
        let outcomes = drive(&host, &[Fault::Node(a), Fault::Node(b)]);
        assert!(matches!(outcomes[0], RepairOutcome::Repaired(_)));
        assert_eq!(outcomes[1], RepairOutcome::Repaired(RepairClass::Fast));
    }

    #[test]
    fn bdn_map_is_lazy_but_live() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        let outcome = state.apply(&host, Fault::Node(host.cols().node(17, 40)));
        // An isolated single-tile fault is absorbed by tile-local
        // repaint — never a full re-placement.
        assert_eq!(outcome, RepairOutcome::Repaired(RepairClass::Local));
        assert!(state.alive());
        assert!(
            state.embedding().is_none(),
            "B^d defers the map after a banding move"
        );
        let emb = state.live_embedding(&host).expect("materialises on demand");
        assert!(!emb.map.is_empty());
        assert!(state.embedding().is_some(), "now cached");
    }

    #[test]
    fn bdn_reset_restores_pristine_placement() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        state.apply(&host, Fault::Node(host.cols().node(17, 40)));
        state.reset(&host).unwrap();
        assert!(state.alive());
        assert_eq!(state.faults().count_faults(), 0);
        let mut fresh = RepairState::new(&host).unwrap();
        assert_eq!(
            state.live_embedding(&host).unwrap().map,
            fresh.live_embedding(&host).unwrap().map,
            "pristine restore must equal a fresh fault-free placement"
        );
    }

    #[test]
    fn bdn_streams_until_batch_refuses() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        // Two faults in horizontally adjacent tiles kill the painting —
        // the online state must die exactly when batch does.
        let a = host.cols().node(8, 8);
        let b = host.cols().node(8, 12); // next tile over (tile side 9)
        let outcomes = drive(&host, &[Fault::Node(a), Fault::Node(b)]);
        assert!(matches!(outcomes[0], RepairOutcome::Repaired(_)));
        assert_eq!(outcomes[1], RepairOutcome::Dead);
    }

    #[test]
    fn adn_incremental_repairs_with_batch_parity() {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let host = Adn::build(AdnParams::new(inner, 2, 6, 0.0).unwrap());
        let outcomes = drive(&host, &[Fault::Node(17), Fault::Node(17), Fault::Edge(5)]);
        // Node 17 is the 6th node of its supernode — never chosen by the
        // greedy (which takes the first k² = 4 good ones), so demoting
        // it repairs locally without touching the map.
        assert_eq!(outcomes[0], RepairOutcome::Repaired(RepairClass::Local));
        assert_eq!(outcomes[1], RepairOutcome::Repaired(RepairClass::Fast));
        assert!(matches!(outcomes[2], RepairOutcome::Repaired(_)));
    }

    #[test]
    fn adn_supernode_flip_streams_through_inner_engine() {
        // h = 6, min_good = k² = 4: killing the two spare nodes of a
        // supernode demotes without flipping; the third kill drops the
        // good count to 3 < 4, flips the supernode bad, and feeds it to
        // the inner B² as a node fault. drive() asserts batch parity
        // and embedding validity after every arrival.
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let host = Adn::build(AdnParams::new(inner, 2, 6, 0.0).unwrap());
        let h = host.params().h;
        let su = 1000;
        let outcomes = drive(
            &host,
            &[
                Fault::Node(su * h + 4),
                Fault::Node(su * h + 5),
                Fault::Node(su * h + 3),
            ],
        );
        assert_eq!(outcomes[0], RepairOutcome::Repaired(RepairClass::Local));
        assert_eq!(outcomes[1], RepairOutcome::Repaired(RepairClass::Local));
        assert!(
            matches!(outcomes[2], RepairOutcome::Repaired(_)),
            "an isolated supernode flip is absorbable: {outcomes:?}"
        );
    }

    #[test]
    fn adn_edge_fault_on_used_nodes_regreedies() {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let host = Adn::build(AdnParams::new(inner, 2, 6, 0.0).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        // Find an intra-supernode edge between two used host nodes.
        let map = &state.embedding().expect("A² map is eager").map;
        let (a, b) = (map[0], map[1]);
        let e = host
            .graph()
            .arcs(a)
            .find(|&(t, _)| t == b)
            .map(|(_, e)| e)
            .expect("adjacent guest images are host-adjacent");
        let outcome = state.apply(&host, Fault::Edge(e));
        assert_eq!(
            outcome,
            RepairOutcome::Repaired(RepairClass::Rebuild),
            "killing a map-adjacent edge forces the full re-greedy"
        );
        verify_state(&host, &mut state);
    }

    #[test]
    fn reset_recycles_the_state() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        state.apply(&host, Fault::Node(100));
        assert_eq!(state.faults().count_faults(), 1);
        state.reset(&host).unwrap();
        assert_eq!(state.faults().count_faults(), 0);
        assert!(state.alive());
        // Post-reset behaviour matches a fresh state.
        let fresh = RepairState::new(&host).unwrap();
        assert_eq!(
            state.embedding().unwrap().map,
            fresh.embedding().unwrap().map
        );
    }

    #[test]
    fn ddn_incremental_embedding_matches_batch_extraction() {
        // The in-place map refresh must agree with the batch extractor
        // node for node, on every prefix.
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        let mut scratch = host.new_scratch();
        for v in [3, 77, 500, 1201, 901] {
            state.apply(&host, Fault::Node(v));
            let batch = host
                .try_extract_with(state.faults(), &mut scratch)
                .expect("within budget");
            assert_eq!(
                state.embedding().unwrap().map,
                batch.map,
                "incremental map diverged from batch after killing {v}"
            );
        }
    }

    #[test]
    fn dead_states_stay_dead() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        state.apply(&host, Fault::Node(host.cols().node(8, 8)));
        state.apply(&host, Fault::Node(host.cols().node(8, 12)));
        assert!(!state.alive());
        assert_eq!(
            state.apply(&host, Fault::Node(0)),
            RepairOutcome::Dead,
            "no resurrection"
        );
        assert!(state.live_embedding(&host).is_none());
    }

    /// Feeds kill/repair events one at a time, checking batch parity
    /// (outcome *and* map) after every event; returns the outcomes.
    fn drive_events<C: HostConstruction>(host: &C, events: &[FaultEvent]) -> Vec<RepairOutcome> {
        let mut state = RepairState::new(host).expect("fault-free extraction");
        let mut out = Vec::new();
        let mut scratch = host.new_scratch();
        for &ev in events {
            let outcome = state.apply_event(host, ev);
            let batch = host.try_extract_with(state.faults(), &mut scratch);
            assert_eq!(
                state.alive(),
                batch.is_ok(),
                "{}: outcome parity broken after {ev:?}",
                C::NAME
            );
            match batch {
                Ok(b) => {
                    let emb = state.live_embedding(host).expect("alive");
                    assert_eq!(
                        emb.map,
                        b.map,
                        "{}: map parity broken after {ev:?}",
                        C::NAME
                    );
                    verify_state(host, &mut state);
                }
                Err(_) => assert_eq!(outcome, RepairOutcome::Dead),
            }
            out.push(outcome);
        }
        out
    }

    #[test]
    fn bdn_repair_reverses_the_kill_tiers() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let a = host.cols().node(17, 40);
        let b = host.cols().node(17, 41); // same tile, same row
        let events = [
            FaultEvent::Kill(Fault::Node(a)),
            FaultEvent::Kill(Fault::Node(b)),
            FaultEvent::Repair(Fault::Node(b)), // pair still held by a
            FaultEvent::Repair(Fault::Node(a)), // tile empties: unpaint
        ];
        let outcomes = drive_events(&host, &events);
        assert_eq!(outcomes[1], RepairOutcome::Repaired(RepairClass::Fast));
        assert_eq!(outcomes[2], RepairOutcome::Repaired(RepairClass::Fast));
        assert_eq!(
            outcomes[3],
            RepairOutcome::Repaired(RepairClass::Local),
            "an isolated tile emptying unpaints without full re-placement"
        );
    }

    #[test]
    fn repairs_resurrect_dead_states() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let a = host.cols().node(8, 8);
        let b = host.cols().node(8, 12); // adjacent tiles: painting dies
        let events = [
            FaultEvent::Kill(Fault::Node(a)),
            FaultEvent::Kill(Fault::Node(b)),
            FaultEvent::Repair(Fault::Node(b)),
        ];
        let outcomes = drive_events(&host, &events);
        assert_eq!(outcomes[1], RepairOutcome::Dead);
        assert_eq!(
            outcomes[2],
            RepairOutcome::Repaired(RepairClass::Rebuild),
            "removing one of the killing pair must resurrect the state"
        );
    }

    #[test]
    fn ddn_repair_tiers_mirror_the_kill_tiers() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let v1 = host.shape().flatten(&[1, 5]);
        let v2 = host.shape().flatten(&[2, 9]); // same axis-0 slot
        let events = [
            FaultEvent::Kill(Fault::Node(v1)),
            FaultEvent::Kill(Fault::Node(v2)),
            FaultEvent::Repair(Fault::Node(v1)), // slot still dirty via v2
            FaultEvent::Repair(Fault::Node(v2)), // slot empties: band shifts back
        ];
        let outcomes = drive_events(&host, &events);
        assert_eq!(outcomes[2], RepairOutcome::Repaired(RepairClass::Fast));
        assert_eq!(outcomes[3], RepairOutcome::Repaired(RepairClass::Local));
    }

    #[test]
    fn ddn_anchor_class_repair_rebuilds() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        let v = host.shape().flatten(&[0, 7]); // pristine anchor class
        assert_eq!(
            state.apply(&host, Fault::Node(v)),
            RepairOutcome::Repaired(RepairClass::Rebuild)
        );
        // Removing it either changes the deferred set of the (possibly
        // moved) anchor class or moves the argmin back: full rebuild.
        assert_eq!(
            state.apply_event(&host, FaultEvent::Repair(Fault::Node(v))),
            RepairOutcome::Repaired(RepairClass::Rebuild)
        );
        verify_state(&host, &mut state);
    }

    #[test]
    fn ddn_mixed_event_stream_holds_parity() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let (u, _) = host.edge_endpoints(7);
        let events = [
            FaultEvent::Kill(Fault::Edge(7)),
            FaultEvent::Kill(Fault::Node(u)), // same ascription: absorbed
            FaultEvent::Repair(Fault::Edge(7)), // u still faulty: still ascribed
            FaultEvent::Kill(Fault::Node(500)),
            FaultEvent::Repair(Fault::Node(u)),
            FaultEvent::Repair(Fault::Node(500)),
            FaultEvent::Repair(Fault::Node(500)), // no-op revive
        ];
        let outcomes = drive_events(&host, &events);
        assert_eq!(outcomes[2], RepairOutcome::Repaired(RepairClass::Fast));
        assert_eq!(outcomes[6], RepairOutcome::Repaired(RepairClass::Fast));
        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, RepairOutcome::Repaired(_))),
            "{outcomes:?}"
        );
    }

    #[test]
    fn adn_promotion_in_unused_block_repairs_locally() {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let host = Adn::build(AdnParams::new(inner, 2, 6, 0.0).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        let h = host.params().h;
        let mut used = vec![false; HostConstruction::num_nodes(&host)];
        for &v in &state.embedding().expect("A² map is eager").map {
            used[v] = true;
        }
        let su = (0..HostConstruction::num_nodes(&host) / h)
            .find(|&s| (s * h..(s + 1) * h).all(|y| !used[y]))
            .expect("the inner banding masks some supernodes");
        let v = su * h;
        assert_eq!(
            state.apply(&host, Fault::Node(v)),
            RepairOutcome::Repaired(RepairClass::Local)
        );
        assert_eq!(
            state.apply_event(&host, FaultEvent::Repair(Fault::Node(v))),
            RepairOutcome::Repaired(RepairClass::Local),
            "a promotion invisible to the live map replays the old greedy"
        );
        verify_state(&host, &mut state);
    }

    #[test]
    fn adn_flip_back_good_streams_through_inner_engine() {
        // h = 6, min_good = 4: three kills flip the supernode bad (an
        // inner B² node fault); repairing one flips it back good (an
        // inner B² repair). Parity and validity hold throughout.
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let host = Adn::build(AdnParams::new(inner, 2, 6, 0.0).unwrap());
        let h = host.params().h;
        let su = 1000;
        let events = [
            FaultEvent::Kill(Fault::Node(su * h + 4)),
            FaultEvent::Kill(Fault::Node(su * h + 5)),
            FaultEvent::Kill(Fault::Node(su * h + 3)),
            FaultEvent::Repair(Fault::Node(su * h + 3)),
            FaultEvent::Repair(Fault::Node(su * h + 5)),
            FaultEvent::Repair(Fault::Node(su * h + 4)),
        ];
        let outcomes = drive_events(&host, &events);
        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, RepairOutcome::Repaired(_))),
            "{outcomes:?}"
        );
    }

    #[test]
    fn adn_edge_repair_on_used_nodes_regreedies() {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let host = Adn::build(AdnParams::new(inner, 2, 6, 0.0).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        let map = &state.embedding().expect("A² map is eager").map;
        let (a, b) = (map[0], map[1]);
        let e = host
            .graph()
            .arcs(a)
            .find(|&(t, _)| t == b)
            .map(|(_, e)| e)
            .expect("adjacent guest images are host-adjacent");
        state.apply(&host, Fault::Edge(e));
        assert_eq!(
            state.apply_event(&host, FaultEvent::Repair(Fault::Edge(e))),
            RepairOutcome::Repaired(RepairClass::Rebuild),
            "reviving a map-adjacent edge forces the full re-greedy"
        );
        verify_state(&host, &mut state);
    }

    #[test]
    fn live_certificate_checks_out() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let mut state = RepairState::new(&host).unwrap();
        for v in [3, 77, 500] {
            state.apply(&host, Fault::Node(v));
        }
        let cert = live_certificate(&host, &mut state).expect("alive");
        // The independent check lives in `ftt-verify` (a downstream
        // crate, exercised by prop_online.rs); here assert the frozen
        // claim is self-consistent with the live state.
        assert_eq!(cert.guest_len(), cert.map.len());
        assert_eq!(cert.host_nodes, HostConstruction::num_nodes(&host));
        assert_eq!(&cert.map, &state.embedding().unwrap().map);
    }
}
