//! The two-level embedding of Theorem 1.
//!
//! Level 1: bad supernodes become faults of the inner `B^2_{N}`; the
//! Theorem 2 machinery extracts an `N × N` torus of good supernodes
//! `U_{I,J}`.
//!
//! Level 2: the guest `n × n` torus (`n = k·N`) is divided into `k × k`
//! submeshes `M_{I,J}`; each guest node of `M_{I,J}` is mapped greedily
//! to an unused good node of `U_{I,J}` joined by alive edges to the
//! images of its already-placed neighbours. The goodness margins
//! (`h ≥ k² + 8√q·h + 1`) guarantee the greedy choice always exists; the
//! implementation still checks and reports
//! [`PlacementError::EmbeddingStuck`] if violated.

use super::goodness::Goodness;
use super::Adn;
use crate::bdn::extract::{extract_after_faults, TorusEmbedding};
use crate::error::PlacementError;
use ftt_faults::HalfEdgeFaults;
use ftt_geom::Shape;

/// Runs the full Theorem 1 pipeline: supernode-level torus extraction
/// followed by the greedy node-level embedding.
///
/// `node_faulty` and `halves` describe the fault state; `goodness` must
/// have been computed from them (see [`super::goodness::classify`]).
pub fn embed_torus(
    adn: &Adn,
    goodness: &Goodness,
    halves: &HalfEdgeFaults,
) -> Result<TorusEmbedding, PlacementError> {
    let n = adn.params().n();

    // Level 1: extract the supernode torus.
    let su_faulty: Vec<bool> = goodness.good_supernode.iter().map(|&g| !g).collect();
    let inner_emb = extract_after_faults(adn.inner(), &su_faulty)
        .map_err(|e| PlacementError::SupernodeLevelFailed { inner: Box::new(e) })?;

    // Level 2: greedy node embedding.
    let mut map = Vec::new();
    let mut used = Vec::new();
    let mut suspect = Vec::new();
    greedy_level2_into(
        adn,
        goodness,
        halves,
        &inner_emb.map,
        &mut map,
        &mut used,
        &mut suspect,
    )?;
    Ok(TorusEmbedding {
        guest: Shape::new(vec![n, n]),
        map,
    })
}

/// The level-2 greedy node embedding into reused buffers: maps every
/// guest node of the `n × n` torus to an unused good node of the
/// supernode `inner_map` assigns to its block, joined by alive edges to
/// the images of its already-placed guest neighbours.
///
/// `map`/`used`/`suspect` are cleared and refilled (`map` ends holding
/// the guest→host assignment, `used` the host-node usage bitmap), so
/// the hot paths — Monte-Carlo extraction and online re-greedy — run
/// allocation-free in the steady state.
///
/// The alive-edge check is where the batch pipeline used to spend its
/// time, and the construction makes almost all of it redundant: every
/// candidate/image pair lies in the same or adjacent supernodes, which
/// `A^2_n` joins completely, so an edge *exists* unconditionally and
/// can only be rejected if one of its halves failed. Only endpoints of
/// touched edges ([`HalfEdgeFaults::touched_edges`]) can be incident
/// to a faulty half, so the check is skipped entirely unless candidate
/// or image is such a *suspect* — with node-only fault sets the greedy
/// never scans an adjacency list at all.
pub(crate) fn greedy_level2_into(
    adn: &Adn,
    goodness: &Goodness,
    halves: &HalfEdgeFaults,
    inner_map: &[usize],
    map: &mut Vec<usize>,
    used: &mut Vec<bool>,
    suspect: &mut Vec<bool>,
) -> Result<(), PlacementError> {
    let params = adn.params();
    let k = params.k;
    let h = params.h;
    let big_n = params.inner.n;
    let n = params.n();
    let host_graph = adn.graph();
    map.clear();
    map.reserve(n * n);
    used.clear();
    used.resize(adn.num_nodes(), false);
    let touched = halves.touched_edges();
    let check_edges = !touched.is_empty();
    suspect.clear();
    if check_edges {
        suspect.resize(adn.num_nodes(), false);
        for &e in touched {
            let (a, b) = host_graph.edge_endpoints(e);
            suspect[a] = true;
            suspect[b] = true;
        }
    }
    // Guest nodes in row-major order, every placed neighbour read by
    // direct index arithmetic (up `g−n`, left `g−1`, and the torus
    // wraps back to row/column 0 from the last row/column) — the
    // division-heavy `coord_of`/`torus_step`/`flatten` per-node path
    // costs more than the candidate scan itself at Monte-Carlo rates.
    // Supernode hosting guest block (I, J): inner guest node (I, J).
    for i in 0..n {
        let row = i * n;
        let block_row = (i / k) * big_n;
        let up = i > 0;
        let wrap_up = i == n - 1 && i > 0;
        let mut in_block = 0;
        let mut block = block_row;
        for j in 0..n {
            let g = row + j;
            let su = inner_map[block];
            // assigned guest neighbours (all already pushed: every
            // index below is < g)
            let mut images: [usize; 4] = [usize::MAX; 4];
            let mut ni = 0;
            if up {
                images[ni] = map[g - n];
                ni += 1;
            }
            if wrap_up {
                images[ni] = map[j];
                ni += 1;
            }
            if j > 0 {
                images[ni] = map[g - 1];
                ni += 1;
            }
            if j == n - 1 && j > 0 {
                images[ni] = map[row];
                ni += 1;
            }
            // candidate: unused good node of `su` with alive edges to
            // all assigned neighbour images
            let mut chosen = None;
            'cand: for v in su * h..(su + 1) * h {
                if used[v] || !goodness.good_node[v] {
                    continue;
                }
                if check_edges {
                    for &img in &images[..ni] {
                        if (suspect[v] || suspect[img])
                            && !host_graph.any_edge_between(v, img, |e| !halves.edge_faulty(e))
                        {
                            continue 'cand;
                        }
                    }
                }
                chosen = Some(v);
                break;
            }
            let Some(v) = chosen else {
                return Err(PlacementError::EmbeddingStuck { guest: g });
            };
            used[v] = true;
            map.push(v);
            in_block += 1;
            if in_block == k {
                in_block = 0;
                block += 1;
            }
        }
    }
    debug_assert_eq!(map.len(), n * n);
    Ok(())
}

/// Convenience: classify goodness and embed in one call — "Theorem 1 as
/// an algorithm".
pub fn extract_after_faults_adn(
    adn: &Adn,
    node_faulty: &[bool],
    halves: &HalfEdgeFaults,
) -> Result<TorusEmbedding, PlacementError> {
    let goodness = super::goodness::classify(adn, node_faulty, halves);
    embed_torus(adn, &goodness, halves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adn::{Adn, AdnParams};
    use crate::bdn::BdnParams;
    use ftt_graph::verify_torus_embedding;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn small_adn(sqrt_q: f64) -> Adn {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        Adn::build(AdnParams::new(inner, 2, if sqrt_q > 0.0 { 10 } else { 6 }, sqrt_q).unwrap())
    }

    fn verify(adn: &Adn, emb: &TorusEmbedding, node_faulty: &[bool], halves: &HalfEdgeFaults) {
        verify_torus_embedding(
            &emb.guest,
            &emb.map,
            adn.graph(),
            |v| !node_faulty[v],
            |e| !halves.edge_faulty(e),
        )
        .expect("A²_n embedding must verify");
    }

    #[test]
    fn fault_free_embedding() {
        let adn = small_adn(0.0);
        let faults = vec![false; adn.num_nodes()];
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let emb = extract_after_faults_adn(&adn, &faults, &halves).unwrap();
        assert_eq!(emb.len(), 108 * 108);
        verify(&adn, &emb, &faults, &halves);
    }

    #[test]
    fn scattered_node_faults_embedding() {
        let adn = small_adn(0.0);
        let mut faults = vec![false; adn.num_nodes()];
        let mut rng = SmallRng::seed_from_u64(11);
        // kill one node in ~1/4 of the supernodes (stays well under the
        // goodness threshold h − k² = 2 per supernode)
        for su in 0..adn.params().num_supernodes() {
            if rng.gen_bool(0.25) {
                faults[su * adn.params().h + rng.gen_range(0..adn.params().h)] = true;
            }
        }
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let emb = extract_after_faults_adn(&adn, &faults, &halves).unwrap();
        verify(&adn, &emb, &faults, &halves);
    }

    #[test]
    fn dead_supernode_handled_at_level_one() {
        let adn = small_adn(0.0);
        let mut faults = vec![false; adn.num_nodes()];
        // kill an entire supernode → inner B² sees one faulty node and
        // masks it
        let su = adn.inner().cols().node(40, 13);
        for v in adn.nodes_of(su) {
            faults[v] = true;
        }
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let emb = extract_after_faults_adn(&adn, &faults, &halves).unwrap();
        verify(&adn, &emb, &faults, &halves);
        // no image may come from the dead supernode
        for &v in &emb.map {
            assert_ne!(adn.supernode_of(v), su);
        }
    }

    #[test]
    fn edge_faults_rerouted_within_supernode() {
        let adn = small_adn(1.0 / 16.0);
        let faults = vec![false; adn.num_nodes()];
        let mut halves = HalfEdgeFaults::none(adn.graph().num_edges());
        // kill a few full edges (both halves) inside supernode 5
        let mut killed = 0;
        for (e, u, v) in adn.graph().edges() {
            if adn.supernode_of(u) == 5 && adn.supernode_of(v) == 5 {
                halves.kill_half(e, 0);
                halves.kill_half(e, 1);
                killed += 1;
                if killed == 1 {
                    break;
                }
            }
        }
        assert_eq!(killed, 1);
        let emb = extract_after_faults_adn(&adn, &faults, &halves).unwrap();
        verify(&adn, &emb, &faults, &halves);
    }

    #[test]
    fn k3_submeshes_embed() {
        // k = 3: supernodes host 3×3 submeshes; h must exceed k² = 9.
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let adn = Adn::build(AdnParams::new(inner, 3, 11, 0.0).unwrap());
        assert_eq!(adn.params().n(), 162);
        let mut faults = vec![false; adn.num_nodes()];
        // one dead node per supernode still leaves k²+1 good ones
        for su in 0..adn.params().num_supernodes() {
            faults[su * 11] = true;
        }
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let emb = extract_after_faults_adn(&adn, &faults, &halves).unwrap();
        assert_eq!(emb.len(), 162 * 162);
        verify(&adn, &emb, &faults, &halves);
    }

    #[test]
    fn embedding_respects_block_structure() {
        let adn = small_adn(0.0);
        let faults = vec![false; adn.num_nodes()];
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let goodness = crate::adn::goodness::classify(&adn, &faults, &halves);
        let emb = embed_torus(&adn, &goodness, &halves).unwrap();
        // all k² nodes of a guest block map into one supernode
        let k = adn.params().k;
        let n = adn.params().n();
        for bi in 0..3 {
            for bj in 0..3 {
                let mut sus = std::collections::HashSet::new();
                for di in 0..k {
                    for dj in 0..k {
                        let g = (bi * k + di) * n + (bj * k + dj);
                        sus.insert(adn.supernode_of(emb.map[g]));
                    }
                }
                assert_eq!(sus.len(), 1, "block ({bi},{bj}) split across supernodes");
            }
        }
    }
}
