//! Good nodes and good supernodes (Section 4).
//!
//! Under the half-edge fault model, a node `v` of `A^2_n` is **good**
//! when it is alive and, for every supernode `W` it has edges into
//! (its own supernode and the adjacent ones), at most `2√q·h` of the
//! half-edges *at `v`'s side* leading toward `W`'s nodes are faulty.
//! A supernode is **good** when at least `k² + 8√q·h` of its nodes are
//! good. Goodness of distinct supernodes depends on disjoint half-edge
//! sets, which is exactly why the paper introduces half-edges.

use super::Adn;
use ftt_faults::HalfEdgeFaults;

/// Classification of nodes and supernodes.
#[derive(Debug, Clone)]
pub struct Goodness {
    /// Per-node goodness.
    pub good_node: Vec<bool>,
    /// Per-supernode goodness.
    pub good_supernode: Vec<bool>,
    /// Number of good nodes per supernode.
    pub good_count: Vec<u32>,
}

impl Goodness {
    /// Number of bad (not good) supernodes.
    pub fn bad_supernodes(&self) -> usize {
        self.good_supernode.iter().filter(|&&g| !g).count()
    }

    /// Fraction of good nodes.
    pub fn good_node_fraction(&self) -> f64 {
        let good = self.good_node.iter().filter(|&&g| g).count();
        good as f64 / self.good_node.len() as f64
    }
}

/// Classifies every node and supernode of `adn` under the given node
/// faults and half-edge faults.
///
/// Cost is `O(N + T log T)` where `T` is the number of faulty halves —
/// driven by [`HalfEdgeFaults::touched_edges`], never by a scan of all
/// `E` edges, so sparse fault regimes classify in near-linear node time.
pub fn classify(adn: &Adn, node_faulty: &[bool], halves: &HalfEdgeFaults) -> Goodness {
    let mut out = Goodness {
        good_node: Vec::new(),
        good_supernode: Vec::new(),
        good_count: Vec::new(),
    };
    let marked: Vec<usize> = (0..node_faulty.len()).filter(|&v| node_faulty[v]).collect();
    classify_into(adn, node_faulty, &marked, halves, &mut out);
    out
}

/// [`classify`] into reused buffers — the Monte-Carlo and online-repair
/// form: `out`'s vectors are cleared and refilled, so repeated
/// classification performs no steady-state allocation.
///
/// `marked` is the duplicate-free list of nodes set in `node_faulty`
/// (the sparse view every hot caller already maintains). With it the
/// demotion work is `O(#faults + T log T)` on top of three bulk
/// memsets — no per-node scan of the host, which is what the
/// Monte-Carlo extraction throughput of `A²` lives on.
pub fn classify_into(
    adn: &Adn,
    node_faulty: &[bool],
    marked: &[usize],
    halves: &HalfEdgeFaults,
    out: &mut Goodness,
) {
    let g = adn.graph();
    assert_eq!(node_faulty.len(), g.num_nodes());
    assert_eq!(halves.num_edges(), g.num_edges());
    let params = adn.params();
    let h = params.h;
    let max_bad = params.max_bad_halves();
    let num_sus = params.num_supernodes();
    let min_good = params.min_good_nodes() as u32;
    // Start from the pristine classification (every node good, every
    // count h) and demote: node faults from `marked`, half-edge budget
    // violations from the touched edges grouped by (node, target
    // supernode). Only supernodes that lost a node need their goodness
    // re-evaluated, so the pristine `good_supernode` fill survives
    // everywhere else.
    out.good_node.clear();
    out.good_node.resize(g.num_nodes(), true);
    out.good_count.clear();
    out.good_count.resize(num_sus, h as u32);
    for &v in marked {
        debug_assert!(node_faulty[v], "marked node {v} not set in node_faulty");
        debug_assert!(out.good_node[v], "duplicate marked node {v}");
        out.good_node[v] = false;
        out.good_count[v / h] -= 1;
    }
    let mut bad_pairs: Vec<(u32, u32)> = Vec::new();
    for &e in halves.touched_edges() {
        let (a, b) = g.edge_endpoints(e);
        if halves.half_faulty(e, 0) && !node_faulty[a] {
            bad_pairs.push((a as u32, adn.supernode_of(b) as u32));
        }
        if halves.half_faulty(e, 1) && !node_faulty[b] {
            bad_pairs.push((b as u32, adn.supernode_of(a) as u32));
        }
    }
    bad_pairs.sort_unstable();
    let mut i = 0;
    while i < bad_pairs.len() {
        let mut j = i + 1;
        while j < bad_pairs.len() && bad_pairs[j] == bad_pairs[i] {
            j += 1;
        }
        let v = bad_pairs[i].0 as usize;
        if j - i > max_bad && out.good_node[v] {
            out.good_node[v] = false;
            out.good_count[v / h] -= 1;
        }
        i = j;
    }
    out.good_supernode.clear();
    out.good_supernode.resize(num_sus, h as u32 >= min_good);
    for &v in marked {
        let su = v / h;
        out.good_supernode[su] = out.good_count[su] >= min_good;
    }
    for &(v, _) in &bad_pairs {
        let su = v as usize / h;
        out.good_supernode[su] = out.good_count[su] >= min_good;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adn::{Adn, AdnParams};
    use crate::bdn::BdnParams;
    use ftt_faults::HalfEdgeFaults;

    fn adn_q(sqrt_q: f64) -> Adn {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        Adn::build(AdnParams::new(inner, 2, if sqrt_q > 0.0 { 10 } else { 8 }, sqrt_q).unwrap())
    }

    #[test]
    fn all_alive_all_good() {
        let adn = adn_q(0.0);
        let faults = vec![false; adn.num_nodes()];
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let g = classify(&adn, &faults, &halves);
        assert!(g.good_node.iter().all(|&x| x));
        assert!(g.good_supernode.iter().all(|&x| x));
        assert_eq!(g.bad_supernodes(), 0);
        assert!((g.good_node_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faulty_node_is_bad() {
        let adn = adn_q(0.0);
        let mut faults = vec![false; adn.num_nodes()];
        faults[17] = true;
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let g = classify(&adn, &faults, &halves);
        assert!(!g.good_node[17]);
        // h = 8, min_good = 4: supernode of 17 still good (7 good nodes)
        assert!(g.good_supernode[adn.supernode_of(17)]);
    }

    #[test]
    fn supernode_dies_when_too_many_nodes_fail() {
        let adn = adn_q(0.0);
        let mut faults = vec![false; adn.num_nodes()];
        // kill 5 of the 8 nodes of supernode 3: 3 good < 4 required
        for v in adn.nodes_of(3).take(5) {
            faults[v] = true;
        }
        let halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let g = classify(&adn, &faults, &halves);
        assert!(!g.good_supernode[3]);
        assert_eq!(g.good_count[3], 3);
    }

    #[test]
    fn half_edge_budget_enforced() {
        // with q = 0 a single faulty half at v makes v bad
        let adn = adn_q(0.0);
        let faults = vec![false; adn.num_nodes()];
        let mut halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let v = 42usize;
        let (t, e) = adn.graph().arcs(v).next().unwrap();
        let (a, _) = adn.graph().edge_endpoints(e);
        halves.kill_half(e, if a == v { 0 } else { 1 });
        let g = classify(&adn, &faults, &halves);
        assert!(!g.good_node[v], "one bad half > ⌊2·0·h⌋ = 0");
        // the node at the other end is unaffected (its half is fine)
        assert!(g.good_node[t]);
    }

    #[test]
    fn positive_q_tolerates_some_bad_halves() {
        // √q = 1/16, h = 10: max_bad = ⌊2·(1/16)·10⌋ = 1 → one bad half per
        // supernode direction is fine, two are not.
        let adn = adn_q(1.0 / 16.0);
        assert_eq!(adn.params().max_bad_halves(), 1);
        let faults = vec![false; adn.num_nodes()];
        let mut halves = HalfEdgeFaults::none(adn.graph().num_edges());
        let v = 100usize;
        // two bad halves toward v's own supernode
        let own: Vec<(usize, u32)> = adn
            .graph()
            .arcs(v)
            .filter(|&(t, _)| adn.supernode_of(t) == adn.supernode_of(v))
            .collect();
        let (a0, _) = adn.graph().edge_endpoints(own[0].1);
        halves.kill_half(own[0].1, if a0 == v { 0 } else { 1 });
        let g = classify(&adn, &faults, &halves);
        assert!(g.good_node[v], "one bad half within budget");
        let (a1, _) = adn.graph().edge_endpoints(own[1].1);
        halves.kill_half(own[1].1, if a1 == v { 0 } else { 1 });
        let g = classify(&adn, &faults, &halves);
        assert!(!g.good_node[v], "two bad halves exceed budget");
    }
}
