//! Theorem 1: the degree-`O(log log n)` construction `A^2_n` tolerating
//! constant node-failure probability `p` and edge-failure probability
//! `q`.
//!
//! Take `B^2_{n/k}` (Theorem 2) and replace every node by a clique of
//! `h = ck²/(1+ε)` nodes — a *supernode* — joining adjacent supernodes
//! completely (so each pair of adjacent supernodes forms a clique of
//! `2h` nodes). With `k = Θ(√(log log n))` the degree is
//! `O(k²) = O(log log n)` and the node count is `c·n²`.
//!
//! Fault tolerance composes two levels:
//!
//! 1. **Node level** — a node is *good* if it is alive and, toward every
//!    relevant supernode, at most `2√q·h` of its incident half-edges are
//!    faulty ([`goodness`]). A supernode is *good* if it has at least
//!    `k² + 8√q·h` good nodes. The half-edge trick makes supernode
//!    goodness independent across supernodes.
//! 2. **Supernode level** — bad supernodes are treated as faulty nodes
//!    of the underlying `B^2_{n/k}`, whose band machinery (Theorem 2)
//!    recovers an `(n/k) × (n/k)` torus of good supernodes; each torus
//!    cell then hosts a `k × k` submesh of the guest, embedded greedily
//!    ([`embed`]).

pub mod embed;
pub mod goodness;

use crate::bdn::{Bdn, BdnParams};
use ftt_graph::{Graph, GraphBuilder};

pub use embed::embed_torus;
pub use goodness::{classify, Goodness};

/// Validated parameters of an `A^2_n` instance.
#[derive(Debug, Clone, Copy)]
pub struct AdnParams {
    /// Parameters of the underlying `B^2_{N}` (with `N = n/k`).
    pub inner: BdnParams,
    /// Submesh side `k` (each supernode hosts a `k × k` guest submesh).
    pub k: usize,
    /// Supernode size `h`.
    pub h: usize,
    /// Square root of the target edge-failure probability `q` (the
    /// half-edge failure rate); determines the goodness thresholds.
    pub sqrt_q: f64,
}

impl AdnParams {
    /// Validates and constructs the parameter set.
    ///
    /// Requires `h(1 − 8√q) ≥ k² + 1` so that a good supernode always
    /// has spare good nodes for the greedy embedding, and `√q ≤ 1/16`
    /// (mirroring the paper's `q < (1−p−1/c)²/64` smallness condition).
    pub fn new(inner: BdnParams, k: usize, h: usize, sqrt_q: f64) -> Result<Self, String> {
        if inner.d != 2 {
            return Err("A^d_n is implemented for d = 2 (as in the paper's proof)".into());
        }
        if k == 0 {
            return Err("k must be ≥ 1".into());
        }
        if !(0.0..=1.0 / 16.0).contains(&sqrt_q) {
            return Err(format!("√q = {sqrt_q} out of range [0, 1/16]"));
        }
        let margin = (8.0 * sqrt_q * h as f64).ceil() as usize;
        if h < k * k + margin + 1 {
            return Err(format!(
                "h = {h} too small: need h ≥ k² + ⌈8√q·h⌉ + 1 = {}",
                k * k + margin + 1
            ));
        }
        Ok(Self {
            inner,
            k,
            h,
            sqrt_q,
        })
    }

    /// Guest torus side `n = k · N`.
    pub fn n(&self) -> usize {
        self.k * self.inner.n
    }

    /// Number of supernodes (= nodes of the inner `B^2_N`).
    pub fn num_supernodes(&self) -> usize {
        self.inner.num_nodes()
    }

    /// Total node count `h · |B^2_N|`.
    pub fn num_nodes(&self) -> usize {
        self.h * self.num_supernodes()
    }

    /// Node redundancy `num_nodes / n²` (the paper's `c`).
    pub fn redundancy(&self) -> f64 {
        self.num_nodes() as f64 / (self.n() as f64 * self.n() as f64)
    }

    /// The degree of `A^2_n`: `h − 1` clique edges plus `h` per adjacent
    /// supernode (`6·2−2 = 10` of them).
    pub fn expected_degree(&self) -> usize {
        (self.h - 1) + self.h * self.inner.expected_degree()
    }

    /// Maximum faulty half-edges a good node may have toward any single
    /// relevant supernode: `⌊2√q·h⌋`.
    pub fn max_bad_halves(&self) -> usize {
        (2.0 * self.sqrt_q * self.h as f64).floor() as usize
    }

    /// Minimum good nodes for a good supernode: `k² + ⌈8√q·h⌉`.
    pub fn min_good_nodes(&self) -> usize {
        self.k * self.k + (8.0 * self.sqrt_q * self.h as f64).ceil() as usize
    }
}

/// A constructed `A^2_n` instance.
///
/// Node ids: node `v` belongs to supernode `v / h` (a node id of the
/// inner `B^2_N`) with local index `v % h`.
#[derive(Debug, Clone)]
pub struct Adn {
    params: AdnParams,
    inner: Bdn,
    graph: Graph,
}

impl Adn {
    /// Builds the supernode graph.
    pub fn build(params: AdnParams) -> Self {
        let inner = Bdn::build(params.inner);
        let s = inner.num_nodes();
        let h = params.h;
        let mut builder = GraphBuilder::new(s * h);
        builder.reserve_edges(s * h * (h - 1) / 2 + inner.graph().num_edges() * h * h);
        //

        // cliques within supernodes
        for su in 0..s {
            let base = su * h;
            for a in 0..h {
                for b in a + 1..h {
                    builder.add_edge(base + a, base + b);
                }
            }
        }
        // complete joins between adjacent supernodes
        for (_, u, v) in inner.graph().edges() {
            for a in 0..h {
                for b in 0..h {
                    builder.add_edge(u * h + a, v * h + b);
                }
            }
        }
        let graph = builder.build();
        Self {
            params,
            inner,
            graph,
        }
    }

    /// The instance parameters.
    pub fn params(&self) -> &AdnParams {
        &self.params
    }

    /// The underlying `B^2_N`.
    pub fn inner(&self) -> &Bdn {
        &self.inner
    }

    /// The host graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Supernode of a node.
    #[inline]
    pub fn supernode_of(&self, v: usize) -> usize {
        v / self.params.h
    }

    /// The nodes of a supernode.
    pub fn nodes_of(&self, su: usize) -> std::ops::Range<usize> {
        su * self.params.h..(su + 1) * self.params.h
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn small_params() -> AdnParams {
        // inner B²_54 (b = 3, ε_b = 1, m = 81), k = 2, h = 6, q = 0.
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        AdnParams::new(inner, 2, 6, 0.0).unwrap()
    }

    #[test]
    fn params_validation() {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        assert!(AdnParams::new(inner, 2, 4, 0.0).is_err(), "h too small");
        assert!(AdnParams::new(inner, 2, 6, 0.2).is_err(), "√q too large");
        let p = AdnParams::new(inner, 2, 9, 0.05).unwrap();
        assert_eq!(p.n(), 108);
        assert_eq!(p.num_supernodes(), 81 * 54);
        assert_eq!(p.num_nodes(), 9 * 81 * 54);
    }

    #[test]
    fn degree_formula() {
        let p = small_params();
        // h−1 + 10h = 11h − 1
        assert_eq!(p.expected_degree(), 11 * p.h - 1);
        let adn = Adn::build(p);
        assert_eq!(adn.graph().max_degree(), p.expected_degree());
        assert_eq!(adn.graph().min_degree(), p.expected_degree());
    }

    #[test]
    fn supernode_membership() {
        let p = small_params();
        let adn = Adn::build(p);
        for v in (0..adn.num_nodes()).step_by(131) {
            let su = adn.supernode_of(v);
            assert!(adn.nodes_of(su).contains(&v));
        }
    }

    #[test]
    fn cliques_and_joins_exist() {
        let p = small_params();
        let adn = Adn::build(p);
        let h = p.h;
        // clique inside supernode 0
        for a in 0..h {
            for b in 0..h {
                if a != b {
                    assert!(adn.graph().has_edge(a, b));
                }
            }
        }
        // complete join toward an adjacent supernode
        let inner_nbr = adn.inner().graph().neighbors(0)[0] as usize;
        for a in 0..h {
            for b in 0..h {
                assert!(adn.graph().has_edge(a, inner_nbr * h + b));
            }
        }
        // no edges toward non-adjacent supernodes
        let mut non_adj = None;
        for su in 1..adn.params().num_supernodes() {
            if !adn.inner().graph().has_edge(0, su) {
                non_adj = Some(su);
                break;
            }
        }
        let su = non_adj.unwrap();
        assert!(!adn.graph().has_edge(0, su * h));
    }

    #[test]
    fn thresholds_at_q_zero() {
        let p = small_params();
        assert_eq!(p.max_bad_halves(), 0);
        assert_eq!(p.min_good_nodes(), 4);
    }

    #[test]
    fn redundancy_formula() {
        let p = small_params();
        // c = h·|B|/n² = h·(m·N)/(k²N²) = h·(m/N)/k²
        let expect = p.h as f64 * (81.0 / 54.0) / 4.0;
        assert!((p.redundancy() - expect).abs() < 1e-12);
    }
}
