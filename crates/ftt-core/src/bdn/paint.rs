//! The painting procedure (proof of Lemma 5, step 1).
//!
//! Every faulty node must be enclosed by a fault-free `s`-frame
//! (`s ≤ b`); the frame's shell is painted white, its interior black,
//! overriding earlier colors. Black tiles then decompose into *black
//! regions* (connected components under torus-edge tile adjacency), each
//! of which is guaranteed to fit inside a single frame interior — at most
//! `b−2` tiles per dimension — because a frame shell always separates its
//! interior from the outside and shells are only ever overridden by
//! later interiors that bring their own shells.

use crate::error::PlacementError;
use ftt_geom::{Shape, TileGrid};

/// Final color of a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileColor {
    /// Fault-free by construction; bands pass through via interpolation.
    White,
    /// Part of a black region; bands are dictated by straight segments.
    Black,
}

/// A black region: a connected component of black tiles.
#[derive(Debug, Clone)]
pub struct Region {
    /// Tiles of the region (tile-grid flat ids).
    pub tiles: Vec<usize>,
    /// Cyclic bounding-box origin, in tile-grid coordinates.
    pub origin: Vec<usize>,
    /// Bounding-box extent (tiles per dimension).
    pub extent: Vec<usize>,
}

/// Output of the painting procedure.
#[derive(Debug, Clone)]
pub struct Painting {
    /// Color of every tile.
    pub color: Vec<TileColor>,
    /// Black regions.
    pub regions: Vec<Region>,
    /// `region_of[tile]` = region index, or `u32::MAX` for white tiles.
    pub region_of: Vec<u32>,
}

/// Runs the painting procedure over per-tile fault counts.
///
/// `max_radius` is the largest frame radius to try (`s = 2r+1 ≤ b`, and
/// the frame must fit the tile grid).
pub fn paint(
    grid: &TileGrid,
    tile_faults: &[u32],
    max_radius: usize,
) -> Result<Painting, PlacementError> {
    assert_eq!(tile_faults.len(), grid.num_tiles());
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        Unpainted,
        White,
        Black,
    }
    let mut color = vec![C::Unpainted; grid.num_tiles()];
    let gs_shape = grid.grid_shape().clone();
    for tile in 0..grid.num_tiles() {
        if tile_faults[tile] == 0 || color[tile] != C::Unpainted {
            continue;
        }
        // Find a clean frame *enclosing* the tile: the paper allows any
        // enclosing s-frame, so for each radius we try every centre
        // whose interior contains the tile (Chebyshev distance ≤ r−1);
        // smallest radius first keeps regions small.
        let mut painted = false;
        'radius: for r in 1..=max_radius {
            for center in centers_within(&gs_shape, tile, r - 1) {
                let Some(frame) = grid.frame(center, r) else {
                    continue 'radius;
                };
                if frame.shell_clear(tile_faults) {
                    for t in frame.shell_tiles() {
                        color[t] = C::White;
                    }
                    for t in frame.interior_tiles() {
                        color[t] = C::Black;
                    }
                    painted = true;
                    break 'radius;
                }
            }
        }
        if !painted {
            // representative node for the error
            let node = grid.nodes_in_tile(tile)[0];
            return Err(PlacementError::NoCleanFrame { node });
        }
    }
    let color: Vec<TileColor> = color
        .into_iter()
        .map(|c| {
            if c == C::Black {
                TileColor::Black
            } else {
                TileColor::White
            }
        })
        .collect();
    // Safety: no black... no white tile may contain a fault.
    debug_assert!(
        (0..grid.num_tiles()).all(|t| color[t] == TileColor::Black || tile_faults[t] == 0)
    );
    let (regions, region_of) = find_regions(grid, &color);
    Ok(Painting {
        color,
        regions,
        region_of,
    })
}

/// All tiles within cyclic Chebyshev distance `radius` of `tile`
/// (candidate frame centres whose interior contains `tile`), nearest
/// first so concentric frames are preferred.
fn centers_within(gs: &Shape, tile: usize, radius: usize) -> Vec<usize> {
    let d = gs.ndim();
    let tc = gs.unflatten(tile);
    let side = 2 * radius + 1;
    let mut out: Vec<(usize, usize)> = Vec::new();
    for off in Shape::new(vec![side; d]).coords() {
        let mut coord = vec![0usize; d];
        let mut dist = 0usize;
        for a in 0..d {
            let o = off[a] as isize - radius as isize;
            dist = dist.max(o.unsigned_abs());
            coord[a] = (tc[a] as isize + o).rem_euclid(gs.dim(a) as isize) as usize;
        }
        out.push((dist, gs.flatten(&coord)));
    }
    out.sort_unstable();
    out.dedup_by_key(|&mut (_, t)| t);
    out.into_iter().map(|(_, t)| t).collect()
}

/// Connected components of black tiles under torus-edge (von Neumann)
/// adjacency, with cyclic bounding boxes.
fn find_regions(grid: &TileGrid, color: &[TileColor]) -> (Vec<Region>, Vec<u32>) {
    let gs = grid.grid_shape();
    let mut region_of = vec![u32::MAX; grid.num_tiles()];
    let mut regions = Vec::new();
    let mut stack = Vec::new();
    for start in 0..grid.num_tiles() {
        if color[start] != TileColor::Black || region_of[start] != u32::MAX {
            continue;
        }
        let id = regions.len() as u32;
        let mut tiles = Vec::new();
        region_of[start] = id;
        stack.push(start);
        while let Some(t) = stack.pop() {
            tiles.push(t);
            for nb in gs.torus_neighbors_iter(t) {
                if color[nb] == TileColor::Black && region_of[nb] == u32::MAX {
                    region_of[nb] = id;
                    stack.push(nb);
                }
            }
        }
        tiles.sort_unstable();
        let (origin, extent) = cyclic_bounding_box(gs, &tiles);
        regions.push(Region {
            tiles,
            origin,
            extent,
        });
    }
    (regions, region_of)
}

/// Cyclic bounding box of a set of tile coordinates: for each axis, finds
/// the largest empty cyclic gap between used coordinates and takes the
/// complement, which is the smallest covering arc.
fn cyclic_bounding_box(gs: &Shape, tiles: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let d = gs.ndim();
    let mut origin = vec![0usize; d];
    let mut extent = vec![0usize; d];
    for axis in 0..d {
        let n = gs.dim(axis);
        let mut used: Vec<usize> = tiles.iter().map(|&t| gs.coord_of(t, axis)).collect();
        used.sort_unstable();
        used.dedup();
        if used.len() == n {
            // region wraps the full axis (should not happen for frame
            // interiors, but handle gracefully)
            origin[axis] = 0;
            extent[axis] = n;
            continue;
        }
        // find largest cyclic gap between consecutive used coords
        let mut best_gap = 0usize;
        let mut best_start = 0usize; // arc start after the gap
        for (i, &c) in used.iter().enumerate() {
            let next = used[(i + 1) % used.len()];
            let gap = if used.len() == 1 {
                n - 1
            } else {
                (next + n - c) % n
            };
            if gap > best_gap {
                best_gap = gap;
                best_start = (c + gap) % n; // == next
            }
        }
        if used.len() == 1 {
            origin[axis] = used[0];
            extent[axis] = 1;
        } else {
            origin[axis] = best_start;
            extent[axis] = n - best_gap + 1;
            // extent = arc length from best_start to the coord before the
            // gap, inclusive: n − gap + 1 ... but gap counts the step
            // distance; the covered arc has n − best_gap + 1 cells only if
            // gap measured between cells. Recompute robustly:
            let covered = used
                .iter()
                .map(|&c| (c + n - best_start) % n)
                .max()
                .unwrap();
            extent[axis] = covered + 1;
        }
    }
    (origin, extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftt_geom::{Shape, TileGrid};

    /// 10×10 tile grid over 40×40 nodes (tile side 4).
    fn grid() -> TileGrid {
        TileGrid::uniform(Shape::new(vec![40, 40]), 4)
    }

    fn faults_at(grid: &TileGrid, tiles: &[usize]) -> Vec<u32> {
        let mut f = vec![0u32; grid.num_tiles()];
        for &t in tiles {
            f[t] = 1;
        }
        f
    }

    #[test]
    fn no_faults_all_white() {
        let g = grid();
        let p = paint(&g, &vec![0; g.num_tiles()], 2).unwrap();
        assert!(p.color.iter().all(|&c| c == TileColor::White));
        assert!(p.regions.is_empty());
    }

    #[test]
    fn single_fault_single_region() {
        let g = grid();
        let center = g.grid_shape().flatten(&[5, 5]);
        let p = paint(&g, &faults_at(&g, &[center]), 2).unwrap();
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.color[center], TileColor::Black);
        assert_eq!(p.regions[0].tiles, vec![center]);
        assert_eq!(p.regions[0].extent, vec![1, 1]);
        assert_eq!(p.region_of[center], 0);
        // shell is white
        for t in g.frame(center, 1).unwrap().shell_tiles() {
            assert_eq!(p.color[t], TileColor::White);
        }
    }

    #[test]
    fn adjacent_faulty_tiles_need_radius_two() {
        let g = grid();
        let a = g.grid_shape().flatten(&[5, 5]);
        let b = g.grid_shape().flatten(&[5, 6]);
        let f = faults_at(&g, &[a, b]);
        // radius 1 frame around `a` has `b` on its shell → dirty; radius 2
        // encloses both.
        assert!(paint(&g, &f, 1).is_err());
        let p = paint(&g, &f, 2).unwrap();
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.color[a], TileColor::Black);
        assert_eq!(p.color[b], TileColor::Black);
        let r = &p.regions[0];
        assert!(r.tiles.contains(&a) && r.tiles.contains(&b));
        assert!(r.extent.iter().all(|&e| e <= 3));
    }

    #[test]
    fn far_apart_faults_separate_regions() {
        let g = grid();
        let a = g.grid_shape().flatten(&[2, 2]);
        let b = g.grid_shape().flatten(&[7, 7]);
        let p = paint(&g, &faults_at(&g, &[a, b]), 2).unwrap();
        assert_eq!(p.regions.len(), 2);
        assert_ne!(p.region_of[a], p.region_of[b]);
    }

    #[test]
    fn region_bounding_box_wraps_seam() {
        let g = grid();
        // faults in tiles (9, 4) and (0, 4): vertically adjacent across the
        // wrap; radius-2 frame centred at (9,4) or (0,4) encloses both.
        let a = g.grid_shape().flatten(&[9, 4]);
        let b = g.grid_shape().flatten(&[0, 4]);
        let p = paint(&g, &faults_at(&g, &[a, b]), 2).unwrap();
        assert_eq!(p.regions.len(), 1);
        let r = &p.regions[0];
        // Tile (0,4) is processed first; its radius-2 frame paints the 3×3
        // interior rows {9,0,1} × cols {3,4,5} black. The cyclic bounding
        // box must wrap the seam: origin row 9, extent 3.
        assert!(r.tiles.contains(&a) && r.tiles.contains(&b));
        assert_eq!(r.extent, vec![3, 3]);
        assert_eq!(r.origin[0], 9);
    }

    #[test]
    fn faulty_tiles_never_white() {
        let g = grid();
        let tiles: Vec<usize> = vec![3, 17, 44, 91];
        let p = paint(&g, &faults_at(&g, &tiles), 2).unwrap();
        for t in tiles {
            assert_eq!(
                p.color[t],
                TileColor::Black,
                "faulty tile {t} painted white"
            );
        }
    }

    #[test]
    fn unpaintable_cluster_errors() {
        let g = grid();
        // a 5-tile plus-shape cluster: radius-1 shell around the centre is
        // dirty, radius-2 shell around an arm tile is dirty too if arms are
        // long; build a full 5×5 block of faulty tiles so no radius ≤ 2
        // frame around any of them is clean.
        let mut tiles = Vec::new();
        for r in 0..5 {
            for c in 0..5 {
                tiles.push(g.grid_shape().flatten(&[2 + r, 2 + c]));
            }
        }
        assert!(matches!(
            paint(&g, &faults_at(&g, &tiles), 2),
            Err(PlacementError::NoCleanFrame { .. })
        ));
    }

    #[test]
    fn bounding_box_single_column() {
        let gs = Shape::new(vec![10, 10]);
        let tiles = vec![
            gs.flatten(&[3, 4]),
            gs.flatten(&[4, 4]),
            gs.flatten(&[5, 4]),
        ];
        let (origin, extent) = cyclic_bounding_box(&gs, &tiles);
        assert_eq!(origin, vec![3, 4]);
        assert_eq!(extent, vec![3, 1]);
    }
}
