//! Straight band-segment placement inside black regions (proof of
//! Lemma 5, step 2).
//!
//! For each black region we must choose, per tile row it spans, exactly
//! `ε_b` straight segments (constant over the region's columns, masking
//! `b` consecutive rows each) such that (a) every faulty row of the
//! region is covered, and (b) all the region's segments are mutually
//! untouching (start gaps ≥ `b+1`).
//!
//! The paper proves existence with a cyclic pigeonhole over row classes
//! mod `b+1`; we *compute* a placement exactly, with a small dynamic
//! program over consecutive fault groups, falling back to the paper's
//! own slot-aligned pigeonhole placement (also implemented, see
//! [`place_region_segments_pigeonhole`]) — so the default strategy
//! succeeds on a strict superset of the instances the paper's proof
//! covers (asserted by tests). The per-tile-row quota is the paper's
//! "each tile has exactly `εb` band segments".

use crate::error::PlacementError;

/// Segments chosen for one region, grouped by the relative tile row
/// (0 = the region's lowest tile row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSegments {
    /// `rows[r]` = sorted relative start rows (within the region's
    /// bounding box) of the `ε_b` segments whose bottom lies in relative
    /// tile row `r`.
    pub rows: Vec<Vec<usize>>,
}

impl RegionSegments {
    /// All segment starts (relative to the region box), ascending.
    pub fn all_starts(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.rows.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Places segments for one region.
///
/// * `fault_rows` — relative rows (within the region's box) containing at
///   least one fault; need not be sorted or unique.
/// * `num_tile_rows` — vertical extent of the region box in tile rows.
/// * `tile_side` — `b²`.
/// * `b` — band width.
/// * `eps_b` — segments per tile row (quota).
/// * `region` — region id for error reporting.
///
/// Coverage is solved exactly: faulty rows are partitioned into
/// consecutive groups (each of span < `b`, one segment per group) by a
/// dynamic program that keeps, per prefix, the Pareto-optimal
/// (segment count, last start) states — neither "lowest start" nor
/// "highest start" greedy is optimal on its own (e.g. faults `{3,4}`
/// need a middle start; faults `{3,7}` need a low one). Each Pareto
/// candidate is then pushed through the per-tile-row quota/padding; the
/// paper's slot-aligned pigeonhole placement is the final fallback, so
/// this routine succeeds on a superset of the paper's instances.
pub fn place_region_segments(
    fault_rows: &[usize],
    num_tile_rows: usize,
    tile_side: usize,
    b: usize,
    eps_b: usize,
    region: usize,
) -> Result<RegionSegments, PlacementError> {
    let height = num_tile_rows * tile_side;
    let mut rows: Vec<usize> = fault_rows.to_vec();
    rows.sort_unstable();
    rows.dedup();
    debug_assert!(
        rows.iter().all(|&r| r < height),
        "fault row outside region box"
    );
    let q = rows;
    let t = q.len();
    if t == 0 {
        return finalize_segments(Vec::new(), num_tile_rows, tile_side, b, eps_b, region);
    }

    // DP over fault prefixes. State after covering q[0..=i]: list of
    // Pareto-optimal (segments used, start of last segment), with a
    // backpointer (group start index k, previous state index).
    #[derive(Clone, Copy)]
    struct State {
        segs: u32,
        last_start: usize,
        /// group covered by the last segment begins at fault index k
        k: usize,
        /// index of the predecessor state in `pareto[k-1]`
        prev: usize,
    }
    let mut pareto: Vec<Vec<State>> = vec![Vec::new(); t];
    let mut first_uncoverable: Option<usize> = None;
    for i in 0..t {
        let mut cands: Vec<State> = Vec::new();
        for k in (0..=i).rev() {
            if q[i] - q[k] > b - 1 {
                break; // group span too wide for one segment
            }
            let min_by_cover = q[i].saturating_sub(b - 1);
            if k == 0 {
                let s = min_by_cover;
                if s <= q[k] {
                    cands.push(State {
                        segs: 1,
                        last_start: s,
                        k,
                        prev: usize::MAX,
                    });
                }
            } else {
                for (pi, p) in pareto[k - 1].iter().enumerate() {
                    let s = min_by_cover.max(p.last_start + b + 1);
                    if s <= q[k] {
                        cands.push(State {
                            segs: p.segs + 1,
                            last_start: s,
                            k,
                            prev: pi,
                        });
                    }
                }
            }
        }
        // Pareto filter: keep minimal last_start per segment count.
        cands.sort_by_key(|s| (s.segs, s.last_start));
        let mut kept: Vec<State> = Vec::new();
        for c in cands {
            if kept.last().map(|l| l.segs) != Some(c.segs) {
                kept.push(c);
            }
        }
        if kept.is_empty() && first_uncoverable.is_none() {
            first_uncoverable = Some(q[i]);
        }
        pareto[i] = kept;
    }

    // Try each final Pareto state (fewest segments first) through the
    // quota/padding stage.
    let finals = pareto[t - 1].clone();
    let mut last_err: Option<PlacementError> = None;
    for state in &finals {
        // reconstruct starts
        let mut starts = Vec::with_capacity(state.segs as usize);
        let mut cur = *state;
        loop {
            starts.push(cur.last_start);
            if cur.k == 0 {
                break;
            }
            cur = pareto[cur.k - 1][cur.prev];
        }
        starts.reverse();
        match finalize_segments(starts, num_tile_rows, tile_side, b, eps_b, region) {
            Ok(seg) => return Ok(seg),
            Err(e) => last_err = Some(e),
        }
    }
    // Fallback: the paper's slot-aligned placement (different row
    // assignment can satisfy the quota where the DP's left-packed
    // starts do not).
    match place_region_segments_pigeonhole(&q, num_tile_rows, tile_side, b, eps_b, region) {
        Ok(seg) => Ok(seg),
        Err(pigeon_err) => Err(last_err.unwrap_or(match first_uncoverable {
            Some(rel_row) => PlacementError::UncoverableFaultRow { region, rel_row },
            None => pigeon_err,
        })),
    }
}

/// The paper's original placement: block decomposition + cyclic row
/// classes mod `b+1` (proof of Lemma 5, step 1 verbatim).
///
/// Blocks are maximal fault clusters separated by at least `2b` clean
/// rows; within a block, an anchor class `i` with no faults is found by
/// pigeonhole and segments sit in the slots between anchors. This
/// variant exists for fidelity and ablation: the greedy
/// [`place_region_segments`] succeeds on a superset of its instances
/// (asserted by tests).
pub fn place_region_segments_pigeonhole(
    fault_rows: &[usize],
    num_tile_rows: usize,
    tile_side: usize,
    b: usize,
    eps_b: usize,
    region: usize,
) -> Result<RegionSegments, PlacementError> {
    let height = num_tile_rows * tile_side;
    let mut rows: Vec<usize> = fault_rows.to_vec();
    rows.sort_unstable();
    rows.dedup();
    debug_assert!(rows.iter().all(|&r| r < height));
    let mut starts: Vec<usize> = Vec::new();
    // Block decomposition: split where consecutive faulty rows are ≥ 2b apart.
    let mut blocks: Vec<(usize, usize)> = Vec::new(); // (first fault, last fault)
    for &r in &rows {
        match blocks.last_mut() {
            Some((_, last)) if r - *last < 2 * b => *last = r,
            _ => blocks.push((r, r)),
        }
    }
    for &(lo, hi) in &blocks {
        let block_faults: Vec<usize> = rows
            .iter()
            .filter(|&&r| r >= lo && r <= hi)
            .map(|&r| r - lo)
            .collect();
        // pigeonhole: a class i ∈ [0, b] (rows ≡ i mod b+1, relative to
        // the block) with no faults
        let period = b + 1;
        let mut dirty_class = vec![false; period];
        for &f in &block_faults {
            dirty_class[f % period] = true;
        }
        let Some(class) = (0..period).find(|&c| !dirty_class[c]) else {
            return Err(PlacementError::UncoverableFaultRow {
                region,
                rel_row: lo,
            });
        };
        // slots between anchors; a segment at anchor+1 per dirty slot;
        // the partial slot below the first anchor is covered by a
        // segment ending just under it (extends into the clean margin)
        let mut bottom_dirty = false;
        let mut slot_dirty = std::collections::BTreeSet::new();
        for &f in &block_faults {
            if f < class {
                bottom_dirty = true;
            } else {
                slot_dirty.insert((f - class) / period);
            }
        }
        if bottom_dirty {
            let Some(s) = (lo + class).checked_sub(b) else {
                return Err(PlacementError::UncoverableFaultRow {
                    region,
                    rel_row: lo,
                });
            };
            starts.push(s);
        }
        for slot in slot_dirty {
            starts.push(lo + class + 1 + slot * period);
        }
    }
    starts.sort_unstable();
    // the block margins guarantee separation between blocks; within a
    // block slots are b+1 apart — but the bottom-margin segment of one
    // block could clash with the previous block's top segment only if
    // the blocks were < 2b apart, excluded by maximality. Validate anyway.
    for w in starts.windows(2) {
        if w[1] - w[0] < b + 1 {
            return Err(PlacementError::UncoverableFaultRow {
                region,
                rel_row: w[1],
            });
        }
    }
    finalize_segments(starts, num_tile_rows, tile_side, b, eps_b, region)
}

/// Shared tail of both placement strategies: per-tile-row quota check
/// and padding up to exactly `ε_b` segments per row.
fn finalize_segments(
    starts: Vec<usize>,
    num_tile_rows: usize,
    tile_side: usize,
    b: usize,
    eps_b: usize,
    region: usize,
) -> Result<RegionSegments, PlacementError> {
    // Per-tile-row quota check.
    let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); num_tile_rows];
    for &s in &starts {
        per_row[s / tile_side].push(s);
    }
    for (tr, row_starts) in per_row.iter().enumerate() {
        if row_starts.len() > eps_b {
            return Err(PlacementError::SegmentQuotaExceeded {
                region,
                tile_row: tr,
                needed: row_starts.len(),
                quota: eps_b,
            });
        }
    }

    // Pad each tile row up to exactly ε_b segments, keeping all region
    // segments mutually separated by ≥ b+1.
    let mut all: Vec<usize> = starts.clone();
    for tr in 0..num_tile_rows {
        while per_row[tr].len() < eps_b {
            let lo = tr * tile_side;
            let hi = lo + tile_side; // starts must lie within the tile row
            let mut placed = None;
            for cand in lo..hi {
                let ok = match all.binary_search(&cand) {
                    Ok(_) => false,
                    Err(pos) => {
                        let left_ok = pos == 0 || cand - all[pos - 1] > b;
                        let right_ok = pos == all.len() || all[pos] - cand > b;
                        left_ok && right_ok
                    }
                };
                if ok {
                    placed = Some(cand);
                    break;
                }
            }
            let Some(cand) = placed else {
                return Err(PlacementError::PaddingFailed {
                    region,
                    tile_row: tr,
                });
            };
            let pos = all.binary_search(&cand).unwrap_err();
            all.insert(pos, cand);
            per_row[tr].push(cand);
        }
        per_row[tr].sort_unstable();
    }
    Ok(RegionSegments { rows: per_row })
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: usize = 4;
    const T: usize = 16; // b²
    const EPS: usize = 2;

    fn place(faults: &[usize], rows: usize) -> Result<RegionSegments, PlacementError> {
        place_region_segments(faults, rows, T, B, EPS, 0)
    }

    /// Checks the invariants every placement must satisfy.
    fn check(seg: &RegionSegments, faults: &[usize], rows: usize) {
        // quota
        assert_eq!(seg.rows.len(), rows);
        for (tr, s) in seg.rows.iter().enumerate() {
            assert_eq!(s.len(), EPS, "tile row {tr} quota");
            for &x in s {
                assert!(x >= tr * T && x < (tr + 1) * T, "start in its tile row");
            }
        }
        // separation
        let all = seg.all_starts();
        for w in all.windows(2) {
            assert!(w[1] - w[0] > B, "separation {w:?}");
        }
        // coverage
        for &f in faults {
            assert!(
                all.iter().any(|&s| f >= s && f < s + B),
                "fault row {f} uncovered"
            );
        }
    }

    #[test]
    fn no_faults_pads_quota() {
        let seg = place(&[], 1).unwrap();
        check(&seg, &[], 1);
    }

    #[test]
    fn single_fault_covered() {
        for f in 0..T {
            let seg = place(&[f], 1).unwrap();
            check(&seg, &[f], 1);
        }
    }

    #[test]
    fn fault_at_row_zero() {
        // Segment cannot start below 0; must start exactly at 0.
        let seg = place(&[0], 1).unwrap();
        check(&seg, &[0], 1);
        assert!(seg.all_starts().contains(&0));
    }

    #[test]
    fn two_close_faults_one_segment() {
        let seg = place(&[5, 7], 1).unwrap();
        check(&seg, &[5, 7], 1);
    }

    #[test]
    fn spread_faults_multiple_segments() {
        let seg = place(&[0, 10], 1).unwrap();
        check(&seg, &[0, 10], 1);
        assert!(seg.rows[0].len() == EPS);
    }

    #[test]
    fn multi_tile_row_region() {
        let faults = vec![3, 20, 40];
        let seg = place(&faults, 3).unwrap();
        check(&seg, &faults, 3);
    }

    #[test]
    fn dense_faults_fail_quota_or_cover() {
        // every row faulty in a single tile row: needs ≥ T/(b+1) ≈ 3 > ε_b
        // segments (or becomes uncoverable) → must error.
        let faults: Vec<usize> = (0..T).collect();
        assert!(place(&faults, 1).is_err());
    }

    #[test]
    fn uncoverable_reports_row() {
        // faults at 0 and 4: segment 1 covers [0,4), next must start ≥ 5
        // but needs to cover row 4 → start ≤ 4 → uncoverable.
        let err = place(&[0, 4], 1).unwrap_err();
        assert!(
            matches!(err, PlacementError::UncoverableFaultRow { rel_row: 4, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn coverable_gap_succeeds() {
        // faults at 0 and 5: second segment starts at 5, covers [5,9) ✓.
        let seg = place(&[0, 5], 1).unwrap();
        check(&seg, &[0, 5], 1);
    }

    #[test]
    fn padding_respects_cross_row_separation() {
        // A mandatory segment near a tile-row boundary must constrain the
        // padding of the next row.
        let faults = vec![15]; // forces a segment starting at 12..=15
        let seg = place(&faults, 2).unwrap();
        check(&seg, &faults, 2);
    }

    #[test]
    fn eps_one_strict_quota() {
        let seg = place_region_segments(&[2], 2, T, B, 1, 0).unwrap();
        assert_eq!(seg.rows[0].len(), 1);
        assert_eq!(seg.rows[1].len(), 1);
        let all = seg.all_starts();
        assert!(all.windows(2).all(|w| w[1] - w[0] > B));
    }

    #[test]
    fn three_faults_exceed_quota() {
        // three far-apart faulty rows in one tile row with ε_b = 2
        let err = place(&[0, 6, 12], 1).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::SegmentQuotaExceeded { needed: 3, .. }
        ));
    }

    #[test]
    fn pigeonhole_variant_covers_and_separates() {
        for faults in [
            vec![],
            vec![7usize],
            vec![5, 7],
            vec![20, 40],
            vec![3, 20, 40],
        ] {
            let rows = 3;
            // pigeonhole may fail where the DP succeeds; only successes
            // must satisfy the invariants
            if let Ok(seg) = place_region_segments_pigeonhole(&faults, rows, T, B, EPS, 0) {
                check(&seg, &faults, rows);
            }
        }
    }

    #[test]
    fn greedy_dominates_pigeonhole() {
        // Exhaustively: every 2-fault pattern in a 2-tile-row region.
        // Whenever the paper's pigeonhole method succeeds, greedy must
        // succeed too (exchange argument made executable).
        let rows = 2;
        for f1 in 0..2 * T {
            for f2 in f1..2 * T {
                let faults = vec![f1, f2];
                let pigeon = place_region_segments_pigeonhole(&faults, rows, T, B, EPS, 0);
                let greedy = place_region_segments(&faults, rows, T, B, EPS, 0);
                if let Ok(seg) = &pigeon {
                    check(seg, &faults, rows);
                    assert!(
                        greedy.is_ok(),
                        "greedy failed where pigeonhole succeeded: {faults:?}"
                    );
                }
                if let Ok(seg) = &greedy {
                    check(seg, &faults, rows);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_blocks_are_separated() {
        // two fault clusters ≥ 2b apart form distinct blocks; both covered
        let faults = vec![2usize, 3, 20, 21];
        let seg = place_region_segments_pigeonhole(&faults, 2, T, B, EPS, 0).unwrap();
        check(&seg, &faults, 2);
    }
}
