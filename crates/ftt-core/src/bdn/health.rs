//! The healthiness conditions of Section 3 (diagnostic form).
//!
//! A faulty `B^d_n` is *healthy* when:
//!
//! 1. every **brick** (a `1 × b × … × b`-tile slab: `b²` rows tall, `b³`
//!    nodes wide in the column dimensions) contains `2b` consecutive
//!    fault-free rows;
//! 2. every brick contains at most `ε_b` faults (the per-tile-row
//!    segment quota);
//! 3. every faulty node's tile is enclosed by a fault-free `s`-frame
//!    with `s ≤ b` (concentric form — what the painter searches for).
//!
//! Lemma 4 shows a random instance is healthy with probability
//! `1 − n^{−Ω(log log n)}`; Lemma 5 shows healthy instances admit a
//! banding. The placement pipeline does not *require* this report — it
//! fails gracefully on unhealthy inputs — but experiments use it to
//! attribute failures (experiment `ABL-HEALTH`).

use super::place::{max_frame_radius, tile_grid};
use super::BdnParams;
use ftt_geom::Shape;

/// Diagnostic report of the three healthiness conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Bricks missing a `2b` consecutive fault-free row run.
    pub cond1_violations: usize,
    /// Bricks with more than `ε_b` faults.
    pub cond2_violations: usize,
    /// Faulty tiles with no clean concentric frame of radius ≤ max.
    pub cond3_violations: usize,
    /// Total number of bricks examined.
    pub num_bricks: usize,
    /// Total number of faults.
    pub num_faults: usize,
}

impl HealthReport {
    /// Whether all three conditions hold.
    pub fn is_healthy(&self) -> bool {
        self.cond1_violations == 0 && self.cond2_violations == 0 && self.cond3_violations == 0
    }
}

/// Checks the healthiness conditions for the given node faults.
pub fn check_health(params: &BdnParams, faulty: &[bool]) -> HealthReport {
    let t = params.tile_side();
    let (b, m, n, d) = (params.b, params.m(), params.n, params.d);
    assert_eq!(faulty.len(), m * n.pow(d as u32 - 1));
    let grid = tile_grid(params);
    let gs = grid.grid_shape().clone();

    // Brick grid: bricks are 1 tile tall and b tiles wide per column dim.
    let bricks_per_col_dim = (n / t) / b;
    let mut brick_dims = vec![m / t];
    brick_dims.extend(std::iter::repeat_n(bricks_per_col_dim, d - 1));
    let brick_shape = Shape::new(brick_dims);
    let num_bricks = brick_shape.len();

    // Assign each node to its brick and row-within-brick.
    let torus_shape = grid.node_shape().clone();
    let mut brick_fault_count = vec![0u32; num_bricks];
    // fault presence per (brick, row offset in 0..t)
    let mut brick_row_faulty = vec![false; num_bricks * t];
    let mut brick_coord = vec![0usize; d];
    for node in 0..faulty.len() {
        if !faulty[node] {
            continue;
        }
        let i = torus_shape.coord_of(node, 0);
        brick_coord[0] = i / t;
        for a in 1..d {
            brick_coord[a] = torus_shape.coord_of(node, a) / (t * b);
        }
        let brick = brick_shape.flatten(&brick_coord);
        brick_fault_count[brick] += 1;
        brick_row_faulty[brick * t + (i % t)] = true;
    }

    // Condition 1: a run of 2b consecutive fault-free rows per brick.
    let mut cond1_violations = 0;
    for brick in 0..num_bricks {
        let rows = &brick_row_faulty[brick * t..(brick + 1) * t];
        let mut best = 0usize;
        let mut run = 0usize;
        for &f in rows {
            if f {
                run = 0;
            } else {
                run += 1;
                best = best.max(run);
            }
        }
        if best < 2 * b {
            cond1_violations += 1;
        }
    }

    // Condition 2: at most ε_b faults per brick.
    let cond2_violations = brick_fault_count
        .iter()
        .filter(|&&c| c as usize > params.eps_b)
        .count();

    // Condition 3: clean concentric frame around every faulty tile.
    let tile_faults = grid.count_per_tile(|v| faulty[v]);
    let rmax = max_frame_radius(params);
    let mut cond3_violations = 0;
    for tile in 0..gs.len() {
        if tile_faults[tile] == 0 {
            continue;
        }
        let ok = (1..=rmax).any(|r| {
            grid.frame(tile, r)
                .map(|f| f.shell_clear(&tile_faults))
                .unwrap_or(false)
        });
        if !ok {
            cond3_violations += 1;
        }
    }

    HealthReport {
        cond1_violations,
        cond2_violations,
        cond3_violations,
        num_bricks,
        num_faults: faulty.iter().filter(|&&f| f).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdn::Bdn;

    fn params() -> BdnParams {
        BdnParams::new(2, 192, 4, 1).unwrap()
    }

    #[test]
    fn fault_free_is_healthy() {
        let p = params();
        let r = check_health(&p, &vec![false; p.num_nodes()]);
        assert!(r.is_healthy());
        assert_eq!(r.num_faults, 0);
        assert_eq!(r.num_bricks, (p.m() / 16) * (p.n / 64));
    }

    #[test]
    fn single_fault_is_healthy() {
        let p = params();
        let bdn = Bdn::build(p);
        let mut f = vec![false; p.num_nodes()];
        f[bdn.cols().node(77, 77)] = true;
        let r = check_health(&p, &f);
        assert!(r.is_healthy(), "{r:?}");
        assert_eq!(r.num_faults, 1);
    }

    #[test]
    fn cond2_detects_overfull_brick() {
        let p = params(); // ε_b = 1
        let bdn = Bdn::build(p);
        let mut f = vec![false; p.num_nodes()];
        // two faults in the same brick (same tile row, columns within b³=64)
        f[bdn.cols().node(3, 10)] = true;
        f[bdn.cols().node(12, 40)] = true;
        let r = check_health(&p, &f);
        assert!(r.cond2_violations >= 1, "{r:?}");
    }

    #[test]
    fn cond1_detects_dense_rows() {
        let p = params();
        let bdn = Bdn::build(p);
        let mut f = vec![false; p.num_nodes()];
        // faults every 4 rows in one brick: no 8 consecutive clean rows
        for i in (0..16).step_by(4) {
            f[bdn.cols().node(i, 5)] = true;
        }
        let r = check_health(&p, &f);
        assert!(r.cond1_violations >= 1, "{r:?}");
    }

    #[test]
    fn cond3_detects_adjacent_faulty_tiles() {
        let p = params();
        let bdn = Bdn::build(p);
        let mut f = vec![false; p.num_nodes()];
        // faults in two adjacent tiles: radius-1 shells are dirty and
        // rmax = 1 for b = 4
        f[bdn.cols().node(8, 8)] = true;
        f[bdn.cols().node(8, 24)] = true;
        let r = check_health(&p, &f);
        assert!(r.cond3_violations >= 1, "{r:?}");
    }

    #[test]
    fn healthy_iff_placement_succeeds_on_examples() {
        // Healthiness is sufficient (not necessary) for placement; check
        // the implication on a few instances.
        let p = params();
        let bdn = Bdn::build(p);
        let cases: Vec<Vec<(usize, usize)>> = vec![
            vec![],
            vec![(100, 100)],
            vec![(5, 5), (100, 100), (200, 30)],
        ];
        for case in cases {
            let mut f = vec![false; p.num_nodes()];
            for &(i, z) in &case {
                f[bdn.cols().node(i, z)] = true;
            }
            let r = check_health(&p, &f);
            if r.is_healthy() {
                crate::bdn::place::place_bands(&bdn, &f)
                    .expect("healthy instance must admit a placement");
            }
        }
    }
}
