//! End-to-end band placement for `B^d_n` (proof of Lemma 5, assembled).
//!
//! Pipeline: per-tile fault counts → painting (frames) → per-region
//! straight segments (greedy pigeonhole) → corner-value assembly →
//! multilinear interpolation → a validated [`Banding`] masking every
//! fault.

use super::interpolate::{interpolate_band_into, interpolate_bands, CornerValues};
use super::paint::{paint, Painting, Region, TileColor};
use super::segments::place_region_segments;
use super::{Bdn, BdnParams};
use crate::band::Banding;
use crate::error::PlacementError;
use ftt_geom::{CyclicRing, Shape, TileGrid};

/// Result of a successful placement, including diagnostics.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The masking bands.
    pub banding: Banding,
    /// Number of black regions the faults were grouped into.
    pub num_regions: usize,
    /// Number of black tiles.
    pub num_black_tiles: usize,
}

/// Every intermediate of the placement pipeline, kept alive so an
/// online arrival can be absorbed by recomputing only what it dirtied
/// ([`repaint_tile_local`]): per-tile fault counts, the painting, each
/// region's placed segment rows, the corner-value table, and the
/// banding itself. A cache built by [`place_bands_cached`] is always
/// *exactly* the batch pipeline's output for its fault set — repaint
/// preserves that equality (debug builds assert it).
#[derive(Debug, Clone)]
pub struct PlacementCache {
    grid: TileGrid,
    tile_faults: Vec<u32>,
    painting: Painting,
    /// Per region: (absolute tile row, sorted absolute segment starts).
    region_rows: Vec<Vec<(usize, Vec<usize>)>>,
    corner_values: CornerValues,
    banding: Banding,
    num_black_tiles: usize,
    // Repaint scratch, reused across arrivals (contents meaningless
    // between calls; cloned empty).
    scratch_row: Vec<usize>,
    fault_rows: Vec<usize>,
    changed_rows: Vec<usize>,
    changed_cols: Vec<usize>,
    gap_buf: Vec<usize>,
}

impl PlacementCache {
    /// The masking bands (batch-identical for the cache's fault set).
    #[inline]
    pub fn banding(&self) -> &Banding {
        &self.banding
    }

    /// Number of black regions.
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.painting.regions.len()
    }

    /// Number of black tiles.
    #[inline]
    pub fn num_black_tiles(&self) -> usize {
        self.num_black_tiles
    }

    /// Restores this cache to `other`'s placement without reallocating
    /// the large buffers — the repair engine resets to a memoised
    /// fault-free placement once per lifetime trial, so this path must
    /// stay cheap. Both caches must come from the same `Bdn` instance.
    pub fn restore_from(&mut self, other: &PlacementCache) {
        debug_assert_eq!(self.tile_faults.len(), other.tile_faults.len());
        self.tile_faults.copy_from_slice(&other.tile_faults);
        self.painting.color.copy_from_slice(&other.painting.color);
        self.painting
            .region_of
            .copy_from_slice(&other.painting.region_of);
        self.painting.regions.clone_from(&other.painting.regions);
        self.region_rows.clone_from(&other.region_rows);
        self.corner_values.clone_from(&other.corner_values);
        self.banding.copy_starts_from(&other.banding);
        self.num_black_tiles = other.num_black_tiles;
    }
}

/// Outcome of a successful [`repaint_tile_local`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepaintOutcome {
    /// Cache updated; the banding is byte-identical to before (the
    /// dirtied region re-placed to the same segments, or interpolation
    /// floored the move away).
    Unchanged,
    /// Cache and banding updated in place with work bounded by the
    /// dirtied region's rows and columns.
    Updated,
    /// The arrival's effect is not provably tile-local (a fresh faulty
    /// tile within reach of existing frames can reshape the painting);
    /// the caller must re-place from scratch. The cache is left
    /// unusable until rebuilt.
    NeedsFullPlacement,
}

/// The tile grid of a `B^d_n` instance (tiles of side `b²` in every
/// dimension of the `m × n × … × n` torus).
pub fn tile_grid(params: &BdnParams) -> TileGrid {
    let mut dims = vec![params.m()];
    dims.extend(std::iter::repeat_n(params.n, params.d - 1));
    TileGrid::uniform(Shape::new(dims), params.tile_side())
}

/// The largest frame radius the painting procedure may use:
/// `s = 2r+1 ≤ b`, and the frame must fit the tile grid.
pub fn max_frame_radius(params: &BdnParams) -> usize {
    let grid_min = params.num_tile_rows().min(params.n / params.tile_side());
    ((params.b - 1) / 2).min((grid_min - 1) / 2).max(1)
}

/// Places masking bands for the given node faults (`faulty[node]`).
///
/// Convenience wrapper over [`place_bands_for_ids`] for callers holding
/// a dense bitmap; costs one `O(N)` scan to gather the fault list.
pub fn place_bands(bdn: &Bdn, faulty: &[bool]) -> Result<Placement, PlacementError> {
    assert_eq!(faulty.len(), bdn.cols().len(), "fault bitmap size mismatch");
    let ids: Vec<usize> = faulty
        .iter()
        .enumerate()
        .filter_map(|(v, &f)| f.then_some(v))
        .collect();
    place_bands_for_ids(bdn, &ids)
}

/// Places masking bands for the given faulty node ids (duplicate-free).
///
/// This is the Monte-Carlo hot path: every fault-driven step is
/// `O(#faults)` — per-tile counts, region fault gathering, and the
/// masks-all audit walk the id list, never the whole host.
///
/// On success the returned banding is validated: slope ≤ 1, mutually
/// untouching, masks every fault, and leaves exactly `n` unmasked rows
/// per column.
pub fn place_bands_for_ids(bdn: &Bdn, faulty_ids: &[usize]) -> Result<Placement, PlacementError> {
    let cache = place_bands_cached(bdn, faulty_ids)?;
    Ok(Placement {
        num_regions: cache.num_regions(),
        num_black_tiles: cache.num_black_tiles,
        banding: cache.banding,
    })
}

/// [`place_bands_for_ids`], but returning the full [`PlacementCache`]
/// so subsequent arrivals can be absorbed by [`repaint_tile_local`].
/// Identical pipeline, identical results, identical errors.
pub fn place_bands_cached(
    bdn: &Bdn,
    faulty_ids: &[usize],
) -> Result<PlacementCache, PlacementError> {
    let params = *bdn.params();
    let cols = bdn.cols();
    let t = params.tile_side();
    let (b, eps_b, m) = (params.b, params.eps_b, params.m());
    let grid = tile_grid(&params);
    let mut tile_faults = vec![0u32; grid.num_tiles()];
    for &node in faulty_ids {
        debug_assert!(node < cols.len(), "faulty node {node} out of range");
        tile_faults[grid.tile_of_node(node)] += 1;
    }

    // 1. Paint.
    let painting = paint(&grid, &tile_faults, max_frame_radius(&params))?;

    // 2. Per-region straight segments.
    let num_tile_rows = params.num_tile_rows();
    // region → (absolute tile row → sorted segment starts, absolute rows)
    let mut region_rows: Vec<Vec<(usize, Vec<usize>)>> = Vec::with_capacity(painting.regions.len());
    {
        // gather fault rel-rows per region
        let mut region_fault_rows: Vec<Vec<usize>> = vec![Vec::new(); painting.regions.len()];
        for &node in faulty_ids {
            let tile = grid.tile_of_node(node);
            let rid = painting.region_of[tile];
            debug_assert_ne!(rid, u32::MAX, "faulty node in white tile");
            let region = &painting.regions[rid as usize];
            let (i, _z) = cols.split(node);
            let a = region.origin[0] * t;
            let rel = (i + m - a) % m;
            debug_assert!(rel < region.extent[0] * t, "fault outside region box");
            region_fault_rows[rid as usize].push(rel);
        }
        for (rid, region) in painting.regions.iter().enumerate() {
            let segs =
                place_region_segments(&region_fault_rows[rid], region.extent[0], t, b, eps_b, rid)?;
            let mut rows = Vec::with_capacity(region.extent[0]);
            for (rel_row, starts) in segs.rows.iter().enumerate() {
                let abs_row = (region.origin[0] + rel_row) % num_tile_rows;
                let abs_starts: Vec<usize> = starts
                    .iter()
                    .map(|&s| (region.origin[0] * t + s) % m)
                    .collect();
                debug_assert!(abs_starts.iter().all(|&s| s / t == abs_row,));
                rows.push((abs_row, abs_starts));
            }
            region_rows.push(rows);
        }
    }

    // 3. Corner values.
    let corner_values = assemble_corner_values(&params, &grid, &painting, &region_rows)?;

    // 4. Interpolate.
    let col_shape = cols.column_shape();
    let banding = interpolate_bands(&corner_values, col_shape, t, m, b);

    // 5. Validate all banding invariants.
    banding.validate(cols)?;
    banding.masks_all(faulty_ids.iter().map(|&v| cols.split(v)))?;
    // Lemma 6 arithmetic: validate() established that the bands are
    // mutually untouching, so every column masks exactly num_bands · b
    // distinct rows — the per-column unmasked count is m − num_bands · b
    // everywhere, checked once instead of with an O(columns · m) sweep.
    let unmasked = m - banding.num_bands() * b;
    if unmasked != params.n {
        return Err(PlacementError::InvalidBanding {
            reason: format!(
                "{} bands of width {b} leave {unmasked} unmasked rows per column, expected {}",
                banding.num_bands(),
                params.n
            ),
        });
    }
    let num_black_tiles = painting.regions.iter().map(|r| r.tiles.len()).sum();
    Ok(PlacementCache {
        grid,
        tile_faults,
        painting,
        region_rows,
        corner_values,
        banding,
        num_black_tiles,
        scratch_row: Vec::new(),
        fault_rows: Vec::new(),
        changed_rows: Vec::new(),
        changed_cols: Vec::new(),
        gap_buf: Vec::new(),
    })
}

/// Absorbs one fresh node fault into a [`PlacementCache`] with
/// tile-local work, preserving exact batch parity: on `Ok(Unchanged)` /
/// `Ok(Updated)` the cache equals what [`place_bands_cached`] would
/// build for `faulty_ids` from scratch (up to region numbering, which
/// the banding does not observe); on `Err` the batch pipeline fails on
/// the same fault set too.
///
/// `new_node` must already be counted in `faulty_ids` (the accumulated
/// duplicate-free fault list, one entry per ascribed node).
///
/// The local cases:
///
/// * the fault lands in an **already-faulty tile** — `paint` reads tile
///   fault counts only as zero/non-zero, so the painting is unchanged
///   and only the owning region's segments can move;
/// * the fault lands in a fresh tile **isolated** from every other
///   faulty tile — far enough that no existing frame search can see it
///   and its own concentric radius-1 frame has a clean shell, so the
///   batch painting is exactly the cached painting plus this one tile
///   painted black (its white shell repaint is a no-op).
///
/// Anything else returns [`RepaintOutcome::NeedsFullPlacement`].
pub fn repaint_tile_local(
    bdn: &Bdn,
    cache: &mut PlacementCache,
    new_node: usize,
    faulty_ids: &[usize],
) -> Result<RepaintOutcome, PlacementError> {
    let params = *bdn.params();
    debug_assert!(faulty_ids.contains(&new_node));

    let tile = cache.grid.tile_of_node(new_node);
    let was_faulty = cache.tile_faults[tile] > 0;
    cache.tile_faults[tile] += 1;

    let rid = if was_faulty {
        cache.painting.region_of[tile] as usize
    } else {
        // Fresh faulty tile: local only when it is provably out of
        // reach of every existing frame. A frame for fault tile `U`
        // has its center within `r_max − 1` of `U` and radius at most
        // `r_max`, so its shell and interior stay within `2·r_max − 1`
        // of `U`. With clearance `2·r_max` this tile is unpainted in
        // the cache and no existing frame search changes; at
        // `r_max ≥ 2` one extra tile of clearance keeps this tile's
        // own radius-1 shell clear of other regions' black tiles,
        // whose white-override would otherwise make the batch painting
        // order-dependent (at `r_max = 1` black tiles are exactly the
        // faulty tiles, so `2·r_max` already guarantees that).
        let r_max = max_frame_radius(&params);
        let min_clear = if r_max == 1 { 2 } else { 2 * r_max + 1 };
        let isolated = faulty_ids.iter().all(|&v| {
            let tv = cache.grid.tile_of_node(v);
            tv == tile || cache.grid.tile_chebyshev(tile, tv) >= min_clear
        });
        if !isolated {
            return Ok(RepaintOutcome::NeedsFullPlacement);
        }
        debug_assert_eq!(cache.painting.color[tile], TileColor::White);
        cache.painting.color[tile] = TileColor::Black;
        let rid = cache.painting.regions.len();
        cache.painting.region_of[tile] = rid as u32;
        let gs = cache.grid.grid_shape();
        let origin = gs.unflatten(tile);
        let extent = vec![1; gs.ndim()];
        cache.painting.regions.push(Region {
            tiles: vec![tile],
            origin,
            extent,
        });
        cache.region_rows.push(Vec::new());
        cache.num_black_tiles += 1;
        rid
    };

    replace_region_rows(bdn, cache, rid, faulty_ids)?;
    refresh_changed_rows(bdn, cache, faulty_ids)
}

/// Removes one node fault from a [`PlacementCache`] with tile-local
/// work — the repair-path mirror of [`repaint_tile_local`], under the
/// same exact batch-parity contract: on `Ok(Unchanged)` / `Ok(Updated)`
/// the cache equals what [`place_bands_cached`] builds for the reduced
/// `faulty_ids` from scratch.
///
/// `removed_node` must already be gone from `faulty_ids` (the remaining
/// accumulated duplicate-free fault list).
///
/// The local cases mirror the kill path:
///
/// * the tile **keeps other faults** — the zero/non-zero tile pattern
///   is unchanged, so the painting is unchanged and only the owning
///   region's segments can relax;
/// * the tile **empties** and its region is an isolated singleton
///   (exactly this tile, every other faulty tile at least the kill
///   path's clearance away) — the batch painting on the reduced set is
///   exactly the cached painting minus this one black tile, so unpaint
///   it and refresh its rows.
///
/// A multi-tile region or an emptied tile within clearance of other
/// faults returns [`RepaintOutcome::NeedsFullPlacement`].
pub fn repaint_tile_local_remove(
    bdn: &Bdn,
    cache: &mut PlacementCache,
    removed_node: usize,
    faulty_ids: &[usize],
) -> Result<RepaintOutcome, PlacementError> {
    let params = *bdn.params();
    debug_assert!(!faulty_ids.contains(&removed_node));

    let tile = cache.grid.tile_of_node(removed_node);
    debug_assert!(cache.tile_faults[tile] > 0, "removal from a clean tile");
    // Recompute the tile's count from the remaining list instead of
    // decrementing: kill-path pair-duplicates skip the repaint (and its
    // increment) entirely, so the cached count may undercount the
    // batch-built one — only the zero/non-zero boolean is parity-exact,
    // and this scan makes the count exact again.
    let remaining = faulty_ids
        .iter()
        .filter(|&&v| cache.grid.tile_of_node(v) == tile)
        .count() as u32;
    cache.tile_faults[tile] = remaining;
    let rid = cache.painting.region_of[tile];
    debug_assert_ne!(rid, u32::MAX, "faulty tile must be in a region");
    let rid = rid as usize;

    if remaining > 0 {
        // Painting unchanged; the owning region's segments can relax.
        replace_region_rows(bdn, cache, rid, faulty_ids)?;
        return refresh_changed_rows(bdn, cache, faulty_ids);
    }

    // The tile emptied. Local only when the region is an isolated
    // singleton: the reverse of the kill path's fresh-tile argument —
    // with the same clearance no other frame search ever saw this tile,
    // so the batch painting on the reduced set is the cached painting
    // minus exactly this black tile.
    let r_max = max_frame_radius(&params);
    let min_clear = if r_max == 1 { 2 } else { 2 * r_max + 1 };
    let singleton = cache.painting.regions[rid].tiles == [tile];
    let isolated = faulty_ids.iter().all(|&v| {
        let tv = cache.grid.tile_of_node(v);
        cache.grid.tile_chebyshev(tile, tv) >= min_clear
    });
    if !(singleton && isolated) {
        return Ok(RepaintOutcome::NeedsFullPlacement);
    }
    cache.painting.color[tile] = TileColor::White;
    cache.painting.region_of[tile] = u32::MAX;
    cache.painting.regions.swap_remove(rid);
    let removed_rows = cache.region_rows.swap_remove(rid);
    if rid < cache.painting.regions.len() {
        // swap_remove moved the last region into slot `rid`.
        for i in 0..cache.painting.regions[rid].tiles.len() {
            let tv = cache.painting.regions[rid].tiles[i];
            cache.painting.region_of[tv] = rid as u32;
        }
    }
    cache.num_black_tiles -= 1;
    cache.changed_rows.clear();
    cache
        .changed_rows
        .extend(removed_rows.iter().map(|(r, _)| *r));
    refresh_changed_rows(bdn, cache, faulty_ids)
}

/// Re-places region `rid`'s straight segments from its accumulated
/// fault rows and diffs them against the cached ones into
/// `cache.changed_rows`. An error is batch-exact: the batch pipeline
/// reaches the identical `place_region_segments` call for this region
/// and fails the same way.
fn replace_region_rows(
    bdn: &Bdn,
    cache: &mut PlacementCache,
    rid: usize,
    faulty_ids: &[usize],
) -> Result<(), PlacementError> {
    let params = *bdn.params();
    let cols = bdn.cols();
    let t = params.tile_side();
    let (b, eps_b, m) = (params.b, params.eps_b, params.m());
    let num_tile_rows = params.num_tile_rows();
    let (origin0, extent0) = {
        let region = &cache.painting.regions[rid];
        (region.origin[0], region.extent[0])
    };
    cache.fault_rows.clear();
    for &v in faulty_ids {
        let tv = cache.grid.tile_of_node(v);
        if cache.painting.region_of[tv] == rid as u32 {
            let (i, _z) = cols.split(v);
            cache.fault_rows.push((i + m - origin0 * t) % m);
        }
    }
    let segs = place_region_segments(&cache.fault_rows, extent0, t, b, eps_b, rid)?;

    cache.changed_rows.clear();
    let old_rows = std::mem::take(&mut cache.region_rows[rid]);
    let mut new_rows = Vec::with_capacity(extent0);
    for (rel_row, starts) in segs.rows.iter().enumerate() {
        let abs_row = (origin0 + rel_row) % num_tile_rows;
        let abs_starts: Vec<usize> = starts.iter().map(|&s| (origin0 * t + s) % m).collect();
        if !old_rows
            .iter()
            .any(|(r, s)| *r == abs_row && *s == abs_starts)
        {
            cache.changed_rows.push(abs_row);
        }
        new_rows.push((abs_row, abs_starts));
    }
    cache.region_rows[rid] = new_rows;
    Ok(())
}

/// Refreshes the bands of `cache.changed_rows` (corner re-assembly +
/// re-interpolation) and runs the targeted re-validation, asserting
/// batch parity on every success path. Shared tail of
/// [`repaint_tile_local`] and [`repaint_tile_local_remove`].
fn refresh_changed_rows(
    bdn: &Bdn,
    cache: &mut PlacementCache,
    faulty_ids: &[usize],
) -> Result<RepaintOutcome, PlacementError> {
    let params = *bdn.params();
    let cols = bdn.cols();
    let t = params.tile_side();
    let (eps_b, m) = (params.eps_b, params.m());
    let num_tile_rows = params.num_tile_rows();
    if cache.changed_rows.is_empty() {
        debug_assert_batch_parity(bdn, cache, faulty_ids);
        return Ok(RepaintOutcome::Unchanged);
    }

    // Recompute the changed tile rows' corners and re-interpolate only
    // their bands, rewriting the affected start rows in place.
    let col_shape = cols.column_shape();
    cache.changed_cols.clear();
    for idx in 0..cache.changed_rows.len() {
        let big_r = cache.changed_rows[idx];
        assemble_corner_row(
            &params,
            &cache.grid,
            &cache.painting,
            &cache.region_rows,
            big_r,
            &mut cache.corner_values[big_r],
        )?;
        for j in 0..eps_b {
            let band = big_r * eps_b + j;
            cache.scratch_row.resize(cols.num_columns(), 0);
            interpolate_band_into(
                &cache.corner_values[big_r][j],
                col_shape,
                t,
                &mut cache.scratch_row,
            );
            let row = cache.banding.band_mut(band);
            for (z, (&new_s, &old_s)) in cache.scratch_row.iter().zip(row.iter()).enumerate() {
                if new_s != old_s {
                    cache.changed_cols.push(z);
                }
            }
            std::mem::swap(row, &mut cache.scratch_row);
        }
    }
    if cache.changed_cols.is_empty() {
        debug_assert_batch_parity(bdn, cache, faulty_ids);
        return Ok(RepaintOutcome::Unchanged);
    }
    cache.changed_cols.sort_unstable();
    cache.changed_cols.dedup();

    // Targeted re-validation: exactly `Banding::validate`'s checks (plus
    // masks-all), restricted to what can have changed. A slope
    // violation needs a changed endpoint; a touching pair needs a
    // changed column; a fault can lose its mask only if a band of its
    // own or the preceding tile row moved (band footprints spill one
    // row down). Any failure maps to the same `InvalidBanding` the
    // batch pipeline would report.
    let ring = CyclicRing::new(m);
    for &big_r in &cache.changed_rows {
        for j in 0..eps_b {
            let band = big_r * eps_b + j;
            for &z in &cache.changed_cols {
                let s = cache.banding.start(band, z);
                for z2 in cols.adjacent_columns_iter(z) {
                    let off = ring.offset(s, cache.banding.start(band, z2));
                    if off.unsigned_abs() > 1 {
                        return Err(PlacementError::InvalidBanding {
                            reason: format!(
                                "band {band} jumps by {off} between adjacent columns {z} and {z2}"
                            ),
                        });
                    }
                }
            }
        }
    }
    let width = cache.banding.width();
    let num_bands = cache.banding.num_bands();
    for &z in &cache.changed_cols {
        cache.gap_buf.clear();
        cache
            .gap_buf
            .extend((0..num_bands).map(|band| cache.banding.start(band, z)));
        cache.gap_buf.sort_unstable();
        let k = cache.gap_buf.len();
        for i in 0..k {
            let cur = cache.gap_buf[i];
            let next = cache.gap_buf[(i + 1) % k];
            let gap = if k == 1 { m } else { ring.sub(next, cur) };
            if gap < width + 1 {
                return Err(PlacementError::InvalidBanding {
                    reason: format!(
                        "bands touch in column {z}: starts {cur} and {next} (gap {gap}, need ≥ {})",
                        width + 1
                    ),
                });
            }
        }
    }
    for &v in faulty_ids {
        let (i, z) = cols.split(v);
        let row_tile = i / t;
        let touched = cache
            .changed_rows
            .iter()
            .any(|&r| r == row_tile || (r + 1) % num_tile_rows == row_tile);
        if touched && !cache.banding.masks(i, z) {
            return Err(PlacementError::InvalidBanding {
                reason: format!("fault at ({i}, {z}) is unmasked"),
            });
        }
    }
    // Lemma 6 arithmetic is automatic: the band count never changes.
    debug_assert_batch_parity(bdn, cache, faulty_ids);
    Ok(RepaintOutcome::Updated)
}

/// Debug-build cross-check: the repainted cache must equal a
/// from-scratch batch placement on the accumulated fault set.
fn debug_assert_batch_parity(bdn: &Bdn, cache: &PlacementCache, faulty_ids: &[usize]) {
    #[cfg(debug_assertions)]
    {
        let batch = place_bands_for_ids(bdn, faulty_ids)
            .expect("repaint succeeded ⇒ batch placement must succeed");
        assert_eq!(
            cache.banding, batch.banding,
            "tile-local repaint must reproduce the batch banding"
        );
        assert_eq!(cache.num_regions(), batch.num_regions);
        assert_eq!(cache.num_black_tiles, batch.num_black_tiles);
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (bdn, cache, faulty_ids);
    }
}

/// Builds the corner-value table: dictated at corners incident to black
/// tiles, free ladder (`R·b² + b + j(b+1)`) elsewhere.
fn assemble_corner_values(
    params: &BdnParams,
    grid: &TileGrid,
    painting: &Painting,
    region_rows: &[Vec<(usize, Vec<usize>)>],
) -> Result<CornerValues, PlacementError> {
    let eps_b = params.eps_b;
    let num_tile_rows = params.num_tile_rows();
    let gs = grid.grid_shape();
    let cdim = params.d - 1;
    let num_corners: usize = (0..cdim).map(|a| gs.dim(a + 1)).product();
    let mut values: CornerValues = vec![vec![vec![0u64; num_corners]; eps_b]; num_tile_rows];
    for (big_r, row_values) in values.iter_mut().enumerate() {
        assemble_corner_row(params, grid, painting, region_rows, big_r, row_values)?;
    }
    Ok(values)
}

/// Assembles the corner values of one tile row — the per-row body of
/// [`assemble_corner_values`], exposed so the tile-local repaint path
/// can refresh exactly the rows a re-placed region dirtied.
fn assemble_corner_row(
    params: &BdnParams,
    grid: &TileGrid,
    painting: &Painting,
    region_rows: &[Vec<(usize, Vec<usize>)>],
    big_r: usize,
    row_values: &mut [Vec<u64>],
) -> Result<(), PlacementError> {
    let t = params.tile_side();
    let (b, eps_b) = (params.b, params.eps_b);
    let gs = grid.grid_shape();
    let cdim = params.d - 1;
    let col_tile_shape = Shape::new((0..cdim).map(|a| gs.dim(a + 1)).collect());
    let num_corners = col_tile_shape.len();
    debug_assert_eq!(row_values.len(), eps_b);
    // fast lookup: region → abs row → starts
    let lookup = |rid: usize, abs_row: usize| -> Option<&Vec<usize>> {
        region_rows[rid]
            .iter()
            .find(|(r, _)| *r == abs_row)
            .map(|(_, s)| s)
    };
    let mut full_coord = vec![0usize; 1 + cdim];
    let mut coord = vec![0usize; cdim];
    for x in 0..num_corners {
        // incident column tiles: x − δ, δ ∈ {0,1}^{cdim}
        let xc = col_tile_shape.unflatten(x);
        let mut dictated: Option<(usize, usize)> = None; // (region, tile)
        for mask in 0..(1usize << cdim) {
            for a in 0..cdim {
                let n = col_tile_shape.dim(a);
                coord[a] = if mask & (1 << a) != 0 {
                    (xc[a] + n - 1) % n
                } else {
                    xc[a]
                };
            }
            full_coord[0] = big_r;
            full_coord[1..].copy_from_slice(&coord);
            let tile = gs.flatten(&full_coord);
            let rid = painting.region_of[tile];
            if rid != u32::MAX {
                if let Some((prev, _)) = dictated {
                    if prev != rid as usize {
                        return Err(PlacementError::InvalidBanding {
                            reason: format!(
                                "corner ({big_r}, {x}) dictated by two regions {prev} and {rid}"
                            ),
                        });
                    }
                }
                dictated = Some((rid as usize, tile));
            }
        }
        match dictated {
            Some((rid, _)) => {
                let Some(starts) = lookup(rid, big_r) else {
                    return Err(PlacementError::InvalidBanding {
                        reason: format!("region {rid} has no segments for tile row {big_r}"),
                    });
                };
                for j in 0..eps_b {
                    row_values[j][x] = starts[j] as u64;
                }
            }
            None => {
                for j in 0..eps_b {
                    row_values[j][x] = (big_r * t + b + j * (b + 1)) as u64;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bdn() -> Bdn {
        // d = 2, b = 4, ε_b = 1 → n = 192, m = 256: 49 152 nodes.
        Bdn::build(BdnParams::new(2, 192, 4, 1).unwrap())
    }

    #[test]
    fn fault_free_placement() {
        let bdn = small_bdn();
        let faulty = vec![false; bdn.num_nodes()];
        let p = place_bands(&bdn, &faulty).unwrap();
        assert_eq!(p.num_regions, 0);
        assert_eq!(p.banding.num_bands(), bdn.params().num_bands());
    }

    #[test]
    fn single_fault_masked() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        let victim = bdn.cols().node(37, 100);
        faulty[victim] = true;
        let p = place_bands(&bdn, &faulty).unwrap();
        assert_eq!(p.num_regions, 1);
        let (i, z) = bdn.cols().split(victim);
        assert!(p.banding.masks(i, z), "fault not masked");
    }

    #[test]
    fn fault_at_origin_masked() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[0] = true;
        let p = place_bands(&bdn, &faulty).unwrap();
        assert!(p.banding.masks(0, 0));
    }

    #[test]
    fn scattered_faults_masked() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        // faults far apart (different tiles, clean frames)
        let victims = [
            bdn.cols().node(5, 5),
            bdn.cols().node(100, 100),
            bdn.cols().node(200, 30),
            bdn.cols().node(60, 170),
        ];
        for &v in &victims {
            faulty[v] = true;
        }
        let p = place_bands(&bdn, &faulty).unwrap();
        assert_eq!(p.num_regions, 4);
        for &v in &victims {
            let (i, z) = bdn.cols().split(v);
            assert!(p.banding.masks(i, z));
        }
    }

    #[test]
    fn max_radius_computation() {
        let p = BdnParams::new(2, 192, 4, 1).unwrap();
        // b = 4 → (b−1)/2 = 1
        assert_eq!(max_frame_radius(&p), 1);
    }

    #[test]
    fn adjacent_tile_faults_error_with_radius_one() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        // two faults in horizontally adjacent tiles: (row 0 tile) and next
        faulty[bdn.cols().node(8, 8)] = true;
        faulty[bdn.cols().node(8, 24)] = true; // next tile over (tile side 16)
        let err = place_bands(&bdn, &faulty).unwrap_err();
        assert!(
            matches!(err, PlacementError::NoCleanFrame { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn non_concentric_frame_rescues_b5() {
        // b = 5 (tile side 25, max radius 2), three faults: two in
        // diagonal tiles (5,5)/(6,6) and one at (3,5) that dirties the
        // concentric radius-2 shell of (5,5). Only a frame centred off
        // the faulty tile (e.g. at (6,6)) has a clean shell — the
        // paper's "enclosed by *an* s-frame" in action.
        let p = BdnParams::fit(2, 100, 5, 1).unwrap(); // n = 250, m = 625
        let bdn = Bdn::build(p);
        let t = p.tile_side();
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[bdn.cols().node(5 * t + 5, 5 * t + 5)] = true;
        faulty[bdn.cols().node(6 * t + 5, 6 * t + 5)] = true;
        faulty[bdn.cols().node(3 * t + 5, 5 * t + 5)] = true;
        let placement = place_bands(&bdn, &faulty).expect("flexible frames");
        for (i, z) in [
            (5 * t + 5, 5 * t + 5),
            (6 * t + 5, 6 * t + 5),
            (3 * t + 5, 5 * t + 5),
        ] {
            assert!(placement.banding.masks(i, z));
        }
    }

    #[test]
    fn repaint_absorbs_isolated_arrivals() {
        let bdn = small_bdn();
        let mut cache = place_bands_cached(&bdn, &[]).unwrap();
        let mut ids: Vec<usize> = Vec::new();
        let victims = [
            bdn.cols().node(5, 5),
            bdn.cols().node(100, 100),
            bdn.cols().node(200, 30),
            bdn.cols().node(60, 170),
            bdn.cols().node(6, 6), // same tile as the first victim
        ];
        for &v in &victims {
            ids.push(v);
            let out = repaint_tile_local(&bdn, &mut cache, v, &ids).unwrap();
            // debug builds assert full batch parity inside repaint
            assert_ne!(out, RepaintOutcome::NeedsFullPlacement, "victim {v}");
        }
        assert_eq!(cache.num_regions(), 4);
        for &v in &ids {
            let (i, z) = bdn.cols().split(v);
            assert!(cache.banding().masks(i, z));
        }
    }

    #[test]
    fn repaint_demands_full_placement_for_adjacent_tiles() {
        let bdn = small_bdn();
        let v1 = bdn.cols().node(8, 8);
        let v2 = bdn.cols().node(8, 24); // next tile over (tile side 16)
        let mut cache = place_bands_cached(&bdn, &[v1]).unwrap();
        let out = repaint_tile_local(&bdn, &mut cache, v2, &[v1, v2]).unwrap();
        assert_eq!(out, RepaintOutcome::NeedsFullPlacement);
        // ... and the batch pipeline indeed refuses this set, so the
        // fallback reproduces the batch outcome.
        assert!(place_bands_for_ids(&bdn, &[v1, v2]).is_err());
    }

    #[test]
    fn repaint_clearance_threshold_with_radius_two() {
        // b = 5 → r_max = 2: fresh tiles need Chebyshev clearance
        // 2·r_max + 1 = 5; anything closer falls back to full placement
        // even when the batch pipeline would cope.
        let p = BdnParams::fit(2, 100, 5, 1).unwrap();
        let bdn = Bdn::build(p);
        let t = p.tile_side();
        let v1 = bdn.cols().node(5 * t + 5, 5 * t + 5); // tile (5, 5)
        let near = bdn.cols().node(9 * t + 5, 5 * t + 5); // tile (9, 5): distance 4
        let mut cache = place_bands_cached(&bdn, &[v1]).unwrap();
        assert_eq!(
            repaint_tile_local(&bdn, &mut cache, near, &[v1, near]).unwrap(),
            RepaintOutcome::NeedsFullPlacement
        );
        let far = bdn.cols().node(10 * t + 5, 5 * t + 5); // tile (10, 5): distance 5
        let mut cache = place_bands_cached(&bdn, &[v1]).unwrap();
        let out = repaint_tile_local(&bdn, &mut cache, far, &[v1, far]).unwrap();
        assert_ne!(out, RepaintOutcome::NeedsFullPlacement);
    }

    #[test]
    fn repaint_remove_mirrors_the_kill_path() {
        let bdn = small_bdn();
        let mut cache = place_bands_cached(&bdn, &[]).unwrap();
        let a = bdn.cols().node(5, 5);
        let a2 = bdn.cols().node(6, 6); // same tile as `a`
        let c = bdn.cols().node(100, 100);
        let mut ids: Vec<usize> = Vec::new();
        for &v in &[a, a2, c] {
            ids.push(v);
            repaint_tile_local(&bdn, &mut cache, v, &ids).unwrap();
        }
        // Remove a2: its tile keeps `a`, painting unchanged, segments
        // relax (debug builds assert batch parity inside).
        ids.retain(|&v| v != a2);
        let out = repaint_tile_local_remove(&bdn, &mut cache, a2, &ids).unwrap();
        assert_ne!(out, RepaintOutcome::NeedsFullPlacement);
        assert_eq!(cache.num_regions(), 2);
        // Remove a: the tile empties and its isolated singleton region
        // is unpainted.
        ids.retain(|&v| v != a);
        let out = repaint_tile_local_remove(&bdn, &mut cache, a, &ids).unwrap();
        assert_ne!(out, RepaintOutcome::NeedsFullPlacement);
        assert_eq!(cache.num_regions(), 1);
        // Remove c: back to the pristine fault-free placement.
        ids.clear();
        let out = repaint_tile_local_remove(&bdn, &mut cache, c, &ids).unwrap();
        assert_ne!(out, RepaintOutcome::NeedsFullPlacement);
        assert_eq!(cache.num_regions(), 0);
        assert_eq!(cache.num_black_tiles(), 0);
        let pristine = place_bands_cached(&bdn, &[]).unwrap();
        assert_eq!(cache.banding(), pristine.banding());
    }

    #[test]
    fn repaint_remove_demands_full_placement_near_other_faults() {
        // b = 5 → r_max = 2: the emptied tile sits within clearance of
        // the surviving fault (and/or shares a multi-tile region), so
        // the removal is not provably tile-local.
        let p = BdnParams::fit(2, 100, 5, 1).unwrap();
        let bdn = Bdn::build(p);
        let t = p.tile_side();
        let v1 = bdn.cols().node(5 * t + 5, 5 * t + 5);
        let v2 = bdn.cols().node(6 * t + 5, 6 * t + 5);
        let mut cache = place_bands_cached(&bdn, &[v1, v2]).unwrap();
        assert_eq!(
            repaint_tile_local_remove(&bdn, &mut cache, v2, &[v1]).unwrap(),
            RepaintOutcome::NeedsFullPlacement
        );
        // ... and the batch pipeline indeed accepts the reduced set, so
        // the caller's fallback rebuild succeeds.
        assert!(place_bands_for_ids(&bdn, &[v1]).is_ok());
    }

    #[test]
    fn restore_from_recovers_pristine_placement() {
        let bdn = small_bdn();
        let pristine = place_bands_cached(&bdn, &[]).unwrap();
        let mut cache = pristine.clone();
        let v = bdn.cols().node(37, 100);
        repaint_tile_local(&bdn, &mut cache, v, &[v]).unwrap();
        assert_ne!(cache.banding(), pristine.banding());
        cache.restore_from(&pristine);
        assert_eq!(cache.banding(), pristine.banding());
        assert_eq!(cache.num_regions(), 0);
        assert_eq!(cache.num_black_tiles(), 0);
    }

    #[test]
    fn dense_tile_faults_error() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        // every 4th row of one tile faulty: uncoverable / quota exceeded
        for i in (0..16).step_by(4) {
            faulty[bdn.cols().node(32 + i, 64)] = true;
        }
        assert!(place_bands(&bdn, &faulty).is_err());
    }
}
