//! End-to-end band placement for `B^d_n` (proof of Lemma 5, assembled).
//!
//! Pipeline: per-tile fault counts → painting (frames) → per-region
//! straight segments (greedy pigeonhole) → corner-value assembly →
//! multilinear interpolation → a validated [`Banding`] masking every
//! fault.

use super::interpolate::{interpolate_bands, CornerValues};
use super::paint::{paint, Painting};
use super::segments::place_region_segments;
use super::{Bdn, BdnParams};
use crate::band::Banding;
use crate::error::PlacementError;
use ftt_geom::{Shape, TileGrid};

/// Result of a successful placement, including diagnostics.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The masking bands.
    pub banding: Banding,
    /// Number of black regions the faults were grouped into.
    pub num_regions: usize,
    /// Number of black tiles.
    pub num_black_tiles: usize,
}

/// The tile grid of a `B^d_n` instance (tiles of side `b²` in every
/// dimension of the `m × n × … × n` torus).
pub fn tile_grid(params: &BdnParams) -> TileGrid {
    let mut dims = vec![params.m()];
    dims.extend(std::iter::repeat_n(params.n, params.d - 1));
    TileGrid::uniform(Shape::new(dims), params.tile_side())
}

/// The largest frame radius the painting procedure may use:
/// `s = 2r+1 ≤ b`, and the frame must fit the tile grid.
pub fn max_frame_radius(params: &BdnParams) -> usize {
    let grid_min = params.num_tile_rows().min(params.n / params.tile_side());
    ((params.b - 1) / 2).min((grid_min - 1) / 2).max(1)
}

/// Places masking bands for the given node faults (`faulty[node]`).
///
/// Convenience wrapper over [`place_bands_for_ids`] for callers holding
/// a dense bitmap; costs one `O(N)` scan to gather the fault list.
pub fn place_bands(bdn: &Bdn, faulty: &[bool]) -> Result<Placement, PlacementError> {
    assert_eq!(faulty.len(), bdn.cols().len(), "fault bitmap size mismatch");
    let ids: Vec<usize> = faulty
        .iter()
        .enumerate()
        .filter_map(|(v, &f)| f.then_some(v))
        .collect();
    place_bands_for_ids(bdn, &ids)
}

/// Places masking bands for the given faulty node ids (duplicate-free).
///
/// This is the Monte-Carlo hot path: every fault-driven step is
/// `O(#faults)` — per-tile counts, region fault gathering, and the
/// masks-all audit walk the id list, never the whole host.
///
/// On success the returned banding is validated: slope ≤ 1, mutually
/// untouching, masks every fault, and leaves exactly `n` unmasked rows
/// per column.
pub fn place_bands_for_ids(bdn: &Bdn, faulty_ids: &[usize]) -> Result<Placement, PlacementError> {
    let params = *bdn.params();
    let cols = bdn.cols();
    let t = params.tile_side();
    let (b, eps_b, m) = (params.b, params.eps_b, params.m());
    let grid = tile_grid(&params);
    let mut tile_faults = vec![0u32; grid.num_tiles()];
    for &node in faulty_ids {
        debug_assert!(node < cols.len(), "faulty node {node} out of range");
        tile_faults[grid.tile_of_node(node)] += 1;
    }

    // 1. Paint.
    let painting = paint(&grid, &tile_faults, max_frame_radius(&params))?;

    // 2. Per-region straight segments.
    let num_tile_rows = params.num_tile_rows();
    // region → (absolute tile row → sorted segment starts, absolute rows)
    let mut region_rows: Vec<Vec<(usize, Vec<usize>)>> = Vec::with_capacity(painting.regions.len());
    {
        // gather fault rel-rows per region
        let mut region_fault_rows: Vec<Vec<usize>> = vec![Vec::new(); painting.regions.len()];
        for &node in faulty_ids {
            let tile = grid.tile_of_node(node);
            let rid = painting.region_of[tile];
            debug_assert_ne!(rid, u32::MAX, "faulty node in white tile");
            let region = &painting.regions[rid as usize];
            let (i, _z) = cols.split(node);
            let a = region.origin[0] * t;
            let rel = (i + m - a) % m;
            debug_assert!(rel < region.extent[0] * t, "fault outside region box");
            region_fault_rows[rid as usize].push(rel);
        }
        for (rid, region) in painting.regions.iter().enumerate() {
            let segs =
                place_region_segments(&region_fault_rows[rid], region.extent[0], t, b, eps_b, rid)?;
            let mut rows = Vec::with_capacity(region.extent[0]);
            for (rel_row, starts) in segs.rows.iter().enumerate() {
                let abs_row = (region.origin[0] + rel_row) % num_tile_rows;
                let abs_starts: Vec<usize> = starts
                    .iter()
                    .map(|&s| (region.origin[0] * t + s) % m)
                    .collect();
                debug_assert!(abs_starts.iter().all(|&s| s / t == abs_row,));
                rows.push((abs_row, abs_starts));
            }
            region_rows.push(rows);
        }
    }

    // 3. Corner values.
    let corner_values = assemble_corner_values(&params, &grid, &painting, &region_rows)?;

    // 4. Interpolate.
    let col_shape = cols.column_shape();
    let banding = interpolate_bands(&corner_values, col_shape, t, m, b);

    // 5. Validate all banding invariants.
    banding.validate(cols)?;
    banding.masks_all(faulty_ids.iter().map(|&v| cols.split(v)))?;
    // Lemma 6 arithmetic: validate() established that the bands are
    // mutually untouching, so every column masks exactly num_bands · b
    // distinct rows — the per-column unmasked count is m − num_bands · b
    // everywhere, checked once instead of with an O(columns · m) sweep.
    let unmasked = m - banding.num_bands() * b;
    if unmasked != params.n {
        return Err(PlacementError::InvalidBanding {
            reason: format!(
                "{} bands of width {b} leave {unmasked} unmasked rows per column, expected {}",
                banding.num_bands(),
                params.n
            ),
        });
    }
    let num_black_tiles = painting.regions.iter().map(|r| r.tiles.len()).sum();
    Ok(Placement {
        banding,
        num_regions: painting.regions.len(),
        num_black_tiles,
    })
}

/// Builds the corner-value table: dictated at corners incident to black
/// tiles, free ladder (`R·b² + b + j(b+1)`) elsewhere.
fn assemble_corner_values(
    params: &BdnParams,
    grid: &TileGrid,
    painting: &Painting,
    region_rows: &[Vec<(usize, Vec<usize>)>],
) -> Result<CornerValues, PlacementError> {
    let t = params.tile_side();
    let (b, eps_b) = (params.b, params.eps_b);
    let num_tile_rows = params.num_tile_rows();
    let gs = grid.grid_shape();
    let cdim = params.d - 1;
    let col_tile_shape = Shape::new((0..cdim).map(|a| gs.dim(a + 1)).collect());
    let num_corners = col_tile_shape.len();
    // fast lookup: region → abs row → starts
    let lookup = |rid: usize, abs_row: usize| -> Option<&Vec<usize>> {
        region_rows[rid]
            .iter()
            .find(|(r, _)| *r == abs_row)
            .map(|(_, s)| s)
    };
    let mut values: CornerValues = vec![vec![vec![0u64; num_corners]; eps_b]; num_tile_rows];
    let mut full_coord = vec![0usize; 1 + cdim];
    let mut coord = vec![0usize; cdim];
    for big_r in 0..num_tile_rows {
        for x in 0..num_corners {
            // incident column tiles: x − δ, δ ∈ {0,1}^{cdim}
            let xc = col_tile_shape.unflatten(x);
            let mut dictated: Option<(usize, usize)> = None; // (region, tile)
            for mask in 0..(1usize << cdim) {
                for a in 0..cdim {
                    let n = col_tile_shape.dim(a);
                    coord[a] = if mask & (1 << a) != 0 {
                        (xc[a] + n - 1) % n
                    } else {
                        xc[a]
                    };
                }
                full_coord[0] = big_r;
                full_coord[1..].copy_from_slice(&coord);
                let tile = gs.flatten(&full_coord);
                let rid = painting.region_of[tile];
                if rid != u32::MAX {
                    if let Some((prev, _)) = dictated {
                        if prev != rid as usize {
                            return Err(PlacementError::InvalidBanding {
                                reason: format!(
                                    "corner ({big_r}, {x}) dictated by two regions {prev} and {rid}"
                                ),
                            });
                        }
                    }
                    dictated = Some((rid as usize, tile));
                }
            }
            match dictated {
                Some((rid, _)) => {
                    let Some(starts) = lookup(rid, big_r) else {
                        return Err(PlacementError::InvalidBanding {
                            reason: format!("region {rid} has no segments for tile row {big_r}"),
                        });
                    };
                    for j in 0..eps_b {
                        values[big_r][j][x] = starts[j] as u64;
                    }
                }
                None => {
                    for j in 0..eps_b {
                        values[big_r][j][x] = (big_r * t + b + j * (b + 1)) as u64;
                    }
                }
            }
        }
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bdn() -> Bdn {
        // d = 2, b = 4, ε_b = 1 → n = 192, m = 256: 49 152 nodes.
        Bdn::build(BdnParams::new(2, 192, 4, 1).unwrap())
    }

    #[test]
    fn fault_free_placement() {
        let bdn = small_bdn();
        let faulty = vec![false; bdn.num_nodes()];
        let p = place_bands(&bdn, &faulty).unwrap();
        assert_eq!(p.num_regions, 0);
        assert_eq!(p.banding.num_bands(), bdn.params().num_bands());
    }

    #[test]
    fn single_fault_masked() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        let victim = bdn.cols().node(37, 100);
        faulty[victim] = true;
        let p = place_bands(&bdn, &faulty).unwrap();
        assert_eq!(p.num_regions, 1);
        let (i, z) = bdn.cols().split(victim);
        assert!(p.banding.masks(i, z), "fault not masked");
    }

    #[test]
    fn fault_at_origin_masked() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[0] = true;
        let p = place_bands(&bdn, &faulty).unwrap();
        assert!(p.banding.masks(0, 0));
    }

    #[test]
    fn scattered_faults_masked() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        // faults far apart (different tiles, clean frames)
        let victims = [
            bdn.cols().node(5, 5),
            bdn.cols().node(100, 100),
            bdn.cols().node(200, 30),
            bdn.cols().node(60, 170),
        ];
        for &v in &victims {
            faulty[v] = true;
        }
        let p = place_bands(&bdn, &faulty).unwrap();
        assert_eq!(p.num_regions, 4);
        for &v in &victims {
            let (i, z) = bdn.cols().split(v);
            assert!(p.banding.masks(i, z));
        }
    }

    #[test]
    fn max_radius_computation() {
        let p = BdnParams::new(2, 192, 4, 1).unwrap();
        // b = 4 → (b−1)/2 = 1
        assert_eq!(max_frame_radius(&p), 1);
    }

    #[test]
    fn adjacent_tile_faults_error_with_radius_one() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        // two faults in horizontally adjacent tiles: (row 0 tile) and next
        faulty[bdn.cols().node(8, 8)] = true;
        faulty[bdn.cols().node(8, 24)] = true; // next tile over (tile side 16)
        let err = place_bands(&bdn, &faulty).unwrap_err();
        assert!(
            matches!(err, PlacementError::NoCleanFrame { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn non_concentric_frame_rescues_b5() {
        // b = 5 (tile side 25, max radius 2), three faults: two in
        // diagonal tiles (5,5)/(6,6) and one at (3,5) that dirties the
        // concentric radius-2 shell of (5,5). Only a frame centred off
        // the faulty tile (e.g. at (6,6)) has a clean shell — the
        // paper's "enclosed by *an* s-frame" in action.
        let p = BdnParams::fit(2, 100, 5, 1).unwrap(); // n = 250, m = 625
        let bdn = Bdn::build(p);
        let t = p.tile_side();
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[bdn.cols().node(5 * t + 5, 5 * t + 5)] = true;
        faulty[bdn.cols().node(6 * t + 5, 6 * t + 5)] = true;
        faulty[bdn.cols().node(3 * t + 5, 5 * t + 5)] = true;
        let placement = place_bands(&bdn, &faulty).expect("flexible frames");
        for (i, z) in [
            (5 * t + 5, 5 * t + 5),
            (6 * t + 5, 6 * t + 5),
            (3 * t + 5, 5 * t + 5),
        ] {
            assert!(placement.banding.masks(i, z));
        }
    }

    #[test]
    fn dense_tile_faults_error() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        // every 4th row of one tile faulty: uncoverable / quota exceeded
        for i in (0..16).step_by(4) {
            faulty[bdn.cols().node(32 + i, 64)] = true;
        }
        assert!(place_bands(&bdn, &faulty).is_err());
    }
}
