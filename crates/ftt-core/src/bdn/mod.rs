//! Theorem 2: the constant-degree augmented torus `B^d_n`.
//!
//! `B^d_n` is the torus `C_m × (C_n)^{d−1}` (`m = (1+ε)n`) plus
//! *vertical jumps* `(i, z) ↔ (i ±_m (b+1), z)` and *diagonal jumps*
//! `(i, z) ↔ (i ±_m b, z′)` for adjacent columns `z′`, giving degree
//! exactly `6d − 2`. After random node faults with probability
//! `log^{−3d} n` the construction still contains a fault-free torus
//! `(C_n)^d` with probability `1 − n^{−Ω(log log n)}`.
//!
//! ## Parameterisation
//!
//! The paper sets `b ≈ log n` and waives all round-off ("the ambiguity …
//! is not essential"). We make the rounding explicit: an instance is
//! `(d, n, b, ε_b)` where `ε_b` is the number of masking-band segments
//! per tile row (the paper's `εb`), and
//!
//! ```text
//! m = n·b / (b − ε_b)      (so that (m − n)/b = ε_b · m/b² bands
//!                           leave exactly n unmasked rows per column)
//! ```
//!
//! with divisibility requirements `b² | n`, `b² | m` (tiles),
//! `b³ | n` (bricks in the column dimensions) and the capacity condition
//! `b + (ε_b − 1)(b+1) + b ≤ b² − 1` that lets free (white-tile) corner
//! values keep bands untouching across tile rows. [`BdnParams::fit`]
//! finds the nearest valid instance for a requested size.

pub mod extract;
pub mod health;
pub mod interpolate;
pub mod oracle;
pub mod paint;
pub mod place;
pub mod segments;

use ftt_geom::ColumnSpace;
use ftt_graph::{Graph, GraphBuilder};

pub use extract::TorusEmbedding;
pub use health::{check_health, HealthReport};
pub use oracle::BdnOracle;
pub use place::place_bands;

/// Classification of the edges of `B^d_n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Torus edge along the first (vertical) dimension: `(i, z)–(i±1, z)`.
    TorusVertical,
    /// Torus edge inside a row: `(i, z)–(i, z′)`, `z′` adjacent to `z`.
    TorusRow,
    /// Vertical jump `(i, z)–(i ± (b+1), z)`.
    VerticalJump,
    /// Diagonal jump `(i, z)–(i ± b, z′)`, `z′` adjacent to `z`.
    DiagonalJump,
}

/// Validated parameters of a `B^d_n` instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BdnParams {
    /// Dimension `d ≥ 2`.
    pub d: usize,
    /// Torus side `n` (the guest torus is `(C_n)^d`).
    pub n: usize,
    /// Jump/band parameter `b` (the paper's `≈ log n`), `b ≥ 3`.
    pub b: usize,
    /// Band segments per tile row (the paper's `εb`), `1 ≤ ε_b`.
    pub eps_b: usize,
}

impl BdnParams {
    /// Validates and constructs the parameter set.
    pub fn new(d: usize, n: usize, b: usize, eps_b: usize) -> Result<Self, String> {
        if d < 2 {
            return Err(format!("d must be ≥ 2, got {d}"));
        }
        if b < 3 {
            return Err(format!("b must be ≥ 3, got {b}"));
        }
        if eps_b == 0 || eps_b >= b {
            return Err(format!("ε_b must be in [1, b), got {eps_b}"));
        }
        // Free-corner ladder capacity: S_j = b + j(b+1) with the top
        // band's start at most b² − b − 1 keeps untouching across rows.
        if b + (eps_b - 1) * (b + 1) > b * b - b - 1 {
            return Err(format!(
                "ε_b = {eps_b} exceeds the free-ladder capacity for b = {b}"
            ));
        }
        if !(n * b).is_multiple_of(b - eps_b) {
            return Err(format!(
                "(b − ε_b) = {} must divide n·b = {}",
                b - eps_b,
                n * b
            ));
        }
        let m = n * b / (b - eps_b);
        let t = b * b;
        if !n.is_multiple_of(t) {
            return Err(format!("b² = {t} must divide n = {n}"));
        }
        if !m.is_multiple_of(t) {
            return Err(format!("b² = {t} must divide m = {m}"));
        }
        if !n.is_multiple_of(b * t) {
            return Err(format!("b³ = {} must divide n = {n} (bricks)", b * t));
        }
        // Frames of radius 1 must fit the tile grid.
        if m / t < 3 || n / t < 3 {
            return Err(format!(
                "tile grid too small for frames: m/b² = {}, n/b² = {}",
                m / t,
                n / t
            ));
        }
        Ok(Self { d, n, b, eps_b })
    }

    /// Finds the smallest valid instance with `n ≥ n_min`, for the given
    /// `b` and `ε_b` (`n` is rounded up to the necessary divisibility).
    pub fn fit(d: usize, n_min: usize, b: usize, eps_b: usize) -> Result<Self, String> {
        if b < 3 || eps_b == 0 || eps_b >= b {
            return Err(format!(
                "need b ≥ 3 and 1 ≤ ε_b < b, got b={b}, ε_b={eps_b}"
            ));
        }
        // n must be a multiple of lcm(b³, values making m integral and
        // divisible by b²):  m = n·b/(b−ε_b).
        let unit = lcm(b * b * b, lcm_m_unit(b, eps_b));
        let n = n_min.div_ceil(unit) * unit;
        Self::new(d, n, b, eps_b)
    }

    /// Vertical extent `m = n·b/(b−ε_b)` of the host torus.
    #[inline]
    pub fn m(&self) -> usize {
        self.n * self.b / (self.b - self.eps_b)
    }

    /// The redundancy factor `m/n = 1 + ε` (paper's `1 + ε`).
    pub fn redundancy(&self) -> f64 {
        self.m() as f64 / self.n as f64
    }

    /// Tile side `b²`.
    #[inline]
    pub fn tile_side(&self) -> usize {
        self.b * self.b
    }

    /// Number of tile rows `m / b²`.
    #[inline]
    pub fn num_tile_rows(&self) -> usize {
        self.m() / self.tile_side()
    }

    /// Total number of masking bands `(m − n)/b = ε_b · m/b²`.
    #[inline]
    pub fn num_bands(&self) -> usize {
        (self.m() - self.n) / self.b
    }

    /// Total number of nodes `m · n^{d−1}`.
    pub fn num_nodes(&self) -> usize {
        self.m() * self.n.pow(self.d as u32 - 1)
    }

    /// The degree the construction is supposed to have: `6d − 2`.
    #[inline]
    pub fn expected_degree(&self) -> usize {
        6 * self.d - 2
    }

    /// The node-failure probability Theorem 2 tolerates for this
    /// instance: `b^{−3d}` (the paper's `log^{−3d} n` with `b = log n`).
    pub fn tolerated_fault_probability(&self) -> f64 {
        (self.b as f64).powi(-(3 * self.d as i32))
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Smallest `u` such that `n ≡ 0 (mod u)` guarantees `m = n·b/(b−ε_b)`
/// is an integer multiple of `b²`.
fn lcm_m_unit(b: usize, eps_b: usize) -> usize {
    // m = n·b/(b−ε_b): need (b−ε_b) | n·b and b² | m.
    // Take n = u·t: m = u·t·b/(b−ε_b). Choose u = (b−ε_b)·b (always
    // sufficient): m = t·b², divisible by b². Reduce by gcd where possible.
    let den = b - eps_b;
    let g = gcd(den, b);
    // n multiple of den/g ensures integrality of n·b/den; then m = n·b/den
    // must also be divisible by b²: m = (n/(den/g))·(b/g); require
    // b² | m ⟸ n multiple of den·b (safe, simple over-approximation).
    let _ = g;
    den * b
}

/// A constructed `B^d_n` instance. The host is implicit: adjacency is
/// answered by the algebraic [`BdnOracle`] (`O(1)` state, any size),
/// and [`Bdn::graph`] caches one CSR materialisation for
/// small-instance degree audits and differential tests only —
/// production paths never call it.
#[derive(Debug, Clone)]
pub struct Bdn {
    params: BdnParams,
    oracle: BdnOracle,
    graph: std::sync::OnceLock<Graph>,
}

impl Bdn {
    /// Builds the augmented torus for validated parameters. Only the
    /// geometry and the algebraic oracle are constructed — the CSR
    /// graph stays implicit until someone asks for [`Bdn::graph`].
    ///
    /// Node ids follow [`ColumnSpace`]: node `(i, z)` has id
    /// `i · n^{d−1} + z`.
    pub fn build(params: BdnParams) -> Self {
        Self {
            params,
            oracle: BdnOracle::new(params),
            graph: std::sync::OnceLock::new(),
        }
    }

    /// The instance parameters.
    #[inline]
    pub fn params(&self) -> &BdnParams {
        &self.params
    }

    /// The column-space geometry (node id ↔ `(i, z)` mapping).
    #[inline]
    pub fn cols(&self) -> &ColumnSpace {
        self.oracle.cols()
    }

    /// The algebraic adjacency oracle — the production interface to the
    /// host's edges.
    #[inline]
    pub fn oracle(&self) -> &BdnOracle {
        &self.oracle
    }

    /// The materialised host graph, built on first call and cached.
    ///
    /// Prefer [`Bdn::oracle`] when adjacency queries are all that is
    /// needed: the graph costs `m·n^{d−1}` nodes and `(3d−1)` times as
    /// many edges.
    pub fn graph(&self) -> &Graph {
        self.graph.get_or_init(|| self.build_graph())
    }

    /// The CSR graph if some caller already materialised it.
    #[inline]
    pub fn materialized_graph(&self) -> Option<&Graph> {
        self.graph.get()
    }

    /// Materialises the host graph in the oracle's canonical edge order
    /// (use only for small instances).
    pub fn build_graph(&self) -> Graph {
        let m = self.params.m();
        let b = self.params.b;
        let cols = self.cols();
        let nc = cols.num_columns();
        let mut builder = GraphBuilder::new(cols.len());
        // Per-node edge budget: 1 vertical torus + (d−1) row torus
        // + 1 vertical jump + 2(d−1) diagonal jumps (forward columns only).
        builder.reserve_edges(cols.len() * (3 * self.params.d - 1));
        let col_shape = cols.column_shape();
        for i in 0..m {
            for z in 0..nc {
                let v = cols.node(i, z);
                // vertical torus edge (i, z)–(i+1, z)
                builder.add_edge(v, cols.node((i + 1) % m, z));
                // vertical jump (i, z)–(i + b + 1, z)
                builder.add_edge(v, cols.node((i + b + 1) % m, z));
                // row torus edges + diagonal jumps: forward column steps only
                for axis in 0..col_shape.ndim() {
                    let z2 = col_shape.torus_step(z, axis, 1);
                    builder.add_edge(v, cols.node(i, z2));
                    builder.add_edge(v, cols.node((i + b) % m, z2));
                    builder.add_edge(v, cols.node((i + m - b) % m, z2));
                }
            }
        }
        builder.build()
    }

    /// The kind of each edge (indexed by edge id), from slot arithmetic.
    #[inline]
    pub fn edge_kind(&self, e: u32) -> EdgeKind {
        self.oracle.edge_kind(e)
    }

    /// Endpoints of a canonical edge id, by arithmetic (never
    /// materialises).
    #[inline]
    pub fn edge_endpoints(&self, e: u32) -> (usize, usize) {
        ftt_graph::AdjacencyOracle::edge_endpoints(&self.oracle, e)
    }

    /// Number of nodes `m · n^{d−1}`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.cols().len()
    }

    /// Theorem 2 as an algorithm: masks the faults of `faults` (edge
    /// faults are ascribed to an endpoint, as in Section 3) and extracts
    /// a fault-free `(C_n)^d`.
    ///
    /// The returned embedding avoids every faulty node **and** every
    /// faulty edge (the ascribed endpoint is excluded, so no faulty edge
    /// can be used).
    pub fn try_extract(
        &self,
        faults: &ftt_faults::FaultSet,
    ) -> Result<extract::TorusEmbedding, crate::error::PlacementError> {
        let mut ascribed = ftt_faults::SparseSet::new(self.num_nodes());
        faults.ascribe_into(|e| self.edge_endpoints(e), &mut ascribed);
        extract::extract_after_faults_ids(self, ascribed.ids())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        // b=4, ε_b=1: m = 4n/3; need 64 | n and 3 | n → n = 192.
        let p = BdnParams::new(2, 192, 4, 1).unwrap();
        assert_eq!(p.m(), 256);
        assert_eq!(p.num_bands(), 16);
        assert_eq!(p.num_tile_rows(), 16);
        assert_eq!(p.expected_degree(), 10);
        assert!(BdnParams::new(1, 192, 4, 1).is_err(), "d ≥ 2");
        assert!(BdnParams::new(2, 191, 4, 1).is_err(), "divisibility");
        assert!(BdnParams::new(2, 192, 2, 1).is_err(), "b ≥ 3");
        assert!(BdnParams::new(2, 192, 4, 4).is_err(), "ε_b < b");
    }

    #[test]
    fn fit_finds_valid_instance() {
        let p = BdnParams::fit(2, 100, 4, 1).unwrap();
        assert!(p.n >= 100);
        assert_eq!(p.n % 64, 0);
        assert_eq!(p.m() % 16, 0);
        let p3 = BdnParams::fit(3, 20, 3, 1).unwrap();
        assert!(p3.n >= 20);
        assert_eq!(p3.d, 3);
    }

    #[test]
    fn eps_b_capacity() {
        // b=4: ladder allows ε_b ≤ 2 (b + (ε_b−1)(b+1) ≤ b² − b − 1 = 11).
        assert!(BdnParams::fit(2, 64, 4, 2).is_ok());
        assert!(BdnParams::new(2, 192, 4, 3).is_err());
        // b=5: 5 + (ε_b−1)·6 ≤ 19 → ε_b ≤ 3.
        assert!(BdnParams::fit(2, 100, 5, 3).is_ok());
        assert!(BdnParams::fit(2, 100, 5, 4).is_err());
    }

    #[test]
    fn degree_is_exactly_6d_minus_2() {
        for (d, nmin, b) in [(2usize, 64usize, 4usize), (3, 27, 3)] {
            let p = BdnParams::fit(d, nmin, b, 1).unwrap();
            let g = Bdn::build(p);
            let deg = p.expected_degree();
            assert_eq!(g.graph().max_degree(), deg, "d={d}");
            assert_eq!(g.graph().min_degree(), deg, "d={d}");
        }
    }

    #[test]
    fn node_count_matches() {
        let p = BdnParams::fit(2, 64, 4, 1).unwrap();
        let g = Bdn::build(p);
        assert_eq!(g.num_nodes(), p.num_nodes());
        assert_eq!(g.num_nodes(), p.m() * p.n);
    }

    #[test]
    fn redundancy_bounded() {
        // ε = ε_b/(b−ε_b): b=4, ε_b=1 → ε = 1/3.
        let p = BdnParams::fit(2, 64, 4, 1).unwrap();
        assert!((p.redundancy() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edge_kind_degree_breakdown() {
        let p = BdnParams::fit(2, 64, 4, 1).unwrap();
        let bdn = Bdn::build(p);
        let g = bdn.graph();
        // count per node: kinds around node 0
        let mut vertical = 0;
        let mut vjump = 0;
        let mut row = 0;
        let mut djump = 0;
        for (_, e) in g.arcs(0) {
            match bdn.edge_kind(e) {
                EdgeKind::TorusVertical => vertical += 1,
                EdgeKind::VerticalJump => vjump += 1,
                EdgeKind::TorusRow => row += 1,
                EdgeKind::DiagonalJump => djump += 1,
            }
        }
        assert_eq!(vertical, 2);
        assert_eq!(vjump, 2);
        assert_eq!(row, 2 * (p.d - 1));
        assert_eq!(djump, 4 * (p.d - 1));
    }

    #[test]
    fn jump_edges_land_correctly() {
        let p = BdnParams::fit(2, 64, 4, 1).unwrap();
        let bdn = Bdn::build(p);
        let (m, b) = (p.m(), p.b);
        let cols = bdn.cols();
        let v = cols.node(0, 5);
        // vertical jump to (b+1, 5)
        assert!(bdn.graph().has_edge(v, cols.node(b + 1, 5)));
        assert!(bdn.graph().has_edge(v, cols.node(m - b - 1, 5)));
        // diagonal jumps to (±b, 4) and (±b, 6)
        assert!(bdn.graph().has_edge(v, cols.node(b, 4)));
        assert!(bdn.graph().has_edge(v, cols.node(m - b, 6)));
        // no self-parallel artifacts
        assert_eq!(bdn.graph().edges_between(v, cols.node(b + 1, 5)).len(), 1);
    }

    #[test]
    fn tolerated_fault_probability_formula() {
        let p = BdnParams::fit(2, 64, 4, 1).unwrap();
        let want = (4.0f64).powi(-6);
        assert!((p.tolerated_fault_probability() - want).abs() < 1e-15);
    }

    #[test]
    fn four_dimensional_params_validate() {
        // d = 4/5 instances are too large to build on a laptop, but the
        // parameter algebra (degree 6d−2, node counts, divisibility)
        // must hold for every fixed d as the theorem states.
        for d in [4usize, 5] {
            let p = BdnParams::fit(d, 50, 3, 1).unwrap();
            assert_eq!(p.expected_degree(), 6 * d - 2);
            assert_eq!(p.num_nodes(), p.m() * p.n.pow(d as u32 - 1));
            assert_eq!(p.num_bands() * p.b, p.m() - p.n);
            assert!((p.redundancy() - 1.5).abs() < 1e-12); // b=3, ε_b=1
        }
    }

    #[test]
    fn try_extract_handles_edge_faults() {
        let p = BdnParams::new(2, 54, 3, 1).unwrap();
        let bdn = Bdn::build(p);
        let mut faults = ftt_faults::FaultSet::none(bdn.num_nodes(), bdn.graph().num_edges());
        faults.kill_node(bdn.cols().node(30, 30));
        faults.kill_edge(1234);
        let emb = bdn.try_extract(&faults).expect("extraction");
        ftt_graph::verify_torus_embedding(
            &emb.guest,
            &emb.map,
            bdn.graph(),
            |v| faults.node_alive(v),
            |e| faults.edge_alive(e),
        )
        .expect("avoids node and edge faults");
    }
}
