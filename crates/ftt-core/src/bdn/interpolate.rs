//! Multilinear interpolation of bands through white tiles (Lemmas 9–11).
//!
//! Each tile is embedded in a `(d−1)`-dimensional hypercube of edge
//! length `b²` with nodes at half-integer positions (torus edges leaving
//! a tile are bisected by its boundary, exactly as in the paper). Band
//! values are fixed at the corner lattice of the column-tile grid —
//! dictated by black-region segments or chosen freely on white territory
//! — and every band is the per-tile multilinear interpolation of its
//! corner values.
//!
//! * Lemma 9 (interpolation exists) is trivial here: multilinear
//!   interpolation *is* the unique multilinear polynomial through given
//!   corner values.
//! * Lemma 10 (corner-wise ordering ⇒ pointwise ordering) is what makes
//!   corner-gap discipline sufficient for untouching bands.
//! * Lemma 11 (corner values in a `b²`-range ⇒ slope ≤ 1) gives the band
//!   slope condition.
//!
//! We evaluate in **exact integer arithmetic** (denominator `(2b²)^{d−1}`)
//! and round with floor: floor preserves integer corner gaps (so
//! untouching survives rounding) and preserves slope ≤ 1 — see DESIGN.md
//! for why this is a safe refinement of the paper's "nearest integer".

use crate::band::Banding;
use ftt_geom::Shape;

/// Corner values for all bands: `values[tile_row][j][corner]`, where
/// `corner` indexes the column-tile lattice and the value is an absolute
/// row in `[tile_row · b², (tile_row+1) · b²)`.
pub type CornerValues = Vec<Vec<Vec<u64>>>;

/// Interpolates corner values into a full [`Banding`].
///
/// * `col_shape` — shape of the column torus `(n, …, n)` (`d−1` dims).
/// * `tile_side` — `b²`.
/// * `m` — vertical extent of the host torus.
/// * `width` — band width `b`.
pub fn interpolate_bands(
    corner_values: &CornerValues,
    col_shape: &Shape,
    tile_side: usize,
    m: usize,
    width: usize,
) -> Banding {
    let num_columns = col_shape.len();
    let mut bands: Vec<Vec<usize>> = Vec::new();
    for row_vals in corner_values {
        for band_vals in row_vals {
            let mut beta = vec![0usize; num_columns];
            interpolate_band_into(band_vals, col_shape, tile_side, &mut beta);
            bands.push(beta);
        }
    }
    Banding::new(bands, width, m, num_columns)
}

/// Interpolates a single band's corner values at every column — the
/// inner loop of [`interpolate_bands`], exposed separately so the
/// tile-local repaint path can re-evaluate only the bands of a changed
/// tile row into a reusable buffer.
pub(crate) fn interpolate_band_into(
    band_vals: &[u64],
    col_shape: &Shape,
    tile_side: usize,
    out: &mut [usize],
) {
    let cdim = col_shape.ndim();
    let col_tile_shape = Shape::new((0..cdim).map(|a| col_shape.dim(a) / tile_side).collect());
    debug_assert_eq!(band_vals.len(), col_tile_shape.len());
    debug_assert_eq!(out.len(), col_shape.len());
    let den = 2 * tile_side as u64;
    let corners = 1usize << cdim;
    let denom = den.pow(cdim as u32);
    // Per-column coordinate buffers, hoisted out of the hot loop: this
    // runs for every (band, column) pair of every placement, so no
    // allocation may happen inside.
    let mut tile_coord = vec![0usize; cdim];
    let mut nums = vec![0u64; cdim];
    let mut corner = vec![0usize; cdim];
    for (z, bz) in out.iter_mut().enumerate() {
        // locate column tile and within-tile offsets
        for a in 0..cdim {
            let c = col_shape.coord_of(z, a);
            tile_coord[a] = c / tile_side;
            nums[a] = (2 * (c % tile_side) + 1) as u64;
        }
        // exact multilinear sum over the 2^{d−1} corners
        let mut acc: u64 = 0;
        for mask in 0..corners {
            let mut weight: u64 = 1;
            for a in 0..cdim {
                if mask & (1 << a) != 0 {
                    weight *= nums[a];
                    corner[a] = (tile_coord[a] + 1) % col_tile_shape.dim(a);
                } else {
                    weight *= den - nums[a];
                    corner[a] = tile_coord[a];
                }
            }
            acc += weight * band_vals[col_tile_shape.flatten(&corner)];
        }
        *bz = (acc / denom) as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftt_geom::ColumnSpace;

    const T: usize = 16; // b² with b = 4
    const B: usize = 4;

    /// d = 2, n = 64 (4 column tiles), m = 80 (5 tile rows), ε_b = 1.
    fn setup() -> (Shape, usize) {
        (Shape::new(vec![64]), 80)
    }

    #[test]
    fn constant_corners_give_straight_band() {
        let (cols, m) = setup();
        // one tile row, one band, all corners at value 7
        let cv: CornerValues = vec![vec![vec![7u64; 4]]];
        let banding = interpolate_bands(&cv, &cols, T, m, B);
        assert_eq!(banding.num_bands(), 1);
        for z in 0..64 {
            assert_eq!(banding.start(0, z), 7, "column {z}");
        }
    }

    #[test]
    fn tent_gradient_has_unit_slope() {
        let (cols, m) = setup();
        // tent profile over the 4 column tiles; all corner diffs ≤ b²
        // per tile, so the interpolated band has slope ≤ 1 everywhere,
        // including across the wrap tile.
        let cv: CornerValues = vec![vec![vec![0, 8, 15, 8]]];
        let banding = interpolate_bands(&cv, &cols, T, m, B);
        for z in 0..64 {
            let cur = banding.start(0, z) as isize;
            let nxt = banding.start(0, (z + 1) % 64) as isize;
            let diff = (cur - nxt).abs().min(m as isize - (cur - nxt).abs());
            assert!(diff <= 1, "slope {diff} at column {z}");
        }
        // near a corner column the band passes near the corner value
        let s16 = banding.start(0, 16) as i64;
        assert!((s16 - 8).abs() <= 1, "start at corner column: {s16}");
    }

    #[test]
    fn corner_gaps_preserved_pointwise() {
        let (cols, m) = setup();
        // two bands in one tile row with corner gap exactly b+1 = 5
        let lo = vec![0u64, 8, 4, 2];
        let hi: Vec<u64> = lo.iter().map(|v| v + 5).collect();
        let cv: CornerValues = vec![vec![lo, hi]];
        let banding = interpolate_bands(&cv, &cols, T, m, B);
        for z in 0..64 {
            let gap = banding.start(1, z) - banding.start(0, z);
            assert!(gap >= 5, "gap {gap} at column {z}");
        }
    }

    #[test]
    fn values_stay_in_tile_row_range() {
        let (cols, m) = setup();
        // tile row 2 (rows 32..48), corners spread across the row
        let cv: CornerValues = vec![vec![vec![32, 47, 40, 36]]];
        let banding = interpolate_bands(&cv, &cols, T, m, B);
        for z in 0..64 {
            let s = banding.start(0, z);
            assert!((32..48).contains(&s), "start {s} escaped tile row");
        }
    }

    #[test]
    fn banding_validates_slope() {
        let (cols, m) = setup();
        let cspace = ColumnSpace::new(m, &[64]);
        let cv: CornerValues = vec![
            vec![vec![3, 11, 9, 0]],
            vec![vec![16, 16, 16, 16]],
            vec![vec![35, 40, 45, 33]],
        ];
        let banding = interpolate_bands(&cv, &cols, T, m, B);
        banding
            .validate(&cspace)
            .expect("interpolated banding is valid");
    }

    #[test]
    fn three_dimensional_columns_trilinear() {
        // d = 4 host: columns form a 48³ torus; trilinear blending over
        // 8 corners per tile.
        let cols = Shape::new(vec![48, 48, 48]);
        let corners = vec![9u64; 27];
        let cv: CornerValues = vec![vec![corners]];
        let banding = interpolate_bands(&cv, &cols, T, 64, B);
        assert_eq!(banding.num_columns(), 48 * 48 * 48);
        for z in (0..banding.num_columns()).step_by(997) {
            assert_eq!(banding.start(0, z), 9);
        }
        // one raised corner: values blend within range, slope ≤ 1
        let mut corners = vec![0u64; 27];
        corners[13] = 15; // centre of the 3×3×3 corner lattice
        let cv: CornerValues = vec![vec![corners]];
        let banding = interpolate_bands(&cv, &cols, T, 64, B);
        let cspace = ColumnSpace::new(64, &[48, 48, 48]);
        banding.validate(&cspace).expect("trilinear banding valid");
    }

    #[test]
    fn two_dimensional_columns() {
        // d = 3: columns form a 48×48 torus (3×3 column tiles).
        let cols = Shape::new(vec![48, 48]);
        let m = 64;
        let corners = vec![5u64; 9];
        let cv: CornerValues = vec![vec![corners]];
        let banding = interpolate_bands(&cv, &cols, T, m, B);
        assert_eq!(banding.num_columns(), 48 * 48);
        for z in 0..banding.num_columns() {
            assert_eq!(banding.start(0, z), 5);
        }
        // and bilinear blending between differing corners stays in range
        let mut corners = vec![5u64; 9];
        corners[4] = 15; // centre tile corner raised
        let cv: CornerValues = vec![vec![corners]];
        let banding = interpolate_bands(&cv, &cols, T, m, B);
        let cspace = ColumnSpace::new(m, &[48, 48]);
        banding.validate(&cspace).expect("bilinear banding valid");
        for z in 0..banding.num_columns() {
            let s = banding.start(0, z);
            assert!((5..=15).contains(&s));
        }
    }
}
