//! Torus extraction from a valid banding (Lemmas 6–8).
//!
//! Given a valid banding, the unmasked nodes of each column form a cycle
//! of length `n` (torus edges bridge gaps of 1, vertical jumps bridge
//! gaps of `b+1` over a band). Rows are recovered with the paper's
//! jump-paths: walking from column to column, a path keeps its height
//! until it hits a band, then jumps `±b` over it via a diagonal jump.
//! Lemma 7 shows the induced alignment of column cycles is independent
//! of the walking order; we *check* that property explicitly over every
//! adjacent column pair instead of trusting it, so a successful
//! extraction is self-certifying.

use super::Bdn;
use crate::band::Banding;
use crate::error::PlacementError;
use ftt_geom::{ColumnSpace, CyclicRing, Shape};

/// An embedding of the guest torus `(C_n)^d` into a host graph.
#[derive(Debug, Clone)]
pub struct TorusEmbedding {
    /// Shape of the guest torus (`n × … × n`, `d` dims).
    pub guest: Shape,
    /// `map[guest_flat_index]` = host node id.
    pub map: Vec<usize>,
}

impl TorusEmbedding {
    /// The guest node count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the embedding is empty (never for valid instances).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Per-column band-start index: for every column, the `(start, band)`
/// pairs sorted by start. Masked-row lookups binary-search `num_bands`
/// entries — a compact, cache-resident replacement for the `O(N)`
/// per-node owner table, so extraction never allocates host-sized
/// buffers.
struct ColBandIndex {
    /// `entries[z·nb .. (z+1)·nb]`, sorted by start within each column.
    entries: Vec<(u32, u32)>,
    /// Masked-row bitmap, `wpc` words per column — the O(1) fast path
    /// for the (majority) unmasked lookups.
    masked: Vec<u64>,
    wpc: usize,
    nb: usize,
    width: usize,
    ring: CyclicRing,
}

impl ColBandIndex {
    fn build(banding: &Banding, ring: CyclicRing) -> Result<Self, PlacementError> {
        let nb = banding.num_bands();
        let nc = banding.num_columns();
        let width = banding.width();
        let m = banding.m();
        let wpc = m.div_ceil(64);
        let mut entries = vec![(0u32, 0u32); nc * nb];
        let mut masked = vec![0u64; nc * wpc];
        for z in 0..nc {
            let run = &mut entries[z * nb..(z + 1) * nb];
            for (band, e) in run.iter_mut().enumerate() {
                *e = (banding.start(band, z) as u32, band as u32);
            }
            run.sort_unstable();
            // Overlap guard (the invariant mask_owner enforces):
            // consecutive starts must be at least `width` apart. A single
            // band cannot overlap itself, so skip the wrap check then.
            if nb >= 2 {
                for k in 0..nb {
                    let (cur, cb) = run[k];
                    let (nxt, nb2) = run[(k + 1) % nb];
                    if ring.sub(nxt as usize, cur as usize) < width {
                        return Err(PlacementError::InvalidBanding {
                            reason: format!("bands {cb} and {nb2} overlap in column {z}"),
                        });
                    }
                }
            }
            for band in 0..nb {
                for i in banding.footprint(band, z).iter() {
                    masked[z * wpc + (i >> 6)] |= 1 << (i & 63);
                }
            }
        }
        Ok(Self {
            entries,
            masked,
            wpc,
            nb,
            width,
            ring,
        })
    }

    /// Whether row `i` of column `z` is masked by some band.
    #[inline]
    fn is_masked(&self, i: usize, z: usize) -> bool {
        self.masked[z * self.wpc + (i >> 6)] >> (i & 63) & 1 != 0
    }

    /// The band masking row `i` of column `z`, if any.
    #[inline]
    fn band_at(&self, i: usize, z: usize) -> Option<usize> {
        if !self.is_masked(i, z) {
            return None;
        }
        let run = &self.entries[z * self.nb..(z + 1) * self.nb];
        let pos = run.partition_point(|&(s, _)| (s as usize) <= i);
        let (s, band) = if pos == 0 {
            run[self.nb - 1]
        } else {
            run[pos - 1]
        };
        debug_assert!(self.ring.sub(i, s as usize) < self.width);
        Some(band as usize)
    }
}

/// One step of the jump-path walk: the height a path at height `i` in
/// column `from` reaches in adjacent column `to`.
#[inline]
fn transit(
    banding: &Banding,
    index: &ColBandIndex,
    ring: CyclicRing,
    b: usize,
    i: usize,
    from: usize,
    to: usize,
) -> Result<usize, PlacementError> {
    let Some(band) = index.band_at(i, to) else {
        return Ok(i); // unmasked straight ahead
    };
    let s_to = banding.start(band, to);
    let s_from = banding.start(band, from);
    if s_from == ring.succ(s_to) {
        // band shifted down from `from` to `to`: the path sat just below
        // the band at `from` (i = s_to), jump up over it.
        Ok(ring.add(i, b))
    } else if s_from == ring.pred(s_to) {
        // band shifted up: path sat just above (i = s_to + b − 1 + 1 − 1);
        // jump down below it.
        Ok(ring.sub(i, b))
    } else {
        // s_from == s_to would mean i was masked at `from` as well —
        // impossible for a path on unmasked nodes.
        Err(PlacementError::AlignmentInconsistent { column: to })
    }
}

/// Extracts the fault-free torus defined by a valid banding.
///
/// Returns the embedding `(C_n)^d → B^d_n`; every masked (hence every
/// faulty) node is avoided and every guest edge is carried by a torus
/// edge, vertical jump or diagonal jump of `B^d_n`. The Lemma 7
/// consistency of the alignment is verified over **all** adjacent column
/// pairs.
pub fn extract_torus(bdn: &Bdn, banding: &Banding) -> Result<TorusEmbedding, PlacementError> {
    let params = *bdn.params();
    let cols = bdn.cols();
    let (n, b, m) = (params.n, params.b, params.m());
    let ring = CyclicRing::new(m);
    let index = ColBandIndex::build(banding, ring)?;

    // Column cycles: unmasked rows per column, ascending; check gap
    // structure (1 or b+1). Flat `heights[z·n + idx]` layout, read off
    // the index's masked bitmap — this runs once per Monte-Carlo trial.
    let nc = cols.num_columns();
    let mut heights = vec![0usize; nc * n];
    for z in 0..nc {
        let mut cnt = 0usize;
        for i in 0..m {
            if !index.is_masked(i, z) {
                if cnt < n {
                    heights[z * n + cnt] = i;
                }
                cnt += 1;
            }
        }
        if cnt != n {
            return Err(PlacementError::InvalidBanding {
                reason: format!("column {z}: {cnt} unmasked rows, want {n}"),
            });
        }
        for idx in 0..n {
            let cur = heights[z * n + idx];
            let nxt = heights[z * n + (idx + 1) % n];
            let gap = ring.sub(nxt, cur);
            if gap != 1 && gap != b + 1 {
                return Err(PlacementError::InvalidBanding {
                    reason: format!("column {z}: unmasked gap {gap} between rows {cur} and {nxt}"),
                });
            }
        }
    }

    // Alignment: BFS over the column torus from column 0, transporting
    // the cyclic indexing of column 0's unmasked rows.
    // aligned[z·n + idx] = height of the idx-th row of the guest torus
    // in column z.
    let mut aligned = vec![0usize; nc * n];
    aligned[..n].copy_from_slice(&heights[..n]);
    let mut visited = vec![false; nc];
    visited[0] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0usize);
    while let Some(z) = queue.pop_front() {
        for z2 in cols.adjacent_columns_iter(z) {
            if visited[z2] {
                continue;
            }
            for idx in 0..n {
                let h = transit(banding, &index, ring, b, aligned[z * n + idx], z, z2)?;
                aligned[z2 * n + idx] = h;
            }
            visited[z2] = true;
            queue.push_back(z2);
        }
    }
    debug_assert!(visited.iter().all(|&v| v));

    // Lemma 7 check: every adjacent pair must agree for every index.
    for z in 0..nc {
        for z2 in cols.adjacent_columns_iter(z) {
            for idx in 0..n {
                let h = transit(banding, &index, ring, b, aligned[z * n + idx], z, z2)?;
                if h != aligned[z2 * n + idx] {
                    return Err(PlacementError::AlignmentInconsistent { column: z2 });
                }
            }
        }
    }

    // Assemble the embedding.
    let guest_cols = ColumnSpace::cube(n, n, params.d);
    let mut map = vec![0usize; guest_cols.len()];
    for z in 0..nc {
        for idx in 0..n {
            map[guest_cols.node(idx, z)] = cols.node(aligned[z * n + idx], z);
        }
    }
    let guest = Shape::cube(n, params.d);
    Ok(TorusEmbedding { guest, map })
}

/// Convenience: place bands for the given node faults and extract the
/// torus in one call. This is "Theorem 2 as an algorithm".
pub fn extract_after_faults(bdn: &Bdn, faulty: &[bool]) -> Result<TorusEmbedding, PlacementError> {
    let placement = super::place::place_bands(bdn, faulty)?;
    extract_torus(bdn, &placement.banding)
}

/// [`extract_after_faults`] driven by an explicit (duplicate-free) list
/// of faulty node ids — the sparse Monte-Carlo hot path, whose
/// fault-handling cost is `O(#faults)` instead of `O(N)`.
pub fn extract_after_faults_ids(
    bdn: &Bdn,
    faulty_ids: &[usize],
) -> Result<TorusEmbedding, PlacementError> {
    let placement = super::place::place_bands_for_ids(bdn, faulty_ids)?;
    extract_torus(bdn, &placement.banding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdn::BdnParams;
    use ftt_graph::verify_torus_embedding;

    fn small_bdn() -> Bdn {
        Bdn::build(BdnParams::new(2, 192, 4, 1).unwrap())
    }

    fn verify(bdn: &Bdn, emb: &TorusEmbedding, faulty: &[bool]) {
        verify_torus_embedding(&emb.guest, &emb.map, bdn.graph(), |h| !faulty[h], |_| true)
            .expect("embedding must verify");
    }

    #[test]
    fn fault_free_extraction() {
        let bdn = small_bdn();
        let faulty = vec![false; bdn.num_nodes()];
        let emb = extract_after_faults(&bdn, &faulty).unwrap();
        assert_eq!(emb.len(), 192 * 192);
        verify(&bdn, &emb, &faulty);
    }

    #[test]
    fn single_fault_extraction() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[bdn.cols().node(100, 50)] = true;
        let emb = extract_after_faults(&bdn, &faulty).unwrap();
        verify(&bdn, &emb, &faulty);
    }

    #[test]
    fn scattered_faults_extraction() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        // chosen so no two faults land in adjacent tiles (tile side 16,
        // 16 tile rows: rows 0 and 250 would be cyclically adjacent)
        for &(i, z) in &[
            (5usize, 5usize),
            (77, 130),
            (200, 60),
            (130, 180),
            (250, 90),
        ] {
            faulty[bdn.cols().node(i, z)] = true;
        }
        let emb = extract_after_faults(&bdn, &faulty).unwrap();
        verify(&bdn, &emb, &faulty);
    }

    #[test]
    fn extraction_avoids_masked_nodes() {
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        let victim = bdn.cols().node(42, 42);
        faulty[victim] = true;
        let emb = extract_after_faults(&bdn, &faulty).unwrap();
        assert!(!emb.map.contains(&victim));
    }

    #[test]
    fn mesh_is_contained_too() {
        // The torus embedding restricted to mesh edges is a mesh
        // embedding ("and hence the mesh of the same size").
        let bdn = small_bdn();
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[bdn.cols().node(9, 9)] = true;
        let emb = extract_after_faults(&bdn, &faulty).unwrap();
        ftt_graph::verify_mesh_embedding(
            &emb.guest,
            &emb.map,
            bdn.graph(),
            |h| !faulty[h],
            |_| true,
        )
        .expect("mesh embedding");
    }

    #[test]
    fn eps_b_two_with_crowded_tile_row() {
        // ε_b = 2: a region needing two mandatory segments in one tile
        // row (two fault clusters ≥ b+1 apart inside one tile).
        let p = BdnParams::new(2, 192, 4, 2).unwrap();
        let bdn = Bdn::build(p);
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[bdn.cols().node(33, 40)] = true;
        faulty[bdn.cols().node(43, 41)] = true; // same tile row, 10 rows apart
        let emb = extract_after_faults(&bdn, &faulty).unwrap();
        verify(&bdn, &emb, &faulty);
    }

    #[test]
    fn three_dimensional_instance() {
        // d = 3, b = 3, ε_b = 1 → n = 54, m = 81.
        let p = BdnParams::fit(3, 50, 3, 1).unwrap();
        let bdn = Bdn::build(p);
        let mut faulty = vec![false; bdn.num_nodes()];
        faulty[bdn.cols().node(40, 1000)] = true;
        faulty[bdn.cols().node(7, 77)] = true;
        let emb = extract_after_faults(&bdn, &faulty).unwrap();
        assert_eq!(emb.len(), p.n.pow(3));
        verify(&bdn, &emb, &faulty);
    }
}
