//! Algebraic adjacency oracle for `B^d_n` — the augmented torus
//! without stored edges.
//!
//! `B^d_n`'s adjacency is column-space arithmetic: node `(i, z)` is
//! joined vertically to `(i ±_m 1, z)` (torus) and `(i ±_m (b+1), z)`
//! (vertical jump), and per column axis to `(i, z′)` (row torus) and
//! `(i ±_m b, z′)` (diagonal jumps) for the two adjacent columns `z′`.
//!
//! ## Canonical edge numbering
//!
//! Edge ids reproduce [`super::Bdn::build_graph`]'s insertion order:
//! the builder walks flat node ids `v = (i, z)` in order and adds the
//! same `3d − 1` forward edges per node, so
//!
//! ```text
//! e = v·(3d−1) + slot
//! slot 0       = vertical torus  (i+1, z)
//! slot 1       = vertical jump   (i+b+1, z)
//! slot 2 + 3a  = row torus       (i, z+1 along axis a)
//! slot 3 + 3a  = diagonal jump   (i+b,   z+1 along axis a)
//! slot 4 + 3a  = diagonal jump   (i−b,   z+1 along axis a)
//! ```
//!
//! and `num_edges = (3d−1)·m·n^{d−1}`. The slot layout is uniform
//! because validation forces every column extent to `n ≥ b³ ≥ 27`, so
//! no axis is ever skipped; it also makes [`BdnOracle::edge_kind`] a
//! two-instruction classification, replacing the seed's per-edge kind
//! table (`O(edges)` memory) with arithmetic.

use super::{BdnParams, EdgeKind};
use ftt_geom::ColumnSpace;
use ftt_graph::AdjacencyOracle;

/// Upper bound on arcs per node: `6d − 2` with `d ≤ 6`.
const MAX_ARCS: usize = 34;

/// Implicit `B^d_n` adjacency: answers every [`AdjacencyOracle`] query
/// from `(params, node_id)` arithmetic in `O(d log d)` time and zero
/// heap.
#[derive(Debug, Clone)]
pub struct BdnOracle {
    params: BdnParams,
    cols: ColumnSpace,
}

impl BdnOracle {
    /// Builds the oracle for validated parameters.
    pub fn new(params: BdnParams) -> Self {
        let cols = ColumnSpace::cube(params.m(), params.n, params.d);
        assert!(
            6 * params.d - 2 <= MAX_ARCS,
            "d = {} exceeds the stack arc buffer (d ≤ 6)",
            params.d
        );
        assert!(
            cols.len()
                .checked_mul(3 * params.d - 1)
                .is_some_and(|e| e <= u32::MAX as usize),
            "edge ids must fit u32 for FaultSet/CSR interchangeability"
        );
        debug_assert!(
            (0..cols.column_shape().ndim()).all(|a| cols.column_shape().dim(a) >= 2),
            "uniform slot layout needs every column extent ≥ 2"
        );
        Self { params, cols }
    }

    /// The instance parameters.
    #[inline]
    pub fn params(&self) -> &BdnParams {
        &self.params
    }

    /// The column-space geometry (node id ↔ `(i, z)` mapping).
    #[inline]
    pub fn cols(&self) -> &ColumnSpace {
        &self.cols
    }

    /// Forward edges per node, `3d − 1`.
    #[inline]
    fn edges_per_node(&self) -> usize {
        3 * self.params.d - 1
    }

    /// The kind of an edge, from its slot alone.
    #[inline]
    pub fn edge_kind(&self, e: u32) -> EdgeKind {
        match e as usize % self.edges_per_node() {
            0 => EdgeKind::TorusVertical,
            1 => EdgeKind::VerticalJump,
            slot if (slot - 2) % 3 == 0 => EdgeKind::TorusRow,
            _ => EdgeKind::DiagonalJump,
        }
    }

    /// Visits `v`'s arcs in generation order (NOT the CSR order) — the
    /// sort-free form the probe overrides use, since edge probes don't
    /// care about ordering and the sort dominates their cost.
    #[inline]
    fn visit_arcs_unordered(&self, v: usize, mut f: impl FnMut(usize, u32)) {
        let epn = self.edges_per_node();
        let (m, b) = (self.params.m(), self.params.b);
        let col = self.cols.column_shape();
        let (i, z) = self.cols.split(v);
        let mut push = |target: usize, e: usize| f(target, e as u32);
        // out-arcs: slot layout of v's own forward edges
        push(self.cols.node((i + 1) % m, z), v * epn);
        push(self.cols.node((i + b + 1) % m, z), v * epn + 1);
        // in-arcs of the two vertical slots
        let w = self.cols.node((i + m - 1) % m, z);
        push(w, w * epn);
        let w = self.cols.node((i + m - b - 1) % m, z);
        push(w, w * epn + 1);
        for a in 0..col.ndim() {
            let z_next = col.torus_step(z, a, 1);
            let z_prev = col.torus_step(z, a, -1);
            // out-arcs along axis a
            push(self.cols.node(i, z_next), v * epn + 2 + 3 * a);
            push(self.cols.node((i + b) % m, z_next), v * epn + 3 + 3 * a);
            push(self.cols.node((i + m - b) % m, z_next), v * epn + 4 + 3 * a);
            // in-arcs: the previous column's forward edges landing on v
            let w = self.cols.node(i, z_prev);
            push(w, w * epn + 2 + 3 * a);
            let w = self.cols.node((i + m - b) % m, z_prev);
            push(w, w * epn + 3 + 3 * a);
            let w = self.cols.node((i + b) % m, z_prev);
            push(w, w * epn + 4 + 3 * a);
        }
    }

    /// Collects `v`'s arcs into `buf` in CSR order; returns the count.
    fn arcs_into(&self, v: usize, buf: &mut [(usize, u32); MAX_ARCS]) -> usize {
        let mut n = 0;
        self.visit_arcs_unordered(v, |target, e| {
            buf[n] = (target, e);
            n += 1;
        });
        // CSR adjacency windows are sorted by (target, edge id); match
        // them exactly so differential tests can compare byte-for-byte.
        buf[..n].sort_unstable();
        n
    }
}

impl AdjacencyOracle for BdnOracle {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.cols.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.cols.len() * self.edges_per_node()
    }

    #[inline]
    fn degree(&self, _v: usize) -> usize {
        6 * self.params.d - 2
    }

    #[inline]
    fn for_each_arc(&self, v: usize, mut f: impl FnMut(usize, u32)) {
        let mut buf = [(0usize, 0u32); MAX_ARCS];
        let n = self.arcs_into(v, &mut buf);
        for &(t, e) in &buf[..n] {
            f(t, e);
        }
    }

    // Direct arithmetic probe — the hottest oracle query (one per
    // guest edge in extraction-trial verification). Classify the
    // coordinate difference and test only the candidate slots instead
    // of enumerating all 6d−2 arcs: same column ⇒ vertical torus/jump
    // candidates; adjacent columns along exactly one axis ⇒ the three
    // forward slots of whichever endpoint owns the crossing edge.
    // Coincident step lengths (tiny `m`/extent-2 columns) are handled
    // by checking every holding condition, matching the enumeration's
    // "any" semantics.
    #[inline]
    fn any_edge_between(&self, u: usize, v: usize, mut pred: impl FnMut(u32) -> bool) -> bool {
        if u == v {
            return false;
        }
        let (m, b) = (self.params.m(), self.params.b);
        let epn = self.edges_per_node();
        let col = self.cols.column_shape();
        let (i, zu) = self.cols.split(u);
        let (j, zv) = self.cols.split(v);
        let dj = (j + m - i) % m;
        if zu == zv {
            return (dj == 1 && pred((u * epn) as u32))
                || (dj == b + 1 && pred((u * epn + 1) as u32))
                || (dj == m - 1 && pred((v * epn) as u32))
                || (dj == m - b - 1 && pred((v * epn + 1) as u32));
        }
        let mut axis = usize::MAX;
        for a in 0..col.ndim() {
            if col.coord_of(zu, a) != col.coord_of(zv, a) {
                if axis != usize::MAX {
                    return false;
                }
                axis = a;
            }
        }
        let a = axis;
        let (cu, cv) = (col.coord_of(zu, a), col.coord_of(zv, a));
        let ext = col.dim(a);
        let fwd = (cv + ext - cu) % ext;
        let bwd = ext - fwd;
        if fwd == 1 {
            // u's forward slots along axis a land in v's column
            if (dj == 0 && pred((u * epn + 2 + 3 * a) as u32))
                || (dj == b && pred((u * epn + 3 + 3 * a) as u32))
                || (dj == m - b && pred((u * epn + 4 + 3 * a) as u32))
            {
                return true;
            }
        }
        if bwd == 1 {
            // v's forward slots land in u's column
            let di = (m - dj) % m;
            return (di == 0 && pred((v * epn + 2 + 3 * a) as u32))
                || (di == b && pred((v * epn + 3 + 3 * a) as u32))
                || (di == m - b && pred((v * epn + 4 + 3 * a) as u32));
        }
        false
    }

    #[inline]
    fn edges_to_pair(
        &self,
        u: usize,
        t1: usize,
        t2: usize,
        mut pred: impl FnMut(u32) -> bool,
    ) -> (bool, bool) {
        (
            self.any_edge_between(u, t1, &mut pred),
            self.any_edge_between(u, t2, &mut pred),
        )
    }

    fn edge_endpoints(&self, e: u32) -> (usize, usize) {
        let epn = self.edges_per_node();
        let (m, b) = (self.params.m(), self.params.b);
        let v = e as usize / epn;
        let slot = e as usize % epn;
        let (i, z) = self.cols.split(v);
        let u = match slot {
            0 => self.cols.node((i + 1) % m, z),
            1 => self.cols.node((i + b + 1) % m, z),
            _ => {
                let a = (slot - 2) / 3;
                let z2 = self.cols.column_shape().torus_step(z, a, 1);
                match (slot - 2) % 3 {
                    0 => self.cols.node(i, z2),
                    1 => self.cols.node((i + b) % m, z2),
                    _ => self.cols.node((i + m - b) % m, z2),
                }
            }
        };
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::super::Bdn;
    use super::*;

    #[test]
    fn matches_csr_d2() {
        let params = BdnParams::new(2, 54, 3, 1).unwrap();
        let bdn = Bdn::build(params);
        let oracle = BdnOracle::new(params);
        let g = bdn.graph();
        assert_eq!(oracle.num_nodes(), g.num_nodes());
        assert_eq!(oracle.num_edges(), g.num_edges());
        for v in 0..g.num_nodes() {
            assert_eq!(oracle.degree(v), g.degree(v), "degree at {v}");
            let mut alg = Vec::new();
            oracle.for_each_arc(v, |t, e| alg.push((t, e)));
            let csr: Vec<(usize, u32)> = g.arcs(v).collect();
            assert_eq!(alg, csr, "arc window at {v}");
        }
        for e in 0..g.num_edges() as u32 {
            assert_eq!(oracle.edge_endpoints(e), g.edge_endpoints(e), "edge {e}");
        }
    }

    #[test]
    fn edge_kinds_partition_degree() {
        let params = BdnParams::new(2, 54, 3, 1).unwrap();
        let oracle = BdnOracle::new(params);
        let (mut vertical, mut vjump, mut row, mut djump) = (0, 0, 0, 0);
        oracle.for_each_arc(0, |_, e| match oracle.edge_kind(e) {
            EdgeKind::TorusVertical => vertical += 1,
            EdgeKind::VerticalJump => vjump += 1,
            EdgeKind::TorusRow => row += 1,
            EdgeKind::DiagonalJump => djump += 1,
        });
        assert_eq!(
            (vertical, vjump, row, djump),
            (2, 2, 2 * (params.d - 1), 4 * (params.d - 1))
        );
    }
}
