//! The construction-generic host interface.
//!
//! All three of the paper's constructions answer the same questions —
//! *build yourself from validated parameters*, *show your host graph*,
//! *what degree should you have*, and *given faults, extract a
//! fault-free guest torus* — but the seed exposed them through ad-hoc
//! inherent methods that every consumer (CLI, experiment binaries,
//! simulation harness) re-dispatched by hand. [`HostConstruction`]
//! unifies them so Monte-Carlo runners, sweep tables, and future
//! constructions are written once, generically.
//!
//! Fault handling is normalised to [`FaultSet`]: each implementation
//! maps whole-node and whole-edge faults onto its own fault formalism
//! (`B^d_n` ascribes edge faults to an endpoint as in Section 3;
//! `A^2_n` converts an edge fault into both of its half-edges failing,
//! the worst case of Section 4's half-edge model; `D^d_{n,k}` ascribes
//! like `B` and runs the straight-band pigeonhole).

use crate::adn::Adn;
use crate::bdn::extract::TorusEmbedding;
use crate::bdn::Bdn;
use crate::certificate::EmbeddingCertificate;
use crate::ddn::Ddn;
use crate::error::PlacementError;
use crate::online::{self, RepairOutcome, RepairState};
use ftt_faults::{Fault, FaultSet, HalfEdgeFaults, SparseSet};
use ftt_graph::{AdjacencyOracle, Graph};

/// A fault-tolerant host network containing a guest torus.
///
/// Implementations must uphold two contracts:
///
/// 1. **Degree**: every node of [`oracle`](Self::oracle) has degree
///    exactly [`expected_degree`](Self::expected_degree).
/// 2. **Extraction soundness**: a successful
///    [`try_extract`](Self::try_extract) returns an embedding that
///    avoids every faulty node and every faulty edge of `faults`
///    (checkable with `ftt_graph::verify_torus_embedding`).
///
/// The host's edges are exposed through an [`AdjacencyOracle`] — for
/// `B^d_n`/`D^d_{n,k}` an *algebraic* oracle answering from modular
/// arithmetic, so instance size is bounded by the theorems rather than
/// by RAM; `A^2_n`'s half-edge multigraph keeps a CSR oracle. A CSR
/// graph is only ever materialised through
/// [`materialized_graph`](Self::materialized_graph)-adjacent inherent
/// APIs, which small-instance differential tests use.
///
/// Extraction comes in two flavours: one-shot
/// [`try_extract`](Self::try_extract), and the Monte-Carlo hot path
/// [`try_extract_with`](Self::try_extract_with), which threads a
/// reusable per-worker [`Scratch`](Self::Scratch) so the per-trial
/// fault-conversion work is `O(#faults)` and allocation-free.
pub trait HostConstruction: Sized {
    /// Validated parameter set of the construction.
    type Params: Clone + std::fmt::Debug;

    /// The host's adjacency oracle (algebraic for `B^d`/`D^d`, the CSR
    /// graph itself for `A²`). `Sync` so trial runners can share the
    /// host across worker threads.
    type Oracle: AdjacencyOracle + Sync;

    /// Reusable per-worker state for repeated extractions
    /// (fault-conversion buffers; see
    /// [`try_extract_with`](Self::try_extract_with)). `Send` so worker
    /// pools can hand scratch values to (and between) worker threads.
    type Scratch: Send;

    /// Cached placement tallies for **online repair** (see
    /// [`crate::online`]): whatever internal state lets
    /// [`apply_fault_incremental`](Self::apply_fault_incremental)
    /// absorb or locally repair an arriving fault without re-running
    /// the batch pipeline. Constructions without an incremental path
    /// use `()` and inherit the generic rebuild-per-arrival behaviour.
    type RepairCache: Send;

    /// Short name for tables and CLI output (e.g. `"B^d_n"`).
    const NAME: &'static str;

    /// Builds the host for validated parameters.
    fn build(params: Self::Params) -> Self;

    /// The instance parameters.
    fn params(&self) -> &Self::Params;

    /// The host's adjacency oracle — the production interface to the
    /// host's edges. Never materialises a CSR graph.
    fn oracle(&self) -> &Self::Oracle;

    /// The CSR host graph, **if** some caller already materialised it
    /// (or the construction is inherently materialised, like `A²`).
    /// Production paths must not force materialisation; small-instance
    /// audits and differential tests reach a graph through the
    /// constructions' inherent `graph()` methods instead.
    fn materialized_graph(&self) -> Option<&Graph> {
        None
    }

    /// Total number of host nodes.
    fn num_nodes(&self) -> usize;

    /// Total number of host edges (from the oracle; never materialises).
    fn num_edges(&self) -> usize {
        self.oracle().num_edges()
    }

    /// Endpoints of a host edge id (from the oracle; never
    /// materialises).
    fn edge_endpoints(&self, e: u32) -> (usize, usize) {
        self.oracle().edge_endpoints(e)
    }

    /// The degree the construction is supposed to have (`6d−2`, `4d`,
    /// or `11h−1`-style formulas from the theorems).
    fn expected_degree(&self) -> usize;

    /// Fresh extraction scratch sized for this host.
    fn new_scratch(&self) -> Self::Scratch;

    /// Fresh online-repair cache sized for this host.
    fn new_repair_cache(&self) -> Self::RepairCache;

    /// Rebuilds `state`'s embedding and cache from its accumulated
    /// fault set through the batch pipeline — the full-rebuild repair
    /// tier and the [`RepairState::reset`] path. Implementations must
    /// leave the state dead (and its death recorded) on failure.
    fn rebuild_repair(&self, state: &mut RepairState<Self>) -> Result<(), PlacementError> {
        online::rebuild_generic(self, state)
    }

    /// Feeds one arriving fault to the online repair engine: records it
    /// in the accumulated set, then absorbs it (O(1)), repairs the
    /// placement locally, or falls back to the full batch rebuild —
    /// always preserving **batch parity** (the outcome and the live
    /// embedding equal what [`try_extract_with`](Self::try_extract_with)
    /// would produce for the accumulated set; see [`crate::online`]).
    /// The default implementation absorbs exact duplicates and rebuilds
    /// for everything else.
    fn apply_fault_incremental(
        &self,
        state: &mut RepairState<Self>,
        fault: Fault,
    ) -> RepairOutcome {
        online::apply_generic(self, state, fault)
    }

    /// Feeds one *repair* (a renewal stream reviving a fault) to the
    /// online engine: removes it from the accumulated set, then absorbs
    /// it, repairs the placement locally, or rebuilds — under the same
    /// batch-parity contract as
    /// [`apply_fault_incremental`](Self::apply_fault_incremental). On a
    /// dead state a repair may *resurrect* the embedding (batch success
    /// is not monotone in the fault set). The default implementation
    /// absorbs no-op revives and rebuilds for everything else.
    fn apply_repair_incremental(
        &self,
        state: &mut RepairState<Self>,
        fault: Fault,
    ) -> RepairOutcome {
        online::apply_repair_generic(self, state, fault)
    }

    /// The host torus shape, when the construction's node ids are
    /// coordinates of a torus (geometry-aware fault streams aim
    /// correlated track bursts at it). `None` for constructions whose
    /// host is not itself a torus.
    fn torus_shape(&self) -> Option<&ftt_geom::Shape> {
        None
    }

    /// Materialises a deferred guest→host map (repairs maintain the
    /// *placement* eagerly; lazy-map constructions rebuild the flat map
    /// only on demand — see [`RepairState::live_embedding`]). No-op by
    /// default: most constructions keep the map current eagerly.
    fn materialize_embedding(&self, _state: &mut RepairState<Self>) {}

    /// Masks `faults` and extracts a fault-free guest torus, reusing
    /// `scratch` across calls — conversion to the construction's own
    /// fault formalism costs `O(#faults)` and performs no steady-state
    /// allocation. `scratch` carries no information between calls.
    fn try_extract_with(
        &self,
        faults: &FaultSet,
        scratch: &mut Self::Scratch,
    ) -> Result<TorusEmbedding, PlacementError>;

    /// One-shot extraction: masks `faults` and extracts a fault-free
    /// guest torus, or reports why the placement machinery could not.
    fn try_extract(&self, faults: &FaultSet) -> Result<TorusEmbedding, PlacementError> {
        let mut scratch = self.new_scratch();
        self.try_extract_with(faults, &mut scratch)
    }

    /// Band placement provenance recorded into certificates:
    /// construction-defined coordinate lists (see
    /// [`EmbeddingCertificate::placement`]). The default records none —
    /// constructions with an explicit banding override it.
    fn placement_provenance(&self, _faults: &FaultSet) -> Vec<Vec<usize>> {
        Vec::new()
    }

    /// Extracts a guest torus for `faults` and freezes the result as an
    /// [`EmbeddingCertificate`] — pure data that `ftt-verify` can
    /// re-validate against only the host graph and the fault set,
    /// independently of the band machinery that produced it. Not a hot
    /// path: certification re-runs placement for provenance.
    fn try_certify(&self, faults: &FaultSet) -> Result<EmbeddingCertificate, PlacementError> {
        let emb = self.try_extract(faults)?;
        Ok(EmbeddingCertificate {
            construction: Self::NAME.to_string(),
            guest_dims: emb.guest.dims().to_vec(),
            map: emb.map,
            host_nodes: self.num_nodes(),
            host_edges: self.num_edges(),
            placement: self.placement_provenance(faults),
        })
    }
}

/// Reusable per-trial buffers for `A^2_n` extraction: the dense
/// node-fault bitmap handed to the goodness classifier (reset via the
/// fault list, `O(#faults)` per trial), the half-edge view of
/// whole-edge faults, and the classification/greedy working sets —
/// everything the Theorem 1 pipeline touches except the returned map
/// itself, so repeated extraction allocates only its output.
#[derive(Debug, Clone)]
pub struct AdnScratch {
    node_faulty: Vec<bool>,
    halves: HalfEdgeFaults,
    goodness: crate::adn::Goodness,
    bad_sus: Vec<usize>,
    /// The fault-free inner embedding, computed once per scratch: in
    /// sparse regimes most trials demote no supernode at all, and then
    /// level 1 is exactly this map — no inner extraction runs.
    pristine_inner: Vec<usize>,
    used: Vec<bool>,
    suspect: Vec<bool>,
}

impl HostConstruction for Bdn {
    type Params = crate::bdn::BdnParams;

    /// Algebraic column-space arithmetic — no stored edges.
    type Oracle = crate::bdn::BdnOracle;

    /// Ascribed node-fault accumulator (bitmap + id list).
    type Scratch = SparseSet;

    /// Dirty `(tile, row)` pairs + the current banding (see
    /// [`crate::online`]).
    type RepairCache = online::BdnRepairCache;

    const NAME: &'static str = "B^d_n";

    fn build(params: Self::Params) -> Self {
        Bdn::build(params)
    }

    fn params(&self) -> &Self::Params {
        Bdn::params(self)
    }

    fn oracle(&self) -> &Self::Oracle {
        Bdn::oracle(self)
    }

    fn materialized_graph(&self) -> Option<&Graph> {
        Bdn::materialized_graph(self)
    }

    fn num_nodes(&self) -> usize {
        Bdn::num_nodes(self)
    }

    fn expected_degree(&self) -> usize {
        Bdn::params(self).expected_degree()
    }

    fn new_scratch(&self) -> SparseSet {
        SparseSet::new(Bdn::num_nodes(self))
    }

    fn new_repair_cache(&self) -> online::BdnRepairCache {
        online::bdn_new_cache(self)
    }

    fn rebuild_repair(&self, state: &mut RepairState<Self>) -> Result<(), PlacementError> {
        online::bdn_rebuild(self, state)
    }

    fn apply_fault_incremental(
        &self,
        state: &mut RepairState<Self>,
        fault: Fault,
    ) -> RepairOutcome {
        online::bdn_apply(self, state, fault)
    }

    fn apply_repair_incremental(
        &self,
        state: &mut RepairState<Self>,
        fault: Fault,
    ) -> RepairOutcome {
        online::bdn_apply_repair(self, state, fault)
    }

    fn materialize_embedding(&self, state: &mut RepairState<Self>) {
        online::bdn_materialize(self, state)
    }

    fn try_extract_with(
        &self,
        faults: &FaultSet,
        scratch: &mut SparseSet,
    ) -> Result<TorusEmbedding, PlacementError> {
        // Edge faults are ascribed to an endpoint as in Section 3; the
        // whole conversion is O(#faults) into the reused sparse set.
        faults.ascribe_into(|e| Bdn::edge_endpoints(self, e), scratch);
        crate::bdn::extract::extract_after_faults_ids(self, scratch.ids())
    }

    /// One row per band: that band's start row in every column.
    fn placement_provenance(&self, faults: &FaultSet) -> Vec<Vec<usize>> {
        let mut ascribed = SparseSet::new(Bdn::num_nodes(self));
        faults.ascribe_into(|e| Bdn::edge_endpoints(self, e), &mut ascribed);
        match crate::bdn::place::place_bands_for_ids(self, ascribed.ids()) {
            Ok(placement) => {
                let banding = &placement.banding;
                (0..banding.num_bands())
                    .map(|band| {
                        (0..banding.num_columns())
                            .map(|z| banding.start(band, z))
                            .collect()
                    })
                    .collect()
            }
            Err(_) => Vec::new(),
        }
    }
}

impl HostConstruction for Adn {
    type Params = crate::adn::AdnParams;

    /// `A²`'s half-edge multigraph is inherently materialised — its CSR
    /// graph *is* the oracle.
    type Oracle = Graph;

    type Scratch = AdnScratch;

    /// Cached goodness classification + nested inner-`B²` repair state
    /// + live-map usage bitmap (see [`crate::online`]).
    type RepairCache = online::AdnRepairCache;

    const NAME: &'static str = "A^2_n";

    fn build(params: Self::Params) -> Self {
        Adn::build(params)
    }

    fn params(&self) -> &Self::Params {
        Adn::params(self)
    }

    fn oracle(&self) -> &Self::Oracle {
        Adn::graph(self)
    }

    fn materialized_graph(&self) -> Option<&Graph> {
        Some(Adn::graph(self))
    }

    fn num_nodes(&self) -> usize {
        Adn::num_nodes(self)
    }

    fn expected_degree(&self) -> usize {
        Adn::params(self).expected_degree()
    }

    fn new_scratch(&self) -> AdnScratch {
        AdnScratch {
            node_faulty: vec![false; Adn::num_nodes(self)],
            halves: HalfEdgeFaults::none(Adn::graph(self).num_edges()),
            goodness: crate::adn::Goodness {
                good_node: Vec::new(),
                good_supernode: Vec::new(),
                good_count: Vec::new(),
            },
            bad_sus: Vec::new(),
            pristine_inner: crate::bdn::extract::extract_after_faults_ids(self.inner(), &[])
                .expect("fault-free inner extraction")
                .map,
            used: Vec::new(),
            suspect: Vec::new(),
        }
    }

    fn new_repair_cache(&self) -> online::AdnRepairCache {
        online::adn_new_cache(self)
    }

    fn rebuild_repair(&self, state: &mut RepairState<Self>) -> Result<(), PlacementError> {
        online::adn_rebuild(self, state)
    }

    fn apply_fault_incremental(
        &self,
        state: &mut RepairState<Self>,
        fault: Fault,
    ) -> RepairOutcome {
        online::adn_apply(self, state, fault)
    }

    fn apply_repair_incremental(
        &self,
        state: &mut RepairState<Self>,
        fault: Fault,
    ) -> RepairOutcome {
        online::adn_apply_repair(self, state, fault)
    }

    fn try_extract_with(
        &self,
        faults: &FaultSet,
        scratch: &mut AdnScratch,
    ) -> Result<TorusEmbedding, PlacementError> {
        // A whole-edge fault is both of its half-edges failing — the
        // worst case of the half-edge model, so goodness thresholds
        // remain valid and the embedding avoids the edge. Every stage
        // runs through reused scratch buffers: fault conversion is
        // O(#faults), and classification + level-2 greedy allocate
        // nothing but the returned map.
        let AdnScratch {
            node_faulty,
            halves,
            goodness,
            bad_sus,
            pristine_inner,
            used,
            suspect,
        } = scratch;
        for v in faults.faulty_nodes() {
            node_faulty[v] = true;
        }
        halves.clear();
        for e in faults.faulty_edges() {
            halves.kill_half(e, 0);
            halves.kill_half(e, 1);
        }
        crate::adn::goodness::classify_into(
            self,
            node_faulty,
            faults.faulty_node_ids(),
            halves,
            goodness,
        );
        bad_sus.clear();
        bad_sus.extend((0..goodness.good_supernode.len()).filter(|&s| !goodness.good_supernode[s]));
        // Level 1: with no bad supernode — the common sparse-regime
        // case — the inner extraction is the cached pristine map.
        let inner_emb;
        let inner_map: &[usize] = if bad_sus.is_empty() {
            pristine_inner
        } else {
            match crate::bdn::extract::extract_after_faults_ids(self.inner(), bad_sus) {
                Ok(emb) => {
                    inner_emb = emb;
                    &inner_emb.map
                }
                Err(e) => {
                    for v in faults.faulty_nodes() {
                        node_faulty[v] = false;
                    }
                    return Err(PlacementError::SupernodeLevelFailed { inner: Box::new(e) });
                }
            }
        };
        let mut map = Vec::new();
        let result = crate::adn::embed::greedy_level2_into(
            self, goodness, halves, inner_map, &mut map, used, suspect,
        )
        .map(|()| {
            let n = Adn::params(self).n();
            TorusEmbedding {
                guest: ftt_geom::Shape::new(vec![n, n]),
                map,
            }
        });
        for v in faults.faulty_nodes() {
            node_faulty[v] = false;
        }
        result
    }
}

/// The Theorem 3 fault reduction for `D^d_{n,k}`: every faulty node,
/// plus the first endpoint of every faulty edge, written into `out`
/// (cleared first). Shared by extraction and certificate provenance so
/// the recorded banding always describes the embedding it accompanies.
/// Edge endpoints come from the algebraic oracle — no graph is ever
/// materialised, whatever the fault mix.
fn ascribe_ddn(host: &Ddn, faults: &FaultSet, out: &mut SparseSet) {
    out.clear();
    for v in faults.faulty_nodes() {
        out.insert(v);
    }
    for e in faults.faulty_edges() {
        out.insert(Ddn::edge_endpoints(host, e).0);
    }
}

/// `D^d_{n,k}`'s adjacency is arithmetic over its host torus shape, so
/// adversarial patterns ([`ftt_faults::AdversarySampler`]) can aim at
/// it directly.
impl ftt_faults::ShapedHost for Ddn {
    fn host_shape(&self) -> &ftt_geom::Shape {
        self.shape()
    }
}

impl HostConstruction for Ddn {
    type Params = crate::ddn::DdnParams;

    /// Algebraic torus + jump-edge arithmetic — no stored edges.
    type Oracle = crate::ddn::DdnOracle;

    /// Ascribed node-fault accumulator (bitmap + id list).
    type Scratch = SparseSet;

    /// Cached pigeonhole tallies + the current straight-band placement
    /// (see [`crate::online`]).
    type RepairCache = online::DdnRepairCache;

    const NAME: &'static str = "D^d_{n,k}";

    fn build(params: Self::Params) -> Self {
        Ddn::new(params)
    }

    fn params(&self) -> &Self::Params {
        Ddn::params(self)
    }

    fn oracle(&self) -> &Self::Oracle {
        Ddn::oracle(self)
    }

    fn materialized_graph(&self) -> Option<&Graph> {
        Ddn::materialized_graph(self)
    }

    fn num_nodes(&self) -> usize {
        self.shape().len()
    }

    fn expected_degree(&self) -> usize {
        Ddn::params(self).expected_degree()
    }

    fn new_scratch(&self) -> SparseSet {
        SparseSet::new(self.shape().len())
    }

    fn new_repair_cache(&self) -> online::DdnRepairCache {
        online::ddn_new_cache(self)
    }

    fn rebuild_repair(&self, state: &mut RepairState<Self>) -> Result<(), PlacementError> {
        online::ddn_rebuild(self, state)
    }

    fn apply_fault_incremental(
        &self,
        state: &mut RepairState<Self>,
        fault: Fault,
    ) -> RepairOutcome {
        online::ddn_apply(self, state, fault)
    }

    fn apply_repair_incremental(
        &self,
        state: &mut RepairState<Self>,
        fault: Fault,
    ) -> RepairOutcome {
        online::ddn_apply_repair(self, state, fault)
    }

    fn torus_shape(&self) -> Option<&ftt_geom::Shape> {
        Some(self.shape())
    }

    fn try_extract_with(
        &self,
        faults: &FaultSet,
        scratch: &mut SparseSet,
    ) -> Result<TorusEmbedding, PlacementError> {
        ascribe_ddn(self, faults, scratch);
        Ddn::try_extract(self, scratch.ids())
    }

    /// One row per axis: that axis's straight-band start coordinates.
    fn placement_provenance(&self, faults: &FaultSet) -> Vec<Vec<usize>> {
        let mut ascribed = SparseSet::new(self.shape().len());
        ascribe_ddn(self, faults, &mut ascribed);
        match crate::ddn::place_straight_bands(self, ascribed.ids()) {
            Ok(banding) => banding.starts,
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adn::AdnParams;
    use crate::bdn::BdnParams;
    use crate::ddn::DdnParams;

    /// Exercises a construction end-to-end through the trait only —
    /// including the adjacency oracle, which is all the verifier sees.
    fn roundtrip<C: HostConstruction>(params: C::Params, kill: &[usize]) {
        let host = C::build(params);
        assert!(
            (0..host.num_nodes()).all(|v| host.oracle().degree(v) == host.expected_degree()),
            "{}",
            C::NAME
        );
        assert_eq!(host.oracle().num_nodes(), host.num_nodes(), "{}", C::NAME);
        assert_eq!(host.oracle().num_edges(), host.num_edges(), "{}", C::NAME);
        let mut faults = FaultSet::none(host.num_nodes(), host.num_edges());
        for &v in kill {
            faults.kill_node(v % host.num_nodes());
        }
        let emb = host
            .try_extract(&faults)
            .unwrap_or_else(|e| panic!("{} extraction failed: {e}", C::NAME));
        ftt_graph::verify_torus_embedding(
            &emb.guest,
            &emb.map,
            host.oracle(),
            |v| faults.node_alive(v),
            |e| faults.edge_alive(e),
        )
        .unwrap_or_else(|e| panic!("{} embedding invalid: {e}", C::NAME));
    }

    #[test]
    fn bdn_through_trait() {
        roundtrip::<Bdn>(BdnParams::new(2, 54, 3, 1).unwrap(), &[1234, 999]);
    }

    #[test]
    fn adn_through_trait() {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        roundtrip::<Adn>(AdnParams::new(inner, 2, 6, 0.0).unwrap(), &[17, 4242]);
    }

    #[test]
    fn ddn_through_trait() {
        roundtrip::<Ddn>(DdnParams::fit(2, 30, 2).unwrap(), &[5, 77, 4001]);
    }

    #[test]
    fn adn_edge_fault_avoided_through_trait() {
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        let host = Adn::build(AdnParams::new(inner, 2, 6, 0.0).unwrap());
        let mut faults = FaultSet::none(
            HostConstruction::num_nodes(&host),
            HostConstruction::num_edges(&host),
        );
        faults.kill_edge(5);
        faults.kill_edge(77_777);
        let emb = HostConstruction::try_extract(&host, &faults).expect("spare capacity");
        ftt_graph::verify_torus_embedding(
            &emb.guest,
            &emb.map,
            HostConstruction::oracle(&host),
            |_| true,
            |e| faults.edge_alive(e),
        )
        .expect("must avoid the killed edges");
    }

    /// Certificates through the trait: claimed sizes match the host,
    /// the map matches `try_extract`, and the hash is deterministic.
    fn certify_roundtrip<C: HostConstruction>(params: C::Params, kill: &[usize]) {
        let host = C::build(params);
        let mut faults = FaultSet::none(host.num_nodes(), host.num_edges());
        for &v in kill {
            faults.kill_node(v % host.num_nodes());
        }
        let cert = host.try_certify(&faults).expect("within tolerance");
        assert_eq!(cert.construction, C::NAME);
        assert_eq!(cert.host_nodes, host.num_nodes(), "{}", C::NAME);
        assert_eq!(cert.host_edges, host.num_edges(), "{}", C::NAME);
        let emb = host.try_extract(&faults).unwrap();
        assert_eq!(cert.guest_dims, emb.guest.dims().to_vec());
        assert_eq!(cert.map, emb.map, "{}", C::NAME);
        let again = host.try_certify(&faults).unwrap();
        assert_eq!(
            cert.content_hash(),
            again.content_hash(),
            "{}: certification must be deterministic",
            C::NAME
        );
    }

    #[test]
    fn certificates_through_trait() {
        certify_roundtrip::<Bdn>(BdnParams::new(2, 54, 3, 1).unwrap(), &[1234, 999]);
        let inner = BdnParams::new(2, 54, 3, 1).unwrap();
        certify_roundtrip::<Adn>(AdnParams::new(inner, 2, 6, 0.0).unwrap(), &[17, 4242]);
        certify_roundtrip::<Ddn>(DdnParams::fit(2, 30, 2).unwrap(), &[5, 77, 4001]);
    }

    #[test]
    fn certificate_placement_provenance_present() {
        // B and D record their bandings; different faults, different
        // placements, different hashes.
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let g_edges = HostConstruction::num_edges(&host);
        let n = HostConstruction::num_nodes(&host);
        let mut a = FaultSet::none(n, g_edges);
        a.kill_node(7);
        let cert_a = host.try_certify(&a).unwrap();
        assert_eq!(cert_a.placement.len(), 2, "one start list per axis");
        for (axis, starts) in cert_a.placement.iter().enumerate() {
            assert_eq!(starts.len(), host.params().num_bands(axis));
        }
        // A fault two rows down sits in a different axis-0 residue
        // class, forcing a different anchor choice and banding (faults
        // in the *same* slot would certify identically — correctly so).
        let mut b = FaultSet::none(n, g_edges);
        b.kill_node(7 + 2 * host.params().m());
        let cert_b = host.try_certify(&b).unwrap();
        assert_ne!(cert_a.content_hash(), cert_b.content_hash());

        let bdn = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let mut f = FaultSet::none(
            HostConstruction::num_nodes(&bdn),
            HostConstruction::num_edges(&bdn),
        );
        f.kill_node(100);
        let cert = HostConstruction::try_certify(&bdn, &f).unwrap();
        assert!(!cert.placement.is_empty(), "B^d_n records its banding");
    }

    #[test]
    fn ddn_edge_fault_ascribed_through_trait() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let num_edges = HostConstruction::num_edges(&host);
        let mut faults = FaultSet::none(HostConstruction::num_nodes(&host), num_edges);
        faults.kill_edge(3);
        faults.kill_node(10);
        let emb = HostConstruction::try_extract(&host, &faults).expect("within budget");
        ftt_graph::verify_torus_embedding(
            &emb.guest,
            &emb.map,
            HostConstruction::oracle(&host),
            |v| faults.node_alive(v),
            |e| faults.edge_alive(e),
        )
        .expect("must avoid the faulty edge and node");
        assert!(
            host.materialized_graph().is_none(),
            "edge-fault ascription must not materialise the D^d host"
        );
    }
}
