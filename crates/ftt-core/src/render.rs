//! ASCII rendering of bandings and fault maps (the paper's Figures 1–2
//! as reusable, testable output).
//!
//! Conventions: rows of the host torus top-to-bottom, columns
//! left-to-right; `.` unmasked, a digit = masking band id (mod 10),
//! `X` a faulty node (always inside a band for valid placements), `o`
//! nodes of a highlighted walk (e.g. one extracted guest row).

use crate::band::Banding;
use ftt_geom::ColumnSpace;

/// Renders a 2-dimensional banding (`d = 2` hosts only) with optional
/// fault and highlight overlays.
///
/// * `faulty` — optional per-node fault bitmap (marks `X`);
/// * `walk` — optional per-column heights to mark `o` (e.g. a jump path).
///
/// # Panics
/// Panics if the column space is not 1-dimensional (rendering a `d ≥ 3`
/// host as text is not meaningful).
pub fn render_banding(
    banding: &Banding,
    cols: &ColumnSpace,
    faulty: Option<&[bool]>,
    walk: Option<&[usize]>,
) -> String {
    assert_eq!(
        cols.column_shape().ndim(),
        1,
        "render_banding requires a 2-D host (1-D column space)"
    );
    let owner = banding
        .mask_owner(cols)
        .expect("cannot render an overlapping banding");
    let (m, nc) = (cols.m(), cols.num_columns());
    let mut out = String::with_capacity((m + 1) * (nc + 1));
    for i in 0..m {
        for z in 0..nc {
            let node = cols.node(i, z);
            let ch = if walk.is_some_and(|w| w.get(z) == Some(&i)) {
                'o'
            } else if faulty.is_some_and(|f| f[node]) {
                'X'
            } else if owner[node] != 0 {
                char::from_digit((owner[node] - 1) % 10, 10).unwrap()
            } else {
                '.'
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Renders the per-axis masks of a `D^d_{n,k}` banding as one line per
/// axis: `#` masked coordinate, `.` unmasked.
pub fn render_ddn_axes(ddn: &crate::ddn::Ddn, banding: &crate::ddn::DdnBanding) -> String {
    let p = *ddn.params();
    let mut out = String::new();
    for axis in 0..p.d {
        out.push_str(&format!("axis {axis} (width {:2}): ", p.band_width(axis)));
        let unmasked: std::collections::HashSet<usize> =
            banding.unmasked(ddn, axis).into_iter().collect();
        for x in 0..p.m() {
            out.push(if unmasked.contains(&x) { '.' } else { '#' });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddn::{place_straight_bands, Ddn, DdnParams};

    #[test]
    fn render_marks_bands_and_faults() {
        let cols = ColumnSpace::new(8, &[4]);
        let banding = Banding::new(vec![vec![2; 4]], 2, 8, 4);
        let mut faulty = vec![false; 32];
        faulty[cols.node(3, 1)] = true; // inside the band
        let art = render_banding(&banding, &cols, Some(&faulty), None);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "....");
        assert_eq!(lines[2], "0000");
        assert_eq!(lines[3], "0X00");
        assert_eq!(lines[4], "....");
    }

    #[test]
    fn render_marks_walk() {
        let cols = ColumnSpace::new(6, &[3]);
        let banding = Banding::new(vec![vec![0; 3]], 1, 6, 3);
        let walk = vec![3usize, 4, 3];
        let art = render_banding(&banding, &cols, None, Some(&walk));
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[3], "o.o");
        assert_eq!(lines[4], ".o.");
    }

    #[test]
    fn render_ddn_masks() {
        let params = DdnParams::fit(2, 30, 2).unwrap();
        let ddn = Ddn::new(params);
        let banding = place_straight_bands(&ddn, &[5]).unwrap();
        let art = render_ddn_axes(&ddn, &banding);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        for (axis, line) in lines.iter().enumerate() {
            let masked = line.chars().filter(|&c| c == '#').count();
            assert_eq!(
                masked,
                params.num_bands(axis) * params.band_width(axis),
                "axis {axis}"
            );
        }
    }
}
