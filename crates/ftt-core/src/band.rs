//! Bands: the masking formalism of Lemmas 6–8.
//!
//! A *band* is a mapping `β : columns → [m]` with `|β(z) − β(z′)| ≤ 1`
//! (cyclically) for adjacent columns `z, z′`; it masks, in every column,
//! the `width` consecutive rows starting at `β(z)`. A [`Banding`] is a
//! set of bands; it is *valid* when every band satisfies the slope
//! condition and the bands are mutually *untouching*: in every column,
//! cyclic gaps between consecutive band starts are at least `width + 1`
//! (equivalently, at least one unmasked row separates any two masked
//! arcs).
//!
//! Lemma 6 says a valid banding with `(m−n)/width` bands leaves exactly
//! `n` unmasked rows per column and the unmasked nodes form a copy of the
//! torus; extraction lives in [`crate::bdn::extract`].

use crate::error::PlacementError;
use ftt_geom::{ColumnSpace, CyclicInterval, CyclicRing};

/// A set of bands over a [`ColumnSpace`], each masking `width` rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Banding {
    /// `starts[band][column]` = `β_band(column)`.
    starts: Vec<Vec<usize>>,
    width: usize,
    m: usize,
    num_columns: usize,
}

impl Banding {
    /// Wraps band start values. `starts[band][column]` must be in
    /// `[0, m)`; call [`Banding::validate`] to check the band axioms.
    pub fn new(starts: Vec<Vec<usize>>, width: usize, m: usize, num_columns: usize) -> Self {
        assert!(width > 0, "band width must be positive");
        for band in &starts {
            assert_eq!(band.len(), num_columns, "band with wrong column count");
            assert!(band.iter().all(|&s| s < m), "band start out of range");
        }
        Self {
            starts,
            width,
            m,
            num_columns,
        }
    }

    /// Number of bands.
    #[inline]
    pub fn num_bands(&self) -> usize {
        self.starts.len()
    }

    /// Mask width `b` of every band.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Vertical extent `m` of the host torus.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of columns.
    #[inline]
    pub fn num_columns(&self) -> usize {
        self.num_columns
    }

    /// `β_band(column)`.
    #[inline]
    pub fn start(&self, band: usize, column: usize) -> usize {
        self.starts[band][column]
    }

    /// Mutable access to one band's start row, for the tile-local
    /// repaint path (`crate::bdn::place::repaint_tile_local`), which
    /// rewrites exactly the bands of a dirtied tile row in place. The
    /// caller is responsible for re-establishing the band axioms
    /// ([`Banding::validate`]-level invariants) before the banding is
    /// used again.
    #[inline]
    pub(crate) fn band_mut(&mut self, band: usize) -> &mut Vec<usize> {
        &mut self.starts[band]
    }

    /// Allocation-reusing copy of `other`'s start rows (the repair
    /// engine restores a memoised fault-free banding on every trial
    /// reset, so this must not reallocate the per-band buffers).
    pub(crate) fn copy_starts_from(&mut self, other: &Banding) {
        debug_assert_eq!(
            (self.width, self.m, self.num_columns),
            (other.width, other.m, other.num_columns),
            "copy_starts_from across differently-shaped bandings"
        );
        self.starts.clone_from(&other.starts);
    }

    /// The masked arc of `band` in `column`.
    #[inline]
    pub fn footprint(&self, band: usize, column: usize) -> CyclicInterval {
        CyclicInterval::new(self.starts[band][column], self.width, self.m)
    }

    /// Whether node `(i, column)` is masked by some band.
    pub fn masks(&self, i: usize, column: usize) -> bool {
        (0..self.num_bands()).any(|b| self.footprint(b, column).contains(i))
    }

    /// Per-node mask ownership: `owner[node] = band index + 1`, or `0`
    /// for unmasked, with nodes indexed as `i * num_columns + column`.
    /// Errors if two bands overlap (invalid banding).
    pub fn mask_owner(&self, cols: &ColumnSpace) -> Result<Vec<u32>, PlacementError> {
        assert_eq!(cols.m(), self.m);
        assert_eq!(cols.num_columns(), self.num_columns);
        let mut owner = vec![0u32; cols.len()];
        for band in 0..self.num_bands() {
            for z in 0..self.num_columns {
                for i in self.footprint(band, z).iter() {
                    let node = cols.node(i, z);
                    if owner[node] != 0 {
                        return Err(PlacementError::InvalidBanding {
                            reason: format!(
                                "bands {} and {band} overlap at node ({i}, {z})",
                                owner[node] - 1
                            ),
                        });
                    }
                    owner[node] = band as u32 + 1;
                }
            }
        }
        Ok(owner)
    }

    /// Checks the band axioms: slope ≤ 1 between adjacent columns for
    /// every band, and mutual untouching (cyclic start gaps ≥ width+1 in
    /// every column). `cols` supplies column adjacency.
    pub fn validate(&self, cols: &ColumnSpace) -> Result<(), PlacementError> {
        assert_eq!(cols.m(), self.m);
        assert_eq!(cols.num_columns(), self.num_columns);
        let ring = CyclicRing::new(self.m);
        // Slope condition per band.
        for (bi, band) in self.starts.iter().enumerate() {
            for z in 0..self.num_columns {
                for z2 in cols.adjacent_columns_iter(z) {
                    let off = ring.offset(band[z], band[z2]);
                    if off.unsigned_abs() > 1 {
                        return Err(PlacementError::InvalidBanding {
                            reason: format!(
                                "band {bi} jumps by {off} between adjacent columns {z} and {z2}"
                            ),
                        });
                    }
                }
            }
        }
        // Untouching: per column, sort starts and check cyclic gaps
        // (one reused buffer — this runs per placement trial).
        if self.num_bands() >= 1 {
            let mut ss: Vec<usize> = Vec::with_capacity(self.num_bands());
            for z in 0..self.num_columns {
                ss.clear();
                ss.extend(self.starts.iter().map(|band| band[z]));
                ss.sort_unstable();
                let k = ss.len();
                for i in 0..k {
                    let cur = ss[i];
                    let next = ss[(i + 1) % k];
                    let gap = if k == 1 {
                        self.m // single band: gap to itself is the whole cycle
                    } else {
                        ring.sub(next, cur)
                    };
                    if gap < self.width + 1 {
                        return Err(PlacementError::InvalidBanding {
                            reason: format!(
                                "bands touch in column {z}: starts {cur} and {next} (gap {gap}, need ≥ {})",
                                self.width + 1
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks that every given faulty node `(i, column)` is masked.
    pub fn masks_all(
        &self,
        faults: impl Iterator<Item = (usize, usize)>,
    ) -> Result<(), PlacementError> {
        for (i, z) in faults {
            if !self.masks(i, z) {
                return Err(PlacementError::InvalidBanding {
                    reason: format!("fault at ({i}, {z}) is unmasked"),
                });
            }
        }
        Ok(())
    }

    /// Unmasked rows of `column`, ascending.
    pub fn unmasked_rows(&self, column: usize) -> Vec<usize> {
        let mut masked = vec![false; self.m];
        for band in 0..self.num_bands() {
            for i in self.footprint(band, column).iter() {
                masked[i] = true;
            }
        }
        (0..self.m).filter(|&i| !masked[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols_2d(m: usize, n: usize) -> ColumnSpace {
        ColumnSpace::cube(m, n, 2)
    }

    /// Two straight bands on a 2-D column space.
    fn straight_banding() -> (Banding, ColumnSpace) {
        let cols = cols_2d(16, 8);
        let b = Banding::new(vec![vec![0; 8], vec![8; 8]], 2, 16, 8);
        (b, cols)
    }

    #[test]
    fn straight_bands_valid() {
        let (b, cols) = straight_banding();
        assert!(b.validate(&cols).is_ok());
        assert_eq!(b.num_bands(), 2);
    }

    #[test]
    fn footprint_and_masks() {
        let (b, _) = straight_banding();
        assert!(b.masks(0, 3));
        assert!(b.masks(1, 3));
        assert!(!b.masks(2, 3));
        assert!(b.masks(8, 0));
        assert!(b.masks(9, 0));
        assert!(!b.masks(10, 0));
    }

    #[test]
    fn unmasked_rows_count() {
        let (b, _) = straight_banding();
        let rows = b.unmasked_rows(0);
        assert_eq!(rows.len(), 16 - 2 * 2);
        assert!(!rows.contains(&0));
        assert!(!rows.contains(&9));
        assert!(rows.contains(&2));
    }

    #[test]
    fn slope_violation_detected() {
        let cols = cols_2d(16, 4);
        // band start jumps by 2 between columns 1 and 2
        let b = Banding::new(vec![vec![0, 0, 2, 1]], 2, 16, 4);
        let err = b.validate(&cols).unwrap_err();
        assert!(matches!(err, PlacementError::InvalidBanding { .. }));
    }

    #[test]
    fn slope_wraps_across_m() {
        let cols = cols_2d(16, 4);
        // 15 and 0 are cyclically adjacent: slope 1, valid
        let b = Banding::new(vec![vec![15, 0, 15, 0]], 2, 16, 4);
        assert!(b.validate(&cols).is_ok());
    }

    #[test]
    fn touching_bands_detected() {
        let cols = cols_2d(16, 4);
        // widths 2: starts 0 and 2 → gap 2 < 3 → touching
        let b = Banding::new(vec![vec![0; 4], vec![2; 4]], 2, 16, 4);
        let err = b.validate(&cols).unwrap_err();
        assert!(matches!(err, PlacementError::InvalidBanding { .. }));
    }

    #[test]
    fn wrap_gap_checked() {
        let cols = cols_2d(16, 4);
        // starts 0 and 14, width 2: forward gap 14→0 is 2 < 3 → touching
        let b = Banding::new(vec![vec![0; 4], vec![14; 4]], 2, 16, 4);
        assert!(b.validate(&cols).is_err());
        // starts 0 and 13: gap 13→0 is 3 ≥ 3 → fine
        let b = Banding::new(vec![vec![0; 4], vec![13; 4]], 2, 16, 4);
        assert!(b.validate(&cols).is_ok());
    }

    #[test]
    fn winding_band_valid() {
        // A band that gradually winds around the torus (slope 1 per step).
        let cols = cols_2d(8, 8);
        let starts: Vec<usize> = (0..8).map(|z| z.min(8 - z) % 8).collect();
        // starts = [0,1,2,3,4,3,2,1]: adjacent diffs ±1, wrap 1→0 ok
        let b = Banding::new(vec![starts], 2, 8, 8);
        assert!(b.validate(&cols).is_ok());
    }

    #[test]
    fn mask_owner_detects_overlap() {
        let cols = cols_2d(16, 4);
        let good = Banding::new(vec![vec![0; 4], vec![8; 4]], 2, 16, 4);
        let owner = good.mask_owner(&cols).unwrap();
        assert_eq!(owner.iter().filter(|&&o| o != 0).count(), 2 * 2 * 4);
        let bad = Banding::new(vec![vec![0; 4], vec![1; 4]], 2, 16, 4);
        assert!(bad.mask_owner(&cols).is_err());
    }

    #[test]
    fn masks_all_reports_unmasked_fault() {
        let (b, _) = straight_banding();
        assert!(b.masks_all([(0usize, 0usize), (9, 5)].into_iter()).is_ok());
        assert!(b.masks_all([(5usize, 0usize)].into_iter()).is_err());
    }

    #[test]
    fn single_band_untouching_trivially() {
        let cols = cols_2d(16, 4);
        let b = Banding::new(vec![vec![3; 4]], 4, 16, 4);
        assert!(b.validate(&cols).is_ok());
        assert_eq!(b.unmasked_rows(0).len(), 12);
    }

    #[test]
    fn three_dimensional_columns() {
        let cols = ColumnSpace::cube(12, 4, 3); // columns form a 4×4 torus
        let b = Banding::new(vec![vec![0; 16], vec![6; 16]], 3, 12, 16);
        assert!(b.validate(&cols).is_ok());
        assert_eq!(b.unmasked_rows(5).len(), 6);
    }
}
