//! Straight-band placement and extraction for `D^d_{n,k}`
//! (proof of Theorem 13 generalised to all `d`).
//!
//! Dimension by dimension: project the not-yet-masked faults onto the
//! axis, pick the anchor residue class (mod `b_i+1`) containing the
//! fewest projected faults, mask every off-anchor fault with a
//! slot-aligned band, and defer the on-anchor faults to the next
//! dimension. The pigeonhole arithmetic of the paper guarantees the
//! budgets work out whenever the total fault count is at most
//! `k = b^{2^d − 1}`; the implementation verifies every step and fails
//! gracefully on over-budget inputs (used by the "exceed the bound"
//! experiments).

use super::Ddn;
use crate::bdn::extract::TorusEmbedding;
use crate::error::PlacementError;

/// Straight bands per dimension: `starts[i]` is the ascending list of
/// band start coordinates along axis `i` (each band masks
/// `band_width(i)` consecutive coordinates, and the starts are exactly
/// the `k_i` required).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdnBanding {
    /// Band start coordinates per axis.
    pub starts: Vec<Vec<usize>>,
}

impl DdnBanding {
    /// Whether coordinate `x` on axis `i` is masked. Bands may wrap the
    /// cycle (the slot straddling coordinate 0 does when the anchor class
    /// is nonzero).
    pub fn masks(&self, ddn: &Ddn, axis: usize, x: usize) -> bool {
        let w = ddn.params().band_width(axis);
        let m = ddn.params().m();
        self.starts[axis].iter().any(|&s| (x + m - s) % m < w)
    }

    /// Unmasked coordinates of axis `i`, ascending (length `n`).
    pub fn unmasked(&self, ddn: &Ddn, axis: usize) -> Vec<usize> {
        let m = ddn.params().m();
        let mut masked = vec![false; m];
        let w = ddn.params().band_width(axis);
        for &s in &self.starts[axis] {
            for off in 0..w {
                masked[(s + off) % m] = true;
            }
        }
        (0..m).filter(|&x| !masked[x]).collect()
    }
}

/// Places the straight bands of Theorem 3 masking all `faulty_nodes`.
///
/// Every fault must end up masked in at least one dimension; errors with
/// [`PlacementError::TooManyFaults`]-style diagnostics when the
/// pigeonhole budgets are exceeded (possible only when more than `k`
/// faults are presented).
pub fn place_straight_bands(
    ddn: &Ddn,
    faulty_nodes: &[usize],
) -> Result<DdnBanding, PlacementError> {
    let p = *ddn.params();
    let m = p.m();
    let shape = ddn.shape();
    // Remaining (deferred) faults, as node ids.
    let mut remaining: Vec<usize> = faulty_nodes.to_vec();
    remaining.sort_unstable();
    remaining.dedup();
    let mut starts: Vec<Vec<usize>> = Vec::with_capacity(p.d);
    for axis in 0..p.d {
        let w = p.band_width(axis);
        let quota = p.num_bands(axis);
        let period = w + 1;
        let num_slots = m / period; // (w+1) | m by parameter validation
        debug_assert_eq!(m % period, 0);
        // Choose the anchor class with the fewest projected faults.
        let mut class_counts = vec![0usize; period];
        for &v in &remaining {
            class_counts[shape.coord_of(v, axis) % period] += 1;
        }
        let best_class = (0..period)
            .min_by_key(|&c| class_counts[c])
            .expect("period ≥ 2");
        // Anchors: coordinates ≡ best_class (mod period). Slots: the w
        // coordinates after each anchor. Mask dirty slots.
        let mut slot_dirty = vec![false; num_slots];
        let mut next_remaining = Vec::new();
        for &v in &remaining {
            let x = shape.coord_of(v, axis);
            if x % period == best_class {
                next_remaining.push(v); // deferred to the next axis
            } else {
                // slot index: which anchor precedes x (cyclically)
                let rel = (x + m - best_class) % m;
                slot_dirty[rel / period] = true;
            }
        }
        let dirty = slot_dirty.iter().filter(|&&d| d).count();
        if dirty > quota {
            return Err(PlacementError::TooManyFaults {
                presented: remaining.len(),
                tolerated: p.tolerated_faults(),
            });
        }
        // Exactly `quota` bands: dirty slots first, then arbitrary clean
        // slots (num_slots ≥ quota because n ≥ k_i).
        debug_assert!(num_slots >= quota, "n ≥ k guarantees enough slots");
        let mut axis_starts: Vec<usize> = Vec::with_capacity(quota);
        for (slot, &d) in slot_dirty.iter().enumerate() {
            if d {
                axis_starts.push((best_class + 1 + slot * period) % m);
            }
        }
        for (slot, &d) in slot_dirty.iter().enumerate() {
            if axis_starts.len() == quota {
                break;
            }
            if !d {
                axis_starts.push((best_class + 1 + slot * period) % m);
            }
        }
        debug_assert_eq!(axis_starts.len(), quota);
        axis_starts.sort_unstable();
        starts.push(axis_starts);
        remaining = next_remaining;
    }
    if !remaining.is_empty() {
        return Err(PlacementError::TooManyFaults {
            presented: faulty_nodes.len(),
            tolerated: p.tolerated_faults(),
        });
    }
    Ok(DdnBanding { starts })
}

/// Places bands and extracts the guest torus embedding. Because the
/// bands are straight, extraction is per-axis: the unmasked coordinates
/// of each axis (gaps of 1 bridged by torus edges, gaps of `b_i+1`
/// bridged by jump edges) index the guest torus directly.
pub fn extract_after_faults(
    ddn: &Ddn,
    faulty_nodes: &[usize],
) -> Result<TorusEmbedding, PlacementError> {
    let banding = place_straight_bands(ddn, faulty_nodes)?;
    extract_torus(ddn, &banding, faulty_nodes)
}

/// Extraction given a banding (checked against the fault list).
pub fn extract_torus(
    ddn: &Ddn,
    banding: &DdnBanding,
    faulty_nodes: &[usize],
) -> Result<TorusEmbedding, PlacementError> {
    let p = *ddn.params();
    // Per-axis unmasked coordinates and gap audit.
    let mut axes: Vec<Vec<usize>> = Vec::with_capacity(p.d);
    for axis in 0..p.d {
        let u = banding.unmasked(ddn, axis);
        if u.len() != p.n {
            return Err(PlacementError::InvalidBanding {
                reason: format!(
                    "axis {axis}: {} unmasked coordinates, want n = {}",
                    u.len(),
                    p.n
                ),
            });
        }
        let (m, w) = (p.m(), p.band_width(axis));
        for i in 0..u.len() {
            let gap = (u[(i + 1) % u.len()] + m - u[i]) % m;
            if gap != 1 && gap != w + 1 {
                return Err(PlacementError::InvalidBanding {
                    reason: format!("axis {axis}: unmasked gap {gap}"),
                });
            }
        }
        axes.push(u);
    }
    // Map: guest coord (g_0, …) → host coord (axes[0][g_0], …).
    // Odometer iteration: the host index is maintained incrementally from
    // per-axis stride contributions, so giant guests (10⁷–10⁸ nodes) cost
    // zero allocations beyond the map itself.
    let guest = p.guest_shape();
    let host = ddn.shape();
    let mut map = vec![0usize; guest.len()];
    let d = p.d;
    let mut coord = vec![0usize; d];
    let mut h: usize = (0..d).map(|a| axes[a][0] * host.stride(a)).sum();
    for slot in map.iter_mut() {
        *slot = h;
        for a in (0..d).rev() {
            let old = axes[a][coord[a]] * host.stride(a);
            coord[a] += 1;
            if coord[a] < guest.dim(a) {
                h = h - old + axes[a][coord[a]] * host.stride(a);
                break;
            }
            coord[a] = 0;
            h = h - old + axes[a][0] * host.stride(a);
        }
    }
    // All faults must be masked (map avoids them by construction; audit).
    let fault_set: std::collections::HashSet<usize> = faulty_nodes.iter().copied().collect();
    for &h in &map {
        if fault_set.contains(&h) {
            return Err(PlacementError::InvalidBanding {
                reason: format!("extracted torus uses faulty node {h}"),
            });
        }
    }
    Ok(TorusEmbedding { guest, map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddn::DdnParams;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn ddn_d2() -> Ddn {
        Ddn::new(DdnParams::fit(2, 30, 2).unwrap()) // k = 8, m = 45, n = 29
    }

    /// Verifies an embedding arithmetically against the implicit graph.
    fn verify(ddn: &Ddn, emb: &TorusEmbedding, faults: &[usize]) {
        let fs: std::collections::HashSet<usize> = faults.iter().copied().collect();
        // injectivity and liveness
        let mut seen = std::collections::HashSet::new();
        for &h in &emb.map {
            assert!(seen.insert(h), "map not injective");
            assert!(!fs.contains(&h), "uses faulty node");
        }
        // edges
        for g in emb.guest.iter() {
            for axis in 0..emb.guest.ndim() {
                let g2 = emb.guest.torus_step(g, axis, 1);
                assert!(
                    ddn.edge_exists(emb.map[g], emb.map[g2]),
                    "guest edge {g}-{g2} not carried"
                );
            }
        }
    }

    #[test]
    fn no_faults_extracts() {
        let ddn = ddn_d2();
        let emb = ddn.try_extract(&[]).unwrap();
        assert_eq!(emb.len(), ddn.params().n.pow(2));
        verify(&ddn, &emb, &[]);
    }

    #[test]
    fn exactly_k_random_faults_always_extract() {
        let ddn = ddn_d2();
        let k = ddn.params().tolerated_faults();
        let mut rng = SmallRng::seed_from_u64(5);
        for trial in 0..50 {
            let faults: Vec<usize> = (0..k)
                .map(|_| rng.gen_range(0..ddn.shape().len()))
                .collect();
            let emb = ddn
                .try_extract(&faults)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            verify(&ddn, &emb, &faults);
        }
    }

    #[test]
    fn clustered_k_faults_extract() {
        let ddn = ddn_d2();
        let k = ddn.params().tolerated_faults();
        // a contiguous run of k nodes
        let faults: Vec<usize> = (1000..1000 + k).collect();
        let emb = ddn.try_extract(&faults).unwrap();
        verify(&ddn, &emb, &faults);
    }

    #[test]
    fn single_row_k_faults_extract() {
        let ddn = ddn_d2();
        let k = ddn.params().tolerated_faults();
        let m = ddn.params().m();
        // k faults spread along one row (same axis-0 coordinate)
        let faults: Vec<usize> = (0..k).map(|j| 7 * m + j * 5).collect();
        let emb = ddn.try_extract(&faults).unwrap();
        verify(&ddn, &emb, &faults);
    }

    #[test]
    fn anchor_attacking_faults_extract() {
        // Faults placed on many distinct residues mod (b+1) to stress the
        // class choice.
        let ddn = ddn_d2();
        let k = ddn.params().tolerated_faults();
        let m = ddn.params().m();
        let faults: Vec<usize> = (0..k).map(|j| (j % m) * m + j).collect();
        let emb = ddn.try_extract(&faults).unwrap();
        verify(&ddn, &emb, &faults);
    }

    #[test]
    fn d1_tolerates_k() {
        let ddn = Ddn::new(DdnParams::fit(1, 30, 3).unwrap()); // k = 3
        let faults = vec![0, 10, 20];
        let emb = ddn.try_extract(&faults).unwrap();
        verify(&ddn, &emb, &faults);
        assert_eq!(emb.len(), ddn.params().n);
    }

    #[test]
    fn d3_small_instance() {
        // d=3, b=1: k = 1 fault, m = n + 1, every (b_i+1) = 2 must divide m.
        let ddn = Ddn::new(DdnParams::fit(3, 9, 1).unwrap());
        let faults = vec![123 % ddn.shape().len()];
        let emb = ddn.try_extract(&faults).unwrap();
        verify(&ddn, &emb, &faults);
    }

    #[test]
    fn over_budget_eventually_errors() {
        // Way beyond k: the pigeonhole must eventually fail (we craft a
        // pattern dirtying more slots than the quota).
        let ddn = ddn_d2();
        let m = ddn.params().m();
        // every third coordinate of axis 0 faulty in distinct columns →
        // way more than quota dirty slots
        let faults: Vec<usize> = (0..m / 2).map(|j| (2 * j % m) * m + (j % m)).collect();
        assert!(ddn.try_extract(&faults).is_err());
    }

    #[test]
    fn d3_large_instance_placement_geometry_only() {
        // d = 3, b = 2: k = 128, m = n + 256. The host has m³ ≈ 16M
        // nodes, far too big to materialise — but placement and the
        // per-axis masks are O(m·d + k), so the full three-level
        // deferral recursion is exercised at scale without the graph.
        let params = DdnParams::fit(3, 128, 2).unwrap();
        let ddn = Ddn::new(params);
        let k = params.tolerated_faults();
        assert_eq!(k, 128);
        let mut rng = SmallRng::seed_from_u64(77);
        let faults: Vec<usize> = (0..k)
            .map(|_| rng.gen_range(0..ddn.shape().len()))
            .collect();
        let banding = place_straight_bands(&ddn, &faults).expect("Theorem 3 d=3");
        // every fault masked in at least one axis; per-axis band counts
        for &v in &faults {
            let masked =
                (0..3).any(|axis| banding.masks(&ddn, axis, ddn.shape().coord_of(v, axis)));
            assert!(masked, "fault {v} unmasked");
        }
        for axis in 0..3 {
            assert_eq!(banding.starts[axis].len(), params.num_bands(axis));
            assert_eq!(banding.unmasked(&ddn, axis).len(), params.n);
        }
    }

    #[test]
    fn forced_three_level_deferral() {
        // Faults stacked on single residue classes of axes 0 and 1 so
        // they defer twice and must be resolved by axis 2.
        let params = DdnParams::fit(3, 9, 1).unwrap(); // b = 1, k = 1, periods all 2
        let ddn = Ddn::new(params);
        let m = params.m();
        // one fault; craft coords so axes 0 and 1 both see it in their
        // (unique) best class... with k = 1 any placement works; instead
        // use d = 2 with b = 2 and k = 8 faults all sharing one column
        // class and spread across row classes.
        let _ = (ddn, m);
        let params = DdnParams::fit(2, 40, 2).unwrap();
        let ddn = Ddn::new(params);
        let m = params.m();
        let period0 = params.band_width(0) + 1; // 3
                                                // all faults at axis-0 residue 1, in distinct columns: axis 0's
                                                // best class is 1 (all others empty? no—class 1 holds all 8, so
                                                // best class is 0 or 2 with zero faults; they all get masked by
                                                // axis-0 bands then). To force deferral, realise best-class
                                                // faults: spread over ALL residues except leave class 1 the
                                                // lightest, then its faults defer to axis 1.
        let mut faults = Vec::new();
        for j in 0..8 {
            let x = if j < 7 {
                (j % 2) * period0 + (j % period0)
            } else {
                1
            };
            let y = 5 * j + 2;
            faults.push(ddn.shape().flatten(&[x % m, y % m]));
        }
        let banding = place_straight_bands(&ddn, &faults).expect("placement");
        for &v in &faults {
            let masked =
                (0..2).any(|axis| banding.masks(&ddn, axis, ddn.shape().coord_of(v, axis)));
            assert!(masked);
        }
    }

    #[test]
    fn banding_shape_matches_quota() {
        let ddn = ddn_d2();
        let banding = place_straight_bands(&ddn, &[42]).unwrap();
        for axis in 0..2 {
            assert_eq!(
                banding.starts[axis].len(),
                ddn.params().num_bands(axis),
                "axis {axis}"
            );
        }
    }

    #[test]
    fn mesh_contained_in_extracted_torus() {
        // check that mesh (non-wrap) edges are carried too — immediate
        // since mesh edges are a subset of torus edges, but exercised for
        // the public claim.
        let ddn = ddn_d2();
        let faults = vec![5, 500, 900];
        let emb = ddn.try_extract(&faults).unwrap();
        for g in emb.guest.iter() {
            for axis in 0..2 {
                if let Some(g2) = emb.guest.mesh_step(g, axis, 1) {
                    assert!(ddn.edge_exists(emb.map[g], emb.map[g2]));
                }
            }
        }
    }
}
