//! Algebraic adjacency oracle for `D^d_{n,k}` — the host without edges.
//!
//! `D^d_{n,k}` is an `m^d` torus plus jump edges: along axis `i`, node
//! `v` is joined to `v ±_m 1` (torus) and `v ±_m (b_i + 1)` (jump).
//! Every adjacency question is therefore modular arithmetic on
//! `(params, node_id)` — nothing needs storing, which is what lets one
//! machine run instances with 10⁸⁺ nodes.
//!
//! ## Canonical edge numbering
//!
//! Edge ids reproduce [`super::Ddn::build_graph`]'s insertion order
//! byte-for-byte: the builder walks nodes `v = 0, 1, …` and per node
//! adds, for each axis, the `+1` torus edge then the `+(b_i+1)` jump —
//! so the undirected edge leaving `v` along `axis` is
//!
//! ```text
//! e = v·2d + 2·axis + {0 = torus (+1), 1 = jump (+(b_i+1))}
//! ```
//!
//! and `num_edges = 2d·m^d`. Fault sets, journals, and certificates
//! keyed on these ids are interchangeable between the algebraic oracle
//! and a materialised CSR host. Parameter validation guarantees
//! `m > 2(b_i + 1)`, so all `4d` arcs of a node are distinct and the
//! degree is exactly `4d` — the same simple-graph regime the builder
//! produces.

use super::DdnParams;
use ftt_geom::Shape;
use ftt_graph::AdjacencyOracle;

/// Upper bound on arcs per node: `4d` with `d ≤ 4`.
const MAX_ARCS: usize = 16;

/// Implicit `D^d_{n,k}` adjacency: answers every [`AdjacencyOracle`]
/// query from `(params, node_id)` arithmetic in `O(d log d)` time and
/// zero heap.
#[derive(Debug, Clone)]
pub struct DdnOracle {
    params: DdnParams,
    shape: Shape,
}

impl DdnOracle {
    /// Builds the oracle for validated parameters.
    pub fn new(params: DdnParams) -> Self {
        let shape = params.host_shape();
        assert!(
            shape
                .len()
                .checked_mul(2 * params.d)
                .is_some_and(|e| e <= u32::MAX as usize),
            "edge ids must fit u32 for FaultSet/CSR interchangeability"
        );
        Self { params, shape }
    }

    /// The instance parameters.
    #[inline]
    pub fn params(&self) -> &DdnParams {
        &self.params
    }

    /// Host torus shape `(m, …, m)`.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The canonical edge id of the arc leaving `v` along `axis`:
    /// `jump = false` is the `+1` torus edge, `jump = true` the
    /// `+(b_axis+1)` jump edge.
    #[inline]
    pub fn edge_id(&self, v: usize, axis: usize, jump: bool) -> u32 {
        debug_assert!(axis < self.params.d);
        (v * 2 * self.params.d + 2 * axis + jump as usize) as u32
    }

    /// Visits `v`'s arcs in generation order (NOT the CSR order) — the
    /// sort-free form the probe overrides use, since edge probes don't
    /// care about ordering and the sort dominates their cost.
    #[inline]
    fn visit_arcs_unordered(&self, v: usize, mut f: impl FnMut(usize, u32)) {
        let d = self.params.d;
        for axis in 0..d {
            let jump = (self.params.band_width(axis) + 1) as isize;
            // out-arcs: ids keyed on v itself
            f(
                self.shape.torus_step(v, axis, 1),
                self.edge_id(v, axis, false),
            );
            f(
                self.shape.torus_step(v, axis, jump),
                self.edge_id(v, axis, true),
            );
            // in-arcs: the nodes whose +1 / +(b_i+1) edges land on v
            let w1 = self.shape.torus_step(v, axis, -1);
            f(w1, self.edge_id(w1, axis, false));
            let w2 = self.shape.torus_step(v, axis, -jump);
            f(w2, self.edge_id(w2, axis, true));
        }
    }

    /// Collects `v`'s arcs into `buf` in CSR order; returns the count.
    #[inline]
    fn arcs_into(&self, v: usize, buf: &mut [(usize, u32); MAX_ARCS]) -> usize {
        let mut n = 0;
        self.visit_arcs_unordered(v, |target, e| {
            buf[n] = (target, e);
            n += 1;
        });
        // CSR adjacency windows are sorted by (target, edge id); match
        // them exactly so differential tests can compare byte-for-byte.
        buf[..n].sort_unstable();
        n
    }
}

impl AdjacencyOracle for DdnOracle {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.shape.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.shape.len() * 2 * self.params.d
    }

    #[inline]
    fn degree(&self, _v: usize) -> usize {
        4 * self.params.d
    }

    #[inline]
    fn for_each_arc(&self, v: usize, mut f: impl FnMut(usize, u32)) {
        let mut buf = [(0usize, 0u32); MAX_ARCS];
        let n = self.arcs_into(v, &mut buf);
        for &(t, e) in &buf[..n] {
            f(t, e);
        }
    }

    // Direct arithmetic probe — the hottest oracle query (one per
    // guest edge in embedding verification, ~5·10⁷ on the giant
    // instances). Two nodes are adjacent iff they differ along exactly
    // one axis by a cyclic step of 1 (torus) or `b_axis+1` (jump), and
    // the candidate edge id follows immediately; no arc enumeration.
    // Coincident step lengths (tiny `m`) are handled by checking every
    // holding condition, matching the enumeration's "any" semantics.
    #[inline]
    fn any_edge_between(&self, u: usize, v: usize, mut pred: impl FnMut(u32) -> bool) -> bool {
        if u == v {
            return false;
        }
        let m = self.params.m();
        let mut axis = usize::MAX;
        for a in 0..self.params.d {
            if self.shape.coord_of(u, a) != self.shape.coord_of(v, a) {
                if axis != usize::MAX {
                    return false;
                }
                axis = a;
            }
        }
        let (cu, cv) = (self.shape.coord_of(u, axis), self.shape.coord_of(v, axis));
        let fwd = (cv + m - cu) % m;
        let bwd = m - fwd;
        let b1 = self.params.band_width(axis) + 1;
        (fwd == 1 && pred(self.edge_id(u, axis, false)))
            || (fwd == b1 && pred(self.edge_id(u, axis, true)))
            || (bwd == 1 && pred(self.edge_id(v, axis, false)))
            || (bwd == b1 && pred(self.edge_id(v, axis, true)))
    }

    #[inline]
    fn edges_to_pair(
        &self,
        u: usize,
        t1: usize,
        t2: usize,
        mut pred: impl FnMut(u32) -> bool,
    ) -> (bool, bool) {
        (
            self.any_edge_between(u, t1, &mut pred),
            self.any_edge_between(u, t2, &mut pred),
        )
    }

    #[inline]
    fn edge_endpoints(&self, e: u32) -> (usize, usize) {
        let d = self.params.d;
        let v = e as usize / (2 * d);
        let slot = e as usize % (2 * d);
        let axis = slot / 2;
        let step = if slot.is_multiple_of(2) {
            1
        } else {
            (self.params.band_width(axis) + 1) as isize
        };
        (v, self.shape.torus_step(v, axis, step))
    }
}

#[cfg(test)]
mod tests {
    use super::super::Ddn;
    use super::*;

    fn assert_oracle_matches_csr(params: DdnParams) {
        let ddn = Ddn::new(params);
        let oracle = DdnOracle::new(params);
        let g = ddn.build_graph();
        assert_eq!(oracle.num_nodes(), g.num_nodes());
        assert_eq!(oracle.num_edges(), g.num_edges());
        for v in 0..g.num_nodes() {
            assert_eq!(oracle.degree(v), g.degree(v), "degree at {v}");
            let mut alg = Vec::new();
            oracle.for_each_arc(v, |t, e| alg.push((t, e)));
            let csr: Vec<(usize, u32)> = g.arcs(v).collect();
            assert_eq!(alg, csr, "arc window at {v}");
        }
        for e in 0..g.num_edges() as u32 {
            assert_eq!(oracle.edge_endpoints(e), g.edge_endpoints(e), "edge {e}");
        }
    }

    #[test]
    fn d1_matches_csr() {
        assert_oracle_matches_csr(DdnParams::fit(1, 12, 2).unwrap());
    }

    #[test]
    fn d2_matches_csr() {
        assert_oracle_matches_csr(DdnParams::fit(2, 20, 2).unwrap());
    }

    #[test]
    fn has_edge_matches_edge_exists() {
        let params = DdnParams::fit(2, 20, 2).unwrap();
        let ddn = Ddn::new(params);
        let oracle = DdnOracle::new(params);
        for u in (0..oracle.num_nodes()).step_by(131) {
            for v in 0..oracle.num_nodes() {
                assert_eq!(oracle.has_edge(u, v), ddn.edge_exists(u, v), "u={u} v={v}");
            }
        }
    }
}
