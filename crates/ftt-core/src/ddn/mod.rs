//! Theorem 3: the degree-`4d` construction `D^d_{n,k}` tolerating any
//! `k` worst-case node/edge faults.
//!
//! `D^d_{n,k}` is an `m × … × m` torus, `m = n + b^{2^d}` with
//! `b = k^{1/(2^d−1)}`, augmented with jump edges in every dimension:
//! dimension `i` (1-based in the paper) gets jumps over
//! `b_i = b^{2^{i−1}}` nodes, i.e. edges `x ↔ x ± (b_i + 1)` along that
//! axis. Total degree `4d` (2 torus + 2 jump per dimension).
//!
//! Fault masking uses **straight bands only**: dimension `i` carries
//! `k_i = b^{2^d − 2^{i−1}}` bands of width `b_i`, placed by the cyclic
//! pigeonhole of the paper's proof: pick the residue class of anchor
//! coordinates (mod `b_i+1`) holding the fewest faults; faults off the
//! anchors are masked by slot-aligned bands, faults on anchors are
//! *deferred* to the next dimension. Since a best class holds at most a
//! `1/(b_i+1)` fraction, dimension `i` defers at most
//! `k_i / b_i = k_{i+1}` faults, and the last dimension defers none.
//!
//! Deviation from the paper (documented in DESIGN.md): we require
//! `(b_i + 1) | m` for every dimension so the residue classes tile the
//! cycle exactly — the paper waives such round-off. [`DdnParams::fit`]
//! rounds `n` up accordingly.

pub mod oracle;
pub mod place;

use crate::error::PlacementError;
use ftt_geom::Shape;
use ftt_graph::{Graph, GraphBuilder};

pub use oracle::DdnOracle;
pub use place::{extract_after_faults, place_straight_bands, DdnBanding};

/// Validated parameters of a `D^d_{n,k}` instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdnParams {
    /// Dimension `d ≥ 1`.
    pub d: usize,
    /// Guest torus side `n`.
    pub n: usize,
    /// Base jump parameter `b ≥ 1`; tolerates `k = b^{2^d − 1}` faults.
    pub b: usize,
}

impl DdnParams {
    /// Validates and constructs the parameter set.
    pub fn new(d: usize, n: usize, b: usize) -> Result<Self, String> {
        if d == 0 {
            return Err("d must be ≥ 1".into());
        }
        if d > 4 {
            return Err(format!("d = {d} unsupported (node counts explode)"));
        }
        if b == 0 {
            return Err("b must be ≥ 1".into());
        }
        let p = Self { d, n, b };
        let k = p.tolerated_faults();
        if n < k {
            return Err(format!(
                "n = {n} must be at least k = {k} so every dimension has enough band slots"
            ));
        }
        let m = p.m();
        for i in 0..d {
            let bi = p.band_width(i);
            if !m.is_multiple_of(bi + 1) {
                return Err(format!(
                    "(b_{i}+1) = {} must divide m = {m}; use DdnParams::fit",
                    bi + 1
                ));
            }
            if m <= 2 * (bi + 1) {
                return Err(format!("m = {m} too small for dimension-{i} jumps"));
            }
        }
        Ok(p)
    }

    /// Smallest valid instance with `n ≥ n_min` for the given `b`.
    pub fn fit(d: usize, n_min: usize, b: usize) -> Result<Self, String> {
        if d == 0 || d > 4 || b == 0 {
            return Err(format!("need 1 ≤ d ≤ 4 and b ≥ 1, got d={d}, b={b}"));
        }
        let probe = Self { d, n: 1, b };
        let extra = probe.extra_per_dim();
        let k = probe.tolerated_faults();
        let mut l = 1usize;
        for i in 0..d {
            l = lcm(l, probe.band_width(i) + 1);
        }
        // smallest n ≥ max(n_min, k) with (n + extra) ≡ 0 (mod l)
        let base = n_min.max(k).max(1);
        let m0 = base + extra;
        let m = m0.div_ceil(l) * l;
        Self::new(d, m - extra, b)
    }

    /// Width `b_i = b^{2^i}` of dimension-`i` bands (0-based `i`; the
    /// paper's `b_i = b^{2^{i−1}}` with 1-based `i`).
    pub fn band_width(&self, i: usize) -> usize {
        debug_assert!(i < self.d);
        self.b.pow(1 << i)
    }

    /// Number of bands `k_i = b^{2^d − 2^i}` in dimension `i` (0-based).
    pub fn num_bands(&self, i: usize) -> usize {
        debug_assert!(i < self.d);
        self.b.pow((1u32 << self.d) - (1 << i))
    }

    /// Extra coordinates per dimension: `b^{2^d} = k_i · b_i` for all `i`.
    pub fn extra_per_dim(&self) -> usize {
        self.b.pow(1 << self.d)
    }

    /// Host torus side `m = n + b^{2^d}`.
    pub fn m(&self) -> usize {
        self.n + self.extra_per_dim()
    }

    /// Worst-case fault budget `k = b^{2^d − 1}` of Theorem 3.
    pub fn tolerated_faults(&self) -> usize {
        self.b.pow((1u32 << self.d) - 1)
    }

    /// Host node count `m^d`.
    pub fn num_nodes(&self) -> usize {
        self.m().pow(self.d as u32)
    }

    /// The degree the construction is supposed to have: `4d`.
    pub fn expected_degree(&self) -> usize {
        4 * self.d
    }

    /// Host torus shape `(m, …, m)`.
    pub fn host_shape(&self) -> Shape {
        Shape::cube(self.m(), self.d)
    }

    /// Guest torus shape `(n, …, n)`.
    pub fn guest_shape(&self) -> Shape {
        Shape::cube(self.n, self.d)
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// A `D^d_{n,k}` instance. The host is implicit: adjacency is answered
/// by the algebraic [`DdnOracle`] (`O(1)` state, any size), and
/// [`Ddn::graph`] caches one CSR materialisation for small-instance
/// degree audits and differential tests only — production paths never
/// call it.
#[derive(Debug, Clone)]
pub struct Ddn {
    params: DdnParams,
    oracle: DdnOracle,
    graph: std::sync::OnceLock<Graph>,
}

impl Ddn {
    /// Creates the instance geometry.
    pub fn new(params: DdnParams) -> Self {
        Self {
            params,
            oracle: DdnOracle::new(params),
            graph: std::sync::OnceLock::new(),
        }
    }

    /// The algebraic adjacency oracle — the production interface to the
    /// host's edges.
    #[inline]
    pub fn oracle(&self) -> &DdnOracle {
        &self.oracle
    }

    /// The materialised host graph, built on first call and cached.
    ///
    /// Prefer [`Ddn::oracle`] (or [`Ddn::edge_exists`]) when adjacency
    /// queries are all that is needed: the graph costs `m^d` nodes and
    /// `2d·m^d` edges.
    pub fn graph(&self) -> &Graph {
        self.graph.get_or_init(|| self.build_graph())
    }

    /// The CSR graph if some caller already materialised it.
    #[inline]
    pub fn materialized_graph(&self) -> Option<&Graph> {
        self.graph.get()
    }

    /// Endpoints of a canonical edge id, by arithmetic (never
    /// materialises).
    #[inline]
    pub fn edge_endpoints(&self, e: u32) -> (usize, usize) {
        ftt_graph::AdjacencyOracle::edge_endpoints(&self.oracle, e)
    }

    /// The instance parameters.
    pub fn params(&self) -> &DdnParams {
        &self.params
    }

    /// Host torus shape.
    pub fn shape(&self) -> &Shape {
        self.oracle.shape()
    }

    /// Whether host nodes `u` and `v` are joined by an edge of
    /// `D^d_{n,k}` (torus edge or jump edge), by coordinate arithmetic.
    pub fn edge_exists(&self, u: usize, v: usize) -> bool {
        if u == v {
            return false;
        }
        let m = self.params.m();
        let mut diff_axis = None;
        for axis in 0..self.params.d {
            let (cu, cv) = (
                self.shape().coord_of(u, axis),
                self.shape().coord_of(v, axis),
            );
            if cu == cv {
                continue;
            }
            if diff_axis.is_some() {
                return false;
            }
            diff_axis = Some((axis, ftt_geom::cyc_dist(cu, cv, m)));
        }
        match diff_axis {
            Some((axis, dist)) => dist == 1 || dist == self.params.band_width(axis) + 1,
            None => false,
        }
    }

    /// Materialises the host graph (use only for small instances: `m^d`
    /// nodes, `2d·m^d` edges).
    pub fn build_graph(&self) -> Graph {
        let m = self.params.m();
        let d = self.params.d;
        let mut builder = GraphBuilder::new(self.shape().len());
        builder.reserve_edges(self.shape().len() * 2 * d);
        for v in self.shape().iter() {
            for axis in 0..d {
                // torus edge +1 (each undirected edge added once)
                builder.add_edge(v, self.shape().torus_step(v, axis, 1));
                // jump edge +(b_i + 1)
                let jump = (self.params.band_width(axis) + 1) as isize;
                debug_assert!((jump as usize) < m);
                builder.add_edge(v, self.shape().torus_step(v, axis, jump));
            }
        }
        builder.build()
    }

    /// Places straight bands masking the given faulty nodes and extracts
    /// the guest torus; see [`place::extract_after_faults`].
    pub fn try_extract(
        &self,
        faulty_nodes: &[usize],
    ) -> Result<crate::bdn::extract::TorusEmbedding, PlacementError> {
        extract_after_faults(self, faulty_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_formulas_d2() {
        // d=2, b=2: widths 2 and 4, bands 8 and 4, extra 16, k = 8.
        let p = DdnParams::fit(2, 30, 2).unwrap();
        assert_eq!(p.band_width(0), 2);
        assert_eq!(p.band_width(1), 4);
        assert_eq!(p.num_bands(0), 8);
        assert_eq!(p.num_bands(1), 4);
        assert_eq!(p.extra_per_dim(), 16);
        assert_eq!(p.tolerated_faults(), 8);
        assert_eq!(p.expected_degree(), 8);
        // consistency: k_i · b_i = extra
        for i in 0..2 {
            assert_eq!(p.num_bands(i) * p.band_width(i), p.extra_per_dim());
        }
        // divisibility: (b_i+1) | m for i = 0, 1 → 3 | m and 5 | m
        assert_eq!(p.m() % 3, 0);
        assert_eq!(p.m() % 5, 0);
        assert!(p.n >= 30);
    }

    #[test]
    fn params_d1_matches_paper() {
        // d=1: b = k, m = n + b², b bands of width b.
        let p = DdnParams::fit(1, 50, 4).unwrap();
        assert_eq!(p.tolerated_faults(), 4);
        assert_eq!(p.extra_per_dim(), 16);
        assert_eq!(p.num_bands(0), 4);
        assert_eq!(p.band_width(0), 4);
        assert_eq!(p.expected_degree(), 4);
    }

    #[test]
    fn n_must_cover_k() {
        assert!(DdnParams::new(2, 4, 2).is_err()); // n < k = 8
        let p = DdnParams::fit(2, 1, 2).unwrap();
        assert!(p.n >= 8);
    }

    #[test]
    fn degree_is_exactly_4d() {
        for (d, b, nmin) in [(1usize, 3usize, 20usize), (2, 2, 20)] {
            let p = DdnParams::fit(d, nmin, b).unwrap();
            let g = Ddn::new(p).build_graph();
            assert_eq!(g.max_degree(), 4 * d, "d={d}");
            assert_eq!(g.min_degree(), 4 * d, "d={d}");
        }
    }

    #[test]
    fn edge_exists_matches_graph() {
        let p = DdnParams::fit(2, 20, 2).unwrap();
        let ddn = Ddn::new(p);
        let g = ddn.build_graph();
        // exhaustive on a sample of nodes
        for u in (0..ddn.shape().len()).step_by(97) {
            for v in 0..ddn.shape().len() {
                assert_eq!(ddn.edge_exists(u, v), g.has_edge(u, v), "u={u}, v={v}");
            }
        }
    }

    #[test]
    fn node_count_is_linear_for_k_up_to_bound() {
        // m = n + k^{2^d/(2^d−1)}: spot-check the redundancy formula.
        let p = DdnParams::fit(2, 100, 2).unwrap();
        let k = p.tolerated_faults() as f64;
        let expect_extra = k.powf(4.0 / 3.0).round() as usize;
        assert_eq!(p.extra_per_dim(), expect_extra);
    }
}
