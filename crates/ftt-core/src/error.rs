//! Failure modes of band placement and extraction.
//!
//! Theorem 2 is probabilistic: for an *unhealthy* fault pattern the band
//! machinery can legitimately fail. Each failure mode is reported
//! distinctly so experiments can attribute failures to the right
//! healthiness condition (experiment `ABL-HEALTH`).

/// Why placing masking bands (or extracting the torus) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// No fault-free `s`-frame with `s ≤ b` encloses this faulty node
    /// (healthiness condition 3 violated).
    NoCleanFrame {
        /// The faulty node that could not be enclosed.
        node: usize,
    },
    /// A black region's faulty rows cannot be covered by width-`b`
    /// segments with the mandatory separation (faults too dense —
    /// healthiness condition 1 violated in spirit).
    UncoverableFaultRow {
        /// Region id (index into the painting's region list).
        region: usize,
        /// The relative row (within the region's bounding box) whose
        /// fault could not be covered.
        rel_row: usize,
    },
    /// A tile row inside a black region needs more segments than the
    /// per-row quota `εb` (healthiness condition 2 violated).
    SegmentQuotaExceeded {
        /// Region id.
        region: usize,
        /// Absolute tile row index.
        tile_row: usize,
        /// Segments required by the faults.
        needed: usize,
        /// Segments available per tile row.
        quota: usize,
    },
    /// Could not pad a tile row of a region up to exactly `εb` segments
    /// without violating the untouching separation.
    PaddingFailed {
        /// Region id.
        region: usize,
        /// Absolute tile row index.
        tile_row: usize,
    },
    /// A produced banding violates an invariant (slope, untouching, or
    /// unmasked-count); indicates a bug or an unhealthy instance that
    /// slipped through — always a hard error.
    InvalidBanding {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// The jump-path alignment of Lemma 6/7 was inconsistent — the
    /// banding did not define a torus (should be impossible for a valid
    /// banding; kept as a checked invariant).
    AlignmentInconsistent {
        /// Column where the inconsistency was detected.
        column: usize,
    },
    /// Parameters do not admit the construction (e.g. `k` exceeds the
    /// worst-case bound of Theorem 3 so the pigeonhole can fail).
    TooManyFaults {
        /// Number of faults presented.
        presented: usize,
        /// Maximum tolerated by the instance.
        tolerated: usize,
    },
    /// A supernode of `A^2_n` is not good and the supernode-level torus
    /// extraction failed (Theorem 1 failure path).
    SupernodeLevelFailed {
        /// The underlying `B^2_{n/k}` placement failure.
        inner: Box<PlacementError>,
    },
    /// The greedy node-level embedding of Theorem 1 could not find a
    /// good image with alive edges (should not happen for good
    /// supernodes; reported when goodness margins are violated).
    EmbeddingStuck {
        /// Guest torus node that could not be mapped.
        guest: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCleanFrame { node } => {
                write!(f, "no fault-free s-frame (s ≤ b) encloses faulty node {node}")
            }
            PlacementError::UncoverableFaultRow { region, rel_row } => write!(
                f,
                "region {region}: faulty row {rel_row} cannot be covered by separated width-b segments"
            ),
            PlacementError::SegmentQuotaExceeded { region, tile_row, needed, quota } => write!(
                f,
                "region {region}: tile row {tile_row} needs {needed} segments, quota is {quota}"
            ),
            PlacementError::PaddingFailed { region, tile_row } => write!(
                f,
                "region {region}: cannot pad tile row {tile_row} to the segment quota"
            ),
            PlacementError::InvalidBanding { reason } => {
                write!(f, "banding invariant violated: {reason}")
            }
            PlacementError::AlignmentInconsistent { column } => {
                write!(f, "jump-path alignment inconsistent at column {column}")
            }
            PlacementError::TooManyFaults { presented, tolerated } => write!(
                f,
                "{presented} faults presented, instance tolerates only {tolerated}"
            ),
            PlacementError::SupernodeLevelFailed { inner } => {
                write!(f, "supernode-level torus extraction failed: {inner}")
            }
            PlacementError::EmbeddingStuck { guest } => {
                write!(f, "greedy embedding stuck at guest node {guest}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PlacementError::NoCleanFrame { node: 42 };
        assert!(e.to_string().contains("42"));
        let e = PlacementError::SegmentQuotaExceeded {
            region: 1,
            tile_row: 2,
            needed: 5,
            quota: 2,
        };
        assert!(e.to_string().contains("needs 5"));
        let e = PlacementError::SupernodeLevelFailed {
            inner: Box::new(PlacementError::NoCleanFrame { node: 7 }),
        };
        assert!(e.to_string().contains("node 7"));
    }
}
