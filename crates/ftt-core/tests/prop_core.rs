//! Property-based tests for the band machinery and the worst-case
//! construction.

use ftt_core::band::Banding;
use ftt_core::bdn::interpolate::{interpolate_bands, CornerValues};
use ftt_core::bdn::segments::{place_region_segments, place_region_segments_pigeonhole};
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_geom::{ColumnSpace, Shape};
use proptest::prelude::*;

const B: usize = 4;
const T: usize = 16;

proptest! {
    /// Any segment placement that succeeds satisfies all three
    /// invariants: full coverage, pairwise separation ≥ b+1, exact
    /// per-tile-row quota.
    #[test]
    fn segment_invariants(
        faults in prop::collection::vec(0usize..3 * T, 0..6),
        eps_b in 1usize..3,
    ) {
        let rows = 3;
        if let Ok(seg) = place_region_segments(&faults, rows, T, B, eps_b, 0) {
            let all = seg.all_starts();
            prop_assert_eq!(all.len(), rows * eps_b);
            for w in all.windows(2) {
                prop_assert!(w[1] - w[0] > B, "separation {:?}", w);
            }
            for &f in &faults {
                prop_assert!(
                    all.iter().any(|&s| f >= s && f < s + B),
                    "fault {} uncovered", f
                );
            }
            for (tr, row) in seg.rows.iter().enumerate() {
                prop_assert_eq!(row.len(), eps_b);
                for &s in row {
                    prop_assert!(s >= tr * T && s < (tr + 1) * T);
                }
            }
        }
    }

    /// The exact DP dominates the paper's pigeonhole placement: whenever
    /// the pigeonhole succeeds, so does the default strategy.
    #[test]
    fn dp_dominates_pigeonhole(
        faults in prop::collection::vec(0usize..2 * T, 0..5),
    ) {
        let rows = 2;
        let pigeon = place_region_segments_pigeonhole(&faults, rows, T, B, 2, 0);
        if pigeon.is_ok() {
            prop_assert!(
                place_region_segments(&faults, rows, T, B, 2, 0).is_ok(),
                "DP failed where pigeonhole succeeded: {:?}", faults
            );
        }
    }

    /// Straight bandings with start gaps ≥ width+1 always validate;
    /// shrinking any gap below width+1 always fails.
    #[test]
    fn banding_gap_boundary(
        base in 0usize..8,
        extra_gap in 0usize..4,
    ) {
        let m = 32;
        let cols = ColumnSpace::new(m, &[6]);
        let width = 3;
        let s1 = base;
        let s2 = base + width + 1 + extra_gap; // legal gap
        let banding = Banding::new(vec![vec![s1; 6], vec![s2; 6]], width, m, 6);
        prop_assert!(banding.validate(&cols).is_ok());
        let s2_bad = base + width; // touching
        let bad = Banding::new(vec![vec![s1; 6], vec![s2_bad; 6]], width, m, 6);
        prop_assert!(bad.validate(&cols).is_err());
    }

    /// Unmasked row count is exactly m − (bands × width) for any valid
    /// banding.
    #[test]
    fn unmasked_count(offsets in prop::collection::vec(0usize..3, 1..4)) {
        let width = 2;
        let m = 40;
        let ncols = 4;
        // stack bands with legal gaps derived from the offsets
        let mut starts = Vec::new();
        let mut cur = 0usize;
        for off in &offsets {
            starts.push(vec![cur; ncols]);
            cur += width + 1 + off;
        }
        prop_assume!(cur <= m - width); // keep the wrap gap legal
        let banding = Banding::new(starts.clone(), width, m, ncols);
        let cols = ColumnSpace::new(m, &[ncols]);
        prop_assert!(banding.validate(&cols).is_ok());
        for z in 0..ncols {
            prop_assert_eq!(
                banding.unmasked_rows(z).len(),
                m - starts.len() * width
            );
        }
    }

    /// Theorem 3 as a property: any ≤ k random faults on D²_{n,k} admit
    /// extraction, and the embedding is injective, alive and edge-valid.
    #[test]
    fn ddn_tolerates_any_k(seed in 0u64..500) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let params = DdnParams::fit(2, 30, 2).unwrap();
        let ddn = Ddn::new(params);
        let k = params.tolerated_faults();
        let mut rng = SmallRng::seed_from_u64(seed);
        let nf = rng.gen_range(0..=k);
        let mut faults: Vec<usize> =
            (0..nf).map(|_| rng.gen_range(0..ddn.shape().len())).collect();
        faults.sort_unstable();
        faults.dedup();
        let emb = ddn.try_extract(&faults).expect("Theorem 3 guarantee");
        let fs: std::collections::HashSet<usize> = faults.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        for &h in &emb.map {
            prop_assert!(seen.insert(h));
            prop_assert!(!fs.contains(&h));
        }
        for g in emb.guest.iter() {
            for axis in 0..2 {
                let g2 = emb.guest.torus_step(g, axis, 1);
                prop_assert!(ddn.edge_exists(emb.map[g], emb.map[g2]));
            }
        }
    }

    /// D^1 (the path/cycle case): same property in one dimension.
    #[test]
    fn ddn_d1_tolerates_any_k(seed in 0u64..200) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let params = DdnParams::fit(1, 30, 4).unwrap();
        let ddn = Ddn::new(params);
        let k = params.tolerated_faults();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut faults: Vec<usize> =
            (0..k).map(|_| rng.gen_range(0..ddn.shape().len())).collect();
        faults.sort_unstable();
        faults.dedup();
        let emb = ddn.try_extract(&faults).expect("d = 1 guarantee");
        prop_assert_eq!(emb.len(), params.n);
    }

    /// Lemma 11 as a property: corner values within a tile row always
    /// interpolate to bands with slope ≤ 1 between adjacent columns.
    #[test]
    fn interpolation_slope_bounded(
        corners in prop::collection::vec(0u64..16, 4),
    ) {
        let cols = Shape::new(vec![64]); // 4 column tiles of side 16
        let cv: CornerValues = vec![vec![corners]];
        let banding = interpolate_bands(&cv, &cols, 16, 80, 4);
        for z in 0..64 {
            let a = banding.start(0, z) as i64;
            let b = banding.start(0, (z + 1) % 64) as i64;
            prop_assert!((a - b).abs() <= 1, "slope at {}: {} vs {}", z, a, b);
        }
    }

    /// Lemma 10 + floor rounding as a property: integer corner gaps
    /// ≥ g between two bands survive interpolation pointwise.
    #[test]
    fn interpolation_preserves_corner_gaps(
        lo in prop::collection::vec(0u64..10, 4),
        gap in 5u64..9,
    ) {
        let cols = Shape::new(vec![64]);
        let hi: Vec<u64> = lo.iter().map(|v| v + gap).collect();
        let cv: CornerValues = vec![vec![lo, hi]];
        let banding = interpolate_bands(&cv, &cols, 16, 80, 4);
        for z in 0..64 {
            let diff = banding.start(1, z) as i64 - banding.start(0, z) as i64;
            prop_assert!(diff >= gap as i64, "gap {} at column {}", diff, z);
        }
    }
}
