//! Differential property tests: the algebraic adjacency oracles
//! against the materialised CSR they replace.
//!
//! The implicit-host redesign answers every adjacency question for
//! `B^d_n` and `D^d_{n,k}` arithmetically from `(params, node id)`.
//! The CSR built by the legacy constructors is the ground truth those
//! formulas must reproduce **byte-identically** — same degrees, same
//! neighbour lists in the same order, same canonical edge ids, same
//! `edge_endpoints` orientation, same `has_edge` verdicts — because
//! `FaultSet` edge ids, journals, and certificates all assume the two
//! numberings are interchangeable. `A^2_n`'s oracle IS its CSR (the
//! supernode graph is irregular and stays eager), so its parity test
//! is a tautology kept as an API-contract pin.
//!
//! The certification half drives ≥ 256 seed-derived fault sets per
//! construction (4 per proptest case × the 64-case default) through
//! extraction, then validates every resulting certificate through the
//! independent checker twice — once against the algebraic oracle, once
//! against the materialised CSR — and requires identical verdicts.

use ftt_core::construct::HostConstruction;
use ftt_faults::{sample_bernoulli_faults, FaultSet};
use ftt_graph::{AdjacencyOracle, Graph};
use ftt_sim::runner::trial_seed;
use ftt_testutil::{tiny_adn, tiny_bdn, tiny_ddn};
use ftt_verify::check_certificate;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fault sets derived per proptest case: 4 × 64 default cases ⇒ ≥ 256
/// per construction.
const SUBSEEDS: u64 = 4;

/// Full adjacency parity at one node: degree, the `(neighbour, edge
/// id)` arc list in CSR order, endpoint orientation of every incident
/// edge, and `has_edge` against every node of a probe window.
fn assert_node_parity<O: AdjacencyOracle>(oracle: &O, csr: &Graph, v: usize) {
    assert_eq!(oracle.degree(v), csr.degree(v), "degree({v})");
    let mut from_oracle: Vec<(usize, u32)> = Vec::new();
    oracle.for_each_arc(v, |w, e| from_oracle.push((w, e)));
    let from_csr: Vec<(usize, u32)> = csr.arcs(v).collect();
    assert_eq!(from_oracle, from_csr, "arc list of {v}");
    for &(_, e) in &from_oracle {
        assert_eq!(
            oracle.edge_endpoints(e),
            csr.edge_endpoints(e),
            "endpoints of edge {e}"
        );
    }
    // has_edge over the arc targets plus a deterministic non-neighbour
    // window around v (covers both polarities).
    for &(w, _) in &from_oracle {
        assert!(oracle.has_edge(v, w), "missing edge {v}-{w}");
        assert!(oracle.has_edge(w, v), "missing reverse edge {w}-{v}");
    }
    let n = csr.num_nodes();
    for off in 0..16usize {
        let w = (v + off * 37 + 1) % n;
        assert_eq!(
            oracle.has_edge(v, w),
            csr.has_edge(v, w),
            "has_edge({v},{w})"
        );
    }
}

/// Whole-host parity: every node, every edge id, both directions.
fn assert_full_parity<O: AdjacencyOracle>(oracle: &O, csr: &Graph) {
    assert_eq!(oracle.num_nodes(), csr.num_nodes());
    assert_eq!(oracle.num_edges(), csr.num_edges());
    for v in 0..csr.num_nodes() {
        assert_node_parity(oracle, csr, v);
    }
}

#[test]
fn bdn_oracle_matches_csr_everywhere() {
    let host = tiny_bdn();
    assert_full_parity(HostConstruction::oracle(&host), host.graph());
}

#[test]
fn ddn_oracle_matches_csr_everywhere() {
    let host = tiny_ddn();
    assert_full_parity(HostConstruction::oracle(&host), host.graph());
}

#[test]
fn adn_oracle_is_its_csr() {
    let host = tiny_adn(6, 0.0);
    // One oracle, two routes: the trait's oracle and the inherent
    // graph must be the same object (A² stays eager by design).
    assert!(std::ptr::eq(HostConstruction::oracle(&host), host.graph()));
    assert_full_parity(HostConstruction::oracle(&host), host.graph());
}

/// A seed-derived fault set sweeping fault-free → paper regime →
/// beyond tolerance, with edge faults in the denser scales.
fn sample_faults<C: HostConstruction>(host: &C, seed: u64, scale: usize) -> FaultSet {
    let n = host.num_nodes() as f64;
    let (p, q) = match scale {
        0 => (0.0, 0.0),
        1 => (2.0 / n, 0.0),
        2 => (8.0 / n, 4.0 / (2.0 * n)),
        _ => (40.0 / n, 20.0 / (2.0 * n)),
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    sample_bernoulli_faults(host.oracle(), p, q, &mut rng)
}

/// Certification outcome parity for one host: extraction either fails
/// (no certificate, nothing to compare) or yields a certificate the
/// independent checker must accept through BOTH adjacency sources.
fn certification_parity<C: HostConstruction>(
    host: &C,
    csr: &Graph,
    seed: u64,
    scale: usize,
) -> Result<(), TestCaseError> {
    for sub in 0..SUBSEEDS {
        let faults = sample_faults(host, trial_seed(seed, sub), scale);
        if let Ok(cert) = host.try_certify(&faults) {
            let via_oracle = check_certificate(&cert, host.oracle(), &faults);
            let via_csr = check_certificate(&cert, csr, &faults);
            prop_assert!(
                via_oracle.is_ok(),
                "oracle rejected a certificate at scale {scale}: {:?}",
                via_oracle.err()
            );
            prop_assert!(
                via_csr.is_ok(),
                "CSR rejected a certificate at scale {scale}: {:?}",
                via_csr.err()
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn bdn_node_parity_random_nodes(v_seed in 0u64..u64::MAX) {
        let host = tiny_bdn();
        let csr = host.graph();
        let v = (v_seed % csr.num_nodes() as u64) as usize;
        assert_node_parity(HostConstruction::oracle(&host), csr, v);
    }

    #[test]
    fn ddn_node_parity_random_nodes(v_seed in 0u64..u64::MAX) {
        let host = tiny_ddn();
        let csr = host.graph();
        let v = (v_seed % csr.num_nodes() as u64) as usize;
        assert_node_parity(HostConstruction::oracle(&host), csr, v);
    }

    #[test]
    fn bdn_certification_parity(seed in 0u64..u64::MAX, scale in 0usize..4) {
        let host = tiny_bdn();
        certification_parity(&host, host.graph(), seed, scale)?;
    }

    #[test]
    fn adn_certification_parity(seed in 0u64..u64::MAX, scale in 0usize..4) {
        let host = tiny_adn(6, 0.0);
        certification_parity(&host, host.graph(), seed, scale)?;
    }

    #[test]
    fn ddn_certification_parity(seed in 0u64..u64::MAX, scale in 0usize..4) {
        let host = tiny_ddn();
        certification_parity(&host, host.graph(), seed, scale)?;
    }
}
