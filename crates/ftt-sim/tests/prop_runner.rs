//! Property tests pinning the determinism contract of the trial
//! runner: for a fixed master seed, results are a pure function of
//! `(trials, master_seed)` — never of the worker thread count or of
//! scheduling (each trial's seed is derived by a splitmix64 step from
//! the master seed and the trial index; see `ftt-sim/src/runner.rs`).

use ftt_sim::runner::{trial_seed, CLAIM_CHUNK};
use ftt_sim::{run_trials, run_trials_with};
use proptest::prelude::*;

proptest! {
    /// `threads = 1`, `4`, and `0` (auto) must produce identical stats
    /// for any master seed, trial count, and (deterministic) trial
    /// predicate.
    #[test]
    fn thread_count_invariance(
        master in 0u64..u64::MAX,
        trials in 0usize..300,
        modulus in 2u64..17,
    ) {
        let trial = |seed: u64| seed.is_multiple_of(modulus);
        let one = run_trials(trials, master, 1, trial);
        let four = run_trials(trials, master, 4, trial);
        let auto = run_trials(trials, master, 0, trial);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&one, &auto);
        prop_assert_eq!(one.trials, trials);
    }

    /// The tally equals the sequential ground truth computed without
    /// any thread pool at all.
    #[test]
    fn matches_sequential_ground_truth(
        master in 0u64..u64::MAX,
        trials in 0usize..200,
        modulus in 2u64..13,
    ) {
        let trial = |seed: u64| seed.is_multiple_of(modulus);
        let expect = (0..trials as u64).filter(|&i| trial(trial_seed(master, i))).count();
        let got = run_trials(trials, master, 0, trial);
        prop_assert_eq!(got.successes, expect);
    }

    /// Per-trial seeds depend on the index (no accidental reuse across
    /// a run's trials).
    #[test]
    fn trial_seeds_distinct_within_run(master in 0u64..u64::MAX, n in 1u64..2000) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            prop_assert!(seen.insert(trial_seed(master, i)), "seed collision at index {}", i);
        }
    }

    /// Chunked claiming is invisible: trial counts right at, below, and
    /// above chunk boundaries all match the sequential ground truth for
    /// every thread count.
    #[test]
    fn chunk_boundaries_are_exact(
        master in 0u64..u64::MAX,
        chunk_mult in 0usize..4,
        delta in 0isize..3,
        threads in 1usize..9,
        modulus in 2u64..11,
    ) {
        let trials = (chunk_mult * CLAIM_CHUNK) as isize + delta - 1;
        prop_assume!(trials >= 0);
        let trials = trials as usize;
        let trial = |seed: u64| seed.is_multiple_of(modulus);
        let expect = (0..trials as u64).filter(|&i| trial(trial_seed(master, i))).count();
        let got = run_trials(trials, master, threads, trial);
        prop_assert_eq!(got.successes, expect);
        prop_assert_eq!(got.trials, trials);
    }

    /// The scratch-threading variant tallies exactly like the plain
    /// runner: per-worker scratch is a buffer, never state, so results
    /// are identical across thread counts and to `run_trials`.
    #[test]
    fn with_scratch_matches_plain(
        master in 0u64..u64::MAX,
        trials in 0usize..300,
        modulus in 2u64..17,
    ) {
        let trial = |seed: u64| seed.is_multiple_of(modulus);
        let plain = run_trials(trials, master, 0, trial);
        for threads in [1usize, 4, 0] {
            let with = run_trials_with(
                trials,
                master,
                threads,
                Vec::<u64>::new,
                |scratch, seed| {
                    // use the scratch as a real buffer to prove reuse
                    // cannot leak into outcomes
                    scratch.push(seed);
                    trial(seed)
                },
            );
            prop_assert_eq!(&with, &plain);
        }
    }
}
