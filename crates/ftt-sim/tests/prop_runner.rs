//! Property tests pinning the determinism contract of the trial
//! runner: for a fixed master seed, results are a pure function of
//! `(trials, master_seed)` — never of the worker thread count or of
//! scheduling (each trial's seed is derived by a splitmix64 step from
//! the master seed and the trial index; see `ftt-sim/src/runner.rs`).

use ftt_sim::run_trials;
use ftt_sim::runner::trial_seed;
use proptest::prelude::*;

proptest! {
    /// `threads = 1`, `4`, and `0` (auto) must produce identical stats
    /// for any master seed, trial count, and (deterministic) trial
    /// predicate.
    #[test]
    fn thread_count_invariance(
        master in 0u64..u64::MAX,
        trials in 0usize..300,
        modulus in 2u64..17,
    ) {
        let trial = |seed: u64| seed.is_multiple_of(modulus);
        let one = run_trials(trials, master, 1, trial);
        let four = run_trials(trials, master, 4, trial);
        let auto = run_trials(trials, master, 0, trial);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&one, &auto);
        prop_assert_eq!(one.trials, trials);
    }

    /// The tally equals the sequential ground truth computed without
    /// any thread pool at all.
    #[test]
    fn matches_sequential_ground_truth(
        master in 0u64..u64::MAX,
        trials in 0usize..200,
        modulus in 2u64..13,
    ) {
        let trial = |seed: u64| seed.is_multiple_of(modulus);
        let expect = (0..trials as u64).filter(|&i| trial(trial_seed(master, i))).count();
        let got = run_trials(trials, master, 0, trial);
        prop_assert_eq!(got.successes, expect);
    }

    /// Per-trial seeds depend on the index (no accidental reuse across
    /// a run's trials).
    #[test]
    fn trial_seeds_distinct_within_run(master in 0u64..u64::MAX, n in 1u64..2000) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            prop_assert!(seen.insert(trial_seed(master, i)), "seed collision at index {}", i);
        }
    }
}
