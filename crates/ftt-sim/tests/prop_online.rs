//! Differential property tests for the online repair engine: **batch
//! parity on every stream prefix**.
//!
//! After any prefix of any fault stream, two things must hold:
//!
//! 1. the incrementally-repaired state and a from-scratch
//!    `try_extract_with` on the accumulated `FaultSet` agree on the
//!    outcome (alive ⇔ batch extracts), and — when alive — on the
//!    embedding itself, node for node;
//! 2. the repaired embedding passes the **independent** checker
//!    (`ftt_verify::check_certificate`), which shares zero code with
//!    the band machinery and the repair engine.
//!
//! Each construction is driven by ≥ 256 random streams (trickle,
//! burst, and targeted-adversary arrivals, seed-derived), checked
//! prefix by prefix up to and including the killing fault. The
//! proptest wrappers add arbitrary root seeds on top of the fixed
//! battery (64 cases × 4 streams ≥ 256 at the default case count).

use ftt_core::construct::HostConstruction;
use ftt_core::online::{live_certificate, RepairState};
use ftt_faults::{FaultStream, StreamFeedback, StreamSpec};
use ftt_sim::cell_seed;
use proptest::prelude::*;

/// The stream battery: spec variety cycled by stream index.
fn stream_spec(index: u64) -> StreamSpec {
    match index % 4 {
        0 => StreamSpec::Trickle {
            node_rate: 5e-3,
            edge_rate: 0.0,
        },
        1 => StreamSpec::Trickle {
            node_rate: 2e-3,
            edge_rate: 5e-4,
        },
        2 => StreamSpec::Burst {
            rate: 2e-3,
            size: 3,
        },
        _ => StreamSpec::Targeted,
    }
}

/// The lifetime engine's feedback, reconstructed locally so the stream
/// sees exactly what it would see in production: accumulated faults
/// plus the live map.
struct Feedback<'a> {
    faults: &'a ftt_faults::FaultSet,
    map: Option<&'a [usize]>,
}

impl StreamFeedback for Feedback<'_> {
    fn occupied_node(&self, selector: u64) -> Option<usize> {
        let map = self.map?;
        if map.is_empty() {
            return None;
        }
        Some(map[(selector % map.len() as u64) as usize])
    }
    fn node_faulty(&self, v: usize) -> bool {
        self.faults.node_faulty(v)
    }
    fn edge_faulty(&self, e: u32) -> bool {
        self.faults.edge_faulty(e)
    }
}

/// Drives one stream against `host`, checking both differential
/// properties after every prefix. Returns the number of arrivals
/// checked.
fn check_stream<C: HostConstruction>(
    host: &C,
    state: &mut RepairState<C>,
    scratch: &mut C::Scratch,
    stream_index: u64,
    seed: u64,
    max_arrivals: usize,
    check_batch: bool,
) -> usize {
    let spec = stream_spec(stream_index);
    let mut stream = spec.stream(host.num_nodes(), host.graph().num_edges(), seed);
    state.reset(host).expect("fault-free extraction");
    let mut arrivals = 0;
    while arrivals < max_arrivals {
        if stream.adaptive() {
            let _ = state.live_embedding(host);
        }
        let event = {
            let feedback = Feedback {
                faults: state.faults(),
                map: state.embedding().map(|e| e.map.as_slice()),
            };
            stream.next(&feedback)
        };
        let Some(event) = event else { break };
        state.apply(host, event.fault);
        arrivals += 1;

        // Property 1: outcome (and embedding) parity with the batch
        // pipeline on the accumulated fault set. `check_batch = false`
        // is reserved for hosts on the generic repair path, where
        // `apply` already *is* a `try_extract_with` call and the
        // comparison would re-run identical code — every current
        // construction repairs incrementally, so all batteries check.
        if check_batch {
            let batch = host.try_extract_with(state.faults(), scratch);
            assert_eq!(
                state.alive(),
                batch.is_ok(),
                "{}: outcome parity broken (stream {stream_index}, seed {seed}, \
                 arrival {arrivals}, fault {:?})",
                C::NAME,
                event.fault
            );
            if state.alive() {
                let live = state
                    .live_embedding(host)
                    .expect("alive state materialises");
                assert_eq!(
                    live.map,
                    batch.unwrap().map,
                    "{}: embedding parity broken (stream {stream_index}, arrival {arrivals})",
                    C::NAME
                );
            }
        }
        if !state.alive() {
            assert!(state.death().is_some());
            break;
        }

        // Property 2: the repaired embedding passes the independent
        // checker.
        let cert = live_certificate(host, state).expect("alive");
        ftt_verify::check_certificate(&cert, host.graph(), state.faults()).unwrap_or_else(|e| {
            panic!(
                "{}: repaired embedding rejected by the independent checker \
                 (stream {stream_index}, arrival {arrivals}): {e}",
                C::NAME
            )
        });
    }
    arrivals
}

/// Runs `streams` seed-derived streams against a fresh host.
fn battery<C: HostConstruction>(
    host: &C,
    streams: u64,
    root: u64,
    max_arrivals: usize,
    check_batch: bool,
) {
    let mut state = RepairState::new(host).expect("fault-free extraction");
    let mut scratch = host.new_scratch();
    let mut total = 0;
    for i in 0..streams {
        total += check_stream(
            host,
            &mut state,
            &mut scratch,
            i,
            cell_seed(root, &format!("prop_online/{i}")),
            max_arrivals,
            check_batch,
        );
    }
    assert!(
        total >= streams as usize,
        "{}: battery produced almost no arrivals ({total})",
        C::NAME
    );
}

fn bdn_host() -> ftt_core::Bdn {
    ftt_core::Bdn::build(ftt_core::BdnParams::new(2, 54, 3, 1).unwrap())
}

fn adn_host() -> ftt_core::Adn {
    // Smallest valid A² (k = 1, h = 4): the parity check re-extracts
    // per prefix, and debug-build batch extraction is slow. The k = 2
    // tier taxonomy has dedicated drive()-style unit tests in
    // `ftt-core::online`.
    let inner = ftt_core::BdnParams::new(2, 54, 3, 1).unwrap();
    ftt_core::Adn::build(ftt_core::AdnParams::new(inner, 1, 4, 0.0).unwrap())
}

fn ddn_host() -> ftt_core::Ddn {
    ftt_core::Ddn::new(ftt_core::DdnParams::fit(2, 30, 2).unwrap())
}

/// ≥ 256 streams per construction at a fixed root seed — the
/// checked-in battery the satellite task demands, independent of
/// `PROPTEST_CASES`.
#[test]
fn differential_battery_bdn_256_streams() {
    battery(&bdn_host(), 256, 0xB0, 32, true);
}

#[test]
fn differential_battery_ddn_256_streams() {
    battery(&ddn_host(), 256, 0xD0, 30, true);
}

/// `A²_n` repairs incrementally (cached goodness deltas + nested inner
/// `B²` engine + conditional re-greedy), so it gets the full treatment:
/// outcome **and** embedding parity against `try_extract_with` on every
/// prefix, plus the independent checker. All 256 streams run.
#[test]
fn differential_battery_adn_256_streams() {
    battery(&adn_host(), 256, 0xA0, 6, true);
}

/// A single fault on a fault-free `B²` always lands in an isolated
/// tile, so the tile-local repaint must absorb it — the Rebuild tier
/// (and death) are unreachable for the first arrival.
#[test]
fn bdn_single_fault_never_rebuilds() {
    let host = bdn_host();
    let mut state = RepairState::new(&host).expect("fault-free extraction");
    for v in (0..host.num_nodes()).step_by(37) {
        state.reset(&host).expect("fault-free reset");
        let outcome = state.apply(&host, ftt_faults::Fault::Node(v));
        assert_eq!(
            outcome,
            ftt_core::online::RepairOutcome::Repaired(ftt_core::online::RepairClass::Local),
            "single-tile fault at node {v} must be absorbed by repaint"
        );
    }
}

proptest! {
    /// Arbitrary root seeds on top of the fixed battery: 4 fresh
    /// streams per case per construction (64 default cases ⇒ another
    /// 256 streams each for B and D).
    #[test]
    fn differential_holds_for_arbitrary_seeds_bdn(root in 0u64..u64::MAX) {
        battery(&bdn_host(), 4, root, 25, true);
    }

    #[test]
    fn differential_holds_for_arbitrary_seeds_ddn(root in 0u64..u64::MAX) {
        battery(&ddn_host(), 4, root, 25, true);
    }
}
