//! Differential property tests for the online repair engine: **batch
//! parity on every stream prefix**.
//!
//! After any prefix of any fault stream — kills *and* renewal repairs —
//! two things must hold:
//!
//! 1. the incrementally-repaired state and a from-scratch
//!    `try_extract_with` on the accumulated *live* `FaultSet` (kills
//!    recorded, repairs reverted) agree on the outcome (alive ⇔ batch
//!    extracts), and — when alive — on the embedding itself, node for
//!    node;
//! 2. the repaired embedding passes the **independent** checker
//!    (`ftt_verify::check_certificate`), which shares zero code with
//!    the band machinery and the repair engine.
//!
//! Each construction is driven by ≥ 256 random kill streams (trickle,
//! burst, and targeted-adversary arrivals, seed-derived), checked
//! prefix by prefix up to and including the killing fault, **plus**
//! ≥ 256 renewal interleavings (kill/repair sequences with varying
//! delays and inner hazards) where death does not end the trial —
//! repairs may resurrect the state, and parity must hold through every
//! down spell. Every renewal drive is journaled and the journal replay
//! is checked byte-exact: the replayed event sequence equals the
//! recorded one, and a fresh state driven from the replay reaches the
//! identical outcome and embedding. The proptest wrappers add
//! arbitrary root seeds on top of the fixed batteries.

use ftt_core::construct::HostConstruction;
use ftt_core::online::{live_certificate, RepairState};
use ftt_faults::{FaultJournal, FaultStream, StreamFeedback, StreamSpec};
use ftt_sim::cell_seed;
use proptest::prelude::*;

/// The kill-stream battery: spec variety cycled by stream index.
fn stream_spec(index: u64) -> StreamSpec {
    match index % 4 {
        0 => StreamSpec::Trickle {
            node_rate: 5e-3,
            edge_rate: 0.0,
        },
        1 => StreamSpec::Trickle {
            node_rate: 2e-3,
            edge_rate: 5e-4,
        },
        2 => StreamSpec::Burst {
            rate: 2e-3,
            size: 3,
        },
        _ => StreamSpec::Targeted,
    }
}

/// The renewal battery: kill/repair interleavings with cycled repair
/// delays and inner hazards. Delay 1 maximises interleaving churn
/// (repair lands immediately after the next kill opportunity); longer
/// delays pile up outstanding faults so repairs arrive into a state
/// that has absorbed several kills — and sometimes into a dead one.
fn renewal_spec(index: u64) -> StreamSpec {
    let inner = match index % 3 {
        0 => StreamSpec::Trickle {
            node_rate: 5e-4,
            edge_rate: 0.0,
        },
        1 => StreamSpec::Trickle {
            node_rate: 2e-4,
            edge_rate: 1e-4,
        },
        _ => StreamSpec::Ageing {
            rate: 0.5,
            shape: 1.5,
        },
    };
    StreamSpec::Renew {
        delay: 1 + (index % 4) * 5,
        inner: Box::new(inner),
    }
}

/// The lifetime engine's feedback, reconstructed locally so the stream
/// sees exactly what it would see in production: accumulated faults
/// plus the live map.
struct Feedback<'a> {
    faults: &'a ftt_faults::FaultSet,
    map: Option<&'a [usize]>,
}

impl StreamFeedback for Feedback<'_> {
    fn occupied_node(&self, selector: u64) -> Option<usize> {
        let map = self.map?;
        if map.is_empty() {
            return None;
        }
        Some(map[(selector % map.len() as u64) as usize])
    }
    fn node_faulty(&self, v: usize) -> bool {
        self.faults.node_faulty(v)
    }
    fn edge_faulty(&self, e: u32) -> bool {
        self.faults.edge_faulty(e)
    }
}

/// Checks both differential properties on the current state.
fn check_parity<C: HostConstruction>(
    host: &C,
    state: &mut RepairState<C>,
    scratch: &mut C::Scratch,
    context: &dyn Fn() -> String,
) {
    let batch = host.try_extract_with(state.faults(), scratch);
    assert_eq!(
        state.alive(),
        batch.is_ok(),
        "{}: outcome parity broken ({})",
        C::NAME,
        context()
    );
    if !state.alive() {
        assert!(state.death().is_some());
        return;
    }
    let live = state
        .live_embedding(host)
        .expect("alive state materialises");
    assert_eq!(
        live.map,
        batch.unwrap().map,
        "{}: embedding parity broken ({})",
        C::NAME,
        context()
    );

    // Property 2: the repaired embedding passes the independent
    // checker.
    let cert = live_certificate(host, state).expect("alive");
    ftt_verify::check_certificate(&cert, host.oracle(), state.faults()).unwrap_or_else(|e| {
        panic!(
            "{}: repaired embedding rejected by the independent checker ({}): {e}",
            C::NAME,
            context()
        )
    });
}

/// Drives one stream against `host`, checking both differential
/// properties after every prefix. Kill-only streams stop at the first
/// death; renewing streams run to the event cap — pending repairs may
/// resurrect a dead state, and parity is checked while dead too.
/// When `journal` is given, every delivered event is recorded.
/// Returns the number of events delivered.
fn check_stream<C: HostConstruction>(
    host: &C,
    state: &mut RepairState<C>,
    scratch: &mut C::Scratch,
    spec: StreamSpec,
    stream_index: u64,
    seed: u64,
    max_events: usize,
    mut journal: Option<&mut FaultJournal>,
) -> usize {
    let mut stream = spec.stream(host.num_nodes(), host.num_edges(), seed);
    let renewing = stream.renewing();
    state.reset(host).expect("fault-free extraction");
    let mut events = 0;
    while events < max_events {
        if stream.adaptive() && state.alive() {
            let _ = state.live_embedding(host);
        }
        let event = {
            let feedback = Feedback {
                faults: state.faults(),
                map: state.embedding().map(|e| e.map.as_slice()),
            };
            stream.next(&feedback)
        };
        let Some(event) = event else { break };
        if let Some(j) = journal.as_deref_mut() {
            j.record(event);
        }
        state.apply_event(host, event.event);
        events += 1;

        // Property 1 (and 2 when alive): parity with the batch
        // pipeline on the accumulated live fault set.
        let count = events;
        check_parity(host, state, scratch, &|| {
            format!(
                "stream {stream_index}, seed {seed}, event {count}, {:?}",
                event.event
            )
        });
        if !state.alive() && !renewing {
            break;
        }
    }
    events
}

/// Runs `streams` seed-derived kill streams against a fresh host.
fn battery<C: HostConstruction>(host: &C, streams: u64, root: u64, max_events: usize) {
    let mut state = RepairState::new(host).expect("fault-free extraction");
    let mut scratch = host.new_scratch();
    let mut total = 0;
    for i in 0..streams {
        total += check_stream(
            host,
            &mut state,
            &mut scratch,
            stream_spec(i),
            i,
            cell_seed(root, &format!("prop_online/{i}")),
            max_events,
            None,
        );
    }
    assert!(
        total >= streams as usize,
        "{}: battery produced almost no arrivals ({total})",
        C::NAME
    );
}

/// Runs `streams` renewal interleavings, each journaled, parity-checked
/// per prefix, and replayed byte-exact from the journal.
fn renewal_battery<C: HostConstruction>(host: &C, streams: u64, root: u64, max_events: usize) {
    let mut state = RepairState::new(host).expect("fault-free extraction");
    let mut replayed = RepairState::new(host).expect("fault-free extraction");
    let mut scratch = host.new_scratch();
    let mut total = 0;
    let mut repairs = 0usize;
    for i in 0..streams {
        let mut journal = FaultJournal::new();
        total += check_stream(
            host,
            &mut state,
            &mut scratch,
            renewal_spec(i),
            i,
            cell_seed(root, &format!("prop_online/renew/{i}")),
            max_events,
            Some(&mut journal),
        );
        repairs += journal.events().iter().filter(|ev| ev.is_repair()).count();

        // Journal replay is byte-exact: the replay stream yields the
        // recorded sequence verbatim, and a fresh state driven from it
        // lands on the identical outcome and embedding.
        let mut replay = journal.replay();
        let noop = Feedback {
            faults: state.faults(),
            map: None,
        };
        replayed.reset(host).expect("fault-free extraction");
        let mut seen = Vec::with_capacity(journal.len());
        while let Some(ev) = replay.next(&noop) {
            seen.push(ev);
            replayed.apply_event(host, ev.event);
        }
        assert_eq!(
            seen,
            journal.events(),
            "{}: replay altered the event sequence (stream {i})",
            C::NAME
        );
        assert_eq!(
            replayed.alive(),
            state.alive(),
            "{}: replay diverged on outcome (stream {i})",
            C::NAME
        );
        if state.alive() {
            assert_eq!(
                replayed.live_embedding(host).expect("alive").map,
                state.live_embedding(host).expect("alive").map,
                "{}: replay diverged on the embedding (stream {i})",
                C::NAME
            );
        }
    }
    assert!(
        total >= streams as usize,
        "{}: renewal battery produced almost no events ({total})",
        C::NAME
    );
    assert!(
        repairs > 0,
        "{}: renewal battery delivered no repair events — delays/rates too timid",
        C::NAME
    );
}

fn bdn_host() -> ftt_core::Bdn {
    ftt_core::Bdn::build(ftt_core::BdnParams::new(2, 54, 3, 1).unwrap())
}

fn adn_host() -> ftt_core::Adn {
    // Smallest valid A² (k = 1, h = 4): the parity check re-extracts
    // per prefix, and debug-build batch extraction is slow. The k = 2
    // tier taxonomy has dedicated drive()-style unit tests in
    // `ftt-core::online`.
    let inner = ftt_core::BdnParams::new(2, 54, 3, 1).unwrap();
    ftt_core::Adn::build(ftt_core::AdnParams::new(inner, 1, 4, 0.0).unwrap())
}

fn ddn_host() -> ftt_core::Ddn {
    ftt_core::Ddn::new(ftt_core::DdnParams::fit(2, 30, 2).unwrap())
}

/// ≥ 256 streams per construction at a fixed root seed — the
/// checked-in battery the satellite task demands, independent of
/// `PROPTEST_CASES`.
#[test]
fn differential_battery_bdn_256_streams() {
    battery(&bdn_host(), 256, 0xB0, 32);
}

#[test]
fn differential_battery_ddn_256_streams() {
    battery(&ddn_host(), 256, 0xD0, 30);
}

/// `A²_n` repairs incrementally (cached goodness deltas + nested inner
/// `B²` engine + conditional re-greedy), so it gets the full treatment:
/// outcome **and** embedding parity against `try_extract_with` on every
/// prefix, plus the independent checker. All 256 streams run.
#[test]
fn differential_battery_adn_256_streams() {
    battery(&adn_host(), 256, 0xA0, 6);
}

/// ≥ 256 renewal interleavings per construction: kills and repairs
/// alternate per the renewal delay, parity holds on every prefix
/// (through deaths and resurrections), and every journal replays
/// byte-exact.
#[test]
fn renewal_parity_battery_bdn_256_interleavings() {
    renewal_battery(&bdn_host(), 256, 0xB1, 36);
}

#[test]
fn renewal_parity_battery_ddn_256_interleavings() {
    renewal_battery(&ddn_host(), 256, 0xD1, 34);
}

#[test]
fn renewal_parity_battery_adn_256_interleavings() {
    renewal_battery(&adn_host(), 256, 0xA1, 8);
}

/// A single fault on a fault-free `B²` always lands in an isolated
/// tile, so the tile-local repaint must absorb it — the Rebuild tier
/// (and death) are unreachable for the first arrival.
#[test]
fn bdn_single_fault_never_rebuilds() {
    let host = bdn_host();
    let mut state = RepairState::new(&host).expect("fault-free extraction");
    for v in (0..host.num_nodes()).step_by(37) {
        state.reset(&host).expect("fault-free reset");
        let outcome = state.apply(&host, ftt_faults::Fault::Node(v));
        assert_eq!(
            outcome,
            ftt_core::online::RepairOutcome::Repaired(ftt_core::online::RepairClass::Local),
            "single-tile fault at node {v} must be absorbed by repaint"
        );
    }
}

proptest! {
    /// Arbitrary root seeds on top of the fixed batteries: 4 fresh
    /// streams per case per construction (64 default cases ⇒ another
    /// 256 streams each for B and D).
    #[test]
    fn differential_holds_for_arbitrary_seeds_bdn(root in 0u64..u64::MAX) {
        battery(&bdn_host(), 4, root, 25);
    }

    #[test]
    fn differential_holds_for_arbitrary_seeds_ddn(root in 0u64..u64::MAX) {
        battery(&ddn_host(), 4, root, 25);
    }

    /// Renewal interleavings under arbitrary seeds: resurrection and
    /// repair-while-dead paths get fuzzed beyond the fixed battery.
    #[test]
    fn renewal_parity_holds_for_arbitrary_seeds_bdn(root in 0u64..u64::MAX) {
        renewal_battery(&bdn_host(), 3, root, 25);
    }

    #[test]
    fn renewal_parity_holds_for_arbitrary_seeds_ddn(root in 0u64..u64::MAX) {
        renewal_battery(&ddn_host(), 3, root, 25);
    }
}
