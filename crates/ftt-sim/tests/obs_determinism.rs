//! The observability determinism battery: instrumentation must never
//! change results.
//!
//! Every probe in the stack (tier counters, phase timers, latency
//! histograms) reads clocks and bumps atomics but feeds nothing back
//! into any algorithm, so a binary built with `--features obs` must
//! produce BIT-IDENTICAL artifacts to one built without. These tests
//! pin that contract with hardcoded FNV-1a digests over the sweep and
//! lifetime JSON artifacts (wall-clock lines excluded — elapsed time
//! is the one thing allowed to differ): CI runs this same test file
//! twice, obs off and obs on, and both runs must match the same
//! constants. A digest mismatch in only one of the two runs means
//! instrumentation perturbed results; a mismatch in both means results
//! changed for some other reason and the constants need a deliberate
//! (reviewed) update.

use ftt_sim::{run_lifetime, run_sweep, LifetimeSpec, SweepSpec};

/// 64-bit FNV-1a — tiny, dependency-free, stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a JSON artifact with wall-clock lines dropped — the same
/// key set `tools/check_metrics.py --compare` ignores — plus
/// `threads`, a recorded run *parameter* that this battery varies on
/// purpose to also pin thread-count invariance of the results.
fn artifact_digest(json: &str) -> u64 {
    const TIMING_KEYS: [&str; 5] = [
        "\"seconds\"",
        "\"trials_per_sec\"",
        "\"faults_per_sec\"",
        "\"repairs_per_sec\"",
        "\"threads\"",
    ];
    let kept: String = json
        .lines()
        .filter(|line| !TIMING_KEYS.iter().any(|k| line.contains(k)))
        .collect::<Vec<_>>()
        .join("\n");
    fnv1a(kept.as_bytes())
}

fn scratch(name: &str) -> (String, String) {
    let dir = std::env::temp_dir();
    let tag = format!("{name}_{}", std::process::id());
    (
        dir.join(format!("ftt_obsdet_{tag}.json"))
            .to_str()
            .unwrap()
            .to_string(),
        dir.join(format!("ftt_obsdet_{tag}.csv"))
            .to_str()
            .unwrap()
            .to_string(),
    )
}

fn digest_of(json_path: &str, csv_path: &str) -> u64 {
    let json = std::fs::read_to_string(json_path).unwrap();
    let digest = artifact_digest(&json);
    let _ = std::fs::remove_file(json_path);
    let _ = std::fs::remove_file(csv_path);
    digest
}

/// The Monte-Carlo sweep engine: per-cell successes, Wilson CIs, and
/// baseline columns are all seed-derived. Two thread counts guard the
/// thread-invariance half of the contract in the same breath.
#[test]
fn sweep_smoke_artifact_digest_is_obs_invariant() {
    const EXPECTED: u64 = 0x5296_d561_8c2b_6294;
    let mut spec = SweepSpec::preset("smoke").unwrap();
    spec.trials = 3;
    spec.root_seed = 20260808;
    for threads in [1, 2] {
        let report = run_sweep(&spec, threads).unwrap();
        let (json, csv) = scratch(&format!("sweep{threads}"));
        report.write_artifacts(&json, &csv).unwrap();
        let digest = digest_of(&json, &csv);
        assert_eq!(
            digest,
            EXPECTED,
            "sweep artifact digest {digest:#018x} != pinned {EXPECTED:#018x} \
             (threads = {threads}, obs = {})",
            ftt_obs::enabled()
        );
    }
}

/// The online lifetime engine drives the full repair stack — fault
/// streams, tier selection, repaint, certification — so its artifact
/// digest covers exactly the hot paths the instrumentation touches.
#[test]
fn lifetime_smoke_artifact_digest_is_obs_invariant() {
    const EXPECTED: u64 = 0xcd8a_fac1_a229_1391;
    let mut spec = LifetimeSpec::preset("life-smoke").unwrap();
    spec.trials = 2;
    spec.root_seed = 20260808;
    let report = run_lifetime(&spec, 2).unwrap();
    let (json, csv) = scratch("life");
    report.write_artifacts(&json, &csv).unwrap();
    let digest = digest_of(&json, &csv);
    assert_eq!(
        digest,
        EXPECTED,
        "lifetime artifact digest {digest:#018x} != pinned {EXPECTED:#018x} \
         (obs = {})",
        ftt_obs::enabled()
    );
}

/// The digest helper itself: timing lines are dropped, everything else
/// is significant.
#[test]
fn artifact_digest_ignores_exactly_the_wall_clock_lines() {
    let a = "{\n  \"x\": 1,\n  \"seconds\": 0.5,\n  \"trials_per_sec\": 99.0\n}";
    let b = "{\n  \"x\": 1,\n  \"seconds\": 123.0,\n  \"trials_per_sec\": 1.0\n}";
    let c = "{\n  \"x\": 2,\n  \"seconds\": 0.5,\n  \"trials_per_sec\": 99.0\n}";
    assert_eq!(artifact_digest(a), artifact_digest(b));
    assert_ne!(artifact_digest(a), artifact_digest(c));
}
