//! Property tests anchoring the *shape* of the Theorem-2 sweep curve
//! and the sweep engine's seed discipline.
//!
//! The paper predicts success probability decreasing in the fault rate
//! `p`; at the tiny `B²_54` size the grid of the `t2` preset (widely
//! separated multiples of the design probability `b^{−3d}`) keeps the
//! per-cell estimates far enough apart that the empirical curve is
//! monotone non-increasing for any root seed — that is the sanity
//! anchor CI relies on when it validates `SWEEP_t2.json`.

use ftt_sim::run_sweep;
use ftt_testutil::t2_tiny_spec as t2_tiny;
use proptest::prelude::*;

proptest! {
    /// Success is monotone non-increasing in `p` along the (widely
    /// separated) Theorem-2 multiplier grid, for any root seed and
    /// trial budget — the curve shape the paper predicts.
    #[test]
    fn t2_success_monotone_non_increasing_in_p(
        root_seed in 0u64..u64::MAX,
        trials in 8usize..17,
    ) {
        let spec = t2_tiny(&[0.0, 0.2, 1.0, 8.0], trials, root_seed);
        let report = run_sweep(&spec, 0).expect("valid spec");
        prop_assert_eq!(report.cells.len(), 4);
        // p really is increasing along the grid…
        for pair in report.cells.windows(2) {
            prop_assert!(pair[0].p.unwrap() < pair[1].p.unwrap());
        }
        // …the fault-free endpoint is a sure success…
        prop_assert_eq!(report.cells[0].stats.successes, trials);
        // …and the success column never increases.
        for pair in report.cells.windows(2) {
            prop_assert!(
                pair[1].stats.successes <= pair[0].stats.successes,
                "seed {}: {} ({}/{}) above {} ({}/{})",
                root_seed,
                pair[1].id.clone(),
                pair[1].stats.successes,
                trials,
                pair[0].id.clone(),
                pair[0].stats.successes,
                trials
            );
        }
    }

    /// Per-cell seeds depend on the root seed (two sweeps of the same
    /// grid under different roots are different experiments) while the
    /// trial count is always honoured exactly.
    #[test]
    fn sweep_honours_trial_budget(root_seed in 0u64..u64::MAX, trials in 1usize..9) {
        let spec = t2_tiny(&[0.5], trials, root_seed);
        let report = run_sweep(&spec, 0).expect("valid spec");
        prop_assert_eq!(report.cells.len(), 1);
        prop_assert_eq!(report.cells[0].stats.trials, trials);
        prop_assert!(report.cells[0].stats.successes <= trials);
    }
}
