//! Differential property tests: the sparse Monte-Carlo fast paths
//! against the dense reference oracles of `ftt-verify`.
//!
//! For each construction, the fast path (the `HostConstruction` trait's
//! scratch-reusing, fault-list-driven extraction) and the slow oracle
//! (dense full-domain fault application feeding an obviously-correct
//! re-implementation) must agree on **success/failure and the extracted
//! embedding** for arbitrary fault sets — node faults, edge faults, in
//! regimes from fault-free to far beyond tolerance. For `D^d_{n,k}` the
//! brute-force search over *all* cyclic band offsets additionally
//! brackets the greedy anchor choice from the complete side: whenever
//! the fast path extracts, some offset assignment must exist.
//!
//! Case budget: each property samples 4 derived fault sets per proptest
//! case; at the default 64 cases that is ≥ 256 fault sets per
//! construction (the acceptance floor), scaling with `PROPTEST_CASES`.

use ftt_core::adn::Adn;
use ftt_core::bdn::Bdn;
use ftt_core::construct::HostConstruction;
use ftt_core::ddn::Ddn;
use ftt_faults::{sample_bernoulli_faults, FaultSet};
use ftt_sim::runner::trial_seed;
use ftt_testutil::{tiny_adn, tiny_bdn, tiny_ddn};
use ftt_verify::{
    ddn_offset_search, reference_extract_adn, reference_extract_bdn, reference_extract_ddn,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Sub-seeds derived per case: 4 fault sets per proptest case ⇒ ≥ 256
/// per construction at the default case count.
const SUBSEEDS: u64 = 4;

fn bdn() -> &'static Bdn {
    static HOST: OnceLock<Bdn> = OnceLock::new();
    HOST.get_or_init(tiny_bdn)
}

fn adn() -> &'static Adn {
    static HOST: OnceLock<Adn> = OnceLock::new();
    HOST.get_or_init(|| tiny_adn(6, 0.0))
}

fn ddn() -> &'static Ddn {
    static HOST: OnceLock<Ddn> = OnceLock::new();
    HOST.get_or_init(tiny_ddn)
}

/// A seed-derived fault set at the case's fault scale. Scales sweep
/// from fault-free through the paper regime to saturation, with edge
/// faults in half of them (exercising ascription and the half-edge
/// conversion).
fn sample_faults<C: HostConstruction>(host: &C, seed: u64, scale: usize) -> FaultSet {
    let n = host.num_nodes() as f64;
    let (p, q) = match scale {
        0 => (0.0, 0.0),
        1 => (2.0 / n, 0.0),
        2 => (8.0 / n, 4.0 / (2.0 * n)),
        3 => (40.0 / n, 20.0 / (2.0 * n)),
        _ => (0.3, 0.05),
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    sample_bernoulli_faults(host.oracle(), p, q, &mut rng)
}

proptest! {
    /// `B^d_n`: sparse ascription + id-driven placement + reused
    /// scratch vs dense bitmap application through the dense entry
    /// point. Outcomes and embeddings must match exactly.
    #[test]
    fn bdn_sparse_path_matches_dense_oracle(
        seed in 0u64..u64::MAX,
        scale in 0usize..5,
    ) {
        let host = bdn();
        let mut scratch = host.new_scratch();
        for sub in 0..SUBSEEDS {
            let faults = sample_faults(host, trial_seed(seed, sub), scale);
            let fast = host.try_extract_with(&faults, &mut scratch);
            let slow = reference_extract_bdn(host, &faults);
            prop_assert_eq!(
                fast.is_ok(),
                slow.is_some(),
                "scale {}: fast {:?} vs oracle {}",
                scale,
                fast.as_ref().err(),
                slow.is_some()
            );
            if let (Ok(f), Some(s)) = (fast, slow) {
                prop_assert_eq!(f.guest.dims(), &s.guest_dims[..]);
                prop_assert_eq!(f.map, s.map, "embeddings must be identical");
            }
        }
    }

    /// `A^2_n`: the trait's in-place node-bitmap reset and half-edge
    /// conversion vs fresh dense buffers. Outcomes and embeddings must
    /// match exactly — any scratch-reset bug shows up as divergence
    /// across the 4 consecutive fault sets sharing one scratch.
    #[test]
    fn adn_sparse_path_matches_dense_oracle(
        seed in 0u64..u64::MAX,
        scale in 0usize..5,
    ) {
        let host = adn();
        let mut scratch = host.new_scratch();
        for sub in 0..SUBSEEDS {
            let faults = sample_faults(host, trial_seed(seed, sub), scale);
            let fast = host.try_extract_with(&faults, &mut scratch);
            let slow = reference_extract_adn(host, &faults);
            prop_assert_eq!(
                fast.is_ok(),
                slow.is_some(),
                "scale {}: fast {:?} vs oracle {}",
                scale,
                fast.as_ref().err(),
                slow.is_some()
            );
            if let (Ok(f), Some(s)) = (fast, slow) {
                prop_assert_eq!(f.guest.dims(), &s.guest_dims[..]);
                prop_assert_eq!(f.map, s.map, "embeddings must be identical");
            }
        }
    }

    /// `D^d_{n,k}`: the sparse pigeonhole placement vs the dense
    /// re-implementation (exact agreement) and the brute-force offset
    /// search (completeness: fast success ⇒ some offsets work). Within
    /// the Theorem 3 budget, all three must succeed.
    #[test]
    fn ddn_sparse_path_matches_dense_oracle(
        seed in 0u64..u64::MAX,
        scale in 0usize..5,
    ) {
        let host = ddn();
        let budget = host.params().tolerated_faults();
        let mut scratch = host.new_scratch();
        for sub in 0..SUBSEEDS {
            let faults = sample_faults(host, trial_seed(seed, sub), scale);
            let fast = host.try_extract_with(&faults, &mut scratch);
            let slow = reference_extract_ddn(host, &faults);
            prop_assert_eq!(
                fast.is_ok(),
                slow.is_some(),
                "scale {}: fast {:?} vs oracle {}",
                scale,
                fast.as_ref().err(),
                slow.is_some()
            );
            if let (Ok(f), Some(s)) = (&fast, &slow) {
                prop_assert_eq!(f.guest.dims(), &s.guest_dims[..]);
                prop_assert_eq!(&f.map, &s.map, "identical tie-breaks, identical map");
            }
            if fast.is_ok() {
                prop_assert!(
                    ddn_offset_search(host, &faults),
                    "greedy succeeded but the complete offset search found nothing"
                );
            }
            if faults.count_faults() <= budget {
                prop_assert!(fast.is_ok(), "Theorem 3: {} faults", faults.count_faults());
            }
        }
    }
}
