//! Summary statistics for experiment outputs.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Wilson score interval for a binomial proportion at ~95% confidence
/// (`z = 1.96`). Returns `(low, high)`; degenerates gracefully for
/// `trials == 0`.
pub fn wilson_interval(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // Mathematically lo ≤ p ≤ hi always holds; the final min/max with
    // `p` repairs the float-rounding cases (e.g. successes == trials
    // computes hi = 1 − 2⁻⁵², just below the rate 1.0).
    (
        ((centre - half) / denom).max(0.0).min(p),
        ((centre + half) / denom).min(1.0).max(p),
    )
}

/// Nearest-rank `q`-quantile of an ascending sample (0 for empty
/// input). `q = 0.5` is the median.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Wilson-style confidence interval for the `q`-quantile of an
/// ascending sample: the Wilson score interval around the CDF position
/// `q` ([`wilson_interval`] at `⌈q·n⌉` pseudo-successes) is mapped back
/// through the empirical CDF to order statistics. Distribution-free and
/// conservative at the sample edges; degenerates to the full range for
/// tiny samples.
pub fn quantile_ci(sorted: &[f64], q: f64) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
    if sorted.is_empty() {
        return (0.0, 0.0);
    }
    let n = sorted.len();
    let pseudo = ((q * n as f64).ceil() as usize).min(n);
    let (lo_p, hi_p) = wilson_interval(pseudo, n);
    let lo_idx = ((lo_p * n as f64).floor() as usize).min(n - 1);
    let hi_idx = ((hi_p * n as f64).ceil() as usize).clamp(lo_idx + 1, n) - 1;
    (sorted[lo_idx], sorted[hi_idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        let (lo, hi) = wilson_interval(80, 100);
        assert!(lo < 0.8 && 0.8 < hi);
        assert!(lo > 0.7 && hi < 0.88);
    }

    #[test]
    fn wilson_edge_cases() {
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 50);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.10);
        let (lo, hi) = wilson_interval(50, 50);
        assert!(lo > 0.9);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn wilson_brackets_degenerate_rates() {
        // Rounding must never push the interval off the point estimate
        // (successes == trials used to give hi = 1 − 2⁻⁵²).
        for trials in [1usize, 5, 60, 1000] {
            for successes in [0, trials] {
                let p = successes as f64 / trials as f64;
                let (lo, hi) = wilson_interval(successes, trials);
                assert!(lo <= p && p <= hi, "{successes}/{trials}: [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn wilson_narrows_with_trials() {
        let (l1, h1) = wilson_interval(5, 10);
        let (l2, h2) = wilson_interval(500, 1000);
        assert!(h2 - l2 < h1 - l1);
    }

    #[test]
    fn quantile_nearest_rank() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert_eq!(quantile(&xs, 0.5), 5.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
        assert_eq!(quantile(&xs, 0.9), 9.0);
    }

    #[test]
    fn quantile_ci_brackets_the_quantile() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        for q in [0.1, 0.5, 0.9] {
            let point = quantile(&xs, q);
            let (lo, hi) = quantile_ci(&xs, q);
            assert!(lo <= point && point <= hi, "q={q}: [{lo}, {hi}] vs {point}");
            assert!(lo >= xs[0] && hi <= xs[99]);
        }
        // More samples, tighter interval.
        let big: Vec<f64> = (1..=1000).map(|x| x as f64).collect();
        let (l1, h1) = quantile_ci(&xs, 0.5);
        let (l2, h2) = quantile_ci(&big, 0.5);
        assert!((h2 - l2) / 1000.0 < (h1 - l1) / 100.0);
    }

    #[test]
    fn quantile_ci_degenerate_samples() {
        assert_eq!(quantile_ci(&[], 0.5), (0.0, 0.0));
        let one = [42.0];
        let (lo, hi) = quantile_ci(&one, 0.5);
        assert_eq!((lo, hi), (42.0, 42.0));
    }
}
