//! Declarative scenario sweeps: the paper's *curves*, reproducible in
//! one call.
//!
//! Tamaki's theorems are statements about curves — success probability
//! of extracting a fault-free torus as a function of the fault rate
//! `p`/`q` (Theorems 1–2) or the worst-case budget `k` (Theorem 3). A
//! [`SweepSpec`] describes such a curve declaratively: a set of
//! constructions ([`ConstructionSpec`]) crossed with a set of fault
//! regimes ([`FaultRegime`]), a trial budget, and a root seed. The
//! engine ([`run_sweep`]) expands the cross product into *cells*,
//! executes every cell through the chunked Monte-Carlo extraction
//! pipeline, and aggregates per-cell success rate, Wilson confidence
//! interval, and throughput into a [`SweepReport`] with
//! schema-versioned JSON and CSV emitters (`SWEEP_*.json` /
//! `SWEEP_*.csv`, consumed by CI).
//!
//! # Determinism
//!
//! Every cell owns a seed derived from the root seed and the cell's
//! *canonical id* (construction + regime, never its position), and
//! per-trial seeds are split from the cell seed exactly as in
//! [`crate::runner`]. Per-cell results are therefore a pure function of
//! `(spec contents, root seed)` — invariant under the worker thread
//! count, the order cells are listed in, and which other cells share
//! the sweep.
//!
//! # Performance
//!
//! Cells of the same construction share one built host and one
//! [`ScratchPool`] of per-worker `(FaultSet, Scratch)` buffers, so the
//! steady-state trial loop stays allocation-free *across* cells, not
//! just within one (see `crate::scenario`).
//!
//! # Presets
//!
//! Three checked-in paper-regime presets reproduce the theorem curves
//! ([`SweepSpec::preset`]): `t1` (A²_n under node + edge faults), `t2`
//! (B²_n success vs multiples of the design probability `b^{−3d}`,
//! monotone in `p`), and `t3` (D²_{n,k} under adversarial patterns at
//! multiples of the budget `k`; the `×1` cells are Theorem 3's
//! guarantee and must sit at success rate 1). A fourth preset, `smoke`,
//! is a 3-cell grid for CI. Every preset carries an Alon–Chung baseline
//! column: the expander-product mesh host of the paper's Section 5
//! comparison, run against the same per-cell fault parameters.

use crate::runner::{run_indexed_multi_pooled, run_multi_trials_pooled, ScratchPool, TrialStats};
use crate::scenario::extract_verified_with;
use crate::table::{fmt_prob, Table};
use ftt_baselines::AlonChungMesh;
use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::{Bdn, BdnParams};
use ftt_core::construct::HostConstruction;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_faults::{
    sample_bernoulli_faults_into, sample_indices, AdversaryPattern, AdversarySampler, FaultSet,
};
use ftt_geom::Shape;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Per-cell wall-clock timer (µs), mirroring the artifact's
/// `seconds` field into the live registry.
static SWEEP_CELL_US: ftt_obs::LazyHistogram =
    ftt_obs::LazyHistogram::new("ftt_sim_phase_us{phase=\"sweep_cell\"}");

/// Version stamp of the `SWEEP_*.json` / `SWEEP_*.csv` artifact schema.
pub const SWEEP_SCHEMA_VERSION: u32 = 1;

/// One construction axis of a sweep grid. Sizes are *minimums*: the
/// spec uses the `fit` constructors, so `n` rounds up to the nearest
/// valid instance (divisibility constraints differ per construction).
#[derive(Debug, Clone, PartialEq)]
pub enum ConstructionSpec {
    /// Theorem 2's `B^d_n` (degree `6d−2`, random-fault design point
    /// `p = b^{−3d}`).
    Bdn {
        /// Dimension `d`.
        d: usize,
        /// Minimum guest torus side.
        n_min: usize,
        /// Band parameter `b`.
        b: usize,
        /// Slack parameter `ε_b`.
        eps_b: usize,
    },
    /// Theorem 1's `A²_n` (supernode clusters over an inner `B²`, node
    /// *and* edge faults via the half-edge model).
    Adn {
        /// Minimum guest torus side.
        n_min: usize,
        /// Cluster factor `k` (guest side = `k ·` inner side).
        k: usize,
        /// Supernode size `h`.
        h: usize,
        /// Design half-edge failure rate `√q` (≤ 1/16).
        sqrt_q: f64,
    },
    /// Theorem 3's `D^d_{n,k}` (degree `4d`, tolerates **any**
    /// `k = b^(2^d − 1)` faults).
    Ddn {
        /// Dimension `d`.
        d: usize,
        /// Minimum guest torus side.
        n_min: usize,
        /// Base jump parameter `b`.
        b: usize,
    },
}

impl ConstructionSpec {
    pub(crate) fn build(&self) -> Result<BuiltHost, String> {
        match *self {
            ConstructionSpec::Bdn { d, n_min, b, eps_b } => Ok(BuiltHost::Bdn(Bdn::build(
                BdnParams::fit(d, n_min, b, eps_b)?,
            ))),
            ConstructionSpec::Adn {
                n_min,
                k,
                h,
                sqrt_q,
            } => {
                if k == 0 {
                    return Err("A²_n needs k ≥ 1".into());
                }
                let inner = BdnParams::fit(2, n_min.div_ceil(k), 3, 1)?;
                Ok(BuiltHost::Adn(Adn::build(AdnParams::new(
                    inner, k, h, sqrt_q,
                )?)))
            }
            ConstructionSpec::Ddn { d, n_min, b } => {
                Ok(BuiltHost::Ddn(Ddn::new(DdnParams::fit(d, n_min, b)?)))
            }
        }
    }
}

/// A built host of any construction, with the spec-level metadata the
/// report needs (canonical id, parameter string, guest size). Shared
/// with the lifetime engine (`crate::lifetime`), which crosses the same
/// construction axis with fault streams instead of fault regimes.
pub(crate) enum BuiltHost {
    Bdn(Bdn),
    Adn(Adn),
    Ddn(Ddn),
}

impl BuiltHost {
    /// Canonical id of the *resolved* instance — part of every cell id,
    /// hence of every cell seed.
    pub(crate) fn id(&self) -> String {
        match self {
            BuiltHost::Bdn(h) => {
                let p = h.params();
                format!("b{}_n{}b{}e{}", p.d, p.n, p.b, p.eps_b)
            }
            BuiltHost::Adn(h) => {
                let p = h.params();
                format!("a2_n{}k{}h{}sq{}", p.n(), p.k, p.h, p.sqrt_q)
            }
            BuiltHost::Ddn(h) => {
                let p = h.params();
                format!("d{}_n{}b{}", p.d, p.n, p.b)
            }
        }
    }

    pub(crate) fn construction_name(&self) -> &'static str {
        match self {
            BuiltHost::Bdn(_) => <Bdn as HostConstruction>::NAME,
            BuiltHost::Adn(_) => <Adn as HostConstruction>::NAME,
            BuiltHost::Ddn(_) => <Ddn as HostConstruction>::NAME,
        }
    }

    pub(crate) fn params_string(&self) -> String {
        match self {
            BuiltHost::Bdn(h) => {
                let p = h.params();
                format!("d={} n={} b={} eps_b={}", p.d, p.n, p.b, p.eps_b)
            }
            BuiltHost::Adn(h) => {
                let p = h.params();
                format!("n={} k={} h={} sqrt_q={}", p.n(), p.k, p.h, p.sqrt_q)
            }
            BuiltHost::Ddn(h) => {
                let p = h.params();
                format!(
                    "d={} n={} b={} budget={}",
                    p.d,
                    p.n,
                    p.b,
                    p.tolerated_faults()
                )
            }
        }
    }

    /// Guest torus side (what the Alon–Chung baseline must host).
    fn guest_n(&self) -> usize {
        match self {
            BuiltHost::Bdn(h) => h.params().n,
            BuiltHost::Adn(h) => h.params().n(),
            BuiltHost::Ddn(h) => h.params().n,
        }
    }

    fn dimension(&self) -> usize {
        match self {
            BuiltHost::Bdn(h) => h.params().d,
            BuiltHost::Adn(_) => 2,
            BuiltHost::Ddn(h) => h.params().d,
        }
    }
}

/// Adversarial pattern selector for sweep regimes. Mirrors
/// [`AdversaryPattern`] except that [`SweepPattern::ResidueSpreadAuto`]
/// resolves its modulus from the target construction (`b_0 + 1`, the
/// residue classes of `D^d_{n,k}`'s first dimension) instead of
/// hard-coding one into the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPattern {
    /// Uniformly random distinct nodes.
    Random,
    /// A contiguous axis-aligned cube.
    ClusteredCube,
    /// Evenly spaced nodes on the wrapped main diagonal.
    Diagonal,
    /// Consecutive nodes along one axis line.
    AxisLine {
        /// Direction of the line.
        axis: usize,
    },
    /// Faults concentrated in a few coordinate-0 hyperplanes.
    FewRows {
        /// Number of distinct rows attacked.
        rows: usize,
    },
    /// Residue-class attack on dimension 0, modulus `b_0 + 1` of the
    /// target `D^d_{n,k}` — the worst case for the cyclic pigeonhole.
    ResidueSpreadAuto,
}

impl SweepPattern {
    fn resolve(&self, params: &DdnParams) -> AdversaryPattern {
        match *self {
            SweepPattern::Random => AdversaryPattern::Random,
            SweepPattern::ClusteredCube => AdversaryPattern::ClusteredCube,
            SweepPattern::Diagonal => AdversaryPattern::Diagonal,
            SweepPattern::AxisLine { axis } => AdversaryPattern::AxisLine { axis },
            SweepPattern::FewRows { rows } => AdversaryPattern::FewRows { rows },
            SweepPattern::ResidueSpreadAuto => AdversaryPattern::ResidueSpread {
                axis: 0,
                modulus: params.band_width(0) + 1,
            },
        }
    }

    fn slug(&self) -> String {
        match *self {
            SweepPattern::Random => "random".into(),
            SweepPattern::ClusteredCube => "cluster".into(),
            SweepPattern::Diagonal => "diag".into(),
            SweepPattern::AxisLine { axis } => format!("line{axis}"),
            SweepPattern::FewRows { rows } => format!("rows{rows}"),
            SweepPattern::ResidueSpreadAuto => "spread".into(),
        }
    }
}

/// One fault-regime axis of a sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultRegime {
    /// Independent Bernoulli node faults (`p`) and whole-edge faults
    /// (`q`); `q > 0` exercises the half-edge model on `A²_n` and edge
    /// ascription on `B`/`D`.
    Bernoulli {
        /// Per-node fault probability.
        p: f64,
        /// Per-edge fault probability.
        q: f64,
    },
    /// Bernoulli node faults at `mult ×` the construction's *design*
    /// probability (`b^{−3d}` for `B^d_n` — the only construction with
    /// a probabilistic design point), capped at 1.
    DesignBernoulli {
        /// Multiple of the design probability.
        mult: f64,
        /// Per-edge fault probability (absolute).
        q: f64,
    },
    /// Exactly `k` adversarial node faults per trial (valid on shaped
    /// hosts, i.e. `D^d_{n,k}`).
    Adversarial {
        /// Placement strategy.
        pattern: SweepPattern,
        /// Faults per trial.
        k: usize,
    },
    /// Adversarial faults at `mult ×` the construction's worst-case
    /// budget (`k = b^(2^d − 1)` for `D^d_{n,k}`), clamped to half the
    /// host so over-budget cells stay meaningful. `mult = 1` is
    /// Theorem 3's guarantee: success rate must be exactly 1.
    AdversarialBudget {
        /// Placement strategy.
        pattern: SweepPattern,
        /// Multiple of the tolerated budget.
        mult: f64,
    },
    /// **Every** fault pattern of size ≤ `max_faults` (default: the
    /// full budget `k`) up to cyclic translation symmetry, each one
    /// certified through the independent checker — Theorem 3 proved
    /// combinatorially rather than sampled. Valid on small `D^d_{n,k}`
    /// instances only; the cell's trial count becomes the canonical
    /// pattern count and its success tally the certified count, so a
    /// complete run reports success rate exactly 1. The sweep's
    /// `trials` budget does not apply to these cells.
    Exhaustive {
        /// Largest pattern size; `None` = the instance budget `k`.
        /// Values above `k` are rejected.
        max_faults: Option<usize>,
    },
}

/// The Alon–Chung comparison column: for each cell, the same trial
/// budget is run against the Section 5 expander-product mesh host
/// (`F_n × (L_n)^{d−1}`) with matching fault parameters — node faults
/// at the cell's `p` in Bernoulli regimes, `k` uniformly random node
/// faults in adversarial regimes (edge faults and structured patterns
/// have no analogue on the expander host and are dropped).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineSpec {
    /// Node redundancy of the expander host (≥ 1; the paper's baseline
    /// needs a constant factor more nodes than the guest).
    pub redundancy: f64,
}

impl Default for BaselineSpec {
    fn default() -> Self {
        Self { redundancy: 4.0 }
    }
}

/// A declarative scenario sweep: constructions × fault regimes ×
/// a trial budget, all seeded from `root_seed`.
///
/// Expansion is a full cross product; regimes that don't apply to a
/// construction (e.g. [`FaultRegime::AdversarialBudget`] on `B^d_n`)
/// make the sweep fail validation rather than silently skip cells.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Artifact name: emitted as `SWEEP_<name>.json` / `.csv`.
    pub name: String,
    /// Construction axis.
    pub constructions: Vec<ConstructionSpec>,
    /// Fault-regime axis.
    pub regimes: Vec<FaultRegime>,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// Root seed; per-cell seeds are derived from it and the cell id.
    pub root_seed: u64,
    /// Optional Alon–Chung baseline column.
    pub baseline: Option<BaselineSpec>,
}

/// Names accepted by [`SweepSpec::preset`] (mirrors [`SWEEP_PRESETS`];
/// kept as a plain const for cheap error messages and tests).
pub const PRESET_NAMES: &[&str] = &["smoke", "t1", "t2", "t3", "exhaustive"];

/// One entry of the sweep preset registry: the canonical name, the
/// one-line help summary (rendered into `ftt help` so new presets show
/// up there automatically), and the spec builder.
pub struct SweepPreset {
    /// Canonical preset name (`--preset <name>`).
    pub name: &'static str,
    /// Help-text summary (may span lines; pre-indented continuation).
    pub summary: &'static str,
    build: fn() -> SweepSpec,
}

impl SweepPreset {
    /// Builds the preset's spec.
    pub fn spec(&self) -> SweepSpec {
        (self.build)()
    }
}

/// The single registry of checked-in sweep presets — the source of
/// truth for [`SweepSpec::preset`] **and** for the preset table in the
/// CLI help text.
pub const SWEEP_PRESETS: &[SweepPreset] = &[
    SweepPreset {
        name: "smoke",
        summary: "3-cell B² grid for CI",
        build: preset_smoke,
    },
    SweepPreset {
        name: "t1",
        summary: "A²_108 under Bernoulli node+edge faults (Theorem 1)",
        build: preset_t1,
    },
    SweepPreset {
        name: "t2",
        summary: "B²_{54,108,192} vs multiples of the design probability\n\
                  b^(-3d) — success monotone non-increasing in p (Theorem 2)",
        build: preset_t2,
    },
    SweepPreset {
        name: "t3",
        summary: "D²_{n,k} adversarial patterns at budget multiples; the ×1\n\
                  cells must sit at success rate 1 (Theorem 3)",
        build: preset_t3,
    },
    SweepPreset {
        name: "exhaustive",
        summary: "D¹/D² cells certifying *every* canonical fault pattern at\n\
                  the full budget (Theorem 3, combinatorially; success must\n\
                  be exactly 1)",
        build: preset_exhaustive,
    },
];

// Tiny grid for CI smoke: one B² instance, three points of the
// Theorem 2 curve.
fn preset_smoke() -> SweepSpec {
    SweepSpec {
        name: "smoke".into(),
        constructions: vec![ConstructionSpec::Bdn {
            d: 2,
            n_min: 54,
            b: 3,
            eps_b: 1,
        }],
        regimes: [0.2, 1.0, 4.0]
            .into_iter()
            .map(|mult| FaultRegime::DesignBernoulli { mult, q: 0.0 })
            .collect(),
        trials: 5,
        root_seed: 1,
        baseline: Some(BaselineSpec::default()),
    }
}

// Theorem 1: A²_n under simultaneous node and edge faults.
fn preset_t1() -> SweepSpec {
    SweepSpec {
        name: "t1".into(),
        constructions: vec![ConstructionSpec::Adn {
            n_min: 108,
            k: 2,
            h: 10,
            sqrt_q: 0.05,
        }],
        regimes: vec![
            FaultRegime::Bernoulli { p: 0.0, q: 0.0 },
            FaultRegime::Bernoulli { p: 0.005, q: 5e-4 },
            FaultRegime::Bernoulli { p: 0.01, q: 1e-3 },
            FaultRegime::Bernoulli { p: 0.02, q: 2e-3 },
        ],
        trials: 60,
        root_seed: 1,
        baseline: Some(BaselineSpec::default()),
    }
}

// Theorem 2: B²_n success vs multiples of the design probability
// b^{−3d}. Multiples are listed in increasing order so the emitted
// success column reads as the curve: monotone non-increasing in p per
// construction.
fn preset_t2() -> SweepSpec {
    SweepSpec {
        name: "t2".into(),
        constructions: vec![
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 54,
                b: 3,
                eps_b: 1,
            },
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 108,
                b: 3,
                eps_b: 1,
            },
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 192,
                b: 4,
                eps_b: 1,
            },
        ],
        regimes: [0.05, 0.2, 1.0, 4.0]
            .into_iter()
            .map(|mult| FaultRegime::DesignBernoulli { mult, q: 0.0 })
            .collect(),
        trials: 60,
        root_seed: 1,
        baseline: Some(BaselineSpec::default()),
    }
}

// Theorem 3: D²_{n,k} under adversarial patterns at multiples of the
// worst-case budget. The ×1 cells are the theorem's guarantee (success
// rate exactly 1).
fn preset_t3() -> SweepSpec {
    SweepSpec {
        name: "t3".into(),
        constructions: vec![
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 40,
                b: 2,
            },
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 60,
                b: 3,
            },
        ],
        regimes: [
            SweepPattern::Random,
            SweepPattern::ClusteredCube,
            SweepPattern::ResidueSpreadAuto,
        ]
        .into_iter()
        .flat_map(|pattern| {
            [1.0, 2.0, 4.0]
                .into_iter()
                .map(move |mult| FaultRegime::AdversarialBudget { pattern, mult })
        })
        .collect(),
        trials: 40,
        root_seed: 1,
        baseline: Some(BaselineSpec::default()),
    }
}

// Theorem 3 proved combinatorially: small D¹ and D² instances against
// *every* canonical fault pattern at the full budget, certified through
// the independent checker. Every cell must sit at success rate 1.
fn preset_exhaustive() -> SweepSpec {
    SweepSpec {
        name: "exhaustive".into(),
        constructions: vec![
            ConstructionSpec::Ddn {
                d: 1,
                n_min: 20,
                b: 3,
            },
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 8,
                b: 1,
            },
        ],
        regimes: vec![FaultRegime::Exhaustive { max_faults: None }],
        trials: 1, // ignored: exhaustive cells walk their pattern list
        root_seed: 1,
        baseline: None,
    }
}

impl SweepSpec {
    /// A checked-in paper-regime preset from [`SWEEP_PRESETS`]: `t1`,
    /// `t2`, `t3` reproduce the Theorem 1/2/3 curves, `smoke` is a
    /// 3-cell CI grid, `exhaustive` certifies combinatorially. See the
    /// module docs.
    pub fn preset(name: &str) -> Result<SweepSpec, String> {
        SWEEP_PRESETS
            .iter()
            .find(|p| p.name == name)
            .map(SweepPreset::spec)
            .ok_or_else(|| {
                format!(
                    "unknown preset `{name}` (available: {})",
                    PRESET_NAMES.join(", ")
                )
            })
    }

    fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || !self.name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!(
                "sweep name `{}` must be non-empty alphanumeric/underscore (it names artifacts)",
                self.name
            ));
        }
        if self.trials == 0 {
            return Err("sweep needs at least one trial per cell".into());
        }
        if self.constructions.is_empty() {
            return Err("sweep needs at least one construction".into());
        }
        if self.regimes.is_empty() {
            return Err("sweep needs at least one fault regime".into());
        }
        if let Some(b) = &self.baseline {
            if b.redundancy.is_nan() || b.redundancy < 1.0 {
                return Err(format!("baseline redundancy {} must be ≥ 1", b.redundancy));
            }
        }
        Ok(())
    }
}

/// Per-cell seed: a pure function of the root seed and the cell's
/// canonical id. Hashing the *id* (FNV-1a, then a splitmix64 finisher —
/// see [`ftt_geom::hash`]) instead of the cell's position is what makes
/// sweep results invariant under cell reordering and grid extension.
pub fn cell_seed(root_seed: u64, cell_id: &str) -> u64 {
    ftt_geom::seed_for_id(root_seed, cell_id)
}

/// A cell's fault generation, resolved to absolute parameters.
enum ResolvedFaults {
    Bernoulli {
        p: f64,
        q: f64,
    },
    Adversarial(AdversarySampler),
    /// The canonical fault-pattern list of an exhaustive cell; trial
    /// `i` *is* pattern `i` (no seeds involved).
    Exhaustive {
        patterns: Vec<Vec<usize>>,
    },
}

/// One fully resolved cell: id, seed, faults, and the report metadata.
struct ResolvedCell {
    id: String,
    seed: u64,
    faults: ResolvedFaults,
    regime: &'static str,
    p: Option<f64>,
    q: Option<f64>,
    k: Option<usize>,
    pattern: Option<String>,
    mult: Option<f64>,
}

fn check_prob(label: &str, x: f64) -> Result<(), String> {
    if (0.0..=1.0).contains(&x) {
        Ok(())
    } else {
        Err(format!("{label} = {x} out of [0, 1]"))
    }
}

/// Resolves one regime against one built host (design probabilities,
/// budgets, and pattern moduli become absolute numbers here) or
/// explains why the combination is invalid.
fn resolve_regime(regime: &FaultRegime, host: &BuiltHost) -> Result<ResolvedCellParts, String> {
    let adversarial = |pattern: &SweepPattern,
                       k: usize,
                       mult: Option<f64>|
     -> Result<ResolvedCellParts, String> {
        let BuiltHost::Ddn(h) = host else {
            return Err(format!(
                "adversarial regimes target shaped hosts only (D^d_{{n,k}}), not {}",
                host.construction_name()
            ));
        };
        let resolved = pattern.resolve(h.params());
        let regime_id = match mult {
            Some(m) => format!("{}_x{m}", pattern.slug()),
            None => format!("{}_k{k}", pattern.slug()),
        };
        Ok(ResolvedCellParts {
            regime_id,
            faults: ResolvedFaults::Adversarial(AdversarySampler::new(resolved, k)),
            regime: "adversarial",
            p: None,
            q: None,
            k: Some(k),
            pattern: Some(pattern.slug()),
            mult,
        })
    };
    match regime {
        FaultRegime::Bernoulli { p, q } => {
            check_prob("p", *p)?;
            check_prob("q", *q)?;
            Ok(ResolvedCellParts {
                regime_id: format!("p{p}_q{q}"),
                faults: ResolvedFaults::Bernoulli { p: *p, q: *q },
                regime: "bernoulli",
                p: Some(*p),
                q: Some(*q),
                k: None,
                pattern: None,
                mult: None,
            })
        }
        FaultRegime::DesignBernoulli { mult, q } => {
            let BuiltHost::Bdn(h) = host else {
                return Err(format!(
                    "DesignBernoulli needs a construction with a design fault \
                     probability (B^d_n), not {}",
                    host.construction_name()
                ));
            };
            if mult.is_nan() || *mult < 0.0 {
                return Err(format!("design multiple {mult} must be ≥ 0"));
            }
            check_prob("q", *q)?;
            let p = (h.params().tolerated_fault_probability() * mult).min(1.0);
            Ok(ResolvedCellParts {
                regime_id: format!("design_x{mult}_q{q}"),
                faults: ResolvedFaults::Bernoulli { p, q: *q },
                regime: "bernoulli",
                p: Some(p),
                q: Some(*q),
                k: None,
                pattern: None,
                mult: Some(*mult),
            })
        }
        FaultRegime::Adversarial { pattern, k } => adversarial(pattern, *k, None),
        FaultRegime::Exhaustive { max_faults } => {
            let BuiltHost::Ddn(h) = host else {
                return Err(format!(
                    "the exhaustive regime certifies shaped hosts only (D^d_{{n,k}}), not {}",
                    host.construction_name()
                ));
            };
            // One shared policy with run_certify: budget refusal,
            // candidate-cap gate, canonical enumeration.
            let (k, patterns) = crate::certify::enumerate_for_instance(
                h.params(),
                *max_faults,
                crate::certify::DEFAULT_CANDIDATE_CAP,
            )?;
            Ok(ResolvedCellParts {
                regime_id: format!("exhaustive_k{k}"),
                faults: ResolvedFaults::Exhaustive { patterns },
                regime: "exhaustive",
                p: None,
                q: None,
                k: Some(k),
                pattern: None,
                mult: None,
            })
        }
        FaultRegime::AdversarialBudget { pattern, mult } => {
            if mult.is_nan() || *mult < 0.0 {
                return Err(format!("budget multiple {mult} must be ≥ 0"));
            }
            let BuiltHost::Ddn(h) = host else {
                return Err(format!(
                    "adversarial regimes target shaped hosts only (D^d_{{n,k}}), not {}",
                    host.construction_name()
                ));
            };
            let budget = h.params().tolerated_faults();
            let k = (((budget as f64) * mult).round() as usize).min(h.shape().len() / 2);
            adversarial(pattern, k, Some(*mult))
        }
    }
}

/// The regime-dependent parts of a [`ResolvedCell`].
struct ResolvedCellParts {
    regime_id: String,
    faults: ResolvedFaults,
    regime: &'static str,
    p: Option<f64>,
    q: Option<f64>,
    k: Option<usize>,
    pattern: Option<String>,
    mult: Option<f64>,
}

/// Result of the Alon–Chung comparison run for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// Successful mesh embeddings out of the cell's trial budget.
    pub successes: usize,
    /// Empirical success rate.
    pub rate: f64,
}

/// Aggregated outcome of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Canonical cell id (`<construction>/<regime>`), the seed anchor.
    pub id: String,
    /// Construction display name (e.g. `B^d_n`).
    pub construction: String,
    /// Resolved instance parameters, human-readable.
    pub params: String,
    /// `"bernoulli"` or `"adversarial"`.
    pub regime: String,
    /// Node-fault probability (Bernoulli regimes).
    pub p: Option<f64>,
    /// Edge-fault probability (Bernoulli regimes).
    pub q: Option<f64>,
    /// Faults per trial (adversarial regimes).
    pub k: Option<usize>,
    /// Pattern slug (adversarial regimes).
    pub pattern: Option<String>,
    /// Design/budget multiple, when the regime was specified as one.
    pub mult: Option<f64>,
    /// Trial tally.
    pub stats: TrialStats,
    /// Wall-clock seconds for this cell's trials.
    pub seconds: f64,
    /// Throughput (0 when the clock rounds to zero).
    pub trials_per_sec: f64,
    /// Alon–Chung comparison column, when requested and applicable.
    pub baseline: Option<BaselineResult>,
}

impl CellResult {
    /// Empirical success rate.
    pub fn rate(&self) -> f64 {
        self.stats.rate()
    }

    /// 95% Wilson confidence interval.
    pub fn confidence(&self) -> (f64, f64) {
        self.stats.confidence()
    }
}

/// Aggregated outcome of a whole sweep, with artifact emitters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep name (artifact stem).
    pub name: String,
    /// Root seed the cells derived their seeds from.
    pub root_seed: u64,
    /// Trials per cell.
    pub trials: usize,
    /// Worker threads the sweep ran with (0 = auto); recorded for
    /// provenance only — results are thread-count-invariant.
    pub threads: usize,
    /// Per-cell results, in construction-major spec order.
    pub cells: Vec<CellResult>,
}

/// Expands `spec` into cells and executes every cell. `threads = 0`
/// selects the available parallelism. Per-cell results are a pure
/// function of `(spec contents, root seed)`; see the module docs.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepReport, String> {
    spec.validate()?;
    let mut cells = Vec::new();
    for cspec in &spec.constructions {
        let host = cspec.build()?;
        let host_id = host.id();
        let resolved: Vec<ResolvedCell> = spec
            .regimes
            .iter()
            .map(|regime| {
                let parts = resolve_regime(regime, &host)?;
                let id = format!("{host_id}/{}", parts.regime_id);
                Ok(ResolvedCell {
                    seed: cell_seed(spec.root_seed, &id),
                    id,
                    faults: parts.faults,
                    regime: parts.regime,
                    p: parts.p,
                    q: parts.q,
                    k: parts.k,
                    pattern: parts.pattern,
                    mult: parts.mult,
                })
            })
            .collect::<Result<_, String>>()?;
        let timings = match &host {
            BuiltHost::Bdn(h) => run_host_cells(h, None, &resolved, spec.trials, threads),
            BuiltHost::Adn(h) => run_host_cells(h, None, &resolved, spec.trials, threads),
            BuiltHost::Ddn(h) => {
                run_host_cells(h, Some(h.shape()), &resolved, spec.trials, threads)
            }
        };
        let baselines = run_baseline_cells(spec, &host, &resolved, threads);
        for ((cell, (stats, seconds)), baseline) in resolved.into_iter().zip(timings).zip(baselines)
        {
            let trials_per_sec = if seconds > 0.0 {
                spec.trials as f64 / seconds
            } else {
                0.0
            };
            cells.push(CellResult {
                id: cell.id,
                construction: host.construction_name().to_string(),
                params: host.params_string(),
                regime: cell.regime.to_string(),
                p: cell.p,
                q: cell.q,
                k: cell.k,
                pattern: cell.pattern,
                mult: cell.mult,
                stats,
                seconds,
                trials_per_sec,
                baseline,
            });
        }
    }
    Ok(SweepReport {
        name: spec.name.clone(),
        root_seed: spec.root_seed,
        trials: spec.trials,
        threads,
        cells,
    })
}

/// Runs every cell of one host through the extraction pipeline. All
/// cells share one [`ScratchPool`], so per-worker `(FaultSet, Scratch)`
/// buffers are built once per worker *for the whole host*, not per
/// cell.
fn run_host_cells<C: HostConstruction + Sync>(
    host: &C,
    shape: Option<&Shape>,
    cells: &[ResolvedCell],
    trials: usize,
    threads: usize,
) -> Vec<(TrialStats, f64)> {
    let pool = ScratchPool::new();
    let init = || {
        (
            FaultSet::none(host.num_nodes(), host.num_edges()),
            host.new_scratch(),
        )
    };
    cells
        .iter()
        .map(|cell| {
            let start = Instant::now();
            let [stats] = match &cell.faults {
                // Exhaustive cells walk their canonical pattern list by
                // index — every pattern exactly once, certified through
                // the independent checker; the sweep's trial budget and
                // seeds do not apply.
                ResolvedFaults::Exhaustive { patterns } => run_indexed_multi_pooled(
                    patterns.len(),
                    threads,
                    &pool,
                    init,
                    |(faults, _scratch), i| {
                        faults.clear();
                        for &v in &patterns[i] {
                            faults.kill_node(v);
                        }
                        let certified = host.try_certify(faults).is_ok_and(|cert| {
                            ftt_verify::check_certificate(&cert, host.oracle(), faults).is_ok()
                        });
                        [certified]
                    },
                ),
                _ => run_multi_trials_pooled(
                    trials,
                    cell.seed,
                    threads,
                    &pool,
                    init,
                    |(faults, scratch), seed| {
                        match &cell.faults {
                            ResolvedFaults::Bernoulli { p, q } => {
                                let mut rng = SmallRng::seed_from_u64(seed);
                                sample_bernoulli_faults_into(
                                    host.oracle(),
                                    *p,
                                    *q,
                                    &mut rng,
                                    faults,
                                );
                            }
                            ResolvedFaults::Adversarial(sampler) => sampler.sample_onto(
                                shape.expect("validated: adversarial cells run on shaped hosts"),
                                seed,
                                faults,
                            ),
                            ResolvedFaults::Exhaustive { .. } => unreachable!("handled above"),
                        }
                        [extract_verified_with(host, faults, scratch).is_ok()]
                    },
                ),
            };
            let seconds = start.elapsed().as_secs_f64();
            SWEEP_CELL_US.record((seconds * 1e6) as u64);
            (stats, seconds)
        })
        .collect()
}

/// Runs the Alon–Chung column for every cell of one host (all `None`
/// when no baseline was requested or the guest is 1-dimensional, which
/// the product-mesh baseline cannot host).
fn run_baseline_cells(
    spec: &SweepSpec,
    host: &BuiltHost,
    cells: &[ResolvedCell],
    threads: usize,
) -> Vec<Option<BaselineResult>> {
    let Some(baseline) = &spec.baseline else {
        return vec![None; cells.len()];
    };
    if host.dimension() < 2 {
        return vec![None; cells.len()];
    }
    let mesh = AlonChungMesh::build(host.guest_n(), host.dimension(), baseline.redundancy);
    let num_nodes = mesh.num_nodes();
    let flat_shape = Shape::new(vec![num_nodes]);
    // Scratch: the faulty bitmap plus the list of set indices, so reset
    // between trials is O(#faults).
    let pool: ScratchPool<(Vec<bool>, Vec<usize>)> = ScratchPool::new();
    let init = || (vec![false; num_nodes], Vec::new());
    cells
        .iter()
        .map(|cell| {
            // Exhaustive certification has no Monte-Carlo analogue on
            // the expander host.
            if matches!(cell.faults, ResolvedFaults::Exhaustive { .. }) {
                return None;
            }
            let seed = cell_seed(spec.root_seed, &format!("{}/ac", cell.id));
            let [stats] = run_multi_trials_pooled(
                spec.trials,
                seed,
                threads,
                &pool,
                init,
                |(faulty, killed), seed| {
                    for &v in killed.iter() {
                        faulty[v] = false;
                    }
                    killed.clear();
                    let mut rng = SmallRng::seed_from_u64(seed);
                    match &cell.faults {
                        // Node faults at the cell's p; edge faults have
                        // no analogue on the expander host.
                        ResolvedFaults::Bernoulli { p, .. } => {
                            sample_indices(num_nodes, *p, &mut rng, |v| {
                                faulty[v] = true;
                                killed.push(v);
                            });
                        }
                        // k uniformly random node faults: structured
                        // torus patterns don't translate.
                        ResolvedFaults::Adversarial(sampler) => {
                            for v in
                                AdversaryPattern::Random.generate(&flat_shape, sampler.k, &mut rng)
                            {
                                faulty[v] = true;
                                killed.push(v);
                            }
                        }
                        ResolvedFaults::Exhaustive { .. } => {
                            unreachable!("exhaustive cells return None above")
                        }
                    }
                    [mesh.embed_mesh(faulty).is_some()]
                },
            );
            Some(BaselineResult {
                successes: stats.successes,
                rate: stats.rate(),
            })
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn json_opt_f64(x: Option<f64>) -> String {
    x.map_or_else(|| "null".into(), json_f64)
}

fn json_opt_usize(x: Option<usize>) -> String {
    x.map_or_else(|| "null".into(), |v| v.to_string())
}

fn json_opt_str(x: Option<&str>) -> String {
    x.map_or_else(|| "null".into(), |s| format!("\"{}\"", json_escape(s)))
}

impl SweepReport {
    /// The `SWEEP_<name>.json` artifact: schema-versioned, one object
    /// per cell. Field order and `schema_version` are part of the CI
    /// contract (`tools/check_sweep.py`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SWEEP_SCHEMA_VERSION},\n"));
        out.push_str("  \"kind\": \"sweep\",\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", json_escape(&self.name)));
        out.push_str(&format!("  \"root_seed\": {},\n", self.root_seed));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let (lo, hi) = c.confidence();
            out.push_str("    {\n");
            out.push_str(&format!("      \"id\": \"{}\",\n", json_escape(&c.id)));
            out.push_str(&format!(
                "      \"construction\": \"{}\",\n",
                json_escape(&c.construction)
            ));
            out.push_str(&format!(
                "      \"params\": \"{}\",\n",
                json_escape(&c.params)
            ));
            out.push_str(&format!(
                "      \"regime\": \"{}\",\n",
                json_escape(&c.regime)
            ));
            out.push_str(&format!("      \"p\": {},\n", json_opt_f64(c.p)));
            out.push_str(&format!("      \"q\": {},\n", json_opt_f64(c.q)));
            out.push_str(&format!("      \"k\": {},\n", json_opt_usize(c.k)));
            out.push_str(&format!(
                "      \"pattern\": {},\n",
                json_opt_str(c.pattern.as_deref())
            ));
            out.push_str(&format!("      \"mult\": {},\n", json_opt_f64(c.mult)));
            out.push_str(&format!("      \"trials\": {},\n", c.stats.trials));
            out.push_str(&format!("      \"successes\": {},\n", c.stats.successes));
            out.push_str(&format!(
                "      \"success_rate\": {},\n",
                json_f64(c.rate())
            ));
            out.push_str(&format!("      \"ci_low\": {},\n", json_f64(lo)));
            out.push_str(&format!("      \"ci_high\": {},\n", json_f64(hi)));
            out.push_str(&format!("      \"seconds\": {:.6},\n", c.seconds));
            out.push_str(&format!(
                "      \"trials_per_sec\": {:.3},\n",
                c.trials_per_sec
            ));
            out.push_str(&format!(
                "      \"baseline_successes\": {},\n",
                json_opt_usize(c.baseline.as_ref().map(|b| b.successes))
            ));
            out.push_str(&format!(
                "      \"baseline_rate\": {}\n",
                json_opt_f64(c.baseline.as_ref().map(|b| b.rate))
            ));
            out.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The `SWEEP_<name>.csv` artifact: a header row plus one row per
    /// cell, empty fields where a column doesn't apply to the regime.
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        fn opt_f(x: Option<f64>) -> String {
            x.map(|v| format!("{v}")).unwrap_or_default()
        }
        let mut out = String::from(
            "id,construction,params,regime,p,q,k,pattern,mult,trials,successes,\
             success_rate,ci_low,ci_high,seconds,trials_per_sec,baseline_rate\n",
        );
        for c in &self.cells {
            let (lo, hi) = c.confidence();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.3},{}\n",
                esc(&c.id),
                esc(&c.construction),
                esc(&c.params),
                esc(&c.regime),
                opt_f(c.p),
                opt_f(c.q),
                c.k.map(|v| v.to_string()).unwrap_or_default(),
                esc(c.pattern.as_deref().unwrap_or("")),
                opt_f(c.mult),
                c.stats.trials,
                c.stats.successes,
                c.rate(),
                lo,
                hi,
                c.seconds,
                c.trials_per_sec,
                opt_f(c.baseline.as_ref().map(|b| b.rate)),
            ));
        }
        out
    }

    /// Writes the JSON and CSV artifacts — the one emit path shared by
    /// the CLI and the experiment binaries.
    pub fn write_artifacts(&self, json_path: &str, csv_path: &str) -> Result<(), String> {
        std::fs::write(json_path, self.to_json())
            .map_err(|e| format!("cannot write {json_path}: {e}"))?;
        std::fs::write(csv_path, self.to_csv())
            .map_err(|e| format!("cannot write {csv_path}: {e}"))?;
        Ok(())
    }

    /// Renders the report as an aligned text table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "SWEEP {}: {} cells × {} trials (root seed {})",
                self.name,
                self.cells.len(),
                self.trials,
                self.root_seed
            ),
            &[
                "cell",
                "construction",
                "faults",
                "success",
                "trials/sec",
                "AC baseline",
            ],
        );
        for c in &self.cells {
            let faults = match (c.p, c.k) {
                (Some(p), _) => format!("p={p:.2e} q={:.2e}", c.q.unwrap_or(0.0)),
                (_, Some(k)) if c.regime == "exhaustive" => format!("all patterns ≤{k}"),
                (_, Some(k)) => format!("{} k={k}", c.pattern.as_deref().unwrap_or("?"),),
                _ => "-".into(),
            };
            t.row(vec![
                c.id.clone(),
                c.construction.clone(),
                faults,
                fmt_prob(c.rate(), c.confidence()),
                format!("{:.1}", c.trials_per_sec),
                c.baseline
                    .as_ref()
                    .map(|b| format!("{:.2}", b.rate))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_b2_spec() -> SweepSpec {
        SweepSpec {
            name: "unit".into(),
            constructions: vec![ConstructionSpec::Bdn {
                d: 2,
                n_min: 54,
                b: 3,
                eps_b: 1,
            }],
            regimes: vec![
                FaultRegime::DesignBernoulli { mult: 0.0, q: 0.0 },
                FaultRegime::DesignBernoulli { mult: 1.0, q: 0.0 },
            ],
            trials: 4,
            root_seed: 7,
            baseline: None,
        }
    }

    #[test]
    fn presets_all_build() {
        for name in PRESET_NAMES {
            let spec = SweepSpec::preset(name).unwrap();
            assert_eq!(&spec.name, name);
            spec.validate().unwrap();
        }
        assert!(SweepSpec::preset("bogus").is_err());
    }

    #[test]
    fn preset_names_mirror_the_registry() {
        let registry: Vec<&str> = SWEEP_PRESETS.iter().map(|p| p.name).collect();
        assert_eq!(registry, PRESET_NAMES, "PRESET_NAMES out of sync");
        for p in SWEEP_PRESETS {
            assert!(!p.summary.is_empty(), "{}: empty help summary", p.name);
        }
    }

    #[test]
    fn tiny_sweep_runs_and_emits() {
        let report = run_sweep(&tiny_b2_spec(), 0).unwrap();
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!((0.0..=1.0).contains(&cell.rate()), "{}", cell.id);
            assert_eq!(cell.stats.trials, 4);
        }
        // The fault-free cell must be a sure success.
        assert_eq!(report.cells[0].stats.successes, 4);
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"kind\": \"sweep\""));
        assert!(json.contains("\"success_rate\""));
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + report.cells.len());
        assert!(csv.starts_with("id,construction,"));
        assert!(!report.table().is_empty());
    }

    #[test]
    fn cell_ids_anchor_seeds_not_positions() {
        let spec = tiny_b2_spec();
        let mut reversed = spec.clone();
        reversed.regimes.reverse();
        let a = run_sweep(&spec, 1).unwrap();
        let b = run_sweep(&reversed, 1).unwrap();
        for cell in &a.cells {
            let twin = b
                .cells
                .iter()
                .find(|c| c.id == cell.id)
                .expect("same cells, different order");
            assert_eq!(cell.stats, twin.stats, "{} depends on cell order", cell.id);
        }
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        let mut spec = tiny_b2_spec();
        spec.regimes = vec![FaultRegime::AdversarialBudget {
            pattern: SweepPattern::Random,
            mult: 1.0,
        }];
        assert!(run_sweep(&spec, 1).is_err(), "adversarial × B² must fail");

        let mut spec = tiny_b2_spec();
        spec.constructions = vec![ConstructionSpec::Ddn {
            d: 2,
            n_min: 30,
            b: 2,
        }];
        assert!(
            run_sweep(&spec, 1).is_err(),
            "DesignBernoulli × D² must fail"
        );

        let mut spec = tiny_b2_spec();
        spec.trials = 0;
        assert!(run_sweep(&spec, 1).is_err());

        let mut spec = tiny_b2_spec();
        spec.name = "bad name".into();
        assert!(run_sweep(&spec, 1).is_err());
    }

    #[test]
    fn adversarial_budget_cell_honours_theorem_3() {
        let spec = SweepSpec {
            name: "t3unit".into(),
            constructions: vec![ConstructionSpec::Ddn {
                d: 2,
                n_min: 30,
                b: 2,
            }],
            regimes: vec![
                FaultRegime::AdversarialBudget {
                    pattern: SweepPattern::Random,
                    mult: 1.0,
                },
                FaultRegime::Adversarial {
                    pattern: SweepPattern::ResidueSpreadAuto,
                    k: 8,
                },
            ],
            trials: 5,
            root_seed: 3,
            baseline: None,
        };
        let report = run_sweep(&spec, 0).unwrap();
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.regime, "adversarial");
            assert_eq!(
                cell.stats.successes, 5,
                "{}: any k ≤ budget faults are tolerated",
                cell.id
            );
        }
        assert_eq!(report.cells[0].mult, Some(1.0));
        assert_eq!(report.cells[1].k, Some(8));
    }

    #[test]
    fn exhaustive_regime_certifies_theorem_3() {
        let spec = SweepSpec {
            name: "exhunit".into(),
            constructions: vec![ConstructionSpec::Ddn {
                d: 1,
                n_min: 8,
                b: 2,
            }],
            regimes: vec![FaultRegime::Exhaustive { max_faults: None }],
            trials: 999, // must be ignored by exhaustive cells
            root_seed: 1,
            baseline: Some(BaselineSpec::default()),
        };
        let report = run_sweep(&spec, 0).unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.regime, "exhaustive");
        // m = 12, k = 2: 1 + 1 + 6 canonical patterns, all certified.
        assert_eq!(cell.stats.trials, 8);
        assert_eq!(cell.stats.successes, 8, "Theorem 3, combinatorially");
        assert_eq!(cell.k, Some(2));
        assert_eq!(cell.id, "d1_n8b2/exhaustive_k2");
        assert!(cell.baseline.is_none(), "no expander analogue");
        // the regime is deterministic across thread counts too
        let again = run_sweep(&spec, 1).unwrap();
        assert_eq!(again.cells[0].stats, cell.stats);
    }

    #[test]
    fn exhaustive_regime_rejected_off_shaped_hosts() {
        let mut spec = tiny_b2_spec();
        spec.regimes = vec![FaultRegime::Exhaustive { max_faults: None }];
        assert!(run_sweep(&spec, 1).is_err(), "exhaustive × B² must fail");

        let spec = SweepSpec {
            name: "exhbad".into(),
            constructions: vec![ConstructionSpec::Ddn {
                d: 1,
                n_min: 8,
                b: 2,
            }],
            regimes: vec![FaultRegime::Exhaustive {
                max_faults: Some(3), // budget is 2
            }],
            trials: 1,
            root_seed: 1,
            baseline: None,
        };
        assert!(run_sweep(&spec, 1).is_err(), "over-budget must fail");
    }

    #[test]
    fn cell_seed_is_order_free_and_id_sensitive() {
        let a = cell_seed(1, "b2_n54b3e1/design_x1_q0");
        let b = cell_seed(1, "b2_n54b3e1/design_x4_q0");
        assert_ne!(a, b, "different cells must draw different seeds");
        assert_eq!(a, cell_seed(1, "b2_n54b3e1/design_x1_q0"));
        assert_ne!(a, cell_seed(2, "b2_n54b3e1/design_x1_q0"));
    }

    #[test]
    fn baseline_column_present_when_requested() {
        let mut spec = tiny_b2_spec();
        spec.baseline = Some(BaselineSpec { redundancy: 4.0 });
        spec.trials = 3;
        let report = run_sweep(&spec, 0).unwrap();
        for cell in &report.cells {
            let b = cell.baseline.as_ref().expect("baseline requested");
            assert!((0.0..=1.0).contains(&b.rate));
        }
        // Fault-free cell: the expander path always survives.
        assert_eq!(report.cells[0].baseline.as_ref().unwrap().successes, 3);
        assert!(report.to_json().contains("\"baseline_rate\""));
    }
}
