//! Lifetime scenarios: fault *streams* driven through incremental
//! repair until the embedding dies.
//!
//! The sweep engine ([`crate::sweep`]) asks "does one static fault set
//! extract?"; this module asks the machine-lifetime question the
//! paper's motivation is really about: **faults arrive over time — how
//! many does the construction survive, and what does each repair
//! cost?** A [`LifetimeSpec`] crosses constructions
//! ([`ConstructionSpec`]) with fault streams
//! ([`ftt_faults::StreamSpec`]: Bernoulli trickles, bursts, the
//! adaptive targeted adversary) and drives each cell's trials through
//! the online repair engine (`ftt_core::online`): every arrival is
//! absorbed (O(1)), locally repaired, or full-rebuilt — never silently
//! dropped — until the first unrepairable fault ends the trial.
//!
//! Reported per cell: the lifetime distribution (mean, min/max, median
//! and p90 with Wilson-style order-statistic CIs), the repair cost mix
//! (fractions of O(1)/local/rebuild repairs), repair throughput
//! (faults/sec), and optional end-to-end certification of the live
//! embedding every `certify_every` repairs through the **independent**
//! checker (`ftt_verify::check_certificate`).
//!
//! # Renewal and availability
//!
//! Streams that *repair* faults ([`StreamSpec::Renew`] schedules a
//! revival a fixed stream-time delay after every kill) turn the
//! run-to-death question into a steady-state one. Renewing cells keep
//! running past a death — a later repair can resurrect the embedding —
//! and the trial ledger splits stream time into up/down spells, from
//! which cells report **availability** (fraction of stream time with a
//! live embedding), mean up/down spell lengths, and resurrection
//! counts. Orthogonally, a coincidence window (`burst_window`, the
//! LIGO/TAMA trigger-clustering idiom) clusters kill arrivals by stream
//! time: clusters of ≥ 2 are reported as bursts, with the largest
//! observed cluster size alongside — correlated track bursts
//! ([`StreamSpec::Track`]) light this up, independent trickles don't.
//!
//! # Determinism
//!
//! Identical discipline to the sweep engine: per-cell seeds derive from
//! canonical cell ids (`<instance>/<stream-slug>`), per-trial seeds by
//! the [`crate::runner`] splitmix step, and trials run through the
//! chunked pooled runner ([`run_indexed_multi_pooled`]) with per-trial
//! records written to their own slots — reports are a pure function of
//! `(spec contents, root seed)`, invariant under thread count, chunk
//! boundaries, and cell order. Streams are adaptive (the targeted
//! adversary reads the live embedding), but the feedback is itself a
//! pure function of the trial prefix, so determinism survives.
//!
//! # Presets
//!
//! [`LIFETIME_PRESETS`]: `life-smoke` (tiny CI grid), `life-t2` (B²
//! grid × trickle and burst arrivals, run to death), `life-t3` (D² ×
//! the targeted adversary at budget multiples; the ×1 cells must
//! survive *exactly* the Theorem 3 budget `k` with every repair
//! succeeding — the theorem's online form, asserted in tests and CI),
//! `life-age` (Weibull ageing hazard, run to death), `life-track`
//! (geometry-aware correlated track bursts on the `D²` torus), and
//! `life-renew` (renewal/recovery: trickle kills with delayed repairs —
//! steady-state availability with zero deaths, asserted in CI).
//! Artifacts are schema-versioned `LIFE_<name>.json` / `.csv`
//! (validated by `tools/check_life.py`).

use crate::runner::{run_indexed_multi_pooled, trial_seed, ScratchPool};
use crate::stats::{quantile, quantile_ci};
use crate::sweep::{cell_seed, BuiltHost, ConstructionSpec};
use crate::table::Table;
use ftt_core::construct::HostConstruction;
use ftt_core::online::{live_certificate, RepairClass, RepairOutcome, RepairState};
use ftt_faults::{FaultJournal, FaultSet, FaultStream, StreamFeedback, StreamSpec};
use std::sync::Mutex;
use std::time::Instant;

/// Per-cell wall-clock timer (µs), mirroring the artifact's
/// `seconds` field into the live registry.
static LIFETIME_CELL_US: ftt_obs::LazyHistogram =
    ftt_obs::LazyHistogram::new("ftt_sim_phase_us{phase=\"lifetime_cell\"}");

/// Version stamp of the `LIFE_*.json` / `LIFE_*.csv` artifact schema.
/// Version 2 added the renewal/availability fields (`repairs_applied`,
/// `resurrections`, `availability`, spell means, burst counts) and the
/// top-level `burst_window`.
pub const LIFE_SCHEMA_VERSION: u32 = 2;

/// When does a stream cell stop delivering faults?
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalCap {
    /// Run until the first unrepairable fault (a hard safety cap of
    /// `4 × host nodes` arrivals bounds pathological streams).
    UntilDeath,
    /// Stop after exactly this many arrivals.
    Arrivals(usize),
    /// Stop after `mult ×` the instance's worst-case fault budget `k`
    /// (constructions with a discrete budget only, i.e. `D^d_{n,k}`).
    /// `mult = 1` is Theorem 3's online guarantee: every arrival must
    /// be repaired.
    BudgetMult(f64),
}

impl ArrivalCap {
    fn slug(&self) -> String {
        match *self {
            ArrivalCap::UntilDeath => String::new(),
            ArrivalCap::Arrivals(n) => format!("_a{n}"),
            ArrivalCap::BudgetMult(m) => format!("_x{m}"),
        }
    }
}

/// One stream axis entry: an arrival process plus its stopping rule.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDef {
    /// The arrival process.
    pub spec: StreamSpec,
    /// The stopping rule.
    pub cap: ArrivalCap,
}

/// A declarative lifetime sweep: constructions × fault streams × a
/// trial budget, seeded from `root_seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeSpec {
    /// Artifact name: emitted as `LIFE_<name>.json` / `.csv`.
    pub name: String,
    /// Construction axis (shared with the sweep engine).
    pub constructions: Vec<ConstructionSpec>,
    /// Stream axis.
    pub streams: Vec<StreamDef>,
    /// Trials per cell.
    pub trials: usize,
    /// Root seed; per-cell seeds derive from it and the cell id.
    pub root_seed: u64,
    /// Certify the live embedding through the independent checker every
    /// this many successful repairs (0 = never).
    pub certify_every: usize,
    /// Coincidence window for burst detection: kill arrivals whose
    /// stream-time gap is ≤ this cluster together; clusters of ≥ 2 are
    /// reported as bursts. 0 still clusters same-timestamp kills.
    pub burst_window: u64,
}

/// Names accepted by [`LifetimeSpec::preset`] (mirrors
/// [`LIFETIME_PRESETS`]).
pub const LIFETIME_PRESET_NAMES: &[&str] = &[
    "life-smoke",
    "life-t2",
    "life-t3",
    "life-age",
    "life-track",
    "life-renew",
];

/// One entry of the lifetime preset registry (see [`crate::sweep::SWEEP_PRESETS`]
/// for the pattern): name, help summary, builder. The CLI renders its
/// preset table from this registry, so new presets appear in `ftt help`
/// automatically.
pub struct LifetimePreset {
    /// Canonical preset name (`--preset <name>`).
    pub name: &'static str,
    /// Help-text summary.
    pub summary: &'static str,
    build: fn() -> LifetimeSpec,
}

impl LifetimePreset {
    /// Builds the preset's spec.
    pub fn spec(&self) -> LifetimeSpec {
        (self.build)()
    }
}

/// The single registry of checked-in lifetime presets.
pub const LIFETIME_PRESETS: &[LifetimePreset] = &[
    LifetimePreset {
        name: "life-smoke",
        summary: "tiny B²+D² × trickle grid for CI (runs to death)",
        build: preset_life_smoke,
    },
    LifetimePreset {
        name: "life-t2",
        summary: "B²_{54,108,192} × trickle/burst arrivals, run to death —\n\
                  lifetime-to-failure curves for the Theorem 2 host",
        build: preset_life_t2,
    },
    LifetimePreset {
        name: "life-t3",
        summary: "D²_{44,79} × targeted adversary at budget multiples; ×1\n\
                  cells survive exactly k faults with 100% repair success\n\
                  (Theorem 3, online form — asserted)",
        build: preset_life_t3,
    },
    LifetimePreset {
        name: "life-age",
        summary: "B²+D² × Weibull ageing hazard (shape 2: wear-out), run\n\
                  to death — lifetime under an increasing failure rate",
        build: preset_life_age,
    },
    LifetimePreset {
        name: "life-track",
        summary: "D² × correlated track bursts (geometric line segments\n\
                  killed at one timestamp), run to death, with\n\
                  coincidence-window burst detection",
        build: preset_life_track,
    },
    LifetimePreset {
        name: "life-renew",
        summary: "B²+D² × renewal trickle (every kill schedules a delayed\n\
                  repair) — steady-state availability; zero deaths and\n\
                  clean certificates asserted in CI",
        build: preset_life_renew,
    },
];

fn preset_life_smoke() -> LifetimeSpec {
    LifetimeSpec {
        name: "smoke".into(),
        constructions: vec![
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 54,
                b: 3,
                eps_b: 1,
            },
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 40,
                b: 2,
            },
        ],
        streams: vec![StreamDef {
            spec: StreamSpec::Trickle {
                node_rate: 2e-3,
                edge_rate: 2e-4,
            },
            cap: ArrivalCap::UntilDeath,
        }],
        trials: 4,
        root_seed: 1,
        certify_every: 8,
        burst_window: 0,
    }
}

fn preset_life_t2() -> LifetimeSpec {
    LifetimeSpec {
        name: "t2".into(),
        constructions: vec![
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 54,
                b: 3,
                eps_b: 1,
            },
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 108,
                b: 3,
                eps_b: 1,
            },
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 192,
                b: 4,
                eps_b: 1,
            },
        ],
        streams: vec![
            StreamDef {
                spec: StreamSpec::Trickle {
                    node_rate: 1e-3,
                    edge_rate: 0.0,
                },
                cap: ArrivalCap::UntilDeath,
            },
            StreamDef {
                spec: StreamSpec::Trickle {
                    node_rate: 1e-3,
                    edge_rate: 1e-4,
                },
                cap: ArrivalCap::UntilDeath,
            },
            StreamDef {
                spec: StreamSpec::Burst {
                    rate: 0.01,
                    size: 4,
                },
                cap: ArrivalCap::UntilDeath,
            },
        ],
        trials: 30,
        root_seed: 1,
        certify_every: 0,
        burst_window: 0,
    }
}

fn preset_life_t3() -> LifetimeSpec {
    LifetimeSpec {
        name: "t3".into(),
        constructions: vec![
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 40,
                b: 2,
            },
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 60,
                b: 3,
            },
        ],
        streams: vec![
            StreamDef {
                spec: StreamSpec::Targeted,
                cap: ArrivalCap::BudgetMult(1.0),
            },
            StreamDef {
                spec: StreamSpec::Targeted,
                cap: ArrivalCap::BudgetMult(2.0),
            },
        ],
        trials: 40,
        root_seed: 1,
        certify_every: 8,
        burst_window: 0,
    }
}

fn preset_life_age() -> LifetimeSpec {
    LifetimeSpec {
        name: "age".into(),
        constructions: vec![
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 54,
                b: 3,
                eps_b: 1,
            },
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 40,
                b: 2,
            },
        ],
        streams: vec![
            // Shape 2 (Rayleigh-like wear-out: hazard grows linearly in
            // time, the scintillator-ageing picture) vs the shape-1
            // control (constant hazard — a plain exponential trickle).
            StreamDef {
                spec: StreamSpec::Ageing {
                    rate: 1e-4,
                    shape: 2.0,
                },
                cap: ArrivalCap::UntilDeath,
            },
            StreamDef {
                spec: StreamSpec::Ageing {
                    rate: 1e-4,
                    shape: 1.0,
                },
                cap: ArrivalCap::UntilDeath,
            },
        ],
        trials: 8,
        root_seed: 1,
        certify_every: 0,
        burst_window: 0,
    }
}

fn preset_life_track() -> LifetimeSpec {
    LifetimeSpec {
        name: "track".into(),
        constructions: vec![ConstructionSpec::Ddn {
            d: 2,
            n_min: 40,
            b: 2,
        }],
        streams: vec![
            StreamDef {
                spec: StreamSpec::Track { rate: 2e-3, len: 3 },
                cap: ArrivalCap::UntilDeath,
            },
            StreamDef {
                spec: StreamSpec::Track { rate: 2e-3, len: 5 },
                cap: ArrivalCap::UntilDeath,
            },
        ],
        trials: 8,
        root_seed: 1,
        certify_every: 0,
        burst_window: 2,
    }
}

fn preset_life_renew() -> LifetimeSpec {
    LifetimeSpec {
        name: "renew".into(),
        constructions: vec![
            ConstructionSpec::Bdn {
                d: 2,
                n_min: 54,
                b: 3,
                eps_b: 1,
            },
            ConstructionSpec::Ddn {
                d: 2,
                n_min: 40,
                b: 2,
            },
        ],
        // Sparse trickle with a repair delay far below the mean
        // inter-kill gap: at most a couple of faults coexist, so every
        // arrival stays repairable — the zero-death steady state CI
        // asserts (tools/check_life.py).
        streams: vec![StreamDef {
            spec: StreamSpec::Renew {
                delay: 8,
                inner: Box::new(StreamSpec::Trickle {
                    node_rate: 2e-5,
                    edge_rate: 2e-6,
                }),
            },
            cap: ArrivalCap::Arrivals(48),
        }],
        trials: 6,
        root_seed: 1,
        certify_every: 8,
        burst_window: 0,
    }
}

impl LifetimeSpec {
    /// A checked-in preset from [`LIFETIME_PRESETS`].
    pub fn preset(name: &str) -> Result<LifetimeSpec, String> {
        LIFETIME_PRESETS
            .iter()
            .find(|p| p.name == name)
            .map(LifetimePreset::spec)
            .ok_or_else(|| {
                format!(
                    "unknown lifetime preset `{name}` (available: {})",
                    LIFETIME_PRESET_NAMES.join(", ")
                )
            })
    }

    fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || !self.name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!(
                "lifetime name `{}` must be non-empty alphanumeric/underscore (it names artifacts)",
                self.name
            ));
        }
        if self.trials == 0 {
            return Err("lifetime sweep needs at least one trial per cell".into());
        }
        if self.constructions.is_empty() {
            return Err("lifetime sweep needs at least one construction".into());
        }
        if self.streams.is_empty() {
            return Err("lifetime sweep needs at least one stream".into());
        }
        for s in &self.streams {
            s.spec.validate().map_err(|e| e.to_string())?;
            match s.cap {
                ArrivalCap::Arrivals(0) => {
                    return Err("arrival cap must be ≥ 1".into());
                }
                ArrivalCap::BudgetMult(m) if m.is_nan() || m <= 0.0 => {
                    return Err(format!("budget multiple {m} must be > 0"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Per-trial outcome of one lifetime run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialRecord {
    /// Faults delivered by the stream.
    pub arrivals: usize,
    /// Faults successfully repaired (the *lifetime* when the trial
    /// died; equals `arrivals` when the stream ended first).
    pub survived: usize,
    /// O(1) repairs.
    pub fast: usize,
    /// Local repairs.
    pub local: usize,
    /// Full-rebuild repairs.
    pub rebuild: usize,
    /// Whether the trial ended at an unrepairable fault.
    pub died: bool,
    /// Stream time of the killing fault (0 when the trial survived).
    pub death_time: u64,
    /// Independent certificate checks performed.
    pub cert_checks: usize,
    /// Certificate checks that failed (must stay 0; a nonzero count is
    /// an engine bug surfaced, never hidden).
    pub cert_failures: usize,
    /// Repair (revival) events delivered by the stream.
    pub repairs: usize,
    /// Dead→alive transitions: a repair resurrected the embedding.
    pub resurrections: usize,
    /// Stream time spent with a live embedding.
    pub up_time: u64,
    /// Stream time spent dead, awaiting a resurrecting repair.
    pub down_time: u64,
    /// Up spells entered (≥ 1: every trial starts alive).
    pub up_spells: usize,
    /// Down spells entered.
    pub down_spells: usize,
    /// Kill clusters of ≥ 2 arrivals within the coincidence window.
    pub bursts: usize,
    /// Largest kill cluster observed.
    pub max_coincident: usize,
    /// Stream time of the last delivered event.
    pub end_time: u64,
}

/// The lifetime engine's view of the repair state, handed to adaptive
/// streams: accumulated faults plus the live guest→host map (the
/// targeted adversary aims at the currently occupied band/row through
/// it).
struct RepairFeedback<'a> {
    faults: &'a FaultSet,
    map: Option<&'a [usize]>,
}

impl StreamFeedback for RepairFeedback<'_> {
    fn occupied_node(&self, selector: u64) -> Option<usize> {
        let map = self.map?;
        if map.is_empty() {
            return None;
        }
        Some(map[(selector % map.len() as u64) as usize])
    }

    fn node_faulty(&self, v: usize) -> bool {
        self.faults.node_faulty(v)
    }

    fn edge_faulty(&self, e: u32) -> bool {
        self.faults.edge_faulty(e)
    }
}

/// Drives one lifetime trial: resets `state`, then feeds `stream` into
/// the incremental repair engine until the stream ends, `cap` *kill*
/// arrivals have been delivered, or — for non-renewing streams — the
/// first unrepairable fault. Renewing streams (`stream.renewing()`)
/// keep running through deaths: events keep flowing while the state is
/// dead and a later repair may resurrect it, which is what turns the
/// trial into an up/down availability ledger. Repair events scheduled
/// before the next kill still drain after the kill cap is reached.
///
/// With `certify_every > 0` the live embedding is frozen and
/// re-validated by the independent checker every that many successful
/// repairs; a `journal` records every delivered event for exact replay.
/// Kill arrivals whose stream-time gap is ≤ `burst_window` cluster into
/// bursts (clusters of ≥ 2 are counted; 0 clusters same-timestamp
/// kills, which is exactly what a track burst emits).
pub fn run_lifetime_trial<C, S>(
    host: &C,
    state: &mut RepairState<C>,
    stream: &mut S,
    cap: usize,
    certify_every: usize,
    burst_window: u64,
    mut journal: Option<&mut FaultJournal>,
) -> TrialRecord
where
    C: HostConstruction,
    S: FaultStream + ?Sized,
{
    state
        .reset(host)
        .expect("fault-free extraction must succeed on a valid instance");
    // Lazy-map constructions only pay map materialisation when someone
    // actually reads the map — an adaptive stream, every `certify_every`
    // repairs, and once at the end of the trial.
    let adaptive = stream.adaptive();
    let renewing = stream.renewing();
    let mut rec = TrialRecord {
        up_spells: 1,
        ..TrialRecord::default()
    };
    let mut alive = true;
    let mut prev_t: u64 = 0;
    let mut last_kill: Option<u64> = None;
    let mut cluster = 0usize;
    loop {
        if adaptive && alive {
            let _ = state.live_embedding(host);
        }
        let event = {
            let feedback = RepairFeedback {
                faults: state.faults(),
                map: state.embedding().map(|emb| emb.map.as_slice()),
            };
            stream.next(&feedback)
        };
        let Some(event) = event else { break };
        if !event.is_repair() && rec.arrivals >= cap {
            break;
        }
        if let Some(j) = journal.as_deref_mut() {
            j.record(event);
        }
        // Stream-time ledger: the span since the previous event belongs
        // to whichever state we were in.
        let t = event.time;
        if alive {
            rec.up_time += t.saturating_sub(prev_t);
        } else {
            rec.down_time += t.saturating_sub(prev_t);
        }
        prev_t = t;
        if event.is_repair() {
            rec.repairs += 1;
        } else {
            rec.arrivals += 1;
            // Coincidence clustering over kill times (non-decreasing).
            match last_kill {
                Some(lk) if t.saturating_sub(lk) <= burst_window => cluster += 1,
                _ => {
                    if cluster >= 2 {
                        rec.bursts += 1;
                    }
                    cluster = 1;
                }
            }
            last_kill = Some(t);
            rec.max_coincident = rec.max_coincident.max(cluster);
        }
        match state.apply_event(host, event.event) {
            RepairOutcome::Repaired(class) => {
                if !event.is_repair() {
                    rec.survived += 1;
                }
                match class {
                    RepairClass::Fast => rec.fast += 1,
                    RepairClass::Local => rec.local += 1,
                    RepairClass::Rebuild => rec.rebuild += 1,
                }
                let total = rec.fast + rec.local + rec.rebuild;
                if certify_every > 0 && total.is_multiple_of(certify_every) {
                    rec.cert_checks += 1;
                    let ok = live_certificate(host, state).is_some_and(|cert| {
                        ftt_verify::check_certificate(&cert, host.oracle(), state.faults()).is_ok()
                    });
                    if !ok {
                        rec.cert_failures += 1;
                    }
                }
            }
            RepairOutcome::Dead => {}
        }
        let now_alive = state.alive();
        if alive && !now_alive {
            rec.down_spells += 1;
            rec.death_time = t;
            alive = false;
            if !renewing {
                // No repairs are coming: the first unrepairable fault
                // ends the trial, exactly the pre-renewal semantics.
                rec.died = true;
                break;
            }
        } else if !alive && now_alive {
            rec.up_spells += 1;
            rec.resurrections += 1;
            alive = true;
        }
    }
    if cluster >= 2 {
        rec.bursts += 1;
    }
    rec.end_time = prev_t;
    rec.died = !state.alive();
    if !rec.died {
        rec.death_time = 0;
    }
    // Every trial ends with a concrete embedding (or a dead state):
    // deferred maps are materialised inside the timed region, so
    // lazy-map constructions cannot hide the cost from benchmarks.
    let _ = state.live_embedding(host);
    rec
}

/// Runs one cell's trials through the chunked pooled runner — the same
/// seed-per-trial discipline as [`run_indexed_multi_pooled`]'s other
/// consumers; per-trial [`RepairState`]s are pooled per worker and
/// reset per trial. Returns the per-trial records in trial order.
pub fn run_lifetime_trials<C: HostConstruction + Sync>(
    host: &C,
    stream: &StreamSpec,
    cap: usize,
    trials: usize,
    cell_seed: u64,
    threads: usize,
    certify_every: usize,
    burst_window: u64,
) -> Vec<TrialRecord> {
    let num_nodes = host.num_nodes();
    let num_edges = host.num_edges();
    // Geometry-aware streams (track bursts) walk the host torus when
    // the construction has one; geometry-blind hosts degrade to
    // id-adjacent runs.
    let shape = host.torus_shape();
    let pool: ScratchPool<RepairState<C>> = ScratchPool::new();
    let records: Mutex<Vec<TrialRecord>> = Mutex::new(vec![TrialRecord::default(); trials]);
    let [_survivors] = run_indexed_multi_pooled(
        trials,
        threads,
        &pool,
        // Idle states: run_lifetime_trial resets before the first
        // arrival, so the factory never runs a throwaway extraction.
        || RepairState::new_idle(host),
        |state, i| {
            let mut stream =
                stream.stream_shaped(num_nodes, num_edges, shape, trial_seed(cell_seed, i as u64));
            let rec = run_lifetime_trial(
                host,
                state,
                &mut stream,
                cap,
                certify_every,
                burst_window,
                None,
            );
            let survived_cap = !rec.died;
            records.lock().unwrap()[i] = rec;
            [survived_cap]
        },
    );
    records.into_inner().unwrap()
}

/// Aggregated outcome of one lifetime cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeCellResult {
    /// Canonical cell id (`<instance>/<stream-slug>[<cap-slug>]`).
    pub id: String,
    /// Construction display name.
    pub construction: String,
    /// Resolved instance parameters, human-readable.
    pub params: String,
    /// Stream slug (also part of the id).
    pub stream: String,
    /// Resolved arrival cap for this cell.
    pub cap_arrivals: usize,
    /// Budget multiple, when the cap was specified as one.
    pub mult: Option<f64>,
    /// The instance's worst-case fault budget `k` (`D^d_{n,k}` cells).
    pub budget_k: Option<usize>,
    /// Trials run.
    pub trials: usize,
    /// Trials that hit an unrepairable fault.
    pub deaths: usize,
    /// Trials that survived every delivered arrival.
    pub survived_all: usize,
    /// Total faults delivered across trials.
    pub arrivals_total: usize,
    /// O(1) repairs across trials.
    pub repairs_fast: usize,
    /// Local repairs across trials.
    pub repairs_local: usize,
    /// Full-rebuild repairs across trials.
    pub repairs_rebuild: usize,
    /// Mean lifetime (faults survived).
    pub lifetime_mean: f64,
    /// Smallest observed lifetime.
    pub lifetime_min: usize,
    /// Largest observed lifetime.
    pub lifetime_max: usize,
    /// Median lifetime (nearest rank).
    pub lifetime_median: f64,
    /// Wilson-style order-statistic CI for the median.
    pub median_ci: (f64, f64),
    /// 90th-percentile lifetime.
    pub lifetime_p90: f64,
    /// Wilson-style order-statistic CI for the p90.
    pub p90_ci: (f64, f64),
    /// Mean *stream time* of the killing fault over died trials — the
    /// lifetime in time units rather than arrival counts (rates give
    /// the two axes different shapes). `None` when no trial died.
    pub death_time_mean: Option<f64>,
    /// Independent certificate checks performed.
    pub cert_checks: usize,
    /// Certificate checks that failed (must be 0).
    pub cert_failures: usize,
    /// Repair (revival) events delivered across trials.
    pub repairs_applied: usize,
    /// Dead→alive resurrections across trials.
    pub resurrections: usize,
    /// Steady-state availability: fraction of stream time with a live
    /// embedding (`up / (up + down)`; 1.0 when no stream time elapsed).
    pub availability: f64,
    /// Mean up-spell length in stream time (0 with no spells).
    pub up_spell_mean: f64,
    /// Mean down-spell length in stream time (0 with no down spells).
    pub down_spell_mean: f64,
    /// Coincidence-window kill clusters (≥ 2 kills) across trials.
    pub bursts_total: usize,
    /// Largest kill cluster observed in any trial.
    pub max_coincident: usize,
    /// Wall-clock seconds for this cell.
    pub seconds: f64,
    /// Repair throughput: faults delivered per second (0 when the
    /// clock rounds to zero).
    pub faults_per_sec: f64,
    /// Revival throughput: repair events delivered per second.
    pub repairs_per_sec: f64,
}

impl LifetimeCellResult {
    /// Total successful repairs.
    pub fn repairs_total(&self) -> usize {
        self.repairs_fast + self.repairs_local + self.repairs_rebuild
    }

    /// Fraction of repairs in each class `(fast, local, rebuild)`;
    /// zeros when no repairs happened.
    pub fn repair_fractions(&self) -> (f64, f64, f64) {
        let total = self.repairs_total();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.repairs_fast as f64 / t,
            self.repairs_local as f64 / t,
            self.repairs_rebuild as f64 / t,
        )
    }
}

/// Aggregated outcome of a lifetime sweep, with artifact emitters.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// Sweep name (artifact stem).
    pub name: String,
    /// Root seed.
    pub root_seed: u64,
    /// Trials per cell.
    pub trials: usize,
    /// Worker threads requested (0 = auto); provenance only.
    pub threads: usize,
    /// Certification cadence (0 = never).
    pub certify_every: usize,
    /// Coincidence window used for burst detection.
    pub burst_window: u64,
    /// Per-cell results, construction-major.
    pub cells: Vec<LifetimeCellResult>,
}

fn aggregate_cell(
    id: String,
    host: &BuiltHost,
    stream: &StreamDef,
    cap: usize,
    mult: Option<f64>,
    budget_k: Option<usize>,
    records: &[TrialRecord],
    seconds: f64,
) -> LifetimeCellResult {
    let mut lifetimes: Vec<f64> = records.iter().map(|r| r.survived as f64).collect();
    lifetimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let arrivals_total: usize = records.iter().map(|r| r.arrivals).sum();
    let death_times: Vec<f64> = records
        .iter()
        .filter(|r| r.died)
        .map(|r| r.death_time as f64)
        .collect();
    let repairs_applied: usize = records.iter().map(|r| r.repairs).sum();
    let up_time: u64 = records.iter().map(|r| r.up_time).sum();
    let down_time: u64 = records.iter().map(|r| r.down_time).sum();
    let up_spells: usize = records.iter().map(|r| r.up_spells).sum();
    let down_spells: usize = records.iter().map(|r| r.down_spells).sum();
    LifetimeCellResult {
        id,
        construction: host.construction_name().to_string(),
        params: host.params_string(),
        stream: stream.spec.slug(),
        cap_arrivals: cap,
        mult,
        budget_k,
        trials: records.len(),
        deaths: records.iter().filter(|r| r.died).count(),
        survived_all: records.iter().filter(|r| !r.died).count(),
        arrivals_total,
        repairs_fast: records.iter().map(|r| r.fast).sum(),
        repairs_local: records.iter().map(|r| r.local).sum(),
        repairs_rebuild: records.iter().map(|r| r.rebuild).sum(),
        lifetime_mean: crate::stats::mean(&lifetimes),
        lifetime_min: lifetimes.first().copied().unwrap_or(0.0) as usize,
        lifetime_max: lifetimes.last().copied().unwrap_or(0.0) as usize,
        lifetime_median: quantile(&lifetimes, 0.5),
        median_ci: quantile_ci(&lifetimes, 0.5),
        lifetime_p90: quantile(&lifetimes, 0.9),
        p90_ci: quantile_ci(&lifetimes, 0.9),
        death_time_mean: (!death_times.is_empty()).then(|| crate::stats::mean(&death_times)),
        cert_checks: records.iter().map(|r| r.cert_checks).sum(),
        cert_failures: records.iter().map(|r| r.cert_failures).sum(),
        repairs_applied,
        resurrections: records.iter().map(|r| r.resurrections).sum(),
        availability: if up_time + down_time == 0 {
            1.0
        } else {
            up_time as f64 / (up_time + down_time) as f64
        },
        up_spell_mean: if up_spells == 0 {
            0.0
        } else {
            up_time as f64 / up_spells as f64
        },
        down_spell_mean: if down_spells == 0 {
            0.0
        } else {
            down_time as f64 / down_spells as f64
        },
        bursts_total: records.iter().map(|r| r.bursts).sum(),
        max_coincident: records.iter().map(|r| r.max_coincident).max().unwrap_or(0),
        seconds,
        faults_per_sec: if seconds > 0.0 {
            arrivals_total as f64 / seconds
        } else {
            0.0
        },
        repairs_per_sec: if seconds > 0.0 {
            repairs_applied as f64 / seconds
        } else {
            0.0
        },
    }
}

/// Resolves a stream's arrival cap against a built host. The hard
/// safety cap for run-to-death cells is `4 × host nodes` — far beyond
/// any survivable prefix, but it bounds pathological streams.
fn resolve_cap(
    def: &StreamDef,
    host: &BuiltHost,
    num_nodes: usize,
) -> Result<(usize, Option<f64>, Option<usize>), String> {
    let budget_k = match host {
        BuiltHost::Ddn(h) => Some(h.params().tolerated_faults()),
        _ => None,
    };
    match def.cap {
        ArrivalCap::UntilDeath => Ok((4 * num_nodes.max(1), None, budget_k)),
        ArrivalCap::Arrivals(n) => Ok((n, None, budget_k)),
        ArrivalCap::BudgetMult(mult) => {
            let Some(k) = budget_k else {
                return Err(format!(
                    "budget-multiple caps need a construction with a discrete fault \
                     budget (D^d_{{n,k}}), not {}",
                    host.construction_name()
                ));
            };
            let cap = ((k as f64) * mult).round() as usize;
            Ok((cap.max(1), Some(mult), budget_k))
        }
    }
}

/// Expands `spec` into cells and runs every cell. `threads = 0` selects
/// the available parallelism. Results are a pure function of
/// `(spec contents, root seed)`; see the module docs.
pub fn run_lifetime(spec: &LifetimeSpec, threads: usize) -> Result<LifetimeReport, String> {
    spec.validate()?;
    let mut cells = Vec::new();
    for cspec in &spec.constructions {
        let host = cspec.build()?;
        let host_id = host.id();
        for def in &spec.streams {
            let num_nodes = match &host {
                BuiltHost::Bdn(h) => HostConstruction::num_nodes(h),
                BuiltHost::Adn(h) => HostConstruction::num_nodes(h),
                BuiltHost::Ddn(h) => HostConstruction::num_nodes(h),
            };
            let (cap, mult, budget_k) = resolve_cap(def, &host, num_nodes)?;
            let id = format!("{host_id}/{}{}", def.spec.slug(), def.cap.slug());
            let seed = cell_seed(spec.root_seed, &id);
            let start = Instant::now();
            let records = match &host {
                BuiltHost::Bdn(h) => run_lifetime_trials(
                    h,
                    &def.spec,
                    cap,
                    spec.trials,
                    seed,
                    threads,
                    spec.certify_every,
                    spec.burst_window,
                ),
                BuiltHost::Adn(h) => run_lifetime_trials(
                    h,
                    &def.spec,
                    cap,
                    spec.trials,
                    seed,
                    threads,
                    spec.certify_every,
                    spec.burst_window,
                ),
                BuiltHost::Ddn(h) => run_lifetime_trials(
                    h,
                    &def.spec,
                    cap,
                    spec.trials,
                    seed,
                    threads,
                    spec.certify_every,
                    spec.burst_window,
                ),
            };
            let seconds = start.elapsed().as_secs_f64();
            LIFETIME_CELL_US.record((seconds * 1e6) as u64);
            cells.push(aggregate_cell(
                id, &host, def, cap, mult, budget_k, &records, seconds,
            ));
        }
    }
    Ok(LifetimeReport {
        name: spec.name.clone(),
        root_seed: spec.root_seed,
        trials: spec.trials,
        threads,
        certify_every: spec.certify_every,
        burst_window: spec.burst_window,
        cells,
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

impl LifetimeReport {
    /// The `LIFE_<name>.json` artifact: schema-versioned, one object
    /// per cell. Field order and `schema_version` are part of the CI
    /// contract (`tools/check_life.py`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {LIFE_SCHEMA_VERSION},\n"));
        out.push_str("  \"kind\": \"lifetime\",\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", json_escape(&self.name)));
        out.push_str(&format!("  \"root_seed\": {},\n", self.root_seed));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"certify_every\": {},\n", self.certify_every));
        out.push_str(&format!("  \"burst_window\": {},\n", self.burst_window));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let (ff, fl, fr) = c.repair_fractions();
            out.push_str("    {\n");
            out.push_str(&format!("      \"id\": \"{}\",\n", json_escape(&c.id)));
            out.push_str(&format!(
                "      \"construction\": \"{}\",\n",
                json_escape(&c.construction)
            ));
            out.push_str(&format!(
                "      \"params\": \"{}\",\n",
                json_escape(&c.params)
            ));
            out.push_str(&format!(
                "      \"stream\": \"{}\",\n",
                json_escape(&c.stream)
            ));
            out.push_str(&format!("      \"cap_arrivals\": {},\n", c.cap_arrivals));
            out.push_str(&format!(
                "      \"mult\": {},\n",
                c.mult.map_or_else(|| "null".into(), json_f64)
            ));
            out.push_str(&format!(
                "      \"budget_k\": {},\n",
                c.budget_k
                    .map_or_else(|| "null".to_string(), |k| k.to_string())
            ));
            out.push_str(&format!("      \"trials\": {},\n", c.trials));
            out.push_str(&format!("      \"deaths\": {},\n", c.deaths));
            out.push_str(&format!("      \"survived_all\": {},\n", c.survived_all));
            out.push_str(&format!(
                "      \"arrivals_total\": {},\n",
                c.arrivals_total
            ));
            out.push_str(&format!("      \"repairs_fast\": {},\n", c.repairs_fast));
            out.push_str(&format!("      \"repairs_local\": {},\n", c.repairs_local));
            out.push_str(&format!(
                "      \"repairs_rebuild\": {},\n",
                c.repairs_rebuild
            ));
            out.push_str(&format!("      \"frac_fast\": {},\n", json_f64(ff)));
            out.push_str(&format!("      \"frac_local\": {},\n", json_f64(fl)));
            out.push_str(&format!("      \"frac_rebuild\": {},\n", json_f64(fr)));
            out.push_str(&format!(
                "      \"lifetime_mean\": {},\n",
                json_f64(c.lifetime_mean)
            ));
            out.push_str(&format!("      \"lifetime_min\": {},\n", c.lifetime_min));
            out.push_str(&format!("      \"lifetime_max\": {},\n", c.lifetime_max));
            out.push_str(&format!(
                "      \"lifetime_median\": {},\n",
                json_f64(c.lifetime_median)
            ));
            out.push_str(&format!(
                "      \"median_ci_low\": {},\n",
                json_f64(c.median_ci.0)
            ));
            out.push_str(&format!(
                "      \"median_ci_high\": {},\n",
                json_f64(c.median_ci.1)
            ));
            out.push_str(&format!(
                "      \"lifetime_p90\": {},\n",
                json_f64(c.lifetime_p90)
            ));
            out.push_str(&format!(
                "      \"p90_ci_low\": {},\n",
                json_f64(c.p90_ci.0)
            ));
            out.push_str(&format!(
                "      \"p90_ci_high\": {},\n",
                json_f64(c.p90_ci.1)
            ));
            out.push_str(&format!(
                "      \"death_time_mean\": {},\n",
                c.death_time_mean.map_or_else(|| "null".into(), json_f64)
            ));
            out.push_str(&format!("      \"cert_checks\": {},\n", c.cert_checks));
            out.push_str(&format!("      \"cert_failures\": {},\n", c.cert_failures));
            out.push_str(&format!(
                "      \"repairs_applied\": {},\n",
                c.repairs_applied
            ));
            out.push_str(&format!("      \"resurrections\": {},\n", c.resurrections));
            out.push_str(&format!(
                "      \"availability\": {},\n",
                json_f64(c.availability)
            ));
            out.push_str(&format!(
                "      \"up_spell_mean\": {},\n",
                json_f64(c.up_spell_mean)
            ));
            out.push_str(&format!(
                "      \"down_spell_mean\": {},\n",
                json_f64(c.down_spell_mean)
            ));
            out.push_str(&format!("      \"bursts_total\": {},\n", c.bursts_total));
            out.push_str(&format!(
                "      \"max_coincident\": {},\n",
                c.max_coincident
            ));
            out.push_str(&format!("      \"seconds\": {:.6},\n", c.seconds));
            out.push_str(&format!(
                "      \"faults_per_sec\": {:.3},\n",
                c.faults_per_sec
            ));
            out.push_str(&format!(
                "      \"repairs_per_sec\": {:.3}\n",
                c.repairs_per_sec
            ));
            out.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The `LIFE_<name>.csv` artifact: a header row plus one row per
    /// cell, in the JSON's cell order.
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::from(
            "id,construction,params,stream,cap_arrivals,mult,budget_k,trials,deaths,\
             survived_all,arrivals_total,repairs_fast,repairs_local,repairs_rebuild,\
             lifetime_mean,lifetime_min,lifetime_max,lifetime_median,median_ci_low,\
             median_ci_high,lifetime_p90,death_time_mean,cert_checks,cert_failures,\
             repairs_applied,resurrections,availability,up_spell_mean,down_spell_mean,\
             bursts_total,max_coincident,seconds,faults_per_sec,repairs_per_sec\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.3},{:.3}\n",
                esc(&c.id),
                esc(&c.construction),
                esc(&c.params),
                esc(&c.stream),
                c.cap_arrivals,
                c.mult.map(|m| format!("{m}")).unwrap_or_default(),
                c.budget_k.map(|k| k.to_string()).unwrap_or_default(),
                c.trials,
                c.deaths,
                c.survived_all,
                c.arrivals_total,
                c.repairs_fast,
                c.repairs_local,
                c.repairs_rebuild,
                c.lifetime_mean,
                c.lifetime_min,
                c.lifetime_max,
                c.lifetime_median,
                c.median_ci.0,
                c.median_ci.1,
                c.lifetime_p90,
                c.death_time_mean
                    .map(|t| format!("{t}"))
                    .unwrap_or_default(),
                c.cert_checks,
                c.cert_failures,
                c.repairs_applied,
                c.resurrections,
                c.availability,
                c.up_spell_mean,
                c.down_spell_mean,
                c.bursts_total,
                c.max_coincident,
                c.seconds,
                c.faults_per_sec,
                c.repairs_per_sec,
            ));
        }
        out
    }

    /// Writes the JSON and CSV artifacts.
    pub fn write_artifacts(&self, json_path: &str, csv_path: &str) -> Result<(), String> {
        std::fs::write(json_path, self.to_json())
            .map_err(|e| format!("cannot write {json_path}: {e}"))?;
        std::fs::write(csv_path, self.to_csv())
            .map_err(|e| format!("cannot write {csv_path}: {e}"))?;
        Ok(())
    }

    /// Renders the report as an aligned text table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "LIFE {}: {} cells × {} trials (root seed {})",
                self.name,
                self.cells.len(),
                self.trials,
                self.root_seed
            ),
            &[
                "cell",
                "construction",
                "deaths",
                "median life [CI]",
                "mean",
                "fast/local/rebuild",
                "avail",
                "bursts",
                "faults/sec",
            ],
        );
        for c in &self.cells {
            let (ff, fl, fr) = c.repair_fractions();
            t.row(vec![
                c.id.clone(),
                c.construction.clone(),
                format!("{}/{}", c.deaths, c.trials),
                format!(
                    "{:.0} [{:.0}, {:.0}]",
                    c.lifetime_median, c.median_ci.0, c.median_ci.1
                ),
                format!("{:.1}", c.lifetime_mean),
                format!("{ff:.2}/{fl:.2}/{fr:.2}"),
                format!("{:.3}", c.availability),
                format!("{}", c.bursts_total),
                format!("{:.1}", c.faults_per_sec),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> LifetimeSpec {
        LifetimeSpec {
            name: "unit".into(),
            constructions: vec![ConstructionSpec::Ddn {
                d: 2,
                n_min: 30,
                b: 2,
            }],
            streams: vec![
                StreamDef {
                    spec: StreamSpec::Targeted,
                    cap: ArrivalCap::BudgetMult(1.0),
                },
                StreamDef {
                    spec: StreamSpec::Trickle {
                        node_rate: 5e-3,
                        edge_rate: 0.0,
                    },
                    cap: ArrivalCap::UntilDeath,
                },
            ],
            trials: 6,
            root_seed: 9,
            certify_every: 4,
            burst_window: 0,
        }
    }

    #[test]
    fn presets_all_build_and_registry_is_synced() {
        for name in LIFETIME_PRESET_NAMES {
            let spec = LifetimeSpec::preset(name).unwrap();
            spec.validate().unwrap();
        }
        assert!(LifetimeSpec::preset("bogus").is_err());
        let registry: Vec<&str> = LIFETIME_PRESETS.iter().map(|p| p.name).collect();
        assert_eq!(registry, LIFETIME_PRESET_NAMES);
        for p in LIFETIME_PRESETS {
            assert!(!p.summary.is_empty(), "{}: empty help summary", p.name);
        }
    }

    #[test]
    fn theorem_3_online_form_budget_cells_survive_exactly_k() {
        let report = run_lifetime(&tiny_spec(), 0).unwrap();
        assert_eq!(report.cells.len(), 2);
        let cell = &report.cells[0];
        let k = cell.budget_k.expect("D² cell carries its budget");
        assert_eq!(cell.cap_arrivals, k);
        assert_eq!(cell.deaths, 0, "within budget every fault is repairable");
        assert_eq!(cell.survived_all, cell.trials);
        assert_eq!(cell.lifetime_min, k, "every trial survives exactly k");
        assert_eq!(cell.lifetime_max, k);
        assert_eq!(cell.cert_failures, 0);
        assert!(cell.cert_checks > 0, "certify_every=4 must fire");
    }

    #[test]
    fn run_to_death_cells_die_and_report_distribution() {
        let report = run_lifetime(&tiny_spec(), 0).unwrap();
        let cell = &report.cells[1];
        assert_eq!(cell.deaths, cell.trials, "the trickle eventually kills");
        assert!(cell.lifetime_mean > 0.0);
        let dtm = cell.death_time_mean.expect("deaths ⇒ a mean death time");
        assert!(
            dtm >= cell.lifetime_mean,
            "stream time advances at least one step per arrival"
        );
        assert!(
            report.cells[0].death_time_mean.is_none(),
            "no deaths ⇒ no death time"
        );
        assert!(cell.lifetime_min <= cell.lifetime_max);
        assert!(cell.median_ci.0 <= cell.lifetime_median);
        assert!(cell.lifetime_median <= cell.median_ci.1);
        assert!(cell.repairs_total() > 0);
        let (ff, fl, fr) = cell.repair_fractions();
        assert!((ff + fl + fr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reports_are_thread_count_invariant() {
        let one = run_lifetime(&tiny_spec(), 1).unwrap();
        let four = run_lifetime(&tiny_spec(), 4).unwrap();
        assert_eq!(one.cells.len(), four.cells.len());
        for (a, b) in one.cells.iter().zip(&four.cells) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.deaths, b.deaths, "{}", a.id);
            assert_eq!(a.arrivals_total, b.arrivals_total, "{}", a.id);
            assert_eq!(a.lifetime_mean, b.lifetime_mean, "{}", a.id);
            assert_eq!(
                (a.repairs_fast, a.repairs_local, a.repairs_rebuild),
                (b.repairs_fast, b.repairs_local, b.repairs_rebuild),
                "{}",
                a.id
            );
        }
    }

    #[test]
    fn artifacts_have_the_schema_shape() {
        let report = run_lifetime(&tiny_spec(), 0).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"kind\": \"lifetime\""));
        assert!(json.contains("\"lifetime_median\""));
        assert!(json.contains("\"frac_fast\""));
        assert!(json.contains("\"death_time_mean\""));
        assert!(json.contains("\"availability\""));
        assert!(json.contains("\"burst_window\""));
        assert!(json.contains("\"repairs_applied\""));
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + report.cells.len());
        assert!(csv.starts_with("id,construction,"));
        assert!(!report.table().is_empty());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = tiny_spec();
        spec.trials = 0;
        assert!(run_lifetime(&spec, 1).is_err());

        let mut spec = tiny_spec();
        spec.name = "bad name".into();
        assert!(run_lifetime(&spec, 1).is_err());

        let mut spec = tiny_spec();
        spec.streams = vec![];
        assert!(run_lifetime(&spec, 1).is_err());

        // Budget caps need a budgeted construction.
        let mut spec = tiny_spec();
        spec.constructions = vec![ConstructionSpec::Bdn {
            d: 2,
            n_min: 54,
            b: 3,
            eps_b: 1,
        }];
        assert!(run_lifetime(&spec, 1).is_err(), "BudgetMult × B² must fail");

        let mut spec = tiny_spec();
        spec.streams[0].cap = ArrivalCap::BudgetMult(0.0);
        assert!(run_lifetime(&spec, 1).is_err());
    }

    #[test]
    fn kill_only_cells_have_trivial_availability_ledger() {
        // Without repairs the state is up until the death and the
        // ledger must say so: availability equals up/(up+down), no
        // resurrections, no repair events.
        let report = run_lifetime(&tiny_spec(), 0).unwrap();
        for cell in &report.cells {
            assert_eq!(cell.repairs_applied, 0, "{}", cell.id);
            assert_eq!(cell.resurrections, 0, "{}", cell.id);
            assert!(
                (0.0..=1.0).contains(&cell.availability),
                "{}: availability {}",
                cell.id,
                cell.availability
            );
            assert_eq!(
                cell.down_spell_mean, 0.0,
                "non-renewing trials end at death"
            );
        }
    }

    #[test]
    fn renewal_cells_deliver_repairs_and_report_availability() {
        let spec = LifetimeSpec {
            name: "renew_unit".into(),
            constructions: vec![ConstructionSpec::Ddn {
                d: 2,
                n_min: 30,
                b: 2,
            }],
            streams: vec![StreamDef {
                spec: StreamSpec::Renew {
                    delay: 8,
                    inner: Box::new(StreamSpec::Trickle {
                        node_rate: 1e-4,
                        edge_rate: 0.0,
                    }),
                },
                cap: ArrivalCap::Arrivals(12),
            }],
            trials: 4,
            root_seed: 5,
            certify_every: 4,
            burst_window: 0,
        };
        let report = run_lifetime(&spec, 0).unwrap();
        let cell = &report.cells[0];
        assert!(cell.repairs_applied > 0, "renewal must deliver repairs");
        assert!((0.0..=1.0).contains(&cell.availability));
        assert!(cell.up_spell_mean > 0.0);
        assert_eq!(cell.cert_failures, 0, "repairs must keep batch parity");
        assert!(cell.cert_checks > 0);
    }

    #[test]
    fn coincident_kills_are_detected_as_bursts() {
        // A burst stream kills `size` live nodes at one timestamp:
        // window 0 clusters them, independent trickles stay burst-free.
        let spec = LifetimeSpec {
            name: "burst_unit".into(),
            constructions: vec![ConstructionSpec::Bdn {
                d: 2,
                n_min: 54,
                b: 3,
                eps_b: 1,
            }],
            streams: vec![
                StreamDef {
                    spec: StreamSpec::Burst {
                        rate: 0.05,
                        size: 3,
                    },
                    cap: ArrivalCap::Arrivals(9),
                },
                StreamDef {
                    spec: StreamSpec::Trickle {
                        node_rate: 1e-4,
                        edge_rate: 0.0,
                    },
                    cap: ArrivalCap::Arrivals(6),
                },
            ],
            trials: 3,
            root_seed: 3,
            certify_every: 0,
            burst_window: 0,
        };
        let report = run_lifetime(&spec, 0).unwrap();
        let burst_cell = &report.cells[0];
        assert!(burst_cell.bursts_total > 0, "same-time kills must cluster");
        assert!(burst_cell.max_coincident >= 2);
        let trickle_cell = &report.cells[1];
        assert_eq!(
            trickle_cell.bursts_total, 0,
            "a sparse trickle never lands two kills on one timestamp"
        );
    }

    #[test]
    fn cell_ids_anchor_seeds_not_positions() {
        let spec = tiny_spec();
        let mut reversed = spec.clone();
        reversed.streams.reverse();
        let a = run_lifetime(&spec, 1).unwrap();
        let b = run_lifetime(&reversed, 1).unwrap();
        for cell in &a.cells {
            let twin = b
                .cells
                .iter()
                .find(|c| c.id == cell.id)
                .expect("same cells, different order");
            assert_eq!(cell.arrivals_total, twin.arrivals_total, "{}", cell.id);
            assert_eq!(cell.deaths, twin.deaths, "{}", cell.id);
        }
    }
}
