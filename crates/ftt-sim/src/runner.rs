//! Parallel, deterministic trial running.
//!
//! Trials are independent; each gets a seed derived from the master
//! seed and its index by a splitmix64 step, so results do not depend on
//! the number of worker threads or scheduling.
//!
//! # Performance
//!
//! Workers claim trials in chunks of [`CLAIM_CHUNK`] indices (one
//! `fetch_add` per chunk instead of per trial), and the `*_with`
//! variants ([`run_trials_with`], [`run_multi_trials_with`]) hand every
//! worker a private scratch value built once per thread — the hook the
//! extraction scenarios use to reuse fault-set and conversion buffers
//! across trials instead of allocating per trial. Tallies are summed
//! commutatively, so chunking and scratch reuse leave the determinism
//! contract intact: results are a pure function of
//! `(trials, master_seed)`.

use crate::stats::wilson_interval;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of trial indices a worker claims per atomic operation.
pub const CLAIM_CHUNK: usize = 32;

/// Outcome summary of a batch of boolean trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Number of trials run.
    pub trials: usize,
    /// Number of successful trials.
    pub successes: usize,
}

impl TrialStats {
    /// Empirical success rate.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// 95% Wilson confidence interval for the success probability.
    pub fn confidence(&self) -> (f64, f64) {
        wilson_interval(self.successes, self.trials)
    }
}

/// splitmix64: derives per-trial seeds from `(master, index)`.
pub fn trial_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn resolve_threads(threads: usize, trials: usize) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    threads.min(trials.max(1))
}

/// Runs `trials` boolean trials in parallel and tallies successes.
///
/// `trial(seed)` must be a pure function of the seed. `threads = 0`
/// selects the available parallelism.
pub fn run_trials<F>(trials: usize, master_seed: u64, threads: usize, trial: F) -> TrialStats
where
    F: Fn(u64) -> bool + Sync,
{
    let [stats] = run_multi_trials(trials, master_seed, threads, |seed| [trial(seed)]);
    stats
}

/// [`run_trials`] with a per-worker scratch value: `init()` runs once
/// per worker thread and the result is passed mutably to every trial
/// that worker claims. `trial(scratch, seed)`'s *outcome* must be a
/// pure function of the seed (the scratch is a buffer, not state).
pub fn run_trials_with<T, I, F>(
    trials: usize,
    master_seed: u64,
    threads: usize,
    init: I,
    trial: F,
) -> TrialStats
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, u64) -> bool + Sync,
{
    let [stats] = run_multi_trials_with(trials, master_seed, threads, init, |scratch, seed| {
        [trial(scratch, seed)]
    });
    stats
}

/// Runs `trials` trials that each report `N` boolean outcomes (e.g.
/// healthy / placed / verified) and tallies each outcome separately —
/// one sampling + extraction pass fills every column of a sweep table.
///
/// Same contract as [`run_trials`]: `trial(seed)` must be a pure
/// function of the seed, and the tallies are independent of the worker
/// thread count.
pub fn run_multi_trials<const N: usize, F>(
    trials: usize,
    master_seed: u64,
    threads: usize,
    trial: F,
) -> [TrialStats; N]
where
    F: Fn(u64) -> [bool; N] + Sync,
{
    run_multi_trials_with(trials, master_seed, threads, || (), |(), seed| trial(seed))
}

/// [`run_multi_trials`] with a per-worker scratch value (see
/// [`run_trials_with`]). Workers claim trial indices in chunks of
/// [`CLAIM_CHUNK`] to keep atomic contention off the hot path; since
/// every trial's outcome depends only on its seed and tallies are
/// summed, the chunking is invisible in the results.
pub fn run_multi_trials_with<const N: usize, T, I, F>(
    trials: usize,
    master_seed: u64,
    threads: usize,
    init: I,
    trial: F,
) -> [TrialStats; N]
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, u64) -> [bool; N] + Sync,
{
    let pool = ScratchPool::new();
    run_multi_trials_pooled(trials, master_seed, threads, &pool, init, trial)
}

/// A pool of per-worker scratch values that outlives a single run.
///
/// Each worker of a `*_pooled` run takes one value at startup (creating
/// it only when the pool is empty) and returns it on exit, so handing
/// the *same* pool to consecutive runs — the sweep engine runs every
/// cell of a host this way — reuses fault-set and extraction buffers
/// across runs instead of rebuilding them per run. Scratch values are
/// buffers, never state, so pooling cannot affect results.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    items: Mutex<Vec<T>>,
}

impl<T> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            items: Mutex::new(Vec::new()),
        }
    }

    /// Number of idle scratch values currently in the pool.
    pub fn idle(&self) -> usize {
        self.items.lock().unwrap().len()
    }

    fn take(&self) -> Option<T> {
        self.items.lock().unwrap().pop()
    }

    fn put(&self, item: T) {
        self.items.lock().unwrap().push(item);
    }
}

/// [`run_multi_trials_with`] drawing per-worker scratch from (and
/// returning it to) a caller-owned [`ScratchPool`], so buffers survive
/// across consecutive runs. Workers claim trial indices in chunks of
/// [`CLAIM_CHUNK`]; every trial's outcome depends only on its seed and
/// tallies are summed, so neither chunking nor pooling is visible in
/// the results.
pub fn run_multi_trials_pooled<const N: usize, T, I, F>(
    trials: usize,
    master_seed: u64,
    threads: usize,
    pool: &ScratchPool<T>,
    init: I,
    trial: F,
) -> [TrialStats; N]
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, u64) -> [bool; N] + Sync,
{
    run_indexed_multi_pooled(trials, threads, pool, init, |scratch, i| {
        trial(scratch, trial_seed(master_seed, i as u64))
    })
}

/// The chunked worker loop underneath every `run_*` variant, exposed
/// for *enumerated* workloads: the trial closure receives the raw trial
/// **index** instead of a derived seed, so callers iterating a fixed
/// work list (the exhaustive certification engine walks a canonical
/// fault-pattern list) can address their items directly. Same contract
/// otherwise: `trial(scratch, i)`'s outcome must be a pure function of
/// `i`, tallies are summed commutatively, and neither the thread count
/// nor the chunking is visible in the results.
pub fn run_indexed_multi_pooled<const N: usize, T, I, F>(
    count: usize,
    threads: usize,
    pool: &ScratchPool<T>,
    init: I,
    trial: F,
) -> [TrialStats; N]
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, usize) -> [bool; N] + Sync,
{
    let threads = resolve_threads(threads, count);
    let next = AtomicUsize::new(0);
    let tallies: [AtomicUsize; N] = std::array::from_fn(|_| AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = pool.take().unwrap_or_else(&init);
                let mut local = [0usize; N];
                loop {
                    let start = next.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    for i in start..(start + CLAIM_CHUNK).min(count) {
                        let outcomes = trial(&mut scratch, i);
                        for (tally, hit) in local.iter_mut().zip(outcomes) {
                            *tally += hit as usize;
                        }
                    }
                }
                for (total, tally) in tallies.iter().zip(local) {
                    total.fetch_add(tally, Ordering::Relaxed);
                }
                pool.put(scratch);
            });
        }
    });
    std::array::from_fn(|i| TrialStats {
        trials: count,
        successes: tallies[i].load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_success() {
        let s = run_trials(100, 1, 4, |_| true);
        assert_eq!(s.successes, 100);
        assert_eq!(s.rate(), 1.0);
    }

    #[test]
    fn all_failure() {
        let s = run_trials(50, 1, 4, |_| false);
        assert_eq!(s.successes, 0);
        assert_eq!(s.rate(), 0.0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let f = |seed: u64| seed.is_multiple_of(3);
        let a = run_trials(1000, 42, 1, f);
        let b = run_trials(1000, 42, 8, f);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(trial_seed(7, i)), "seed collision at {i}");
        }
    }

    #[test]
    fn rate_roughly_matches_bernoulli() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let s = run_trials(2000, 3, 0, |seed| {
            SmallRng::seed_from_u64(seed).gen_bool(0.3)
        });
        assert!((s.rate() - 0.3).abs() < 0.05, "rate {}", s.rate());
    }

    #[test]
    fn confidence_brackets_rate() {
        let s = run_trials(500, 9, 0, |seed| seed % 2 == 0);
        let (lo, hi) = s.confidence();
        assert!(lo <= s.rate() && s.rate() <= hi);
    }

    #[test]
    fn zero_trials() {
        let s = run_trials(0, 1, 4, |_| true);
        assert_eq!(s.trials, 0);
        assert_eq!(s.rate(), 0.0);
    }

    #[test]
    fn pool_reuses_scratch_across_runs() {
        use std::sync::atomic::AtomicUsize;
        let built = AtomicUsize::new(0);
        let pool = ScratchPool::new();
        let init = || {
            built.fetch_add(1, Ordering::Relaxed);
            0u64
        };
        let trial = |acc: &mut u64, seed: u64| {
            *acc = acc.wrapping_add(seed);
            [seed.is_multiple_of(2)]
        };
        // Single worker keeps the build count deterministic (with more
        // workers, an early finisher's scratch can be handed to a
        // late-spawning worker, making the count racy).
        let [a] = run_multi_trials_pooled(64, 1, 1, &pool, init, trial);
        assert_eq!(built.load(Ordering::Relaxed), 1);
        assert_eq!(pool.idle(), 1, "worker returns scratch on exit");
        let [b] = run_multi_trials_pooled(64, 1, 1, &pool, init, trial);
        assert_eq!(
            built.load(Ordering::Relaxed),
            1,
            "second run must reuse pooled scratch, not build new"
        );
        assert_eq!(a, b, "pooling is invisible in the results");
    }

    #[test]
    fn pooled_matches_with_variant() {
        let pool = ScratchPool::new();
        let trial = |_: &mut Vec<u8>, seed: u64| [seed.is_multiple_of(3), seed.is_multiple_of(5)];
        let pooled = run_multi_trials_pooled(100, 9, 3, &pool, Vec::new, trial);
        let plain = run_multi_trials_with(100, 9, 3, Vec::new, trial);
        assert_eq!(pooled, plain);
    }

    #[test]
    fn indexed_runner_visits_every_index_once() {
        // Tally index parity: successes must equal the exact count of
        // even indices, for any thread count — each index visited
        // exactly once.
        for threads in [1, 3, 0] {
            let pool = ScratchPool::new();
            let [stats] =
                run_indexed_multi_pooled(101, threads, &pool, || (), |(), i| [i % 2 == 0]);
            assert_eq!(stats.trials, 101);
            assert_eq!(stats.successes, 51, "threads = {threads}");
        }
    }
}
