//! Exhaustive adversarial certification: Theorem 3 checked
//! combinatorially.
//!
//! Theorem 3 is universally quantified — `D^d_{n,k}` tolerates **any**
//! `k` worst-case faults — so no amount of Monte-Carlo sampling proves
//! it for an instance; it only fails to disprove it. On small instances
//! the quantifier is finite: this engine enumerates *every* fault
//! pattern of size `≤ k` up to the host's cyclic translation symmetry
//! ([`ftt_verify::enumerate`]), runs each through extraction, freezes
//! the result as an [`ftt_core::EmbeddingCertificate`], and has the
//! independent checker ([`ftt_verify::check_certificate`]) re-validate
//! it. All canonical patterns certified ⇒ Theorem 3 *proved* for that
//! instance (translation-invariance of the adjacency carries each
//! orbit), with an audit trail that never trusts the band machinery.
//!
//! The walk is parallelised through the chunked trial runner
//! ([`crate::runner::run_indexed_multi_pooled`]); tallies and the
//! summed certificate digest are order-independent, so reports are
//! invariant under the worker thread count.
//!
//! Artifacts are schema-versioned `CERT_<name>.json` files
//! ([`CertifyReport::to_json`], validated by `tools/check_cert.py` in
//! CI's `certify-smoke` job).

use crate::runner::{run_indexed_multi_pooled, ScratchPool};
use crate::table::Table;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_core::HostConstruction;
use ftt_faults::FaultSet;
// Digest folding mixes `(pattern index, certificate hash)` pairs with
// the shared splitmix64 finisher.
use ftt_geom::splitmix64 as splitmix;
use ftt_verify::check_certificate;
use ftt_verify::enumerate::{enumerate_canonical, exhaustive_pattern_count, orbit_size};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version stamp of the `CERT_*.json` artifact schema.
pub const CERTIFY_SCHEMA_VERSION: u32 = 1;

/// Default ceiling on the candidate-set volume the enumerator may walk
/// (`Σ C(N−1, s−1)`); requests above it are refused instead of silently
/// running for hours.
pub const DEFAULT_CANDIDATE_CAP: usize = 2_000_000;

/// The one policy for exhaustive enumeration, shared by
/// [`run_certify`] and the sweep engine's `Exhaustive` regime: resolve
/// the pattern-size ceiling against the instance budget (refusing
/// beyond-guarantee requests), gate the candidate volume on `cap`, and
/// enumerate the canonical patterns. Returns `(k_used, patterns)`.
pub(crate) fn enumerate_for_instance(
    params: &DdnParams,
    max_faults: Option<usize>,
    cap: usize,
) -> Result<(usize, Vec<Vec<usize>>), String> {
    let budget = params.tolerated_faults();
    let k = max_faults.unwrap_or(budget);
    if k > budget {
        return Err(format!(
            "max_faults {k} exceeds the Theorem 3 budget k = {budget}; beyond the \
             guarantee there is nothing to certify (use the t3 sweep preset to explore it)"
        ));
    }
    let dims = vec![params.m(); params.d];
    let candidates = exhaustive_pattern_count(&dims, k);
    if candidates > cap {
        return Err(format!(
            "exhaustive enumeration would walk {candidates} candidate sets (cap {cap}); \
             pick a smaller instance or lower max_faults"
        ));
    }
    Ok((k, enumerate_canonical(&dims, k)))
}

/// A declarative exhaustive-certification run over one `D^d_{n,k}`
/// instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifySpec {
    /// Artifact name: emitted as `CERT_<name>.json`.
    pub name: String,
    /// Dimension `d` of the instance.
    pub d: usize,
    /// Minimum guest torus side (resolved by [`DdnParams::fit`]).
    pub n_min: usize,
    /// Base jump parameter `b` (budget `k = b^{2^d − 1}`).
    pub b: usize,
    /// Largest pattern size to enumerate; `None` means the full budget
    /// `k`. Values above `k` are rejected — beyond the guarantee the
    /// theorem claims nothing, so there is nothing to certify.
    pub max_faults: Option<usize>,
    /// Refusal ceiling on the enumerated candidate volume.
    pub candidate_cap: usize,
}

impl CertifySpec {
    /// Spec for one instance at the full budget with the default cap.
    pub fn new(name: &str, d: usize, n_min: usize, b: usize) -> Self {
        Self {
            name: name.into(),
            d,
            n_min,
            b,
            max_faults: None,
            candidate_cap: DEFAULT_CANDIDATE_CAP,
        }
    }
}

/// One uncertified pattern: the canonical fault set and what went
/// wrong (placement refusal or an invalid certificate).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CertifyFailure {
    /// The canonical fault pattern (sorted host node ids).
    pub pattern: Vec<usize>,
    /// Human-readable failure cause.
    pub error: String,
}

/// Outcome of an exhaustive certification run.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifyReport {
    /// Artifact stem.
    pub name: String,
    /// Construction display name.
    pub construction: String,
    /// Canonical instance id (`d<d>_n<n>b<b>`).
    pub instance_id: String,
    /// Resolved instance parameters, human-readable.
    pub params: String,
    /// Theorem 3 budget `k = b^{2^d − 1}` of the instance.
    pub budget: usize,
    /// Largest pattern size actually enumerated (≤ budget).
    pub max_faults: usize,
    /// Host side `m` and node count.
    pub host_m: usize,
    /// Host node count `m^d`.
    pub host_nodes: usize,
    /// Canonical pattern count per size `0 ..= max_faults`.
    pub patterns_by_size: Vec<usize>,
    /// Total canonical patterns certified against (`Σ patterns_by_size`).
    pub patterns_total: usize,
    /// Raw patterns covered once orbits are unfolded (`Σ orbit sizes`) —
    /// the number of distinct fault sets the run speaks for.
    pub patterns_covered: usize,
    /// Patterns whose certificate passed the independent checker.
    pub certified: usize,
    /// Uncertified patterns (capped at [`Self::FAILURE_CAP`], sorted).
    pub failures: Vec<CertifyFailure>,
    /// Commutative wrapping-sum of index-mixed certificate content
    /// hashes: one word that pins the entire run (order-independent,
    /// thread-count-invariant, and — unlike a plain XOR fold —
    /// sensitive to duplicate certificates, which distinct patterns
    /// can legitimately produce).
    pub cert_digest: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Worker threads requested (0 = auto); provenance only.
    pub threads: usize,
}

impl CertifyReport {
    /// Most failures kept in a report (the tally still counts all).
    pub const FAILURE_CAP: usize = 16;

    /// Whether every canonical pattern certified — Theorem 3, proved
    /// exhaustively for this instance.
    pub fn complete(&self) -> bool {
        self.certified == self.patterns_total
    }

    /// The `CERT_<name>.json` artifact: schema-versioned, field order
    /// part of the CI contract (`tools/check_cert.py`).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {CERTIFY_SCHEMA_VERSION},\n"
        ));
        out.push_str("  \"kind\": \"certify\",\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", esc(&self.name)));
        out.push_str(&format!(
            "  \"construction\": \"{}\",\n",
            esc(&self.construction)
        ));
        out.push_str(&format!(
            "  \"instance_id\": \"{}\",\n",
            esc(&self.instance_id)
        ));
        out.push_str(&format!("  \"params\": \"{}\",\n", esc(&self.params)));
        out.push_str(&format!("  \"budget_k\": {},\n", self.budget));
        out.push_str(&format!("  \"max_faults\": {},\n", self.max_faults));
        out.push_str("  \"symmetry\": \"translation\",\n");
        out.push_str(&format!("  \"host_m\": {},\n", self.host_m));
        out.push_str(&format!("  \"host_nodes\": {},\n", self.host_nodes));
        out.push_str(&format!(
            "  \"patterns_by_size\": [{}],\n",
            self.patterns_by_size
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"patterns_total\": {},\n", self.patterns_total));
        out.push_str(&format!(
            "  \"patterns_covered\": {},\n",
            self.patterns_covered
        ));
        out.push_str(&format!("  \"certified\": {},\n", self.certified));
        out.push_str(&format!("  \"complete\": {},\n", self.complete()));
        out.push_str("  \"failures\": [\n");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"pattern\": [{}], \"error\": \"{}\"}}{}\n",
                f.pattern
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                esc(&f.error),
                if i + 1 == self.failures.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"cert_digest\": \"{:016x}\",\n",
            self.cert_digest
        ));
        out.push_str(&format!("  \"seconds\": {:.6},\n", self.seconds));
        out.push_str(&format!("  \"threads\": {}\n", self.threads));
        out.push_str("}\n");
        out
    }

    /// Writes the JSON artifact.
    pub fn write_artifact(&self, json_path: &str) -> Result<(), String> {
        std::fs::write(json_path, self.to_json())
            .map_err(|e| format!("cannot write {json_path}: {e}"))
    }

    /// Renders the report as an aligned text table (one row per size).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "CERT {}: {} over all {} canonical patterns (≤ {} faults, budget {}) — {}",
                self.name,
                self.instance_id,
                self.patterns_total,
                self.max_faults,
                self.budget,
                if self.complete() {
                    "COMPLETE"
                } else {
                    "FAILED"
                }
            ),
            &["size", "canonical", "covered via orbits"],
        );
        for (size, &count) in self.patterns_by_size.iter().enumerate() {
            t.row(vec![
                size.to_string(),
                count.to_string(),
                "-".into(), // per-size orbit volume not tracked; total below
            ]);
        }
        t.row(vec![
            "total".into(),
            self.patterns_total.to_string(),
            self.patterns_covered.to_string(),
        ]);
        t
    }
}

/// Pattern-enumeration phase timer (µs per [`run_certify`] call).
static CERTIFY_ENUMERATE_US: ftt_obs::LazyHistogram =
    ftt_obs::LazyHistogram::new("ftt_sim_phase_us{phase=\"certify_enumerate\"}");
/// Certified-walk phase timer (µs per [`run_certify`] call).
static CERTIFY_WALK_US: ftt_obs::LazyHistogram =
    ftt_obs::LazyHistogram::new("ftt_sim_phase_us{phase=\"certify_walk\"}");

/// Runs the exhaustive certification described by `spec`. `threads = 0`
/// selects the available parallelism; results are thread-count
/// invariant.
pub fn run_certify(spec: &CertifySpec, threads: usize) -> Result<CertifyReport, String> {
    if spec.name.is_empty() || !spec.name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(format!(
            "certify name `{}` must be non-empty alphanumeric/underscore (it names artifacts)",
            spec.name
        ));
    }
    let params = DdnParams::fit(spec.d, spec.n_min, spec.b)?;
    let budget = params.tolerated_faults();
    let enumerate_stamp = ftt_obs::Stamp::now();
    let (max_faults, patterns) =
        enumerate_for_instance(&params, spec.max_faults, spec.candidate_cap)?;
    enumerate_stamp.record(&CERTIFY_ENUMERATE_US);
    let host = Ddn::new(params);
    let dims = vec![params.m(); params.d];
    let mut patterns_by_size = vec![0usize; max_faults + 1];
    let mut patterns_covered = 0usize;
    for p in &patterns {
        patterns_by_size[p.len()] += 1;
        patterns_covered = patterns_covered.saturating_add(orbit_size(&dims, p));
    }

    // The algebraic oracle answers adjacency; no graph materialises.
    let oracle = HostConstruction::oracle(&host);
    let num_nodes = HostConstruction::num_nodes(&host);
    let num_edges = HostConstruction::num_edges(&host);

    let digest = AtomicU64::new(0);
    // Only pattern *indices* are collected on the failure path (8 bytes
    // each, bounded by the candidate cap even if every pattern fails);
    // the reported subset and its error strings are re-derived after
    // the run, so the report is a pure function of the instance, not
    // the thread schedule.
    let failed_indices: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let pool: ScratchPool<FaultSet> = ScratchPool::new();
    let certify_pattern = |faults: &mut FaultSet, pattern: &[usize]| -> Result<u64, String> {
        faults.clear();
        for &v in pattern {
            faults.kill_node(v);
        }
        match host.try_certify(faults) {
            Ok(cert) => match check_certificate(&cert, oracle, faults) {
                Ok(()) => Ok(cert.content_hash()),
                Err(e) => Err(format!("invalid certificate: {e}")),
            },
            Err(e) => Err(format!("extraction refused: {e}")),
        }
    };
    let start = Instant::now();
    let [stats] = run_indexed_multi_pooled(
        patterns.len(),
        threads,
        &pool,
        || FaultSet::none(num_nodes, num_edges),
        |faults, i| match certify_pattern(faults, &patterns[i]) {
            Ok(hash) => {
                // Wrapping-sum of index-mixed hashes: commutative (so
                // thread-count-invariant) without XOR's cancellation of
                // duplicate certificates — distinct patterns *can*
                // legitimately certify to identical embeddings.
                digest.fetch_add(splitmix(hash ^ (i as u64 + 1)), Ordering::Relaxed);
                [true]
            }
            Err(_) => {
                failed_indices.lock().unwrap().push(i);
                [false]
            }
        },
    );
    let seconds = start.elapsed().as_secs_f64();
    CERTIFY_WALK_US.record((seconds * 1e6) as u64);
    // Thread-count-invariant failure report: sort the index set, keep
    // the first FAILURE_CAP, and re-run just those to recover messages.
    let mut failed_indices = failed_indices.into_inner().unwrap();
    failed_indices.sort_unstable();
    failed_indices.truncate(CertifyReport::FAILURE_CAP);
    let mut refaults = FaultSet::none(num_nodes, num_edges);
    let failures: Vec<CertifyFailure> = failed_indices
        .into_iter()
        .map(|i| CertifyFailure {
            pattern: patterns[i].clone(),
            error: certify_pattern(&mut refaults, &patterns[i])
                .expect_err("outcome is a pure function of the pattern"),
        })
        .collect();

    Ok(CertifyReport {
        name: spec.name.clone(),
        construction: <Ddn as HostConstruction>::NAME.to_string(),
        instance_id: format!("d{}_n{}b{}", params.d, params.n, params.b),
        params: format!(
            "d={} n={} m={} b={} budget={}",
            params.d,
            params.n,
            params.m(),
            params.b,
            budget
        ),
        budget,
        max_faults,
        host_m: params.m(),
        host_nodes: num_nodes,
        patterns_by_size,
        patterns_total: patterns.len(),
        patterns_covered,
        certified: stats.successes,
        failures,
        cert_digest: digest.load(Ordering::Relaxed),
        seconds,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// D¹ with b = 2 (`fit(1, 8, 2)`: m = 12, k = 2): tiny enough to
    /// run in unit tests, non-trivial enough to exercise every size.
    fn d1_spec() -> CertifySpec {
        CertifySpec::new("unit_d1", 1, 8, 2)
    }

    #[test]
    fn d1_full_budget_certifies_completely() {
        let report = run_certify(&d1_spec(), 0).unwrap();
        assert!(report.complete(), "failures: {:?}", report.failures);
        assert_eq!(report.budget, 2);
        assert_eq!(report.max_faults, 2);
        // m = 12: sizes 0, 1, 2 → 1 + 1 + 6 canonical patterns.
        assert_eq!(report.patterns_by_size, vec![1, 1, 6]);
        assert_eq!(report.patterns_total, 8);
        // orbit unfolding covers every raw pattern: 1 + 12 + C(12,2).
        assert_eq!(report.patterns_covered, 1 + 12 + 66);
        assert!(report.failures.is_empty());
        assert_ne!(report.cert_digest, 0);
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let one = run_certify(&d1_spec(), 1).unwrap();
        let four = run_certify(&d1_spec(), 4).unwrap();
        assert_eq!(one.certified, four.certified);
        assert_eq!(one.cert_digest, four.cert_digest);
        assert_eq!(one.patterns_by_size, four.patterns_by_size);
    }

    #[test]
    fn tiny_d2_full_budget_certifies() {
        // d = 2, b = 1: m = 10, k = 1 — 100 host nodes, 2 canonical
        // patterns (empty + single fault).
        let report = run_certify(&CertifySpec::new("unit_d2", 2, 8, 1), 0).unwrap();
        assert!(report.complete());
        assert_eq!(report.patterns_by_size, vec![1, 1]);
        assert_eq!(report.patterns_covered, 1 + 100);
    }

    #[test]
    fn over_budget_and_oversize_requests_rejected() {
        let mut spec = d1_spec();
        spec.max_faults = Some(3); // k = 2
        assert!(run_certify(&spec, 1).is_err());

        let mut spec = d1_spec();
        spec.candidate_cap = 2;
        assert!(run_certify(&spec, 1).is_err(), "cap must refuse the walk");

        let mut spec = d1_spec();
        spec.name = "bad name".into();
        assert!(run_certify(&spec, 1).is_err());
    }

    #[test]
    fn artifact_json_shape() {
        let report = run_certify(&d1_spec(), 2).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"kind\": \"certify\""));
        assert!(json.contains("\"complete\": true"));
        assert!(json.contains("\"symmetry\": \"translation\""));
        assert!(json.contains("\"cert_digest\": \""));
        assert!(!report.table().is_empty());
    }
}
