//! Construction-generic Monte-Carlo scenarios.
//!
//! [`run_extraction_trials`] lifts the deterministic trial loop of
//! [`crate::runner::run_trials`] to any [`HostConstruction`]: each
//! trial samples a [`FaultSet`] from its per-trial seed, asks the host
//! to extract a guest torus, and — crucially — *verifies* the returned
//! embedding against the host graph and the sampled faults, so a trial
//! only counts as a success when the extracted torus is genuinely
//! fault-free. The determinism contract of `run_trials` carries over:
//! results are independent of the worker thread count.
//!
//! # Performance
//!
//! The trial loop is built for the paper's *sparse* fault regimes:
//! every worker owns one [`FaultSet`] and one
//! [`HostConstruction::Scratch`], both built once per thread. A trial
//! then costs `O(#faults)` fault work — [`FaultSampler::sample_into`]
//! refills the fault set in place with geometric-skip sampling
//! (`O(pN + qE)` expected RNG draws), and
//! [`HostConstruction::try_extract_with`] converts faults into the
//! construction's own formalism through the reused scratch — so the
//! steady-state hot path performs no heap allocation for fault
//! handling. Determinism is unaffected: a trial's fault set is a pure
//! function of `(host, seed)` regardless of which worker's buffers it
//! is materialised in.

use crate::runner::{run_trials_with, TrialStats};
use ftt_core::bdn::extract::TorusEmbedding;
use ftt_core::construct::HostConstruction;
use ftt_core::error::PlacementError;
use ftt_faults::{sample_bernoulli_faults_into, FaultSet};
use ftt_graph::{verify_torus_embedding, EmbedError};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why a single extraction trial did not produce a verified torus.
#[derive(Debug)]
pub enum ExtractionFailure {
    /// The construction's placement/extraction machinery gave up.
    Placement(PlacementError),
    /// An embedding was produced but is not a valid fault-free guest
    /// torus — always a bug in the construction, never expected.
    Verification(EmbedError),
}

impl std::fmt::Display for ExtractionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractionFailure::Placement(e) => write!(f, "extraction failed: {e}"),
            ExtractionFailure::Verification(e) => {
                write!(f, "embedding failed verification: {e}")
            }
        }
    }
}

impl std::error::Error for ExtractionFailure {}

/// One extraction trial: asks `host` to mask `faults` and extract a
/// guest torus, then verifies the embedding against the host graph and
/// the fault set. This is *the* success criterion shared by
/// [`run_extraction_trials`] and single-shot consumers (the CLI), so
/// Monte-Carlo rates and one-off runs can never diverge.
pub fn extract_verified<C: HostConstruction>(
    host: &C,
    faults: &FaultSet,
) -> Result<TorusEmbedding, ExtractionFailure> {
    let mut scratch = host.new_scratch();
    extract_verified_with(host, faults, &mut scratch)
}

/// [`extract_verified`] reusing a per-worker extraction scratch — the
/// Monte-Carlo hot path (same success criterion, no per-call buffers).
pub fn extract_verified_with<C: HostConstruction>(
    host: &C,
    faults: &FaultSet,
    scratch: &mut C::Scratch,
) -> Result<TorusEmbedding, ExtractionFailure> {
    let emb = host
        .try_extract_with(faults, scratch)
        .map_err(ExtractionFailure::Placement)?;
    verify_torus_embedding(
        &emb.guest,
        &emb.map,
        host.oracle(),
        |v| faults.node_alive(v),
        |e| faults.edge_alive(e),
    )
    .map_err(ExtractionFailure::Verification)?;
    Ok(emb)
}

// The per-trial fault generation contract now lives beside the fault
// models themselves (`ftt_faults::sampler`), so the adversarial
// machinery can implement it without a dependency cycle; re-exported
// here because the trial runners consume it.
pub use ftt_faults::FaultSampler;

/// Runs `trials` fault-sampling + extraction + verification trials
/// against `host`, in parallel.
///
/// A trial succeeds iff [`extract_verified`] does: extraction succeeds
/// **and** the embedding is a valid guest torus in the host graph
/// avoiding every sampled node and edge fault. `threads = 0` selects
/// the available parallelism. Results are a pure function of
/// `(host, trials, master_seed, sampler)` — never of the thread count.
pub fn run_extraction_trials<C, S>(
    host: &C,
    trials: usize,
    master_seed: u64,
    threads: usize,
    sampler: S,
) -> TrialStats
where
    C: HostConstruction + Sync,
    S: FaultSampler<C>,
{
    run_trials_with(
        trials,
        master_seed,
        threads,
        || {
            (
                FaultSet::none(host.num_nodes(), host.num_edges()),
                host.new_scratch(),
            )
        },
        |(faults, scratch), seed| {
            sampler.sample_into(host, seed, faults);
            extract_verified_with(host, faults, scratch).is_ok()
        },
    )
}

/// A sampler for [`run_extraction_trials`]: independent Bernoulli node
/// faults with probability `p` and edge faults with probability `q`,
/// drawn by geometric skips straight into the per-worker buffer.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliSampler {
    /// Per-node fault probability.
    pub p: f64,
    /// Per-edge fault probability.
    pub q: f64,
}

impl<C: HostConstruction> FaultSampler<C> for BernoulliSampler {
    fn sample_into(&self, host: &C, seed: u64, out: &mut FaultSet) {
        let mut rng = SmallRng::seed_from_u64(seed);
        sample_bernoulli_faults_into(host.oracle(), self.p, self.q, &mut rng, out);
    }
}

/// Independent Bernoulli node faults with probability `p` and edge
/// faults with probability `q`.
pub fn bernoulli_sampler(p: f64, q: f64) -> BernoulliSampler {
    BernoulliSampler { p, q }
}

/// A sampler placing exactly `k` faults on the node ids produced by
/// `pick(host, seed)` — the adversarial-regime counterpart of
/// [`bernoulli_sampler`]. See [`node_list_sampler`].
#[derive(Debug, Clone, Copy)]
pub struct NodeListSampler<F> {
    pick: F,
}

impl<C, F> FaultSampler<C> for NodeListSampler<F>
where
    C: HostConstruction,
    F: Fn(&C, u64) -> Vec<usize> + Sync,
{
    fn sample_into(&self, host: &C, seed: u64, out: &mut FaultSet) {
        out.clear();
        for v in (self.pick)(host, seed) {
            out.kill_node(v);
        }
    }
}

/// A sampler placing node faults exactly on the ids produced by
/// `pick(host, seed)`.
pub fn node_list_sampler<C, F>(pick: F) -> NodeListSampler<F>
where
    C: HostConstruction,
    F: Fn(&C, u64) -> Vec<usize> + Sync,
{
    NodeListSampler { pick }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftt_core::bdn::{Bdn, BdnParams};
    use ftt_core::ddn::{Ddn, DdnParams};

    #[test]
    fn fault_free_always_succeeds() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let stats = run_extraction_trials(&host, 8, 1, 0, bernoulli_sampler(0.0, 0.0));
        assert_eq!(stats.successes, 8);
    }

    #[test]
    fn saturated_faults_always_fail() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let stats = run_extraction_trials(&host, 4, 1, 0, bernoulli_sampler(1.0, 0.0));
        assert_eq!(stats.successes, 0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let p = host.params().tolerated_fault_probability() * 40.0;
        let a = run_extraction_trials(&host, 12, 7, 1, bernoulli_sampler(p, 0.0));
        let b = run_extraction_trials(&host, 12, 7, 4, bernoulli_sampler(p, 0.0));
        assert_eq!(a, b);
    }

    #[test]
    fn closure_sampler_still_accepted() {
        // The blanket FaultSampler impl keeps ad-hoc closures working.
        let host = Bdn::build(BdnParams::new(2, 54, 3, 1).unwrap());
        let stats = run_extraction_trials(&host, 4, 1, 0, |host: &Bdn, _seed: u64| {
            FaultSet::none(host.num_nodes(), host.graph().num_edges())
        });
        assert_eq!(stats.successes, 4);
    }

    #[test]
    fn node_list_sampler_respects_budget() {
        let host = Ddn::new(DdnParams::fit(2, 30, 2).unwrap());
        let k = host.params().tolerated_faults();
        let stats = run_extraction_trials(
            &host,
            6,
            3,
            0,
            node_list_sampler(move |host: &Ddn, seed| {
                (0..k)
                    .map(|i| (seed as usize + 13 * i) % host.shape().len())
                    .collect()
            }),
        );
        assert_eq!(stats.successes, 6, "Theorem 3 guarantee through the trait");
    }
}
