//! Plain-text experiment tables.
//!
//! Every experiment binary prints one of these; EXPERIMENTS.md archives
//! the rendered output. Cells are strings; numeric helpers format
//! consistently so paper-vs-measured rows line up.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text block (also what `Display` prints).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:w$} |", cell, w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a probability with its 95% CI: `0.945 [0.91, 0.97]`.
pub fn fmt_prob(rate: f64, ci: (f64, f64)) -> String {
    format!("{:.3} [{:.3}, {:.3}]", rate, ci.0, ci.1)
}

/// Formats a float with 3 significant decimals.
pub fn fmt_f(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "success"]);
        t.row(vec!["64".into(), "0.99".into()]);
        t.row(vec!["12800".into(), "1.00".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| n     | success |"));
        assert!(s.lines().count() == 5);
        // markdown separator present
        assert!(s.lines().nth(2).unwrap().starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn prob_formatting() {
        let s = fmt_prob(0.9456, (0.91, 0.97));
        assert_eq!(s, "0.946 [0.910, 0.970]");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new("", &["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
