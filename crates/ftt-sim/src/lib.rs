//! Monte-Carlo experiment engine.
//!
//! The paper's theorems are probabilistic (Theorems 1–2) or adversarial
//! (Theorem 3); the experiment harness estimates success probabilities
//! over seeded random trials, in parallel, and renders the sweep tables
//! that EXPERIMENTS.md records. Determinism: trial `i` of a run with
//! master seed `s` always uses seed `splitmix(s, i)`, regardless of
//! thread scheduling.

pub mod runner;
pub mod scenario;
pub mod stats;
pub mod table;

pub use runner::{run_multi_trials, run_trials, TrialStats};
pub use scenario::{
    bernoulli_sampler, extract_verified, node_list_sampler, run_extraction_trials,
    ExtractionFailure,
};
pub use stats::{mean, std_dev, wilson_interval};
pub use table::Table;
