//! Monte-Carlo experiment engine.
//!
//! The paper's theorems are probabilistic (Theorems 1–2) or adversarial
//! (Theorem 3); the experiment harness estimates success probabilities
//! over seeded random trials, in parallel, and renders the sweep tables
//! that EXPERIMENTS.md records. Determinism: trial `i` of a run with
//! master seed `s` always uses seed `splitmix(s, i)`, regardless of
//! thread scheduling.
//!
//! The [`sweep`] module lifts single scenarios to declarative *grids*:
//! a [`SweepSpec`] (constructions × fault regimes × trial budget)
//! expands into deterministic cells, runs them through the same
//! pipeline, and emits schema-versioned `SWEEP_*.json`/`.csv`
//! artifacts; [`SweepSpec::preset`] ships the paper-regime grids
//! (`t1`/`t2`/`t3`) plus a CI `smoke` grid and an `exhaustive` grid.
//!
//! The [`certify`] module goes beyond sampling: on small `D^d_{n,k}`
//! instances it enumerates **every** fault pattern up to cyclic
//! symmetry and certifies each through `ftt-verify`'s independent
//! checker — Theorem 3 proved combinatorially, with `CERT_*.json`
//! artifacts (also available as the `exhaustive` sweep regime).
//!
//! # Performance
//!
//! The trial pipeline is sized for the paper's sparse fault regimes:
//! workers claim trials in chunks (one atomic per ~32 trials), each
//! worker owns reusable fault and extraction scratch buffers, and the
//! built-in samplers refill them with geometric-skip draws — so a
//! steady-state trial costs `O(#faults)` fault work and no heap
//! allocation. See the `runner` and `scenario` module docs.

pub mod certify;
pub mod lifetime;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod sweep;
pub mod table;

pub use certify::{
    run_certify, CertifyFailure, CertifyReport, CertifySpec, CERTIFY_SCHEMA_VERSION,
};
pub use lifetime::{
    run_lifetime, run_lifetime_trial, run_lifetime_trials, ArrivalCap, LifetimeCellResult,
    LifetimePreset, LifetimeReport, LifetimeSpec, StreamDef, TrialRecord, LIFETIME_PRESETS,
    LIFETIME_PRESET_NAMES, LIFE_SCHEMA_VERSION,
};
pub use runner::{
    run_indexed_multi_pooled, run_multi_trials, run_multi_trials_pooled, run_multi_trials_with,
    run_trials, run_trials_with, ScratchPool, TrialStats,
};
pub use scenario::{
    bernoulli_sampler, extract_verified, extract_verified_with, node_list_sampler,
    run_extraction_trials, BernoulliSampler, ExtractionFailure, FaultSampler, NodeListSampler,
};
pub use stats::{mean, quantile, quantile_ci, std_dev, wilson_interval};
pub use sweep::{
    cell_seed, run_sweep, BaselineResult, BaselineSpec, CellResult, ConstructionSpec, FaultRegime,
    SweepPattern, SweepPreset, SweepReport, SweepSpec, PRESET_NAMES, SWEEP_PRESETS,
    SWEEP_SCHEMA_VERSION,
};
pub use table::Table;
