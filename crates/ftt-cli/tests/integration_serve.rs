//! End-to-end daemon crash test through the real `ftt serve` binary:
//! 3 shards × 100 tenants, interleaved kills/repairs/queries, then
//! SIGKILL mid-stream and a restart on the same data directory. Every
//! acknowledged event must survive the crash exactly — recovered
//! liveness and embeddings equal the pre-crash capture, and every
//! tenant's recovered live embedding passes the independent
//! `ftt_verify::check_certificate` against the net fault set.

use ftt_core::construct::HostConstruction;
use ftt_core::ddn::{Ddn, DdnParams};
use ftt_core::EmbeddingCertificate;
use ftt_faults::{Fault, FaultSet, TimedFault};
use ftt_serve::{Client, Listen, Response, TenantSpec};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};

const TENANTS: u64 = 100;
const SPEC: TenantSpec = TenantSpec::Ddn {
    d: 1,
    n_min: 8,
    b: 2,
};

/// Starts `ftt serve` on an ephemeral port and parses the banner —
/// the banner's parseability is itself part of the contract under
/// test. Returns the child, its (kept-open) stdout reader, and the
/// resolved listen address.
fn spawn_daemon(data_dir: &Path) -> (Child, BufReader<ChildStdout>, Listen) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ftt"))
        .args([
            "serve",
            "--listen",
            "tcp:127.0.0.1:0",
            "--shards",
            "3",
            "--data-dir",
        ])
        .arg(data_dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ftt serve");
    let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("read banner");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparseable banner {banner:?}"));
    let listen = Listen::parse(addr).expect("banner address parses");
    (child, reader, listen)
}

/// The interleaved event script for one tenant, with its net surviving
/// node faults. Even tenants end with 2 net faults (the full D¹ budget
/// k = 2), odd tenants net zero; every tenant sees both kills and
/// repairs, and every 10th also round-trips an edge fault.
fn tenant_script(t: u64) -> (Vec<Vec<TimedFault>>, Vec<usize>) {
    let a = (t % 4) as usize;
    let mut batches = vec![
        vec![
            TimedFault::kill(1, Fault::Node(a)),
            TimedFault::kill(2, Fault::Node(4 + a)),
        ],
        vec![TimedFault::repair(3, Fault::Node(a))],
    ];
    let (last, net) = if t.is_multiple_of(2) {
        (
            vec![TimedFault::kill(4, Fault::Node(8 + a))],
            vec![4 + a, 8 + a],
        )
    } else {
        (vec![TimedFault::repair(4, Fault::Node(4 + a))], vec![])
    };
    batches.push(last);
    if t.is_multiple_of(10) {
        let e = (t % 5) as u32;
        batches.push(vec![
            TimedFault::kill(5, Fault::Edge(e)),
            TimedFault::repair(6, Fault::Edge(e)),
        ]);
    }
    (batches, net)
}

/// Captures the (liveness, embedding) pair the daemon reports for a
/// tenant — the equality token for crash recovery.
fn capture(client: &mut Client, t: u64) -> (Response, Response) {
    let live = client.liveness(t).expect("liveness");
    assert!(
        matches!(live, Response::Liveness { alive: true, .. }),
        "tenant {t}: {live:?}"
    );
    let emb = client.embedding(t).expect("embedding");
    assert!(
        matches!(&emb, Response::Embedding(Some(_))),
        "tenant {t}: {emb:?}"
    );
    (live, emb)
}

#[test]
fn daemon_survives_sigkill_with_exact_state_and_valid_certificates() {
    let data_dir = std::env::temp_dir().join(format!("ftt_serve_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    let (mut child, _stdout, addr) = spawn_daemon(&data_dir);
    let mut client = Client::connect(&addr).expect("connect");

    for t in 0..TENANTS {
        match client.create_tenant(t, &SPEC).expect("create") {
            Response::Created { alive: true, .. } => {}
            other => panic!("tenant {t}: create failed: {other:?}"),
        }
    }

    // Interleaved event stream: batch rounds in lockstep across all
    // tenants, with liveness/embedding queries mixed in mid-stream.
    let scripts: Vec<_> = (0..TENANTS).map(tenant_script).collect();
    let rounds = scripts.iter().map(|(b, _)| b.len()).max().unwrap();
    for round in 0..rounds {
        for t in 0..TENANTS {
            if let Some(batch) = scripts[t as usize].0.get(round) {
                match client.events(t, batch).expect("events") {
                    Response::Applied { alive: true, .. } => {}
                    other => panic!("tenant {t} round {round}: {other:?}"),
                }
            }
            if t % 7 == 0 {
                assert!(matches!(
                    client.liveness(t).expect("mid-stream liveness"),
                    Response::Liveness { .. }
                ));
            }
            if t % 13 == 0 {
                assert!(matches!(
                    client.embedding(t).expect("mid-stream embedding"),
                    Response::Embedding(Some(_))
                ));
            }
        }
    }

    // Every event above was acknowledged, i.e. journaled: this capture
    // is exactly what the crash must not lose.
    let before: Vec<_> = (0..TENANTS).map(|t| capture(&mut client, t)).collect();

    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap");
    drop(client);

    // Restart on the same data directory: recovery replays every
    // journal to byte-identical repair state.
    let (mut child, _stdout, addr) = spawn_daemon(&data_dir);
    let mut client = Client::connect(&addr).expect("reconnect");

    let host = Ddn::new(DdnParams::fit(1, 8, 2).expect("spec params"));
    for (t, pre) in before.iter().enumerate() {
        let post = capture(&mut client, t as u64);
        assert_eq!(*pre, post, "tenant {t}: state changed across the crash");

        // Independent certification of the recovered embedding against
        // the net fault set this test tracked on its own ledger.
        let Response::Embedding(Some(info)) = &post.1 else {
            unreachable!()
        };
        let (_, net) = &scripts[t];
        let faults = FaultSet::from_lists(
            HostConstruction::num_nodes(&host),
            HostConstruction::num_edges(&host),
            net,
            &[],
        );
        let cert = EmbeddingCertificate {
            construction: info.construction.clone(),
            guest_dims: info.guest_dims.clone(),
            map: info.map.iter().map(|&v| v as usize).collect(),
            host_nodes: HostConstruction::num_nodes(&host),
            host_edges: HostConstruction::num_edges(&host),
            placement: Vec::new(),
        };
        ftt_verify::check_certificate(&cert, host.oracle(), &faults)
            .unwrap_or_else(|e| panic!("tenant {t}: recovered embedding rejected: {e}"));
    }

    // A fresh event after recovery must keep flowing (time floor
    // restored from the journal, not reset).
    match client
        .events(3, &[TimedFault::kill(9, Fault::Node(0))])
        .expect("post-recovery events")
    {
        Response::Applied { applied: 1, .. } => {}
        other => panic!("post-recovery event rejected: {other:?}"),
    }

    match client.shutdown().expect("shutdown") {
        Response::ShutdownAck => {}
        other => panic!("shutdown not acked: {other:?}"),
    }
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited {status:?}");
    let _ = std::fs::remove_dir_all(&data_dir);
}
