//! `ftt` — command-line interface to the fault-tolerant torus
//! constructions of Tamaki (SPAA'94 / JCSS'96).
//!
//! ```text
//! ftt b2      [--n 54] [--b 3] [--eps 1] [--p 1e-4] [--seed 1] [--render]
//! ftt a2      [--n 108] [--k 2] [--h 6] [--p 0.02] [--q 0.0] [--seed 1]
//! ftt d2      [--n 60] [--b 2] [--k <budget>] [--pattern random|cluster|line|diag|spread] [--seed 1] [--render]
//! ftt sweep   [--preset smoke|t1|t2|t3|exhaustive] [--n 54] [--b 3] [--trials N] [--seed 1]
//!             [--threads 0] [--json PATH] [--csv PATH] [--no-artifacts] [--no-baseline]
//! ftt certify [--d 1] [--n 20] [--b 3] [--max-faults K] [--name NAME]
//!             [--threads 0] [--json PATH] [--no-artifacts] [--corrupt MODE]
//! ftt serve   [--listen tcp:HOST:PORT|unix:PATH] [--shards N] [--data-dir DIR]
//!             [--metrics-addr HOST:PORT] [--obs json|text]
//! ftt help [serve]
//! ```
//!
//! `b2` runs one Theorem 2 trial, `a2` one Theorem 1 trial, and `d2`
//! one Theorem 3 trial with an adversarial pattern. Every command
//! dispatches through the [`HostConstruction`] trait: building, degree
//! audits, extraction, and verification are construction-generic, and
//! only fault generation and the optional renders touch concrete types.
//!
//! `sweep` drives the declarative scenario-sweep engine
//! (`ftt_sim::sweep`): a `SweepSpec` — constructions × fault regimes ×
//! trial budget, seeded from one root seed — expands into cells whose
//! results are invariant under thread count and cell order, and the
//! report is emitted as a schema-versioned `SWEEP_<name>.json` +
//! `SWEEP_<name>.csv` (plus an aligned table on stdout). `--preset`
//! selects a checked-in paper-regime grid (`t1`/`t2`/`t3` reproduce the
//! Theorem 1/2/3 curves with an Alon–Chung baseline column, `smoke` is
//! the tiny CI grid, `exhaustive` certifies Theorem 3 combinatorially);
//! without a preset, `--n`/`--b` build a custom B² design-probability
//! curve. CI's `sweep-smoke` job runs the `smoke` and `t2` presets and
//! validates the artifacts with `tools/check_sweep.py` (schema fields,
//! rates in [0, 1], Theorem 2 monotonicity).
//!
//! `certify` drives the exhaustive certification engine
//! (`ftt_sim::certify`): every canonical fault pattern of size ≤ `k`
//! on a small `D^d_{n,k}` instance is extracted and the resulting
//! `EmbeddingCertificate` re-validated by the independent checker
//! (`ftt_verify::check_certificate`). Incomplete certification exits
//! non-zero; `--corrupt` probes the failure paths. Artifacts are
//! schema-versioned `CERT_<name>.json` files, validated by CI's
//! `certify-smoke` job via `tools/check_cert.py`.

mod args;

use args::Args;
use ftt_core::adn::{Adn, AdnParams};
use ftt_core::bdn::{check_health, Bdn, BdnParams};
use ftt_core::construct::HostConstruction;
use ftt_core::ddn::{place_straight_bands, Ddn, DdnParams};
use ftt_core::render::{render_banding, render_ddn_axes};
use ftt_faults::{sample_bernoulli_faults, AdversaryPattern, FaultSet};
use ftt_graph::AdjacencyOracle;
use ftt_serve::{Listen, Server, ServerConfig};
use ftt_sim::{
    extract_verified, run_certify, run_lifetime, run_sweep, CertifySpec, LifetimeSpec, SweepSpec,
    CERTIFY_SCHEMA_VERSION, LIFETIME_PRESETS, LIFE_SCHEMA_VERSION, SWEEP_PRESETS,
    SWEEP_SCHEMA_VERSION,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `help` takes an optional bare topic (`ftt help serve`), which the
    // `--option`-only parser would reject — handle it before parsing.
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        match argv.get(1).map(String::as_str) {
            Some("serve") => println!("{}", serve_usage()),
            _ => println!("{}", usage()),
        }
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "b2" => cmd_b2(&args),
        "a2" => cmd_a2(&args),
        "d2" => cmd_d2(&args),
        "sweep" => cmd_sweep(&args),
        "certify" => cmd_certify(&args),
        "lifetime" => cmd_lifetime(&args),
        "serve" => cmd_serve(&args),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Output format for `--obs`, the end-of-run metrics dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObsFormat {
    Json,
    Text,
}

/// Parses `--obs json|text`. The flag is accepted even in builds
/// without the `obs` feature — the dump then reports an inert registry
/// (`"obs": false` / a one-line notice) instead of silently ignoring a
/// flag the user asked for — so scripts can pass it unconditionally.
fn obs_format(args: &Args) -> Result<Option<ObsFormat>, String> {
    match args.get_str("obs", "").as_str() {
        "" => Ok(None),
        "json" => Ok(Some(ObsFormat::Json)),
        "text" => Ok(Some(ObsFormat::Text)),
        other => Err(format!("--obs `{other}`: expected json or text")),
    }
}

/// Dumps the process-global metrics registry to stdout in the chosen
/// format. A no-op when `--obs` was not given.
fn dump_obs(format: Option<ObsFormat>) {
    match format {
        None => {}
        Some(ObsFormat::Json) => print!("{}", ftt_obs::registry().render_json()),
        Some(ObsFormat::Text) => print!("{}", ftt_obs::registry().render_text()),
    }
}

/// Renders one preset registry as an indented `name: summary` table.
/// The registries are the single source of truth
/// (`ftt_sim::SWEEP_PRESETS`, `ftt_sim::LIFETIME_PRESETS`), so a new
/// preset appears here without touching the CLI.
fn preset_table<'a>(entries: impl Iterator<Item = (&'a str, &'a str)>) -> String {
    let mut out = String::new();
    for (name, summary) in entries {
        let mut lines = summary.lines();
        out.push_str(&format!("      {name}: {}\n", lines.next().unwrap_or("")));
        for line in lines {
            out.push_str(&format!("          {line}\n"));
        }
    }
    out.pop(); // trailing newline; callers place their own
    out
}

/// The full usage text; preset tables are generated from the
/// `ftt-sim` preset registries.
fn usage() -> String {
    let sweep_presets = preset_table(SWEEP_PRESETS.iter().map(|p| (p.name, p.summary)));
    let sweep_names = SWEEP_PRESETS
        .iter()
        .map(|p| p.name)
        .collect::<Vec<_>>()
        .join("|");
    let life_presets = preset_table(LIFETIME_PRESETS.iter().map(|p| (p.name, p.summary)));
    let life_names = LIFETIME_PRESETS
        .iter()
        .map(|p| p.name)
        .collect::<Vec<_>>()
        .join("|");
    format!(
        "usage:
  ftt b2       [--n N] [--b B] [--eps E] [--p PROB] [--seed S] [--render]
  ftt a2       [--n N] [--k K] [--h H] [--p PROB] [--q PROB] [--seed S]
  ftt d2       [--n N] [--b B] [--k K] [--pattern P] [--seed S] [--render]
  ftt sweep    [--preset NAME] [--n N] [--b B] [--trials T] [--seed S]
               [--threads T] [--json PATH] [--csv PATH] [--no-artifacts]
               [--no-baseline] [--obs json|text]
  ftt certify  [--d D] [--n N] [--b B] [--max-faults K] [--name NAME]
               [--threads T] [--json PATH] [--no-artifacts]
               [--corrupt dead-node|dup-map|drop-edge|wrong-length]
               [--obs json|text]
  ftt lifetime [--preset NAME] [--trials T] [--seed S] [--threads T]
               [--certify-every N] [--json PATH] [--csv PATH]
               [--no-artifacts] [--obs json|text]
  ftt serve    [--listen tcp:HOST:PORT|unix:PATH] [--shards N]
               [--data-dir DIR] [--queue-depth N] [--max-batch N]
               [--metrics-addr HOST:PORT] [--obs json|text]
               (see `ftt help serve`)
  ftt help [serve]

observability (--obs, ftt-obs):
  every command above accepts --obs json|text: after the run (after
  the daemon shuts down, for serve) the process-global metrics
  registry — repair-tier counters, journal append/fsync timings,
  per-phase sim timers, daemon queue/latency series — is dumped to
  stdout. Binaries are built WITHOUT instrumentation by default (every
  probe compiles to a no-op; results are bit-identical either way);
  rebuild with `--features obs` (e.g. `cargo run -p ftt-cli --features
  obs -- sweep …`) to light it up. `ftt serve --metrics-addr` adds a
  live Prometheus scrape endpoint (`ftt help serve`).

hosts — implicit by default:
  B^d_n (b2) and D^d_{{n,k}} (d2) never build their graphs: an
  algebraic AdjacencyOracle answers every adjacency query by modular
  arithmetic on (params, node id) under the canonical edge numbering,
  so extraction and certification scale to 10^8+ host nodes in
  O(#faults + guest map) memory. A^2_n's irregular supernode multigraph
  keeps a materialised CSR oracle. Every command banner reports which
  backing the host uses (\"implicit (algebraic oracle)\" vs
  \"materialised CSR\").

sweep — declarative scenario grids (ftt_sim::sweep::SweepSpec):
  a spec is constructions × fault regimes × a trial budget, seeded from
  one root seed; each cell reports success rate, 95% Wilson CI, and
  trials/sec, and per-cell results are invariant under thread count and
  cell order (seeds derive from canonical cell ids).
  --preset {sweep_names}  checked-in paper-regime grids:
{sweep_presets}
      (t1/t2/t3/smoke carry an Alon-Chung expander-mesh baseline column)
  without --preset, --n/--b build a custom B² design-probability curve.
  artifacts: SWEEP_<name>.json + SWEEP_<name>.csv (schema_version 1;
  validated and uploaded by CI's sweep-smoke job via
  tools/check_sweep.py). --json/--csv override paths, --no-artifacts
  skips writing; --trials/--seed override the preset's budget/seed.

certify — exhaustive adversarial certification (ftt_sim::certify):
  enumerates EVERY fault pattern of size <= k on a small D^d_{{n,k}}
  instance up to cyclic translation symmetry, extracts each one, and
  re-validates the resulting EmbeddingCertificate with the independent
  checker (ftt-verify: injectivity, liveness, torus adjacency — zero
  code shared with the band machinery). All canonical patterns
  certified = Theorem 3 proved combinatorially for the instance; any
  failure exits non-zero. Defaults: --d 1 --n 20 --b 3 (D¹, k = 3);
  --max-faults caps the pattern size below the budget (never above).
  artifacts: CERT_<name>.json (schema_version 1; validated and uploaded
  by CI's certify-smoke job via tools/check_cert.py).
  --corrupt MODE injects a deliberate certificate corruption and exits
  non-zero when the checker rejects it (failure-path probe: dead-node,
  dup-map, drop-edge, wrong-length).

lifetime — online fault streams + incremental repair (ftt-online):
  events arrive one at a time (Bernoulli trickle, Weibull ageing
  hazard, clustered bursts, geometry-aware track bursts, the adaptive
  targeted adversary aiming at the live embedding, or a renewal
  wrapper that repairs every kill a fixed delay later) and each event
  is REPAIRED — O(1) absorption, a local band shift, or a full
  rebuild, always agreeing with the batch extractor — until the first
  unrepairable fault (kill-only streams) or the event budget (renewal
  streams, where repairs can resurrect a dead placement). Cells report
  the lifetime distribution (mean/median/p90 with Wilson-style
  order-statistic CIs), the repair cost mix, repair throughput, and —
  under renewal — steady-state availability with mean up/down spell
  lengths plus coincidence-window burst counts; --certify-every N
  re-validates the live embedding through the independent ftt-verify
  checker every N repairs (failures exit non-zero). Per-cell results
  are invariant under thread count and cell order.
  --preset {life_names}:
{life_presets}
  artifacts: LIFE_<name>.json + LIFE_<name>.csv (schema_version 2;
  validated and uploaded by CI's lifetime-smoke job via
  tools/check_life.py). --trials/--seed/--certify-every override the
  preset's values.

serve — repair as a service (ftt-serve): `ftt help serve`."
    )
}

/// `ftt help serve` — the daemon's own page: flags, protocol shape,
/// and the durability/backpressure contracts a client can rely on.
fn serve_usage() -> String {
    "ftt serve — a persistent multi-tenant repair daemon (ftt-serve)

usage:
  ftt serve [--listen tcp:HOST:PORT|unix:PATH]  default tcp:127.0.0.1:7433
            [--shards N]                        worker threads    (default 4)
            [--data-dir DIR]                    journals + specs  (default ftt_serve_data)
            [--queue-depth N]                   per-shard queue   (default 1024)
            [--max-batch N]                     events per drain  (default 256)
            [--metrics-addr HOST:PORT]          HTTP GET /metrics (default off)
            [--obs json|text]                   dump metrics at shutdown

Hosts many independent tenant embeddings — each a RepairState over a
B^d/A²/D^d construction (implicit algebraic-oracle hosts included) —
sharded across worker threads by tenant id (tenant % shards). On
startup it prints one parseable banner line:

  ftt serve: listening on tcp:127.0.0.1:PORT (S shards, data dir DIR)

and, when --metrics-addr is given, a second one with the resolved
scrape address (`:0` picks an ephemeral port):

  ftt serve: metrics on http://HOST:PORT/metrics

protocol — u32-LE length-framed binary over the socket:
  request  = rid u64 | tenant u64 | opcode u8 | body
  opcodes    0 CreateTenant(spec)  1 Events([time,kind,target,id]*)
             2 QueryLiveness       3 QueryEmbedding
             4 Snapshot (fsync)    5 Shutdown
             6 Stats (metrics as Prometheus text; answered inline by
               the connection reader, so it works even while the shard
               queues are full)
  response = rid u64 | status u8 (0 Ok / 1 Overloaded / 2 Error) | body
  The Events body is byte-identical to the on-disk journal record
  format (ftt_faults::journal_io), so the durability path never
  re-encodes.

observability — build with `--features obs` to light the probes up
  (default builds compile every probe to a no-op): per-opcode request
  counters, per-shard queue-depth gauges, ack-latency histograms
  (p50/p99/p999/max), Overloaded totals, per-tenant event totals, and
  the repair-tier/journal series underneath. Scrape them live via
  GET /metrics (--metrics-addr) or opcode 6, or dump at shutdown with
  --obs json|text. Clients pace Overloaded retries with deterministic
  seeded exponential backoff (ftt_serve::Backoff,
  ftt_client_retries_total).

contracts:
  durability   every applied event batch is appended to the tenant's
               write-ahead journal before its ack is sent; crash
               recovery truncates the partial tail and replays to the
               exact pre-crash repair state (Snapshot upgrades
               page-cache durability to fsync).
  backpressure shard queues are bounded; a full queue answers
               Overloaded without journaling or applying anything —
               retry, nothing was dropped silently.
  no panics    malformed frames close the offending connection;
               invalid requests (time travel, out-of-domain ids,
               unknown tenants, bad specs) get typed Error replies;
               corrupt on-disk state refuses startup naming the file.

benchmarked by ftt-bench's bench_serve (BENCH_serve.json; gated in CI
by tools/check_perf.py --serve)."
        .to_string()
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    args.expect_known(
        &[
            "listen",
            "shards",
            "data-dir",
            "queue-depth",
            "max-batch",
            "metrics-addr",
            "obs",
        ],
        &[],
    )?;
    let obs = obs_format(args)?;
    let listen = Listen::parse(&args.get_str("listen", "tcp:127.0.0.1:7433"))?;
    let mut config = ServerConfig::new(args.get_str("data-dir", "ftt_serve_data"));
    config.listen = listen;
    config.shards = args.get_usize("shards", config.shards)?;
    config.queue_depth = args.get_usize("queue-depth", config.queue_depth)?;
    config.max_batch = args.get_usize("max-batch", config.max_batch)?;
    let metrics_addr = args.get_str("metrics-addr", "");
    if !metrics_addr.is_empty() {
        config.metrics_addr = Some(metrics_addr);
    }
    for (name, v) in [
        ("shards", config.shards),
        ("queue-depth", config.queue_depth),
        ("max-batch", config.max_batch),
    ] {
        if v == 0 {
            return Err(format!("--{name} must be ≥ 1"));
        }
    }
    let shards = config.shards;
    let data_dir = config.data_dir.display().to_string();
    let server = Server::start(config).map_err(|e| format!("serve: {e}"))?;
    // The banner is a parseable contract (integration tests and
    // scripts read the resolved ephemeral port from it) — flush so a
    // pipe-captured child process surfaces it immediately.
    println!(
        "ftt serve: listening on {} ({shards} shards, data dir {data_dir})",
        server.listen_addr()
    );
    // Second parseable banner line: the resolved scrape address (the
    // configured one may have been `:0`).
    if let Some(addr) = server.metrics_addr() {
        println!("ftt serve: metrics on http://{addr}/metrics");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    println!("ftt serve: shut down");
    dump_obs(obs);
    Ok(())
}

/// Prints the standard banner for a built host — reporting whether its
/// adjacency is implicit (algebraic oracle) or a materialised CSR graph
/// — and audits its degree through the oracle. Materialised hosts get a
/// full scan; implicit ones (potentially 10⁸⁺ nodes) a strided sample.
fn report_host<C: HostConstruction>(detail: &str, host: &C) -> Result<(), String> {
    let backing = if host.materialized_graph().is_some() {
        "materialised CSR"
    } else {
        "implicit (algebraic oracle)"
    };
    println!(
        "{} {detail}: {} nodes, degree {}, adjacency {backing}",
        C::NAME,
        host.num_nodes(),
        host.expected_degree(),
    );
    let n = host.num_nodes();
    let stride = if host.materialized_graph().is_some() {
        1
    } else {
        (n / 4096).max(1)
    };
    if let Some(v) = (0..n)
        .step_by(stride)
        .find(|&v| host.oracle().degree(v) != host.expected_degree())
    {
        return Err(format!(
            "degree audit failed at node {v}: expected {}, got {}",
            host.expected_degree(),
            host.oracle().degree(v)
        ));
    }
    Ok(())
}

/// Extracts a guest torus through the trait and verifies it against the
/// fault set — the same success criterion the Monte-Carlo runner uses.
fn extract_and_verify<C: HostConstruction>(
    host: &C,
    faults: &FaultSet,
) -> Result<ftt_core::bdn::extract::TorusEmbedding, String> {
    extract_verified(host, faults).map_err(|e| e.to_string())
}

fn cmd_b2(args: &Args) -> Result<(), String> {
    args.expect_known(&["n", "b", "eps", "p", "seed"], &["render"])?;
    let n = args.get_usize("n", 54)?;
    let b = args.get_usize("b", 3)?;
    let eps = args.get_usize("eps", 1)?;
    let seed = args.get_u64("seed", 1)?;
    let params = BdnParams::fit(2, n, b, eps)?;
    let p = args.get_f64("p", params.tolerated_fault_probability() / 5.0)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("--p {p} out of [0, 1]"));
    }
    let bdn = Bdn::build(params);
    report_host(
        &format!(
            "(n = {}, m = {}, b = {b}, ε_b = {eps})",
            params.n,
            params.m()
        ),
        &bdn,
    )?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = sample_bernoulli_faults(bdn.oracle(), p, 0.0, &mut rng);
    let faulty: Vec<bool> = (0..bdn.num_nodes())
        .map(|v| faults.node_faulty(v))
        .collect();
    let health = check_health(&params, &faulty);
    println!(
        "p = {p:.2e}: {} faults sampled; healthy = {}",
        faults.count_node_faults(),
        health.is_healthy()
    );
    extract_and_verify(&bdn, &faults)?;
    println!(
        "fault-free {0}×{0} torus extracted and verified ✓",
        params.n
    );
    if args.flag("render") {
        // Extraction succeeded above, so placement must too — but a
        // long-lived CLI contract is "typed error, never a panic".
        let placement = ftt_core::bdn::place::place_bands(&bdn, &faulty).map_err(|e| {
            format!("render: band placement failed after successful extraction: {e}")
        })?;
        print!(
            "{}",
            render_banding(&placement.banding, bdn.cols(), Some(&faulty), None)
        );
    }
    Ok(())
}

fn cmd_a2(args: &Args) -> Result<(), String> {
    args.expect_known(&["n", "k", "h", "p", "q", "seed"], &[])?;
    let n = args.get_usize("n", 108)?;
    let k = args.get_usize("k", 2)?;
    let h = args.get_usize("h", 6)?;
    let q = args.get_f64("q", 0.0)?;
    let seed = args.get_u64("seed", 1)?;
    if k == 0 {
        return Err("--k must be ≥ 1".into());
    }
    // AdnParams requires √q ≤ 1/16 (the paper's smallness condition),
    // i.e. q ≤ 1/256; reject in terms of the flag the user supplied.
    let q_max = 1.0 / 256.0;
    if !(0.0..=q_max).contains(&q) {
        return Err(format!("--q {q} out of [0, {q_max:.5}] (need √q ≤ 1/16)"));
    }
    let inner = BdnParams::fit(2, n.div_ceil(k), 3, 1)?;
    let params = AdnParams::new(inner, k, h, q.sqrt())?;
    let p = args.get_f64("p", 0.02)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("--p {p} out of [0, 1]"));
    }
    let adn = Adn::build(params);
    report_host(
        &format!(
            "(n = {}, k = {k}, h = {h}, {} supernodes)",
            params.n(),
            params.num_supernodes()
        ),
        &adn,
    )?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = sample_bernoulli_faults(adn.graph(), p, q, &mut rng);
    println!(
        "p = {p:.2e}, q = {q:.2e}: {} node faults, {} edge faults sampled",
        faults.count_node_faults(),
        faults.count_edge_faults()
    );
    extract_and_verify(&adn, &faults)?;
    println!(
        "fault-free {0}×{0} torus extracted and verified ✓",
        params.n()
    );
    Ok(())
}

fn cmd_d2(args: &Args) -> Result<(), String> {
    args.expect_known(&["n", "b", "k", "pattern", "seed"], &["render"])?;
    let n = args.get_usize("n", 60)?;
    let b = args.get_usize("b", 2)?;
    let seed = args.get_u64("seed", 1)?;
    let params = DdnParams::fit(2, n, b)?;
    let k = args.get_usize("k", params.tolerated_faults())?;
    let pattern = match args.get_str("pattern", "random").as_str() {
        "random" => AdversaryPattern::Random,
        "cluster" => AdversaryPattern::ClusteredCube,
        "line" => AdversaryPattern::AxisLine { axis: 0 },
        "diag" => AdversaryPattern::Diagonal,
        "spread" => AdversaryPattern::ResidueSpread {
            axis: 0,
            modulus: params.band_width(0) + 1,
        },
        other => return Err(format!("unknown pattern `{other}`")),
    };
    let ddn = Ddn::new(params);
    let num_nodes = HostConstruction::num_nodes(&ddn);
    if k > num_nodes {
        return Err(format!(
            "--k {k} exceeds the host node count {num_nodes} (n = {}, m = {})",
            params.n,
            params.m()
        ));
    }
    report_host(
        &format!(
            "(n = {}, m = {}, tolerates any k = {})",
            params.n,
            params.m(),
            params.tolerated_faults()
        ),
        &ddn,
    )?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let faulty_nodes = pattern.generate(ddn.shape(), k, &mut rng);
    let faults = FaultSet::from_lists(
        HostConstruction::num_nodes(&ddn),
        HostConstruction::num_edges(&ddn),
        &faulty_nodes,
        &[],
    );
    println!("{k} adversarial faults ({pattern:?})");
    match extract_and_verify(&ddn, &faults) {
        Ok(_) => {
            println!(
                "fault-free {0}×{0} torus extracted and verified ✓",
                params.n
            );
            if args.flag("render") {
                let banding = place_straight_bands(&ddn, &faulty_nodes).map_err(|e| {
                    format!("render: band placement failed after successful extraction: {e}")
                })?;
                print!("{}", render_ddn_axes(&ddn, &banding));
            }
            Ok(())
        }
        Err(e) => {
            if k > params.tolerated_faults() {
                println!("extraction failed beyond the guarantee (k > budget): {e}");
                Ok(())
            } else {
                Err(format!("Theorem 3 violated?! {e}"))
            }
        }
    }
}

/// The custom (non-preset) sweep: a B² design-probability curve over
/// the `--n`/`--b` instance, mirroring the old hand-rolled sweep.
fn custom_sweep_spec(n: usize, b: usize, trials: usize, seed: u64) -> SweepSpec {
    SweepSpec {
        name: "custom".into(),
        constructions: vec![ftt_sim::ConstructionSpec::Bdn {
            d: 2,
            n_min: n,
            b,
            eps_b: 1,
        }],
        regimes: [0.05, 0.2, 1.0, 4.0]
            .into_iter()
            .map(|mult| ftt_sim::FaultRegime::DesignBernoulli { mult, q: 0.0 })
            .collect(),
        trials,
        root_seed: seed,
        baseline: Some(ftt_sim::BaselineSpec::default()),
    }
}

/// `--no-artifacts` combined with an explicit `--json`/`--csv` path is
/// a contradiction: the user named an output file that would silently
/// never be written.
fn reject_artifact_conflict(args: &Args, paths: &[&str]) -> Result<(), String> {
    if args.flag("no-artifacts") {
        if let Some(p) = paths.iter().find(|p| args.has(p)) {
            return Err(format!("--no-artifacts conflicts with --{p}"));
        }
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    args.expect_known(
        &[
            "preset", "n", "b", "trials", "seed", "threads", "json", "csv", "obs",
        ],
        &["no-artifacts", "no-baseline"],
    )?;
    reject_artifact_conflict(args, &["json", "csv"])?;
    let obs = obs_format(args)?;
    let preset = args.get_str("preset", "");
    let mut spec = if preset.is_empty() {
        let n = args.get_usize("n", 54)?;
        let b = args.get_usize("b", 3)?;
        custom_sweep_spec(
            n,
            b,
            args.get_usize("trials", 50)?,
            args.get_u64("seed", 1)?,
        )
    } else {
        let mut spec = SweepSpec::preset(&preset)?;
        spec.trials = args.get_usize("trials", spec.trials)?;
        spec.root_seed = args.get_u64("seed", spec.root_seed)?;
        spec
    };
    if spec.trials == 0 {
        return Err("--trials must be ≥ 1".into());
    }
    // A spec is data: the grid is fixed here, execution below is
    // generic. `--threads 0` (default) uses the available parallelism.
    let threads = args.get_usize("threads", 0)?;
    if args.flag("no-baseline") {
        spec.baseline = None;
    }
    let report = run_sweep(&spec, threads)?;
    println!("{}", report.table());
    if !args.flag("no-artifacts") {
        let json_path = args.get_str("json", &format!("SWEEP_{}.json", report.name));
        let csv_path = args.get_str("csv", &format!("SWEEP_{}.csv", report.name));
        report.write_artifacts(&json_path, &csv_path)?;
        println!("wrote {json_path} and {csv_path} (schema_version {SWEEP_SCHEMA_VERSION})");
    }
    dump_obs(obs);
    Ok(())
}

fn cmd_certify(args: &Args) -> Result<(), String> {
    args.expect_known(
        &[
            "d",
            "n",
            "b",
            "max-faults",
            "name",
            "threads",
            "json",
            "corrupt",
            "obs",
        ],
        &["no-artifacts"],
    )?;
    reject_artifact_conflict(args, &["json"])?;
    let obs = obs_format(args)?;
    let corrupt = args.get_str("corrupt", "");
    if !corrupt.is_empty() {
        // The probe runs on a fixed tiny instance; silently ignoring
        // instance flags would let a user believe *their* instance's
        // failure path was exercised.
        for flag in ["d", "n", "b", "max-faults", "name", "threads", "json"] {
            if !args.get_str(flag, "").is_empty() {
                return Err(format!(
                    "--corrupt probes a fixed tiny D¹ instance; --{flag} cannot be combined \
                     with it"
                ));
            }
        }
        return cmd_certify_corrupt(&corrupt);
    }
    let d = args.get_usize("d", 1)?;
    let n = args.get_usize("n", 20)?;
    let b = args.get_usize("b", 3)?;
    let threads = args.get_usize("threads", 0)?;
    let name = args.get_str("name", &format!("d{d}_{n}_{b}"));
    let mut spec = CertifySpec::new(&name, d, n, b);
    let max_faults = args.get_str("max-faults", "");
    if !max_faults.is_empty() {
        spec.max_faults = Some(
            max_faults
                .parse()
                .map_err(|_| format!("--max-faults: invalid integer `{max_faults}`"))?,
        );
    }
    let report = run_certify(&spec, threads)?;
    println!("{}", report.table());
    println!(
        "{} canonical patterns (covering {} fault sets via translation), {} certified, \
         digest {:016x}",
        report.patterns_total, report.patterns_covered, report.certified, report.cert_digest
    );
    if !args.flag("no-artifacts") {
        let json_path = args.get_str("json", &format!("CERT_{}.json", report.name));
        report.write_artifact(&json_path)?;
        println!("wrote {json_path} (schema_version {CERTIFY_SCHEMA_VERSION})");
    }
    dump_obs(obs);
    if !report.complete() {
        return Err(format!(
            "certification INCOMPLETE: {}/{} patterns certified; first failures: {:?}",
            report.certified,
            report.patterns_total,
            report.failures.iter().take(3).collect::<Vec<_>>()
        ));
    }
    println!(
        "Theorem 3 certified exhaustively for {} (all patterns ≤ {} faults) ✓",
        report.instance_id, report.max_faults
    );
    Ok(())
}

fn cmd_lifetime(args: &Args) -> Result<(), String> {
    args.expect_known(
        &[
            "preset",
            "trials",
            "seed",
            "threads",
            "certify-every",
            "json",
            "csv",
            "obs",
        ],
        &["no-artifacts"],
    )?;
    reject_artifact_conflict(args, &["json", "csv"])?;
    let obs = obs_format(args)?;
    let preset = args.get_str("preset", "life-smoke");
    let mut spec = LifetimeSpec::preset(&preset)?;
    spec.trials = args.get_usize("trials", spec.trials)?;
    if spec.trials == 0 {
        return Err("--trials must be ≥ 1".into());
    }
    spec.root_seed = args.get_u64("seed", spec.root_seed)?;
    spec.certify_every = args.get_usize("certify-every", spec.certify_every)?;
    let threads = args.get_usize("threads", 0)?;
    let report = run_lifetime(&spec, threads)?;
    println!("{}", report.table());
    if !args.flag("no-artifacts") {
        let json_path = args.get_str("json", &format!("LIFE_{}.json", report.name));
        let csv_path = args.get_str("csv", &format!("LIFE_{}.csv", report.name));
        report.write_artifacts(&json_path, &csv_path)?;
        println!("wrote {json_path} and {csv_path} (schema_version {LIFE_SCHEMA_VERSION})");
    }
    dump_obs(obs);
    // The two hard guarantees are enforced here, not just in CI: every
    // independent certificate check must pass, and ×1-budget cells must
    // survive their full budget (Theorem 3, online form).
    for cell in &report.cells {
        if cell.cert_failures > 0 {
            return Err(format!(
                "{}: {} live-embedding certificates failed the independent checker",
                cell.id, cell.cert_failures
            ));
        }
        if cell.mult == Some(1.0) && cell.deaths > 0 {
            return Err(format!(
                "{}: {} trials died within the Theorem 3 budget (online form violated)",
                cell.id, cell.deaths
            ));
        }
    }
    Ok(())
}

/// Failure-path probe: emit a certificate, deliberately corrupt it (or
/// the fault set it is checked against), and demand that the
/// independent checker rejects it. The rejection is propagated as this
/// command's (non-zero) exit status, so the gate that CI relies on —
/// "an invalid certificate fails the run" — is itself testable.
fn cmd_certify_corrupt(mode: &str) -> Result<(), String> {
    let params = DdnParams::fit(1, 8, 2)?;
    let host = Ddn::new(params);
    // Tiny instance: materialising the CSR here is deliberate — the
    // corruption probe wants a concrete edge id from an adjacency scan.
    let graph = host.graph();
    let mut faults = FaultSet::none(HostConstruction::num_nodes(&host), graph.num_edges());
    faults.kill_node(5);
    let mut cert = HostConstruction::try_certify(&host, &faults)
        .map_err(|e| format!("setup extraction failed: {e}"))?;
    match mode {
        // map a guest node onto the known-faulty host node
        "dead-node" => cert.map[0] = 5,
        // two guest nodes sharing one host image
        "dup-map" => cert.map[1] = cert.map[0],
        // the host edge carrying guest edge 0–1 dies after certification
        "drop-edge" => {
            let (u, v) = (cert.map[0], cert.map[1]);
            let (_, e) = graph
                .arcs(u)
                .find(|&(w, _)| w == v)
                .ok_or("drop-edge probe: certified guest edge 0-1 has no host edge (bug?)")?;
            faults.kill_edge(e);
        }
        // truncated map
        "wrong-length" => {
            cert.map.pop();
        }
        other => {
            return Err(format!(
                "unknown corruption `{other}` (dead-node, dup-map, drop-edge, wrong-length)"
            ))
        }
    }
    match ftt_verify::check_certificate(&cert, graph, &faults) {
        Err(e) => Err(format!("corrupted certificate rejected ({mode}): {e}")),
        Ok(()) => Err(format!(
            "CHECKER BUG: corrupted certificate ({mode}) was accepted"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn b2_succeeds_with_low_p() {
        cmd_b2(&args(&["--n", "54", "--p", "1e-5", "--seed", "2"])).unwrap();
    }

    #[test]
    fn a2_succeeds_with_small_faults() {
        cmd_a2(&args(&["--n", "108", "--p", "0.01", "--seed", "3"])).unwrap();
    }

    #[test]
    fn a2_rejects_bad_h() {
        assert!(cmd_a2(&args(&["--k", "3", "--h", "4"])).is_err());
    }

    #[test]
    fn d2_within_budget_succeeds() {
        cmd_d2(&args(&["--n", "40", "--pattern", "cluster"])).unwrap();
    }

    #[test]
    fn d2_over_budget_reports_gracefully() {
        // beyond the guarantee: must not error out (prints a notice)
        cmd_d2(&args(&["--n", "40", "--k", "64"])).unwrap();
    }

    #[test]
    fn d2_unknown_pattern_rejected() {
        assert!(cmd_d2(&args(&["--pattern", "bogus"])).is_err());
    }

    #[test]
    fn sweep_runs_small() {
        cmd_sweep(&args(&[
            "--n",
            "54",
            "--trials",
            "4",
            "--no-baseline",
            "--no-artifacts",
            "--obs",
            "text",
        ]))
        .unwrap();
    }

    #[test]
    fn sweep_preset_writes_artifacts() {
        let dir = std::env::temp_dir();
        let json = dir.join("ftt_cli_test_SWEEP_smoke.json");
        let csv = dir.join("ftt_cli_test_SWEEP_smoke.csv");
        cmd_sweep(&args(&[
            "--preset",
            "smoke",
            "--trials",
            "2",
            "--no-baseline",
            "--json",
            json.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"schema_version\": 1"));
        assert!(body.contains("\"name\": \"smoke\""));
        let rows = std::fs::read_to_string(&csv).unwrap();
        assert!(rows.starts_with("id,construction,"));
        assert_eq!(rows.lines().count(), 1 + 3, "3 smoke cells + header");
        let _ = std::fs::remove_file(json);
        let _ = std::fs::remove_file(csv);
    }

    #[test]
    fn sweep_unknown_preset_rejected() {
        assert!(cmd_sweep(&args(&["--preset", "bogus"])).is_err());
    }

    #[test]
    fn certify_d1_full_budget_completes() {
        let dir = std::env::temp_dir();
        let json = dir.join("ftt_cli_test_CERT_d1.json");
        cmd_certify(&args(&[
            "--d",
            "1",
            "--n",
            "8",
            "--b",
            "2",
            "--name",
            "clitest",
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"schema_version\": 1"));
        assert!(body.contains("\"kind\": \"certify\""));
        assert!(body.contains("\"complete\": true"));
        let _ = std::fs::remove_file(json);
    }

    #[test]
    fn certify_rejects_over_budget_max_faults() {
        // k = 2 for d=1, b=2 — requesting 5 must fail (and not write).
        assert!(cmd_certify(&args(&[
            "--d",
            "1",
            "--n",
            "8",
            "--b",
            "2",
            "--max-faults",
            "5",
            "--no-artifacts",
        ]))
        .is_err());
    }

    #[test]
    fn lifetime_smoke_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir();
        let json = dir.join("ftt_cli_test_LIFE_smoke.json");
        let csv = dir.join("ftt_cli_test_LIFE_smoke.csv");
        cmd_lifetime(&args(&[
            "--preset",
            "life-smoke",
            "--trials",
            "2",
            "--json",
            json.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"schema_version\": 2"));
        assert!(body.contains("\"kind\": \"lifetime\""));
        assert!(body.contains("\"lifetime_median\""));
        assert!(body.contains("\"availability\""));
        let rows = std::fs::read_to_string(&csv).unwrap();
        assert!(rows.starts_with("id,construction,"));
        assert_eq!(rows.lines().count(), 1 + 2, "2 smoke cells + header");
        let _ = std::fs::remove_file(json);
        let _ = std::fs::remove_file(csv);
    }

    #[test]
    fn lifetime_unknown_preset_rejected() {
        assert!(cmd_lifetime(&args(&["--preset", "bogus", "--no-artifacts"])).is_err());
    }

    #[test]
    fn usage_lists_every_registered_preset() {
        let text = usage();
        for p in SWEEP_PRESETS {
            assert!(text.contains(p.name), "sweep preset {} missing", p.name);
        }
        for p in LIFETIME_PRESETS {
            assert!(text.contains(p.name), "lifetime preset {} missing", p.name);
        }
        assert!(text.contains("ftt lifetime"));
        assert!(text.contains("--obs json|text"));
        assert!(text.contains("--metrics-addr"));
    }

    /// A long-lived CLI must turn every bad invocation into a typed
    /// one-line error — a typo like `--trails` must not be silently
    /// ignored, and flag conflicts must not silently pick a winner.
    #[test]
    fn bad_invocations_get_typed_errors_not_silence() {
        for (cmd, argv) in [
            (
                cmd_sweep as fn(&Args) -> Result<(), String>,
                vec!["--trails", "10"],
            ),
            (cmd_sweep, vec!["--trials", "0", "--no-artifacts"]),
            (cmd_sweep, vec!["--no-artifacts", "--json", "out.json"]),
            (cmd_lifetime, vec!["--no-artifacts", "--csv", "out.csv"]),
            (cmd_lifetime, vec!["--trials", "0", "--no-artifacts"]),
            (cmd_lifetime, vec!["--certify_every", "5"]),
            (cmd_certify, vec!["--no-artifacts", "--json", "out.json"]),
            (cmd_b2, vec!["--rendre"]),
            (cmd_a2, vec!["--eps", "1"]),
            (cmd_d2, vec!["--n"]),
            (cmd_serve, vec!["--listen", "laplace:443"]),
            (cmd_serve, vec!["--shards", "0"]),
            (cmd_serve, vec!["--shards", "two"]),
            (cmd_serve, vec!["--obs", "yaml"]),
            (cmd_sweep, vec!["--obs", "xml", "--no-artifacts"]),
            (cmd_lifetime, vec!["--obs", "prometheus", "--no-artifacts"]),
            (cmd_certify, vec!["--obs", "csv", "--no-artifacts"]),
        ] {
            let err = cmd(&args(&argv)).expect_err(&format!("{argv:?} must fail"));
            assert!(!err.is_empty() && !err.contains('\n'), "{argv:?}: `{err}`");
        }
    }

    #[test]
    fn unknown_option_error_names_the_vocabulary() {
        let err = cmd_sweep(&args(&["--trails", "10"])).unwrap_err();
        assert!(err.contains("unknown option --trails"), "{err}");
        assert!(err.contains("--trials"), "{err}");
    }

    #[test]
    fn serve_help_documents_flags_and_contracts() {
        let text = serve_usage();
        for needle in [
            "--listen",
            "--shards",
            "--data-dir",
            "--queue-depth",
            "--max-batch",
            "--metrics-addr",
            "--obs",
            "6 Stats",
            "GET /metrics",
            "metrics on http://",
            "Overloaded",
            "journal",
            "listening on",
        ] {
            assert!(text.contains(needle), "serve help missing {needle}");
        }
        assert!(usage().contains("ftt serve"));
    }

    /// The failure-path gate: every corruption mode must end in a
    /// non-zero exit (an `Err` from the command) carrying the right
    /// checker verdict.
    #[test]
    fn certify_corrupt_modes_exit_nonzero_with_right_variant() {
        for (mode, expect) in [
            ("dead-node", "dead host node"),
            ("dup-map", "both map to host node"),
            ("drop-edge", "no alive host edge"),
            ("wrong-length", "entries, guest dims demand"),
        ] {
            let err = cmd_certify(&args(&["--corrupt", mode]))
                .expect_err("corruption must exit non-zero");
            assert!(
                err.contains("rejected") && err.contains(expect),
                "mode {mode}: unexpected verdict `{err}`"
            );
        }
        assert!(cmd_certify(&args(&["--corrupt", "bogus"])).is_err());
    }
}
