//! `ftt` — command-line interface to the fault-tolerant torus
//! constructions of Tamaki (SPAA'94 / JCSS'96).
//!
//! ```text
//! ftt b2     [--n 54] [--b 3] [--eps 1] [--p 1e-4] [--seed 1] [--render]
//! ftt d2     [--n 60] [--b 2] [--k <budget>] [--pattern random|cluster|line|diag|spread] [--seed 1] [--render]
//! ftt sweep  [--n 54] [--b 3] [--trials 50] [--seed 1]
//! ftt help
//! ```
//!
//! `b2` runs one Theorem 2 trial (build `B²_n`, sample faults, place
//! bands, extract + verify). `d2` runs one Theorem 3 trial with an
//! adversarial pattern. `sweep` estimates the Theorem 2 success curve.

mod args;

use args::Args;
use ftt_core::bdn::extract::extract_after_faults;
use ftt_core::bdn::{check_health, Bdn, BdnParams};
use ftt_core::ddn::{place_straight_bands, Ddn, DdnParams};
use ftt_core::render::{render_banding, render_ddn_axes};
use ftt_faults::{sample_bernoulli_faults, AdversaryPattern};
use ftt_sim::{run_trials, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "b2" => cmd_b2(&args),
        "d2" => cmd_d2(&args),
        "sweep" => cmd_sweep(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ftt b2    [--n N] [--b B] [--eps E] [--p PROB] [--seed S] [--render]
  ftt d2    [--n N] [--b B] [--k K] [--pattern P] [--seed S] [--render]
  ftt sweep [--n N] [--b B] [--trials T] [--seed S]
  ftt help";

fn cmd_b2(args: &Args) -> Result<(), String> {
    let n = args.get_usize("n", 54)?;
    let b = args.get_usize("b", 3)?;
    let eps = args.get_usize("eps", 1)?;
    let seed = args.get_u64("seed", 1)?;
    let params = BdnParams::fit(2, n, b, eps)?;
    let p = args.get_f64("p", params.tolerated_fault_probability() / 5.0)?;
    let bdn = Bdn::build(params);
    println!(
        "B²_{} (m = {}, b = {b}, ε_b = {eps}): {} nodes, degree {}",
        params.n,
        params.m(),
        bdn.num_nodes(),
        bdn.graph().max_degree()
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = sample_bernoulli_faults(bdn.graph(), p, 0.0, &mut rng);
    let faulty: Vec<bool> = (0..bdn.num_nodes())
        .map(|v| faults.node_faulty(v))
        .collect();
    let health = check_health(&params, &faulty);
    println!(
        "p = {p:.2e}: {} faults sampled; healthy = {}",
        faults.count_node_faults(),
        health.is_healthy()
    );
    match extract_after_faults(&bdn, &faulty) {
        Ok(emb) => {
            ftt_graph::verify_torus_embedding(
                &emb.guest,
                &emb.map,
                bdn.graph(),
                |v| !faulty[v],
                |_| true,
            )
            .map_err(|e| e.to_string())?;
            println!(
                "fault-free {0}×{0} torus extracted and verified ✓",
                params.n
            );
            if args.flag("render") {
                let placement =
                    ftt_core::bdn::place::place_bands(&bdn, &faulty).expect("placed above");
                print!(
                    "{}",
                    render_banding(&placement.banding, bdn.cols(), Some(&faulty), None)
                );
            }
            Ok(())
        }
        Err(e) => Err(format!("extraction failed: {e}")),
    }
}

fn cmd_d2(args: &Args) -> Result<(), String> {
    let n = args.get_usize("n", 60)?;
    let b = args.get_usize("b", 2)?;
    let seed = args.get_u64("seed", 1)?;
    let params = DdnParams::fit(2, n, b)?;
    let k = args.get_usize("k", params.tolerated_faults())?;
    let pattern = match args.get_str("pattern", "random").as_str() {
        "random" => AdversaryPattern::Random,
        "cluster" => AdversaryPattern::ClusteredCube,
        "line" => AdversaryPattern::AxisLine { axis: 0 },
        "diag" => AdversaryPattern::Diagonal,
        "spread" => AdversaryPattern::ResidueSpread {
            axis: 0,
            modulus: params.band_width(0) + 1,
        },
        other => return Err(format!("unknown pattern `{other}`")),
    };
    let ddn = Ddn::new(params);
    println!(
        "D²_{{n={}, k={}}} (m = {}): {} nodes, degree {}",
        params.n,
        params.tolerated_faults(),
        params.m(),
        params.num_nodes(),
        params.expected_degree()
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = pattern.generate(ddn.shape(), k, &mut rng);
    println!("{k} adversarial faults ({pattern:?})");
    match ddn.try_extract(&faults) {
        Ok(emb) => {
            println!("fault-free {0}×{0} torus extracted ✓", params.n);
            if args.flag("render") {
                let banding = place_straight_bands(&ddn, &faults).expect("placed above");
                print!("{}", render_ddn_axes(&ddn, &banding));
            }
            let _ = emb;
            Ok(())
        }
        Err(e) => {
            if k > params.tolerated_faults() {
                println!("extraction failed beyond the guarantee (k > budget): {e}");
                Ok(())
            } else {
                Err(format!("Theorem 3 violated?! {e}"))
            }
        }
    }
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let n = args.get_usize("n", 54)?;
    let b = args.get_usize("b", 3)?;
    let trials = args.get_usize("trials", 50)?;
    let seed = args.get_u64("seed", 1)?;
    let params = BdnParams::fit(2, n, b, 1)?;
    let bdn = Bdn::build(params);
    let design = params.tolerated_fault_probability();
    let mut table = Table::new(
        &format!("B²_{} success curve ({trials} trials per row)", params.n),
        &["p", "P(success)", "95% CI"],
    );
    for mult in [0.05f64, 0.2, 1.0, 4.0] {
        let p = design * mult;
        let stats = run_trials(trials, seed, 0, |s| {
            let mut rng = SmallRng::seed_from_u64(s);
            let f = sample_bernoulli_faults(bdn.graph(), p, 0.0, &mut rng);
            let faulty: Vec<bool> = (0..bdn.num_nodes()).map(|v| f.node_faulty(v)).collect();
            extract_after_faults(&bdn, &faulty).is_ok()
        });
        let (lo, hi) = stats.confidence();
        table.row(vec![
            format!("{p:.2e}"),
            format!("{:.2}", stats.rate()),
            format!("[{lo:.2}, {hi:.2}]"),
        ]);
    }
    println!("{table}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn b2_succeeds_with_low_p() {
        cmd_b2(&args(&["--n", "54", "--p", "1e-5", "--seed", "2"])).unwrap();
    }

    #[test]
    fn d2_within_budget_succeeds() {
        cmd_d2(&args(&["--n", "40", "--pattern", "cluster"])).unwrap();
    }

    #[test]
    fn d2_over_budget_reports_gracefully() {
        // beyond the guarantee: must not error out (prints a notice)
        cmd_d2(&args(&["--n", "40", "--k", "64"])).unwrap();
    }

    #[test]
    fn d2_unknown_pattern_rejected() {
        assert!(cmd_d2(&args(&["--pattern", "bogus"])).is_err());
    }

    #[test]
    fn sweep_runs_small() {
        cmd_sweep(&args(&["--n", "54", "--trials", "4"])).unwrap();
    }
}
