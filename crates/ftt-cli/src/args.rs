//! Minimal `--key value` / `--flag` argument parsing (no external
//! dependencies, per the workspace policy).

use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` pairs and bare
/// `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs; a `--key` followed by another
    /// `--option` (or nothing) is a flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("expected --option, got `{arg}`"));
            };
            if key.is_empty() {
                return Err("empty option name".into());
            }
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    out.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Whether a `--key value` option was explicitly given.
    pub fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Rejects anything outside the command's vocabulary: a typo like
    /// `--trails` must fail loudly, not be silently ignored. Also
    /// catches an option given without its value and a flag given one.
    pub fn expect_known(&self, opts: &[&str], flags: &[&str]) -> Result<(), String> {
        let mut bad: Vec<String> = Vec::new();
        for key in self.values.keys() {
            if opts.contains(&key.as_str()) {
                continue;
            }
            if flags.contains(&key.as_str()) {
                return Err(format!("--{key} does not take a value"));
            }
            bad.push(key.clone());
        }
        for key in &self.flags {
            if flags.contains(&key.as_str()) {
                continue;
            }
            if opts.contains(&key.as_str()) {
                return Err(format!("--{key} expects a value"));
            }
            bad.push(key.clone());
        }
        if let Some(first) = bad.iter().min() {
            let mut known: Vec<&str> = opts.iter().chain(flags).copied().collect();
            known.sort_unstable();
            return Err(format!(
                "unknown option --{first} (known: {})",
                known
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
        Ok(())
    }

    /// String option with default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// `usize` option with default.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid integer `{v}`")),
        }
    }

    /// `u64` option with default.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid integer `{v}`")),
        }
    }

    /// `f64` option with default.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid number `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--n", "54", "--p", "1e-4"]);
        assert_eq!(a.get_usize("n", 0).unwrap(), 54);
        assert_eq!(a.get_f64("p", 0.0).unwrap(), 1e-4);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn flags() {
        let a = parse(&["--render", "--n", "10"]);
        assert!(a.flag("render"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.get_usize("n", 0).unwrap(), 10);
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--n", "10", "--render"]);
        assert!(a.flag("render"));
    }

    #[test]
    fn bad_input_rejected() {
        assert!(Args::parse(&["54".to_string()]).is_err());
        let a = parse(&["--n", "abc"]);
        assert!(a.get_usize("n", 0).is_err());
    }

    #[test]
    fn unknown_options_are_rejected_with_vocabulary() {
        let a = parse(&["--trails", "10"]);
        let err = a
            .expect_known(&["trials", "seed"], &["no-artifacts"])
            .unwrap_err();
        assert!(err.contains("unknown option --trails"), "{err}");
        assert!(err.contains("--trials"), "{err}");
        assert!(err.contains("--no-artifacts"), "{err}");

        // A value-taking option given bare, and a flag given a value.
        let a = parse(&["--trials"]);
        let err = a.expect_known(&["trials"], &[]).unwrap_err();
        assert!(err.contains("--trials expects a value"), "{err}");
        let a = parse(&["--render", "yes"]);
        let err = a.expect_known(&[], &["render"]).unwrap_err();
        assert!(err.contains("--render does not take a value"), "{err}");

        let a = parse(&["--trials", "10", "--no-artifacts"]);
        assert!(a.expect_known(&["trials"], &["no-artifacts"]).is_ok());
        assert!(a.has("trials"));
        assert!(!a.has("seed"));
    }

    #[test]
    fn string_options() {
        let a = parse(&["--pattern", "cluster"]);
        assert_eq!(a.get_str("pattern", "random"), "cluster");
        assert_eq!(a.get_str("other", "dflt"), "dflt");
    }
}
