//! Minimal `--key value` / `--flag` argument parsing (no external
//! dependencies, per the workspace policy).

use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` pairs and bare
/// `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs; a `--key` followed by another
    /// `--option` (or nothing) is a flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("expected --option, got `{arg}`"));
            };
            if key.is_empty() {
                return Err("empty option name".into());
            }
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    out.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String option with default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// `usize` option with default.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid integer `{v}`")),
        }
    }

    /// `u64` option with default.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid integer `{v}`")),
        }
    }

    /// `f64` option with default.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid number `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--n", "54", "--p", "1e-4"]);
        assert_eq!(a.get_usize("n", 0).unwrap(), 54);
        assert_eq!(a.get_f64("p", 0.0).unwrap(), 1e-4);
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn flags() {
        let a = parse(&["--render", "--n", "10"]);
        assert!(a.flag("render"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.get_usize("n", 0).unwrap(), 10);
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--n", "10", "--render"]);
        assert!(a.flag("render"));
    }

    #[test]
    fn bad_input_rejected() {
        assert!(Args::parse(&["54".to_string()]).is_err());
        let a = parse(&["--n", "abc"]);
        assert!(a.get_usize("n", 0).is_err());
    }

    #[test]
    fn string_options() {
        let a = parse(&["--pattern", "cluster"]);
        assert_eq!(a.get_str("pattern", "random"), "cluster");
        assert_eq!(a.get_str("other", "dflt"), "dflt");
    }
}
