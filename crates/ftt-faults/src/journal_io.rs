//! Binary framing for [`FaultJournal`]s — the durability format of the
//! repair daemon (`ftt-serve`).
//!
//! A journal *file* is the daemon's write-ahead log: every applied
//! event is appended (and flushed) before the client sees an
//! acknowledgement, and crash recovery replays the file back into a
//! [`crate::stream::JournalStream`]. That puts two hard requirements on
//! the encoding that the in-memory `Vec<TimedFault>` never faced:
//!
//! 1. **Prefix-stability.** A crash can truncate the file at *any* byte
//!    boundary. Decoding must recover exactly the longest whole-record
//!    prefix — same events, same order, same
//!    [`FaultJournal::to_fault_set`] as if only those events had been
//!    recorded — and report the partial tail instead of erroring on it.
//!    In particular the `Renewal` tie rule (repairs delivered *before*
//!    kills at equal stream times) must survive the round trip: records
//!    are fixed-size and order-preserving, so a chop between a
//!    same-timestamp repair/kill pair leaves a prefix that is itself a
//!    valid delivery order. `tests::chopped_journals_decode_to_exact_prefixes`
//!    asserts all of this at every byte boundary.
//! 2. **Typed corruption verdicts.** Truncation is the expected crash
//!    case; *mangled bytes* (wrong magic, unknown kind, time travel)
//!    are not — they mean the file is not a journal this code wrote,
//!    and recovery must refuse loudly ([`JournalIoError`]) rather than
//!    replay garbage into a tenant, and must never panic (the daemon
//!    outlives any one bad file).
//!
//! # Layout
//!
//! ```text
//! header   5 bytes   magic "FTTJ", version u8 (= 1)
//! record  18 bytes   time u64 LE | event u8 (0 kill, 1 repair)
//!                    | target u8 (0 node, 1 edge) | id u64 LE
//! ```
//!
//! Records are fixed-size so the whole-record prefix of a chopped file
//! is computable from its length alone; times must be non-decreasing
//! (the [`FaultJournal::record`] contract, enforced on decode with a
//! typed error instead of that method's panic).

use crate::set::Fault;
use crate::stream::{FaultJournal, TimedFault};
use ftt_obs::{LazyCounter, LazyHistogram, Stamp};
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;

// Journal instrumentation (inert unless the `obs` feature is on; see
// the ftt-obs crate docs). Append/fsync latency is the daemon's
// durability cost per acknowledged batch; replay/partial-tail counts
// describe crash recovery.
static APPEND_US: LazyHistogram = LazyHistogram::new("ftt_journal_append_us");
static APPEND_BYTES: LazyCounter = LazyCounter::new("ftt_journal_append_bytes_total");
static FSYNC_US: LazyHistogram = LazyHistogram::new("ftt_journal_fsync_us");
static REPLAYED: LazyCounter = LazyCounter::new("ftt_journal_replayed_events_total");
static PARTIAL_TAILS: LazyCounter = LazyCounter::new("ftt_journal_partial_tails_total");
static ENCODED: LazyCounter = LazyCounter::new("ftt_journal_encoded_records_total");

/// First bytes of every journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"FTTJ";
/// Format version this module reads and writes.
pub const JOURNAL_VERSION: u8 = 1;
/// Header length: magic + version.
pub const JOURNAL_HEADER_LEN: usize = 5;
/// Encoded length of one event record.
pub const JOURNAL_RECORD_LEN: usize = 18;

/// Why a byte string was rejected as a journal. Truncated *tails* are
/// not errors (they are the crash case, reported via
/// [`JournalDecode::partial_tail`]); these are structural corruptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalIoError {
    /// The first bytes are not the journal magic.
    BadMagic {
        /// The bytes actually found (at most 4).
        found: Vec<u8>,
    },
    /// The version byte is not one this build understands.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// An event byte is neither kill (0) nor repair (1).
    BadEventKind {
        /// Zero-based record index.
        record: usize,
        /// The byte found.
        found: u8,
    },
    /// A target byte is neither node (0) nor edge (1).
    BadFaultKind {
        /// Zero-based record index.
        record: usize,
        /// The byte found.
        found: u8,
    },
    /// An edge id exceeds `u32` (edge ids are `u32` everywhere).
    EdgeIdOverflow {
        /// Zero-based record index.
        record: usize,
        /// The oversized id.
        id: u64,
    },
    /// A record's time is smaller than its predecessor's — journals
    /// record one stream, whose times are non-decreasing.
    TimeTravel {
        /// Zero-based record index of the offending record.
        record: usize,
        /// The offending time.
        time: u64,
        /// The previous record's time.
        prev: u64,
    },
}

impl fmt::Display for JournalIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalIoError::BadMagic { found } => {
                write!(f, "bad journal magic {found:?} (want {JOURNAL_MAGIC:?})")
            }
            JournalIoError::BadVersion { found } => {
                write!(
                    f,
                    "journal version {found} unsupported (want {JOURNAL_VERSION})"
                )
            }
            JournalIoError::BadEventKind { record, found } => {
                write!(f, "record {record}: event kind byte {found} (want 0|1)")
            }
            JournalIoError::BadFaultKind { record, found } => {
                write!(f, "record {record}: fault target byte {found} (want 0|1)")
            }
            JournalIoError::EdgeIdOverflow { record, id } => {
                write!(f, "record {record}: edge id {id} exceeds u32")
            }
            JournalIoError::TimeTravel { record, time, prev } => {
                write!(f, "record {record}: time {time} < predecessor {prev}")
            }
        }
    }
}

impl std::error::Error for JournalIoError {}

/// Result of a lenient decode: the recovered whole-record prefix plus
/// what (if anything) was chopped off the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalDecode {
    /// The recovered journal (every complete, valid record in order).
    pub journal: FaultJournal,
    /// Bytes of the input that decoded to whole records (including the
    /// header) — re-encoding `journal` reproduces exactly this prefix
    /// of the input, byte for byte.
    pub complete_bytes: usize,
    /// Trailing bytes that form only part of a record (or part of the
    /// header, for a file chopped during creation): `0` for a cleanly
    /// closed journal, `1..JOURNAL_RECORD_LEN` after a mid-append
    /// crash.
    pub partial_tail: usize,
}

/// Appends the fixed-size record for one event to `out`.
pub fn encode_event(event: &TimedFault, out: &mut Vec<u8>) {
    out.extend_from_slice(&event.time.to_le_bytes());
    out.push(if event.is_repair() { 1 } else { 0 });
    let (target, id) = match event.fault() {
        Fault::Node(v) => (0u8, v as u64),
        Fault::Edge(e) => (1u8, e as u64),
    };
    out.push(target);
    out.extend_from_slice(&id.to_le_bytes());
}

/// Appends the records for `events` to `out` (no header — the append
/// path of a journal file that already carries one).
pub fn encode_events(events: &[TimedFault], out: &mut Vec<u8>) {
    out.reserve(events.len() * JOURNAL_RECORD_LEN);
    for ev in events {
        encode_event(ev, out);
    }
    ENCODED.add(events.len() as u64);
}

/// How far [`append_records`] pushes the bytes toward the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Write + flush to the OS (the daemon's default: survives process
    /// death, not power loss).
    Flush,
    /// Write + `fsync` (survives power loss; an order of magnitude
    /// slower per batch).
    Fsync,
}

/// Appends pre-encoded record `bytes` to the journal file at `path` —
/// the daemon's per-batch durability step, instrumented with
/// `ftt_journal_append_us` / `ftt_journal_append_bytes_total` (and
/// `ftt_journal_fsync_us` under [`Durability::Fsync`]). The file must
/// already carry its header ([`encode_header`]).
pub fn append_records(path: &Path, bytes: &[u8], durability: Durability) -> std::io::Result<()> {
    let stamp = Stamp::now();
    let mut file = OpenOptions::new().append(true).open(path)?;
    file.write_all(bytes)?;
    file.flush()?;
    if durability == Durability::Fsync {
        let fsync_stamp = Stamp::now();
        file.sync_all()?;
        fsync_stamp.record(&FSYNC_US);
    }
    stamp.record(&APPEND_US);
    APPEND_BYTES.add(bytes.len() as u64);
    Ok(())
}

/// The journal header (magic + version).
pub fn encode_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.push(JOURNAL_VERSION);
}

/// Serialises a whole journal: header + every record.
pub fn encode_journal(journal: &FaultJournal) -> Vec<u8> {
    let mut out = Vec::with_capacity(JOURNAL_HEADER_LEN + journal.len() * JOURNAL_RECORD_LEN);
    encode_header(&mut out);
    encode_events(journal.events(), &mut out);
    out
}

/// Decodes one record (exactly [`JOURNAL_RECORD_LEN`] bytes); `record`
/// and `prev_time` contextualise the typed errors.
fn decode_record(
    bytes: &[u8],
    record: usize,
    prev_time: Option<u64>,
) -> Result<TimedFault, JournalIoError> {
    debug_assert_eq!(bytes.len(), JOURNAL_RECORD_LEN);
    let time = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    if let Some(prev) = prev_time {
        if time < prev {
            return Err(JournalIoError::TimeTravel { record, time, prev });
        }
    }
    let id = u64::from_le_bytes(bytes[10..18].try_into().unwrap());
    let fault = match bytes[9] {
        0 => Fault::Node(id as usize),
        1 => {
            if id > u32::MAX as u64 {
                return Err(JournalIoError::EdgeIdOverflow { record, id });
            }
            Fault::Edge(id as u32)
        }
        found => return Err(JournalIoError::BadFaultKind { record, found }),
    };
    match bytes[8] {
        0 => Ok(TimedFault::kill(time, fault)),
        1 => Ok(TimedFault::repair(time, fault)),
        found => Err(JournalIoError::BadEventKind { record, found }),
    }
}

/// Decodes one standalone record (exactly [`JOURNAL_RECORD_LEN`]
/// bytes) with no cross-record time check — the wire-protocol entry
/// point, where records travel outside a journal file and monotonicity
/// is the receiver's per-tenant contract to enforce.
pub fn decode_event(bytes: &[u8]) -> Result<TimedFault, JournalIoError> {
    if bytes.len() != JOURNAL_RECORD_LEN {
        return Err(JournalIoError::BadMagic {
            found: bytes.to_vec(),
        });
    }
    decode_record(bytes, 0, None)
}

/// Lenient decode — the **crash-recovery** entry point. Whole records
/// are decoded in order; a trailing partial record (or partial header)
/// is reported, not rejected; structurally corrupt bytes are typed
/// errors. An empty input decodes to an empty journal with a zero-byte
/// partial tail (the created-but-never-written case).
pub fn decode_journal_lenient(bytes: &[u8]) -> Result<JournalDecode, JournalIoError> {
    if bytes.len() < JOURNAL_HEADER_LEN {
        // A strict prefix of a valid header is chopped-at-creation; any
        // other short content is not a journal.
        let mut header = Vec::new();
        encode_header(&mut header);
        if bytes == &header[..bytes.len()] {
            if !bytes.is_empty() {
                PARTIAL_TAILS.inc();
            }
            return Ok(JournalDecode {
                journal: FaultJournal::new(),
                complete_bytes: 0,
                partial_tail: bytes.len(),
            });
        }
        return Err(JournalIoError::BadMagic {
            found: bytes.to_vec(),
        });
    }
    if bytes[..4] != JOURNAL_MAGIC {
        return Err(JournalIoError::BadMagic {
            found: bytes[..4].to_vec(),
        });
    }
    if bytes[4] != JOURNAL_VERSION {
        return Err(JournalIoError::BadVersion { found: bytes[4] });
    }
    let body = &bytes[JOURNAL_HEADER_LEN..];
    let whole = body.len() / JOURNAL_RECORD_LEN;
    let mut journal = FaultJournal::new();
    let mut prev_time = None;
    for record in 0..whole {
        let chunk = &body[record * JOURNAL_RECORD_LEN..(record + 1) * JOURNAL_RECORD_LEN];
        let ev = decode_record(chunk, record, prev_time)?;
        prev_time = Some(ev.time);
        journal.record(ev);
    }
    let partial_tail = body.len() - whole * JOURNAL_RECORD_LEN;
    REPLAYED.add(journal.len() as u64);
    if partial_tail > 0 {
        PARTIAL_TAILS.inc();
    }
    Ok(JournalDecode {
        journal,
        complete_bytes: JOURNAL_HEADER_LEN + whole * JOURNAL_RECORD_LEN,
        partial_tail,
    })
}

/// Strict decode: like [`decode_journal_lenient`] but a partial tail is
/// a [`JournalIoError::BadMagic`]-class refusal — for readers of files
/// that are supposed to be cleanly closed (tests, artifact tooling).
pub fn decode_journal(bytes: &[u8]) -> Result<FaultJournal, JournalIoError> {
    let decoded = decode_journal_lenient(bytes)?;
    if decoded.partial_tail != 0 {
        // Reuse the magic error shape for "not a whole journal": the
        // tail bytes are the offending content.
        return Err(JournalIoError::BadMagic {
            found: bytes[decoded.complete_bytes..].to_vec(),
        });
    }
    Ok(decoded.journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::FaultSet;
    use crate::stream::{FaultEvent, FaultStream, NoFeedback, StreamSpec};

    /// A renewal journal with equal-timestamp repair/kill ties — the
    /// ordering-sensitive case the daemon's crash recovery must get
    /// right.
    fn renewal_journal() -> FaultJournal {
        let spec = StreamSpec::Renew {
            delay: 3,
            inner: Box::new(StreamSpec::Trickle {
                node_rate: 0.3,
                edge_rate: 0.1,
            }),
        };
        let mut journal = FaultJournal::new();
        let mut s = spec.stream(24, 40, 17);
        for _ in 0..40 {
            journal.record(s.next(&NoFeedback).unwrap());
        }
        assert!(
            journal
                .events()
                .windows(2)
                .any(|w| w[0].time == w[1].time && w[0].is_repair() && !w[1].is_repair()),
            "fixture must exercise a repair-before-kill tie"
        );
        journal
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let journal = renewal_journal();
        let bytes = encode_journal(&journal);
        let decoded = decode_journal(&bytes).unwrap();
        assert_eq!(decoded, journal, "events and order survive the round trip");
        assert_eq!(
            encode_journal(&decoded),
            bytes,
            "re-encoding is byte-identical"
        );
    }

    /// The crash case, exhaustively: a journal chopped at EVERY byte
    /// boundary must decode to exactly the longest whole-record prefix
    /// — same order (ties included), same net fault set — and never
    /// error or panic.
    #[test]
    fn chopped_journals_decode_to_exact_prefixes() {
        let journal = renewal_journal();
        let bytes = encode_journal(&journal);
        for cut in 0..=bytes.len() {
            let decoded = decode_journal_lenient(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut {cut}: spurious corruption verdict {e}"));
            let whole = cut.saturating_sub(JOURNAL_HEADER_LEN) / JOURNAL_RECORD_LEN;
            assert_eq!(
                decoded.journal.len(),
                whole,
                "cut {cut}: wrong prefix length"
            );
            assert_eq!(
                decoded.journal.events(),
                &journal.events()[..whole],
                "cut {cut}: prefix events must match the original order"
            );
            assert_eq!(
                decoded.complete_bytes + decoded.partial_tail,
                cut,
                "cut {cut}: every byte accounted for"
            );
            // Net-fault-set parity: to_fault_set over the recovered
            // prefix equals replaying that prefix event by event.
            let set = decoded.journal.to_fault_set(24, 40);
            let mut expect = FaultSet::none(24, 40);
            for ev in &journal.events()[..whole] {
                match ev.event {
                    FaultEvent::Kill(f) => {
                        expect.kill(f);
                    }
                    FaultEvent::Repair(f) => {
                        expect.revive(f);
                    }
                }
            }
            assert_eq!(set, expect, "cut {cut}: net fault set diverged");
            // Byte-identity of the recovered prefix.
            assert_eq!(
                encode_journal(&decoded.journal),
                &bytes[..decoded.complete_bytes.max(JOURNAL_HEADER_LEN)][..],
                "cut {cut}: recovered prefix must re-encode byte-identically",
            );
        }
    }

    #[test]
    fn equal_time_ties_survive_chopping_between_the_pair() {
        let journal = renewal_journal();
        let bytes = encode_journal(&journal);
        let tie = journal
            .events()
            .windows(2)
            .position(|w| w[0].time == w[1].time && w[0].is_repair() && !w[1].is_repair())
            .expect("fixture has a tie");
        // Chop exactly between the repair and its same-time kill.
        let cut = JOURNAL_HEADER_LEN + (tie + 1) * JOURNAL_RECORD_LEN;
        let decoded = decode_journal_lenient(&bytes[..cut]).unwrap();
        let last = *decoded.journal.events().last().unwrap();
        assert!(last.is_repair(), "the repair half of the tie is kept");
        assert_eq!(last, journal.events()[tie]);
        // The repaired element is *live* in the prefix's net set even
        // though the full journal kills something at the same instant.
        let set = decoded.journal.to_fault_set(24, 40);
        assert!(
            !set.contains(last.fault()),
            "tie order preserved: repair applied"
        );
    }

    #[test]
    fn corruption_is_typed_never_panicking() {
        let journal = renewal_journal();
        let mut bytes = encode_journal(&journal);
        // Wrong magic.
        assert!(matches!(
            decode_journal_lenient(b"NOPE\x01rest"),
            Err(JournalIoError::BadMagic { .. })
        ));
        assert!(matches!(
            decode_journal_lenient(b"XY"),
            Err(JournalIoError::BadMagic { .. })
        ));
        // Unknown version.
        let mut v = bytes.clone();
        v[4] = 9;
        assert_eq!(
            decode_journal_lenient(&v),
            Err(JournalIoError::BadVersion { found: 9 })
        );
        // Mangled event-kind byte in record 0.
        let mut k = bytes.clone();
        k[JOURNAL_HEADER_LEN + 8] = 7;
        assert_eq!(
            decode_journal_lenient(&k),
            Err(JournalIoError::BadEventKind {
                record: 0,
                found: 7
            })
        );
        // Mangled target byte.
        let mut t = bytes.clone();
        t[JOURNAL_HEADER_LEN + 9] = 3;
        assert_eq!(
            decode_journal_lenient(&t),
            Err(JournalIoError::BadFaultKind {
                record: 0,
                found: 3
            })
        );
        // Time travel: copy record 0's time bytes over record 1's with
        // a smaller value spliced in.
        let t0 = journal.events()[0].time;
        if t0 > 0 {
            let r1 = JOURNAL_HEADER_LEN + JOURNAL_RECORD_LEN;
            bytes[r1..r1 + 8].copy_from_slice(&(t0 - 1).to_le_bytes());
            assert!(matches!(
                decode_journal_lenient(&bytes),
                Err(JournalIoError::TimeTravel { record: 1, .. })
            ));
        }
        // Strict decode refuses partial tails that the lenient path
        // tolerates.
        let bytes = encode_journal(&journal);
        assert!(decode_journal(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_journal(&bytes).is_ok());
    }

    /// [`append_records`] is byte-equivalent to in-memory encoding at
    /// both durability levels (the daemon's append path delegates
    /// here).
    #[test]
    fn file_append_matches_in_memory_encoding() {
        let journal = renewal_journal();
        let dir = std::env::temp_dir().join(format!("ftt-journal-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (tag, durability) in [("flush", Durability::Flush), ("fsync", Durability::Fsync)] {
            let path = dir.join(format!("append-{tag}.ftj"));
            let mut header = Vec::new();
            encode_header(&mut header);
            std::fs::write(&path, &header).unwrap();
            // Two appends: the steady-state batch pattern.
            let (a, b) = journal.events().split_at(journal.len() / 2);
            for half in [a, b] {
                let mut bytes = Vec::new();
                encode_events(half, &mut bytes);
                append_records(&path, &bytes, durability).unwrap();
            }
            let on_disk = std::fs::read(&path).unwrap();
            assert_eq!(on_disk, encode_journal(&journal), "{tag}");
            assert_eq!(decode_journal(&on_disk).unwrap(), journal, "{tag}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edge_ids_and_empty_journals() {
        let mut journal = FaultJournal::new();
        journal.record(TimedFault::kill(2, Fault::Edge(u32::MAX)));
        journal.record(TimedFault::repair(2, Fault::Edge(u32::MAX)));
        journal.record(TimedFault::kill(9, Fault::Node(usize::MAX & 0xFFFF_FFFF)));
        let bytes = encode_journal(&journal);
        assert_eq!(decode_journal(&bytes).unwrap(), journal);
        // Empty journal: header only, zero events, zero tail.
        let empty = encode_journal(&FaultJournal::new());
        assert_eq!(empty.len(), JOURNAL_HEADER_LEN);
        let d = decode_journal_lenient(&empty).unwrap();
        assert!(d.journal.is_empty());
        assert_eq!(d.partial_tail, 0);
        // Zero-length input: the created-but-never-written file.
        let d = decode_journal_lenient(&[]).unwrap();
        assert!(d.journal.is_empty());
    }
}
