//! Adversarial (worst-case) fault generators for Theorem 3 experiments.
//!
//! Theorem 3 guarantees tolerance of **any** `k` faults, so the
//! experiments attack `D^d_{n,k}` with structured patterns designed to
//! stress the pigeonhole placement: clustered cubes, whole lines,
//! diagonals, and residue-spread patterns that try to dirty as many
//! cyclic row classes as possible.

use crate::set::FaultSet;
use ftt_geom::Shape;
use ftt_graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A family of worst-case fault placement strategies over a torus shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryPattern {
    /// `k` distinct uniformly random nodes.
    Random,
    /// A contiguous axis-aligned cube of `k` nodes (maximally clustered —
    /// stresses the frame-finding / block machinery).
    ClusteredCube,
    /// `k` consecutive nodes along a single line in direction `axis`
    /// (wraps around).
    AxisLine {
        /// Direction of the line.
        axis: usize,
    },
    /// Nodes on the main (wrapped) diagonal, evenly spaced.
    Diagonal,
    /// Nodes chosen so their `axis`-coordinates cover as many residues
    /// modulo `modulus` as possible — the worst case for the cyclic
    /// pigeonhole argument, which needs a fault-free residue class.
    ResidueSpread {
        /// Axis whose coordinates the adversary spreads.
        axis: usize,
        /// Modulus of the residue classes under attack (use `b+1` to
        /// attack dimension 1 of `D^d_{n,k}`).
        modulus: usize,
    },
    /// Faults concentrated in `rows` distinct hyperplanes (coordinate-0
    /// slices), spread evenly inside each.
    FewRows {
        /// Number of distinct rows receiving faults.
        rows: usize,
    },
}

impl AdversaryPattern {
    /// A canonical battery of patterns to sweep in experiments.
    pub fn battery(shape: &Shape, modulus: usize) -> Vec<AdversaryPattern> {
        let mut v = vec![
            AdversaryPattern::Random,
            AdversaryPattern::ClusteredCube,
            AdversaryPattern::Diagonal,
            AdversaryPattern::FewRows { rows: 2 },
            AdversaryPattern::ResidueSpread { axis: 0, modulus },
        ];
        for axis in 0..shape.ndim() {
            v.push(AdversaryPattern::AxisLine { axis });
        }
        v
    }

    /// Generates `k` distinct faulty node ids on `shape`.
    ///
    /// # Panics
    /// Panics if `k > shape.len()` or a pattern parameter is out of range.
    pub fn generate<R: Rng>(&self, shape: &Shape, k: usize, rng: &mut R) -> Vec<usize> {
        assert!(
            k <= shape.len(),
            "cannot place {k} faults on {} nodes",
            shape.len()
        );
        let mut out = match *self {
            AdversaryPattern::Random => {
                // Floyd-ish sampling via partial shuffle for small k.
                let mut picked = std::collections::HashSet::with_capacity(k);
                while picked.len() < k {
                    picked.insert(rng.gen_range(0..shape.len()));
                }
                picked.into_iter().collect::<Vec<_>>()
            }
            AdversaryPattern::ClusteredCube => {
                let d = shape.ndim();
                let side = (k as f64).powf(1.0 / d as f64).ceil() as usize;
                let origin: Vec<usize> = (0..d).map(|a| rng.gen_range(0..shape.dim(a))).collect();
                let mut v = Vec::with_capacity(k);
                'fill: for w in Shape::new(vec![side.max(1); d]).coords() {
                    let coord: Vec<usize> =
                        (0..d).map(|a| (origin[a] + w[a]) % shape.dim(a)).collect();
                    v.push(shape.flatten(&coord));
                    if v.len() == k {
                        break 'fill;
                    }
                }
                v
            }
            AdversaryPattern::AxisLine { axis } => {
                assert!(axis < shape.ndim(), "axis out of range");
                let start: Vec<usize> = (0..shape.ndim())
                    .map(|a| rng.gen_range(0..shape.dim(a)))
                    .collect();
                let mut node = shape.flatten(&start);
                let mut v = Vec::with_capacity(k);
                let line_len = shape.dim(axis);
                for step in 0..k {
                    if step > 0 && step % line_len == 0 {
                        // line exhausted: hop to the next parallel line
                        let next_axis = (axis + 1) % shape.ndim();
                        node = shape.torus_step(node, next_axis, 1);
                    }
                    v.push(node);
                    node = shape.torus_step(node, axis, 1);
                }
                v
            }
            AdversaryPattern::Diagonal => {
                let total = shape.len();
                let stride = (total / k).max(1);
                let d = shape.ndim();
                let mut v = Vec::with_capacity(k);
                for j in 0..k {
                    let t = j * stride;
                    let coord: Vec<usize> = (0..d).map(|a| (t + j) % shape.dim(a)).collect();
                    v.push(shape.flatten(&coord));
                }
                v
            }
            AdversaryPattern::ResidueSpread { axis, modulus } => {
                assert!(axis < shape.ndim(), "axis out of range");
                assert!(modulus > 0, "modulus must be positive");
                let d = shape.ndim();
                let n0 = shape.dim(axis);
                let mut v = Vec::with_capacity(k);
                for j in 0..k {
                    // hit residue j mod modulus on `axis`, random elsewhere
                    let target = (j % modulus) % n0;
                    let mut coord: Vec<usize> =
                        (0..d).map(|a| rng.gen_range(0..shape.dim(a))).collect();
                    // snap the axis coordinate to the target residue class
                    let c = coord[axis];
                    let snapped = c - (c % modulus.min(n0)) + target;
                    coord[axis] = snapped % n0;
                    v.push(shape.flatten(&coord));
                }
                v
            }
            AdversaryPattern::FewRows { rows } => {
                assert!(rows > 0, "need at least one row");
                let rows = rows.min(shape.dim(0));
                let mut row_ids: Vec<usize> = (0..shape.dim(0)).collect();
                row_ids.shuffle(rng);
                let row_ids = &row_ids[..rows];
                let per_row_capacity = shape.len() / shape.dim(0);
                let mut v = Vec::with_capacity(k);
                'outer: loop {
                    for &r in row_ids {
                        let within = rng.gen_range(0..per_row_capacity);
                        v.push(r * per_row_capacity + within);
                        if v.len() >= k {
                            break 'outer;
                        }
                    }
                }
                v
            }
        };
        out.sort_unstable();
        out.dedup();
        // Patterns with collisions (random within rows etc.) top up randomly.
        while out.len() < k {
            let cand = rng.gen_range(0..shape.len());
            if out.binary_search(&cand).is_err() {
                out.push(cand);
                out.sort_unstable();
            }
        }
        out.truncate(k);
        out
    }
}

/// Generates a mixed node/edge worst-case fault set on a host graph:
/// `k` total faults of which roughly `edge_fraction` are edge faults
/// (incident to pattern-chosen nodes, making them maximally correlated
/// with the node faults).
pub fn mixed_adversarial_faults<R: Rng>(
    g: &Graph,
    shape: &Shape,
    pattern: AdversaryPattern,
    k: usize,
    edge_fraction: f64,
    rng: &mut R,
) -> FaultSet {
    assert!((0.0..=1.0).contains(&edge_fraction));
    assert_eq!(
        g.num_nodes(),
        shape.len(),
        "graph/shape node count mismatch"
    );
    let num_edge_faults = ((k as f64) * edge_fraction).round() as usize;
    let num_node_faults = k - num_edge_faults;
    let targets = pattern.generate(shape, k.min(shape.len()), rng);
    let mut s = FaultSet::none(g.num_nodes(), g.num_edges());
    for &v in targets.iter().take(num_node_faults) {
        s.kill_node(v);
    }
    let mut placed = 0usize;
    for &v in targets.iter().skip(num_node_faults) {
        // kill one incident edge of the target node
        if let Some((_, e)) = g.arcs(v).next() {
            if s.edge_alive(e) {
                s.kill_edge(e);
                placed += 1;
            }
        }
    }
    // top up with random edges if incident-edge collisions lost some
    while placed < num_edge_faults && g.num_edges() > 0 {
        let e = rng.gen_range(0..g.num_edges()) as u32;
        if s.edge_alive(e) {
            s.kill_edge(e);
            placed += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftt_graph::gen::torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn shape() -> Shape {
        Shape::new(vec![12, 12])
    }

    #[test]
    fn all_patterns_generate_exactly_k_distinct() {
        let sh = shape();
        let mut rng = SmallRng::seed_from_u64(9);
        for pat in AdversaryPattern::battery(&sh, 4) {
            for &k in &[1usize, 5, 17, 40] {
                let f = pat.generate(&sh, k, &mut rng);
                assert_eq!(f.len(), k, "{pat:?} produced wrong count");
                let mut dedup = f.clone();
                dedup.dedup();
                assert_eq!(dedup.len(), k, "{pat:?} produced duplicates");
                assert!(f.iter().all(|&v| v < sh.len()));
            }
        }
    }

    #[test]
    fn clustered_cube_is_clustered() {
        let sh = shape();
        let mut rng = SmallRng::seed_from_u64(10);
        let f = AdversaryPattern::ClusteredCube.generate(&sh, 9, &mut rng);
        // All faults within a 3×3 window (cyclically): coordinate spans ≤ 3.
        let coords: Vec<Vec<usize>> = f.iter().map(|&v| sh.unflatten(v)).collect();
        for axis in 0..2 {
            let distinct: std::collections::HashSet<usize> =
                coords.iter().map(|c| c[axis]).collect();
            assert!(distinct.len() <= 3, "axis {axis} spread too wide");
        }
    }

    #[test]
    fn axis_line_stays_on_line() {
        let sh = shape();
        let mut rng = SmallRng::seed_from_u64(11);
        let f = AdversaryPattern::AxisLine { axis: 0 }.generate(&sh, 8, &mut rng);
        let cols: std::collections::HashSet<usize> = f.iter().map(|&v| sh.coord_of(v, 1)).collect();
        assert_eq!(cols.len(), 1, "k ≤ line length keeps a single column");
    }

    #[test]
    fn few_rows_concentrates() {
        let sh = shape();
        let mut rng = SmallRng::seed_from_u64(12);
        let f = AdversaryPattern::FewRows { rows: 2 }.generate(&sh, 10, &mut rng);
        let rows: std::collections::HashSet<usize> = f.iter().map(|&v| sh.coord_of(v, 0)).collect();
        assert!(
            rows.len() <= 3,
            "faults should sit in ≈2 rows (plus top-ups)"
        );
    }

    #[test]
    fn residue_spread_covers_classes() {
        let sh = shape();
        let mut rng = SmallRng::seed_from_u64(13);
        let modulus = 4;
        let f = AdversaryPattern::ResidueSpread { axis: 0, modulus }.generate(&sh, 8, &mut rng);
        let residues: std::collections::HashSet<usize> =
            f.iter().map(|&v| sh.coord_of(v, 0) % modulus).collect();
        assert!(
            residues.len() >= 3,
            "spread should dirty most residue classes"
        );
    }

    #[test]
    fn mixed_faults_counts() {
        let sh = shape();
        let g = torus(&sh);
        let mut rng = SmallRng::seed_from_u64(14);
        let s = mixed_adversarial_faults(&g, &sh, AdversaryPattern::Random, 20, 0.25, &mut rng);
        assert_eq!(s.count_edge_faults(), 5);
        assert_eq!(s.count_node_faults(), 15);
        assert_eq!(s.count_faults(), 20);
    }

    #[test]
    fn mixed_faults_all_nodes() {
        let sh = shape();
        let g = torus(&sh);
        let mut rng = SmallRng::seed_from_u64(15);
        let s = mixed_adversarial_faults(&g, &sh, AdversaryPattern::Random, 10, 0.0, &mut rng);
        assert_eq!(s.count_edge_faults(), 0);
        assert_eq!(s.count_node_faults(), 10);
    }
}
